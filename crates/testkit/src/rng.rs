//! Deterministic pseudo-random numbers with a `rand`-flavoured surface.
//!
//! The generator is splitmix64 — tiny, fast, and statistically fine for
//! workload generation and randomized tests (it is the seeding PRNG of
//! the xoshiro family). It is **not** cryptographic.

use std::ops::Range;

/// A seeded splitmix64 generator. The name mirrors `rand::rngs::StdRng`
/// so call sites read identically.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Create a generator from a 64-bit seed (same name as rand's
    /// `SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            // Avoid the all-zero orbit start without changing good seeds.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform draw from a half-open integer range.
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(range, self)
    }

    /// Uniformly pick a slice element; `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range(0..items.len())])
        }
    }
}

/// Integer types drawable with [`StdRng::gen_range`].
pub trait SampleRange: Sized {
    /// Draw uniformly from `range` (which must be non-empty).
    fn sample(range: Range<Self>, rng: &mut StdRng) -> Self;
}

macro_rules! impl_sample {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(range: Range<Self>, rng: &mut StdRng) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = range.end.abs_diff(range.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64
                // per draw, irrelevant for test workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample!(i64, u64, i32, u32, usize, i16, u8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i64..15);
            assert!((-5..15).contains(&x));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(4);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
        assert!(rng.choose::<i32>(&[]).is_none());
    }
}
