//! A criterion-compatible micro-benchmark harness.
//!
//! Implements the slice of the `criterion` API the workspace benches
//! use — groups, `sample_size`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros —
//! on top of `std::time::Instant`, with no external dependencies.
//!
//! Policy per benchmark:
//! * **quick mode** (`--test`, `--quick`, or `EDS_BENCH_QUICK=1`): run
//!   the closure once and record that single wall time — the CI smoke
//!   path ("one iteration per bench, no statistics");
//! * **measure mode**: warm up ~100 ms, pick an iteration count so one
//!   sample costs ~25 ms, time `sample_size` samples, and report the
//!   **median ns/iter** (medians are robust to scheduler noise, which
//!   is all the statistics the rewrite-trajectory tooling needs).
//!
//! Results are printed as a table and appended to
//! `target/bench-tsv/<group>.tsv` (`id<TAB>median_ns`), which
//! `eds-bench`'s `bench_report` binary assembles into
//! `BENCH_rewrite.json`.

use std::fmt::Write as _;
use std::fs;
use std::hint;
use std::path::PathBuf;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A `group/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("segments", 64)` displays as `segments/64`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (one TSV file per group).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
}

/// Top-level harness state; collects results across groups.
#[derive(Debug, Default)]
pub struct Criterion {
    quick: bool,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Build from the process arguments (`--test`/`--quick` select quick
    /// mode; other flags cargo passes are ignored).
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--test" || a == "--quick")
            || std::env::var_os("EDS_BENCH_QUICK").is_some_and(|v| v != "0");
        Criterion {
            quick,
            results: Vec::new(),
        }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!(
            "group {name} ({})",
            if self.quick { "quick" } else { "measure" }
        );
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Write the TSV dumps and the human summary. Called by
    /// `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        let dir = tsv_dir();
        let _ = fs::create_dir_all(&dir);
        let mut groups: Vec<&str> = self.results.iter().map(|r| r.group.as_str()).collect();
        groups.dedup();
        for group in groups {
            let mut out = String::new();
            for r in self.results.iter().filter(|r| r.group == group) {
                let _ = writeln!(out, "{}\t{:.1}", r.id, r.median_ns);
            }
            let path = dir.join(format!("{group}.tsv"));
            if let Err(e) = fs::write(&path, out) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
    }

    fn record(&mut self, group: &str, id: String, median_ns: f64) {
        eprintln!("  {group}/{id:<32} {median_ns:>14.1} ns/iter");
        self.results.push(BenchResult {
            group: group.to_owned(),
            id,
            median_ns,
        });
    }
}

/// Locate `<workspace>/target/bench-tsv` by walking up to the directory
/// holding `Cargo.lock`; overridable with `EDS_BENCH_TSV_DIR`.
fn tsv_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("EDS_BENCH_TSV_DIR") {
        return PathBuf::from(dir);
    }
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if cur.join("Cargo.lock").exists() {
            return cur.join("target").join("bench-tsv");
        }
        if !cur.pop() {
            return PathBuf::from("target/bench-tsv");
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (measure mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Benchmark a closure under a plain string id.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), &mut f);
        self
    }

    /// Benchmark a closure given a borrowed input (criterion's
    /// `bench_with_input`).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Re-record the median already measured under `from` as a second
    /// row named `to`, without running anything. For configurations that
    /// are *provably identical* on the current host (e.g. a parallelism
    /// knob clamped to one worker by the core count): measuring both
    /// would report the same computation twice, so the harness records
    /// the one honest median under both ids. Returns `false` when `from`
    /// has not been measured in this group.
    pub fn copy_result(&mut self, from: &BenchmarkId, to: BenchmarkId) -> bool {
        let from = from.to_string();
        let found = self
            .criterion
            .results
            .iter()
            .find(|r| r.group == self.name && r.id == from)
            .map(|r| r.median_ns);
        match found {
            Some(median_ns) => {
                self.criterion.record(&self.name, to.to_string(), median_ns);
                true
            }
            None => false,
        }
    }

    /// End the group (kept for criterion compatibility).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            quick: self.criterion.quick,
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut bencher);
        self.criterion.record(&self.name, id, bencher.median_ns);
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the hot
/// code.
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Measure a closure. See the module docs for the sampling policy.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.quick {
            let t0 = Instant::now();
            black_box(f());
            self.median_ns = t0.elapsed().as_nanos() as f64;
            return;
        }

        // Warm-up: run for ~100 ms (at least 5 iterations) to touch
        // caches and estimate the per-iteration cost.
        let warmup = Instant::now();
        let mut warm_iters: u64 = 0;
        while warmup.elapsed().as_millis() < 100 || warm_iters < 5 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warmup.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // One sample ~25 ms; cap so huge closures still sample quickly.
        let iters_per_sample = ((25_000_000.0 / est_ns) as u64).clamp(1, 1_000_000);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Criterion-compatible group macro: defines a function running each
/// bench function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Criterion-compatible main macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut c = Criterion {
            quick: true,
            results: Vec::new(),
        };
        let mut count = 0;
        {
            let mut g = c.benchmark_group("t");
            g.bench_with_input(BenchmarkId::new("inc", 1), &1, |b, _| {
                b.iter(|| {
                    count += 1;
                });
            });
            g.finish();
        }
        assert_eq!(count, 1);
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].id, "inc/1");
    }

    #[test]
    fn copy_result_duplicates_without_rerunning() {
        let mut c = Criterion {
            quick: true,
            results: Vec::new(),
        };
        let mut count = 0;
        {
            let mut g = c.benchmark_group("t");
            g.bench_with_input(BenchmarkId::new("w", "p1"), &1, |b, _| {
                b.iter(|| {
                    count += 1;
                });
            });
            assert!(g.copy_result(&BenchmarkId::new("w", "p1"), BenchmarkId::new("w", "p4")));
            assert!(!g.copy_result(&BenchmarkId::new("nope", "p1"), BenchmarkId::new("w", "p8")));
            g.finish();
        }
        assert_eq!(count, 1, "the copy must not re-run the closure");
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].median_ns, c.results[1].median_ns);
        assert_eq!(c.results[1].id, "w/p4");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("segments", 64).to_string(), "segments/64");
    }
}
