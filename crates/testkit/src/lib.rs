//! # eds-testkit — dependency-free test and bench support
//!
//! The build environment pins the workspace to in-tree crates only, so
//! the usual `rand`/`proptest`/`criterion` stack is replaced by two tiny
//! modules:
//!
//! * [`rng`] — a deterministic splitmix64 PRNG with a `rand`-flavoured
//!   API (`seed_from_u64`, `gen_range`, `gen_bool`, `choose`);
//! * [`bench`] — a criterion-compatible micro-bench harness (groups,
//!   `bench_with_input`, medians) that prints ns/iter tables and dumps
//!   machine-readable TSV for the `BENCH_rewrite.json` trajectory
//!   tooling.
//!
//! Everything is deterministic: seeded generators for tests, fixed
//! warm-up/sampling policy for benches.

#![warn(missing_docs)]

pub mod bench;
pub mod rng;

pub use bench::{black_box, BenchmarkId, Criterion};
pub use rng::StdRng;
