//! Strategy-layer semantics: budgets, sequencing, rule sharing across
//! blocks — the Section-4.2 control machinery under adversarial inputs.

use eds_rewrite::{
    apply_block, parse_source, run_strategy, BasicEnv, Block, Limit, MethodRegistry, RuleSet,
    Sequence, SourceItem, Strategy, Term,
};

fn load(src: &str) -> (RuleSet, Strategy) {
    let mut rules = RuleSet::new();
    let mut strategy = Strategy::new();
    for item in parse_source(src).unwrap() {
        match item {
            SourceItem::Rule(r) => {
                rules.add(r);
            }
            SourceItem::Block(b) => strategy.add_block(b),
            SourceItem::Seq(s) => strategy.set_sequence(s),
        }
    }
    (rules, strategy)
}

#[test]
fn same_rule_in_two_blocks_with_different_limits() {
    // "Note that the same rule may appear in different blocks."
    let (rules, strategy) = load(
        "Unwrap : F(x) / --> x / ;\n\
         block(first, {Unwrap}, 2) ;\n\
         block(second, {Unwrap}, INF) ;\n\
         seq((first, second), 1) ;",
    );
    let env = BasicEnv::new();
    let methods = MethodRegistry::with_builtins();
    let mut t = Term::int(0);
    for _ in 0..10 {
        t = Term::app("F", vec![t]);
    }
    let out = run_strategy(&rules, &strategy, &methods, &env, t, false).unwrap();
    // first strips at most 2, second strips the rest.
    assert_eq!(out.term, Term::int(0));
}

#[test]
fn blocks_not_in_sequence_do_not_run() {
    let (rules, strategy) = load(
        "AB : A / --> B / ;\n\
         BC : B / --> C / ;\n\
         block(one, {AB}, INF) ;\n\
         block(two, {BC}, INF) ;\n\
         seq((one), 1) ;",
    );
    let env = BasicEnv::new();
    let methods = MethodRegistry::with_builtins();
    let out = run_strategy(&rules, &strategy, &methods, &env, Term::atom("A"), false).unwrap();
    assert_eq!(out.term, Term::atom("B")); // two never ran
}

#[test]
fn later_block_redefinition_wins() {
    // add_source semantics: re-defining a block replaces it.
    let (rules, mut strategy) = load(
        "AB : A / --> B / ;\n\
         BC : B / --> C / ;\n\
         block(one, {AB}, INF) ;\n\
         seq((one), 1) ;",
    );
    // Redefine block `one` to contain BC instead.
    for item in parse_source("block(one, {BC}, INF) ;").unwrap() {
        if let SourceItem::Block(b) = item {
            strategy.add_block(b);
        }
    }
    let env = BasicEnv::new();
    let methods = MethodRegistry::with_builtins();
    let out = run_strategy(&rules, &strategy, &methods, &env, Term::atom("B"), false).unwrap();
    assert_eq!(out.term, Term::atom("C"));
    let out = run_strategy(&rules, &strategy, &methods, &env, Term::atom("A"), false).unwrap();
    assert_eq!(out.term, Term::atom("A")); // AB no longer in any block
}

#[test]
fn infinite_passes_stop_at_global_fixpoint() {
    // seq((...), INF) parses (passes = u64::MAX) and must still stop as
    // soon as a full pass changes nothing.
    let (rules, strategy) = load(
        "AB : A / --> B / ;\n\
         block(one, {AB}, INF) ;\n\
         seq((one), INF) ;",
    );
    let env = BasicEnv::new();
    let methods = MethodRegistry::with_builtins();
    let out = run_strategy(&rules, &strategy, &methods, &env, Term::atom("A"), false).unwrap();
    assert_eq!(out.term, Term::atom("B"));
    // Two checks in the converging pass + one pass of no progress.
    assert!(out.stats.condition_checks < 10);
}

#[test]
fn budget_is_per_block_execution_not_global() {
    // A block with limit 3 appearing twice in the sequence gets 3 checks
    // each time.
    let (rules, strategy) = load(
        "Unwrap : F(x) / --> x / ;\n\
         block(b, {Unwrap}, 3) ;\n\
         seq((b, b), 1) ;",
    );
    let env = BasicEnv::new();
    let methods = MethodRegistry::with_builtins();
    let mut t = Term::int(0);
    for _ in 0..6 {
        t = Term::app("F", vec![t]);
    }
    let out = run_strategy(&rules, &strategy, &methods, &env, t, false).unwrap();
    // 3 + 3 applications strip all six wrappers.
    assert_eq!(out.term, Term::int(0));
    assert!(out.budget_exhausted);
}

#[test]
fn empty_block_is_a_noop() {
    let mut rules = RuleSet::new();
    rules.add(eds_rewrite::Rule::simple(
        "unused",
        Term::atom("A"),
        Term::atom("B"),
    ));
    let block = Block {
        name: "empty".into(),
        rules: vec![],
        limit: Limit::Infinite,
    };
    let env = BasicEnv::new();
    let methods = MethodRegistry::with_builtins();
    let out = apply_block(&rules, &block, &methods, &env, Term::atom("A"), false).unwrap();
    assert_eq!(out.term, Term::atom("A"));
    assert_eq!(out.stats.condition_checks, 0);
}

#[test]
fn sequence_referencing_missing_block_skips_it() {
    let (rules, mut strategy) = load(
        "AB : A / --> B / ;\n\
         block(one, {AB}, INF) ;",
    );
    strategy.set_sequence(Sequence {
        blocks: vec!["ghost".into(), "one".into()],
        passes: 1,
    });
    let env = BasicEnv::new();
    let methods = MethodRegistry::with_builtins();
    let out = run_strategy(&rules, &strategy, &methods, &env, Term::atom("A"), false).unwrap();
    assert_eq!(out.term, Term::atom("B"));
}
