//! Autofix round-trips: for every diagnostic that carries a suggestion,
//! applying fixes until a pass changes nothing must (1) eliminate the
//! diagnostic that suggested them, (2) introduce no new *errors*, and
//! (3) be idempotent — one more pass applies zero fixes. This is the
//! in-process contract behind `eds-lint --fix` and `--fix --check`.

use eds_rewrite::analyze::analyze;
use eds_rewrite::{
    apply_fixes, parse_source, Diagnostic, MethodRegistry, RuleSet, SourceItem, Strategy,
};

fn lint(src: &str) -> Vec<Diagnostic> {
    let mut rules = RuleSet::new();
    let mut strategy = Strategy::new();
    for item in parse_source(src).expect("fixture must parse") {
        match item {
            SourceItem::Rule(r) => {
                rules.add(r);
            }
            SourceItem::Block(b) => strategy.add_block(b),
            SourceItem::Seq(s) => strategy.set_sequence(s),
        }
    }
    analyze(&rules, &strategy, &MethodRegistry::with_builtins(), None)
}

/// Apply fix passes to convergence (bounded), then check the contract.
fn roundtrip(src: &str, code: &str) -> String {
    let before = lint(src);
    assert!(
        before
            .iter()
            .any(|d| d.code == code && !d.suggestions.is_empty()),
        "fixture must produce a fixable {code}, got: {before:#?}"
    );
    let error_count = |diags: &[Diagnostic]| {
        diags
            .iter()
            .filter(|d| d.severity == eds_rewrite::Severity::Error)
            .count()
    };
    let mut text = src.to_owned();
    for _ in 0..8 {
        let out = apply_fixes(&text, &lint(&text)).expect("fixed source must parse");
        if out.applied == 0 {
            break;
        }
        text = out.text;
    }
    let after = lint(&text);
    assert!(
        after.iter().all(|d| d.code != code),
        "{code} must be gone after fixing, still have: {after:#?}\nsource now:\n{text}"
    );
    assert!(
        error_count(&after) <= error_count(&before),
        "fixing must not mint new errors: {after:#?}"
    );
    let again = apply_fixes(&text, &after).expect("converged source must parse");
    assert_eq!(again.applied, 0, "fixing must be idempotent");
    assert_eq!(again.text, text);
    text
}

#[test]
fn eds001_unbound_rhs_variable_bound_via_method() {
    let fixed = roundtrip("R : F(x) / --> G(x, ghost) / ;", "EDS001");
    assert!(
        fixed.contains("EVALUATE"),
        "fix binds the variable: {fixed}"
    );
}

#[test]
fn eds010_growing_rule_gets_a_finite_limit() {
    let fixed = roundtrip(
        "Grow : A(x) / --> B(A(x), A(x)) / ;\nblock(g, {Grow}, INF) ;",
        "EDS010",
    );
    assert!(fixed.contains("block(g, {Grow}, 100) ;"), "got: {fixed}");
}

#[test]
fn eds011_shadowed_rule_removed_from_the_block() {
    let fixed = roundtrip(
        "General : F(x) / --> x / ;\n\
         Specific : F(G(y)) / --> y / ;\n\
         block(s, {General, Specific}, 5) ;",
        "EDS011",
    );
    assert!(fixed.contains("block(s, {General}, 5) ;"), "got: {fixed}");
}

#[test]
fn eds011_duplicate_listing_deduplicated() {
    let fixed = roundtrip(
        "Once : F(x) / --> x / ;\nblock(b, {Once, Once}, 5) ;",
        "EDS011",
    );
    assert!(fixed.contains("block(b, {Once}, 5) ;"), "got: {fixed}");
}

#[test]
fn eds016_cross_block_cycle_bounded_on_both_sides() {
    let fixed = roundtrip(
        "AtoB : A(x) / --> B(x) / ;\n\
         BtoA : B(x) / --> A(x) / ;\n\
         block(first, {AtoB}, INF) ;\n\
         block(second, {BtoA}, INF) ;\n\
         seq((first, second), 2) ;",
        "EDS016",
    );
    assert!(
        fixed.contains("block(first, {AtoB}, 100) ;")
            && fixed.contains("block(second, {BtoA}, 100) ;"),
        "both blocks must end up bounded: {fixed}"
    );
}

#[test]
fn eds019_unsatisfiable_rule_deleted_outright() {
    let fixed = roundtrip("Dead : F(x, y) / x > 5, x < 3 --> TRUE / ;", "EDS019");
    assert_eq!(fixed.trim(), "", "the dead rule is simply gone: {fixed}");
}

#[test]
fn eds021_redundant_constraint_dropped() {
    let fixed = roundtrip("Redundant : F(x) / x > 5, x > 3 --> x / ;", "EDS021");
    assert!(
        fixed.contains("x > 5") && !fixed.contains("x > 3"),
        "the implied conjunct goes, the tight one stays: {fixed}"
    );
}
