//! Property-style tests for the comparison-constraint algebra behind
//! EDS019/EDS021 and the EDS011 subsumption check: `entails` must be a
//! preorder (reflexive, transitive), `contradicts` must not depend on
//! conjunct order, and both must treat an `Int` bound and the equal
//! `Real` bound identically (the algebra widens both to a shared
//! rational view). NULL never participates in numeric reasoning.
//!
//! Random cases come from a fixed-seed [`StdRng`] so failures replay.

use eds_adt::{OrderedF64, Value};
use eds_rewrite::analyze::{contradicts, entails, tautology};
use eds_rewrite::Term;
use eds_testkit::StdRng;

const OPS: [&str; 6] = ["=", "<>", "<", "<=", ">", ">="];

fn real(r: f64) -> Term {
    Term::Const(Value::Real(OrderedF64(r)))
}

/// Mixed pool of Int and Real bounds sharing several rational values,
/// so widening equalities (2 == 2.0) actually come up.
fn bounds() -> Vec<Term> {
    let mut out: Vec<Term> = (-2..=3).map(Term::int).collect();
    for r in [-2.0, -0.5, 0.0, 0.5, 2.0, 2.5, 3.0] {
        out.push(real(r));
    }
    out
}

fn cmp(op: &str, rhs: Term) -> Term {
    Term::app(op, vec![Term::var("x"), rhs])
}

fn random_cmp(rng: &mut StdRng, pool: &[Term]) -> Term {
    let op = OPS[rng.gen_range(0..OPS.len())];
    let k = pool[rng.gen_range(0..pool.len())].clone();
    cmp(op, k)
}

#[test]
fn entailment_is_reflexive() {
    let pool = bounds();
    for op in OPS {
        for k in &pool {
            let c = cmp(op, k.clone());
            assert!(entails(&[&c], &c), "{c} should entail itself");
        }
    }
}

#[test]
fn entailment_is_transitive() {
    let pool = bounds();
    let mut rng = StdRng::seed_from_u64(0xA1);
    let mut chained = 0;
    for _ in 0..20_000 {
        let a = random_cmp(&mut rng, &pool);
        let b = random_cmp(&mut rng, &pool);
        let c = random_cmp(&mut rng, &pool);
        if entails(&[&a], &b) && entails(&[&b], &c) {
            chained += 1;
            assert!(
                entails(&[&a], &c),
                "entailment broke transitivity: {a} => {b} => {c} but not {a} => {c}"
            );
        }
    }
    // The property must not pass vacuously.
    assert!(chained > 100, "only {chained} transitive chains generated");
}

#[test]
fn entailment_weakening_is_sound_for_contradiction() {
    // If a entails b, then a AND b is exactly as satisfiable as a; since
    // every generated single-variable comparison is satisfiable on its
    // own, the pair must never be flagged contradictory.
    let pool = bounds();
    let mut rng = StdRng::seed_from_u64(0xA2);
    for _ in 0..20_000 {
        let a = random_cmp(&mut rng, &pool);
        let b = random_cmp(&mut rng, &pool);
        if entails(&[&a], &b) {
            assert!(
                !contradicts(&[&a, &b]),
                "{a} entails {b} yet the pair is called contradictory"
            );
        }
    }
}

#[test]
fn contradiction_is_symmetric_and_permutation_invariant() {
    let pool = bounds();
    let mut rng = StdRng::seed_from_u64(0xA3);
    let mut hits = 0;
    for _ in 0..20_000 {
        let a = random_cmp(&mut rng, &pool);
        let b = random_cmp(&mut rng, &pool);
        let c = random_cmp(&mut rng, &pool);
        let fwd = contradicts(&[&a, &b, &c]);
        assert_eq!(
            fwd,
            contradicts(&[&c, &b, &a]),
            "order changed verdict for {a}, {b}, {c}"
        );
        assert_eq!(
            fwd,
            contradicts(&[&b, &c, &a]),
            "rotation changed verdict for {a}, {b}, {c}"
        );
        if fwd {
            hits += 1;
        }
    }
    assert!(hits > 100, "only {hits} contradictory triples generated");
}

#[test]
fn int_and_real_spellings_of_the_same_bound_agree() {
    // 2 and 2.0 are the same rational; every judgment must treat
    // `x op 2` and `x op 2.0` interchangeably, on either side.
    let pool = bounds();
    let mut rng = StdRng::seed_from_u64(0xA4);
    for _ in 0..20_000 {
        let k = rng.gen_range(-2i64..4);
        let op = OPS[rng.gen_range(0..OPS.len())];
        let as_int = cmp(op, Term::int(k));
        let as_real = cmp(op, real(k as f64));
        let other = random_cmp(&mut rng, &pool);
        assert_eq!(
            entails(&[&as_int], &other),
            entails(&[&as_real], &other),
            "premise widening: {as_int} vs {as_real} against {other}"
        );
        assert_eq!(
            entails(&[&other], &as_int),
            entails(&[&other], &as_real),
            "conclusion widening: {as_int} vs {as_real} under {other}"
        );
        assert_eq!(
            contradicts(&[&as_int, &other]),
            contradicts(&[&as_real, &other]),
            "contradiction widening: {as_int} vs {as_real} with {other}"
        );
    }
}

#[test]
fn fractional_bounds_pin_the_rational_not_integer_semantics() {
    // Over the integers x > 2 would imply x >= 2.5-ish bounds; the
    // algebra reasons over rationals, so it must NOT claim that.
    let gt2 = cmp(">", Term::int(2));
    let ge25 = cmp(">=", real(2.5));
    assert!(!entails(&[&gt2], &ge25), "x > 2 must not entail x >= 2.5");
    // The converse containment is real: [2.5, inf) is inside (2, inf).
    assert!(entails(&[&ge25], &gt2), "x >= 2.5 must entail x > 2");
    // Mixed-spelling interval emptiness at a fractional crossover.
    let lt25 = cmp("<", real(2.5));
    let ge3 = cmp(">=", Term::int(3));
    assert!(contradicts(&[&lt25, &ge3]));
    // Closed/closed at the same point keeps the single solution x = 2...
    assert!(!contradicts(&[
        &cmp("<=", Term::int(2)),
        &cmp(">=", real(2.0))
    ]));
    // ...and either strict end empties it.
    assert!(contradicts(&[
        &cmp("<", real(2.0)),
        &cmp(">=", Term::int(2))
    ]));
    assert!(contradicts(&[
        &cmp("<=", Term::int(2)),
        &cmp(">", Term::int(2))
    ]));
}

#[test]
fn null_bounds_stay_outside_interval_reasoning() {
    // Rule-language constraints evaluate 2-valued over structural value
    // equality (not SQL 3VL), so two equalities binding x to different
    // constants — one of them NULL — are a genuine contradiction:
    let null = Term::Const(Value::Null);
    let eq_null = cmp("=", null.clone());
    let ne_null = cmp("<>", null.clone());
    assert!(contradicts(&[&eq_null, &cmp("=", Term::int(-2))]));
    assert!(contradicts(&[&eq_null, &ne_null]));
    // ...but NULL is not a number: it never enters interval reasoning,
    // so ordering/inequality bounds can neither conflict with nor
    // follow from a NULL bound.
    for op in ["<", "<=", ">", ">=", "<>"] {
        for k in bounds() {
            let numeric = cmp(op, k);
            assert!(
                !contradicts(&[&eq_null, &numeric]),
                "x = NULL called contradictory with {numeric}"
            );
            assert!(
                !entails(&[&eq_null], &numeric),
                "x = NULL entailed {numeric}"
            );
            assert!(
                !entails(&[&numeric], &cmp(op, null.clone())),
                "{numeric} entailed a NULL bound"
            );
        }
    }
    // Reflexivity still holds syntactically.
    assert!(entails(&[&eq_null], &eq_null));
    // x = x folds to TRUE, and so does NULL = NULL: rule-language
    // constraints compare values structurally (2-valued), unlike the
    // verify tier's 3VL evaluation where NULL = NULL is UNKNOWN. The
    // algebra must agree with the evaluator it describes, not with SQL.
    let x_eq_x = Term::app("=", vec![Term::var("x"), Term::var("x")]);
    assert!(tautology(&x_eq_x));
    let null_eq_null = Term::app(
        "=",
        vec![Term::Const(Value::Null), Term::Const(Value::Null)],
    );
    assert!(tautology(&null_eq_null));
    assert!(!contradicts(&[&null_eq_null]));
}
