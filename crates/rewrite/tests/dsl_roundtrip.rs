//! Property test: random rules survive `display → parse` unchanged, so
//! the knowledge base can always be exported and re-imported as rule
//! language source.

use eds_rewrite::{parse_source, parse_term, MethodCall, Rule, SourceItem, Term};
use proptest::prelude::*;

fn var_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["x", "y", "z", "f", "g", "a", "b", "quali", "exp'"])
        .prop_map(str::to_owned)
}

fn functor_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["F", "G", "SEARCH", "UNION", "NEST", "MEMBER", "FILM"])
        .prop_map(str::to_owned)
}

fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        var_name().prop_map(Term::var),
        functor_name().prop_map(Term::atom),
        (-99i64..99).prop_map(Term::int),
        prop::sample::select(vec!["a", "it's", "Science Fiction"]).prop_map(Term::str),
        any::<bool>().prop_map(Term::bool),
        (1i64..5, 1i64..5).prop_map(|(r, a)| Term::attr(r, a)),
    ];
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            (functor_name(), prop::collection::vec(inner.clone(), 0..4))
                .prop_map(|(h, args)| Term::app(h, args)),
            // Collections with an optional sequence variable.
            (prop::collection::vec(inner.clone(), 0..3), any::<bool>()).prop_map(
                |(mut items, with_seq)| {
                    if with_seq {
                        items.insert(0, Term::seq("w"));
                    }
                    Term::list(items)
                }
            ),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Term::set),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::app("AND", vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::app("=", vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::app("<=", vec![a, b])),
            inner.clone().prop_map(|a| Term::app("NOT", vec![a])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn term_display_reparses(t in term_strategy()) {
        let rendered = t.to_string();
        let reparsed = parse_term(&rendered)
            .unwrap_or_else(|e| panic!("cannot reparse {rendered}: {e}"));
        prop_assert_eq!(reparsed, t, "{}", rendered);
    }

    #[test]
    fn rule_display_reparses(
        lhs in term_strategy(),
        rhs in term_strategy(),
        constraints in prop::collection::vec(term_strategy(), 0..3),
        with_method in any::<bool>(),
    ) {
        let rule = Rule {
            name: "Prop".into(),
            lhs,
            constraints,
            rhs,
            methods: if with_method {
                vec![MethodCall {
                    name: "EVALUATE".into(),
                    args: vec![Term::var("x"), Term::var("a")],
                }]
            } else {
                vec![]
            },
        };
        let rendered = format!("{rule} ;");
        let items = parse_source(&rendered)
            .unwrap_or_else(|e| panic!("cannot reparse {rendered}: {e}"));
        let SourceItem::Rule(back) = &items[0] else {
            panic!("expected rule back");
        };
        prop_assert_eq!(&back.lhs, &rule.lhs);
        prop_assert_eq!(&back.rhs, &rule.rhs);
        prop_assert_eq!(&back.constraints, &rule.constraints);
        prop_assert_eq!(&back.methods, &rule.methods);
    }
}
