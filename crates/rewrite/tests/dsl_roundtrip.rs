//! Property test: random rules survive `display → parse` unchanged, so
//! the knowledge base can always be exported and re-imported as rule
//! language source. Runs 256 seeded random cases per property.

use eds_rewrite::{parse_source, parse_term, MethodCall, Rule, SourceItem, Term};
use eds_testkit::StdRng;

const CASES: u64 = 256;

const VARS: &[&str] = &["x", "y", "z", "f", "g", "a", "b", "quali", "exp'"];
const FUNCTORS: &[&str] = &["F", "G", "SEARCH", "UNION", "NEST", "MEMBER", "FILM"];
const STRINGS: &[&str] = &["a", "it's", "Science Fiction"];

fn leaf(rng: &mut StdRng) -> Term {
    match rng.gen_range(0u32..6) {
        0 => Term::var(*rng.choose(VARS).unwrap()),
        1 => Term::atom(*rng.choose(FUNCTORS).unwrap()),
        2 => Term::int(rng.gen_range(-99i64..99)),
        3 => Term::str(*rng.choose(STRINGS).unwrap()),
        4 => Term::bool(rng.gen_bool(0.5)),
        _ => Term::attr(rng.gen_range(1i64..5), rng.gen_range(1i64..5)),
    }
}

/// Random term with at most `depth` levels of nesting, mirroring the
/// shapes the display/parse pair must round-trip: applications,
/// LIST (optionally led by a sequence variable), SET, infix booleans
/// and comparisons, and NOT.
fn random_term(rng: &mut StdRng, depth: u32) -> Term {
    if depth == 0 || rng.gen_bool(0.3) {
        return leaf(rng);
    }
    match rng.gen_range(0u32..7) {
        0 => {
            let head = *rng.choose(FUNCTORS).unwrap();
            let n = rng.gen_range(0usize..4);
            Term::app(head, (0..n).map(|_| random_term(rng, depth - 1)).collect())
        }
        1 => {
            let n = rng.gen_range(0usize..3);
            let mut items: Vec<Term> = (0..n).map(|_| random_term(rng, depth - 1)).collect();
            if rng.gen_bool(0.5) {
                items.insert(0, Term::seq("w"));
            }
            Term::list(items)
        }
        2 => {
            let n = rng.gen_range(0usize..3);
            Term::set((0..n).map(|_| random_term(rng, depth - 1)).collect())
        }
        3 => Term::app(
            "AND",
            vec![random_term(rng, depth - 1), random_term(rng, depth - 1)],
        ),
        4 => Term::app(
            "=",
            vec![random_term(rng, depth - 1), random_term(rng, depth - 1)],
        ),
        5 => Term::app(
            "<=",
            vec![random_term(rng, depth - 1), random_term(rng, depth - 1)],
        ),
        _ => Term::app("NOT", vec![random_term(rng, depth - 1)]),
    }
}

#[test]
fn term_display_reparses() {
    let mut rng = StdRng::seed_from_u64(0xD51_0001);
    for _ in 0..CASES {
        let t = random_term(&mut rng, 3);
        let rendered = t.to_string();
        let reparsed =
            parse_term(&rendered).unwrap_or_else(|e| panic!("cannot reparse {rendered}: {e}"));
        assert_eq!(reparsed, t, "{rendered}");
    }
}

#[test]
fn rule_display_reparses() {
    let mut rng = StdRng::seed_from_u64(0xD51_0002);
    for _ in 0..CASES {
        let lhs = random_term(&mut rng, 3);
        let rhs = random_term(&mut rng, 3);
        let n_constraints = rng.gen_range(0usize..3);
        let constraints: Vec<Term> = (0..n_constraints)
            .map(|_| random_term(&mut rng, 3))
            .collect();
        let with_method = rng.gen_bool(0.5);
        let rule = Rule {
            name: "Prop".into(),
            lhs,
            constraints,
            rhs,
            methods: if with_method {
                vec![MethodCall {
                    name: "EVALUATE".into(),
                    args: vec![Term::var("x"), Term::var("a")],
                }]
            } else {
                vec![]
            },
        };
        let rendered = format!("{rule} ;");
        let items =
            parse_source(&rendered).unwrap_or_else(|e| panic!("cannot reparse {rendered}: {e}"));
        let SourceItem::Rule(back) = &items[0] else {
            panic!("expected rule back");
        };
        assert_eq!(&back.lhs, &rule.lhs);
        assert_eq!(&back.rhs, &rule.rhs);
        assert_eq!(&back.constraints, &rule.constraints);
        assert_eq!(&back.methods, &rule.methods);
    }
}
