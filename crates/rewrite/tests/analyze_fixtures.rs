//! Golden-diagnostic fixtures for the static analyzer: deliberately
//! defective rules, each pinning the exact code and severity the
//! analyzer must report (and nothing else it must not).

use eds_rewrite::analyze::{analyze, SchemaProvider};
use eds_rewrite::methods::MethodSig;
use eds_rewrite::{parse_source, Diagnostic, MethodRegistry, RuleSet, Severity, SourceItem};

/// Toy catalog: EMP(3 attributes) and DEPT(2) exist, nothing else.
struct ToySchema;

impl SchemaProvider for ToySchema {
    fn relation_arity(&self, name: &str) -> Option<usize> {
        match name {
            "EMP" => Some(3),
            "DEPT" => Some(2),
            _ => None,
        }
    }
}

/// Load source and analyze it with the built-in + core-style registry.
fn lint(src: &str) -> Vec<Diagnostic> {
    let mut rules = RuleSet::new();
    let mut strategy = eds_rewrite::Strategy::new();
    for item in parse_source(src).expect("fixture must parse") {
        match item {
            SourceItem::Rule(r) => {
                rules.add(r);
            }
            SourceItem::Block(b) => strategy.add_block(b),
            SourceItem::Seq(s) => strategy.set_sequence(s),
        }
    }
    let mut methods = MethodRegistry::with_builtins();
    // A two-input, one-output method with a declared signature, so the
    // fixtures can probe arity and output-position checks.
    methods.register_with_sig(
        "DERIVE",
        MethodSig {
            arity: 3,
            outputs: &[2],
        },
        |_, _, _| Ok(false),
    );
    analyze(&rules, &strategy, &methods, Some(&ToySchema))
}

/// Assert the fixture produces exactly the expected (code, severity)
/// multiset, in order.
fn expect(src: &str, expected: &[(&str, Severity)]) {
    let got = lint(src);
    let shape: Vec<(&str, Severity)> = got.iter().map(|d| (d.code, d.severity)).collect();
    assert_eq!(shape, expected, "diagnostics were: {got:#?}");
}

#[test]
fn eds001_unbound_rhs_variable() {
    expect(
        "R : F(x) / --> G(x, ghost) / ;",
        &[("EDS001", Severity::Error)],
    );
}

#[test]
fn eds002_unbound_constraint_variable() {
    expect(
        "R : F(x) / ghost = 1 --> x / ;",
        &[("EDS002", Severity::Error)],
    );
}

#[test]
fn eds002_unbound_method_input() {
    expect(
        "R : F(x) / --> out / DERIVE(x, ghost, out) ;",
        &[("EDS002", Severity::Error)],
    );
}

#[test]
fn eds003_unknown_method() {
    expect(
        "R : F(x) / --> G(y) / CONJURE(x, y) ;",
        &[("EDS003", Severity::Error)],
    );
}

#[test]
fn eds004_method_arity_mismatch() {
    expect(
        "R : F(x) / --> G(y) / DERIVE(x, x, y, y) ;",
        &[("EDS004", Severity::Error)],
    );
}

#[test]
fn eds005_method_output_not_bindable() {
    // The output position holds a non-ground application: neither a
    // variable to bind nor a constant to compare against.
    expect(
        "R : F(x) / --> TRUE / DERIVE(x, x, H(y)) ;",
        &[("EDS005", Severity::Error)],
    );
}

#[test]
fn eds005_ground_output_is_a_check_not_an_error() {
    expect("R : F(x) / --> TRUE / DERIVE(x, x, 7) ;", &[]);
}

#[test]
fn eds006_adjacent_segment_variables_in_list() {
    expect(
        "R : F(LIST(x*, y*)) / --> COUNT(LIST(x*)) / ;",
        &[("EDS006", Severity::Warning)],
    );
}

#[test]
fn eds006_multiple_segment_variables_in_set() {
    expect(
        "R : F(SET(x*, A, y*)) / --> F(SET(x*, y*)) / ;",
        &[("EDS006", Severity::Warning), ("EDS006", Severity::Warning)],
    );
}

#[test]
fn eds007_segment_variable_under_plain_functor() {
    expect(
        "R : F(G(x*)) / --> TRUE / ;",
        &[("EDS007", Severity::Error)],
    );
}

#[test]
fn eds007_applies_to_lhs_only() {
    // RHS splicing under a plain functor is legitimate (APPEND-style
    // construction); constraints resolve bare segment variables to
    // lists. Neither may fire EDS007.
    expect("R : F(LIST(x*)) / ISEMPTY(x*) --> G(x*) / ;", &[]);
}

#[test]
fn eds009_unresolved_block_and_sequence_references() {
    expect(
        "Known : F(x) / --> x / ;\n\
         block(b, {Known, Missing}, 5) ;\n\
         seq((b, ghostblock), 1) ;",
        &[("EDS009", Severity::Warning), ("EDS009", Severity::Warning)],
    );
}

#[test]
fn eds010_growing_rule_in_unbounded_block() {
    expect(
        "Grow : A(x) / --> B(A(x), A(x)) / ;\n\
         block(g, {Grow}, INF) ;",
        &[("EDS010", Severity::Warning)],
    );
}

#[test]
fn eds010_not_reported_under_finite_limit() {
    expect(
        "Grow : A(x) / --> B(A(x), A(x)) / ;\n\
         block(g, {Grow}, 50) ;",
        &[],
    );
}

#[test]
fn eds011_lhs_subsumed_by_earlier_unconditional_rule() {
    expect(
        "General : F(x) / --> x / ;\n\
         Specific : F(G(y)) / --> y / ;\n\
         block(s, {General, Specific}, 5) ;",
        &[("EDS011", Severity::Warning)],
    );
}

#[test]
fn eds011_conditional_earlier_rule_does_not_subsume() {
    expect(
        "General : F(x) / ISA(x, constant) --> x / ;\n\
         Specific : F(G(y)) / --> y / ;\n\
         block(s, {General, Specific}, 5) ;",
        &[],
    );
}

#[test]
fn eds011_rule_listed_twice_in_one_block() {
    expect(
        "Once : F(x) / --> x / ;\n\
         block(b, {Once, Once}, 5) ;",
        &[("EDS011", Severity::Warning)],
    );
}

#[test]
fn eds012_self_feeding_pair_in_unbounded_block() {
    expect(
        "AtoB : A(x) / --> B(x) / ;\n\
         BtoA : B(x) / --> A(x) / ;\n\
         block(cycle, {AtoB, BtoA}, INF) ;",
        &[("EDS012", Severity::Warning)],
    );
}

#[test]
fn eds013_operator_arity_mismatch() {
    expect(
        "Bad : FILTER(r) / --> r / ;",
        &[("EDS013", Severity::Error)],
    );
}

#[test]
fn eds013_spliced_arguments_are_exempt() {
    expect("Ok : UNION(SET(args*)) / --> UNION(SET(args*)) / ;", &[]);
}

#[test]
fn eds014_unknown_relation_in_operator_position() {
    // Only the operator input position reports: the bare RHS atom is
    // not a relation reference.
    expect(
        "Bad : FILTER(GHOSTREL, f) / --> GHOSTREL / ;",
        &[("EDS014", Severity::Warning)],
    );
}

#[test]
fn eds014_known_relation_is_clean() {
    expect("Ok : FILTER(EMP, f) / --> EMP / ;", &[]);
}

#[test]
fn eds015_attribute_reference_out_of_range() {
    // EMP has 3 attributes; 1.9 addresses the ninth. 2.1 addresses a
    // second input that does not exist.
    expect(
        "Bad : SEARCH(LIST(EMP), 1.9 = 2.1, LIST(1.1)) / --> TRUE / ;",
        &[("EDS015", Severity::Warning), ("EDS015", Severity::Warning)],
    );
}

#[test]
fn eds015_in_range_references_are_clean() {
    expect(
        "Ok : SEARCH(LIST(EMP, DEPT), 1.3 = 2.2, LIST(1.1)) / --> TRUE / ;",
        &[],
    );
}

// ---------------------------------------------- whole-strategy checks

/// The canonical cross-block ping-pong: each half of the A<->B cycle
/// lives in its own unbounded block, so the per-block EDS012 check finds
/// nothing, while the functor-flow graph over the whole sequence does.
const PING_PONG_SPLIT: &str = "AtoB : A(x) / --> B(x) / ;\n\
     BtoA : B(x) / --> A(x) / ;\n\
     block(first, {AtoB}, INF) ;\n\
     block(second, {BtoA}, INF) ;\n\
     seq((first, second), 2) ;";

#[test]
fn eds016_cross_block_cycle_over_two_unbounded_blocks() {
    expect(
        PING_PONG_SPLIT,
        &[("EDS016", Severity::Warning), ("EDS016", Severity::Warning)],
    );
}

#[test]
fn eds016_catches_the_split_cycle_eds012_cannot_see() {
    // Same two rules. Merged into one block: EDS012 territory, EDS016
    // silent. Split across blocks: EDS012 structurally blind, EDS016
    // fires. The two checks partition the cycle space between them.
    let merged = "AtoB : A(x) / --> B(x) / ;\n\
         BtoA : B(x) / --> A(x) / ;\n\
         block(both, {AtoB, BtoA}, INF) ;\n\
         seq((both), 2) ;";
    let merged_codes: Vec<&str> = lint(merged).iter().map(|d| d.code).collect();
    assert!(merged_codes.contains(&"EDS012") && !merged_codes.contains(&"EDS016"));
    let split_codes: Vec<&str> = lint(PING_PONG_SPLIT).iter().map(|d| d.code).collect();
    assert!(split_codes.contains(&"EDS016") && !split_codes.contains(&"EDS012"));
}

#[test]
fn eds016_deduplicates_when_both_blocks_hold_the_whole_cycle() {
    // Both halves of the cycle sit in BOTH unbounded blocks, so the
    // flow check emits one finding per (rule, block) — four raw
    // diagnostics that differ only in the block that surfaced them.
    // finalize() collapses those to one per rule: the message already
    // names every block on the cycle, so the per-block copies carry no
    // extra information.
    let src = "AtoB : A(x) / --> B(x) / ;\n\
         BtoA : B(x) / --> A(x) / ;\n\
         block(b1, {AtoB, BtoA}, INF) ;\n\
         block(b2, {AtoB, BtoA}, INF) ;\n\
         seq((b1, b2), 2) ;";
    let got = lint(src);
    let eds016: Vec<&Diagnostic> = got.iter().filter(|d| d.code == "EDS016").collect();
    let mut rules: Vec<Option<&str>> = eds016.iter().map(|d| d.rule.as_deref()).collect();
    rules.sort_unstable();
    assert_eq!(
        rules,
        [Some("AtoB"), Some("BtoA")],
        "diagnostics were: {got:#?}"
    );
    // The invariant behind the dedup: no two findings agree on
    // everything but the block.
    for (i, a) in got.iter().enumerate() {
        for b in &got[i + 1..] {
            assert!(
                (a.code, &a.rule, &a.part, &a.path, &a.message)
                    != (b.code, &b.rule, &b.part, &b.path, &b.message),
                "duplicate finding differing only in block: {a:#?} vs {b:#?}"
            );
        }
    }
}

#[test]
fn eds016_not_reported_when_one_block_is_bounded() {
    expect(
        "AtoB : A(x) / --> B(x) / ;\n\
         BtoA : B(x) / --> A(x) / ;\n\
         block(first, {AtoB}, INF) ;\n\
         block(second, {BtoA}, 50) ;\n\
         seq((first, second), 2) ;",
        &[],
    );
}

#[test]
fn eds016_not_reported_for_a_single_pass() {
    // One pass cannot ping-pong: the sequence never returns to the first
    // block. What remains is the tail block saturating on a functor no
    // later position consumes — EDS017's finding, not EDS016's.
    expect(
        "AtoB : A(x) / --> B(x) / ;\n\
         BtoA : B(x) / --> A(x) / ;\n\
         block(first, {AtoB}, INF) ;\n\
         block(second, {BtoA}, INF) ;\n\
         seq((first, second), 1) ;",
        &[("EDS017", Severity::Warning)],
    );
}

#[test]
fn eds017_saturating_block_whose_output_nothing_consumes() {
    expect(
        "Produce : A(x) / --> ORPHAN(x) / ;\n\
         Consume : B(G(x)) / --> x / ;\n\
         block(p, {Produce}, INF) ;\n\
         block(c, {Consume}, INF) ;\n\
         seq((p, c), 1) ;",
        &[("EDS017", Severity::Warning)],
    );
}

#[test]
fn eds017_not_reported_when_a_later_block_matches_the_output() {
    expect(
        "Produce : A(x) / --> ORPHAN(x) / ;\n\
         Consume : ORPHAN(x) / --> x / ;\n\
         block(p, {Produce}, INF) ;\n\
         block(c, {Consume}, INF) ;\n\
         seq((p, c), 1) ;",
        &[],
    );
}

#[test]
fn eds018_root_overlap_with_divergent_reducts() {
    // F(B, A) rewrites to B under First and to A under Second; neither
    // reduct rewrites further, so the result is rule-order-dependent.
    expect(
        "First : F(x, A) / --> x / ;\n\
         Second : F(B, y) / --> y / ;\n\
         block(amb, {First, Second}, INF) ;",
        &[("EDS018", Severity::Warning)],
    );
}

#[test]
fn eds018_subterm_overlap_with_divergent_reducts() {
    // The peak F(G(x)) reduces to F(x) via Inner inside, to x via Outer
    // at the root, and the two never meet.
    expect(
        "Inner : G(y) / --> y / ;\n\
         Outer : F(G(x)) / --> x / ;\n\
         block(o, {Inner, Outer}, INF) ;",
        &[("EDS018", Severity::Warning)],
    );
}

#[test]
fn eds018_not_reported_when_reducts_are_equal() {
    // Both rules send the peak AND2(T, T) to T.
    expect(
        "AT : AND2(f, T) / --> f / ;\n\
         BT : AND2(T, f) / --> f / ;\n\
         block(j, {AT, BT}, INF) ;",
        &[],
    );
}

#[test]
fn eds018_not_reported_when_reducts_join_after_normalization() {
    // The Drop-inside-Wrap peak N(C(f, T)) yields N(f) inside and
    // D(f, T) outside; only the SinkD cleanup step joins them, so the
    // joinability oracle must normalize with the whole rule base.
    expect(
        "Wrap : N(C(f, g)) / --> D(f, g) / ;\n\
         Drop : C(f, T) / --> f / ;\n\
         SimpT : N(T) / --> T / ;\n\
         SinkD : D(f, T) / --> N(f) / ;\n\
         block(n, {Wrap, Drop, SimpT, SinkD}, INF) ;",
        &[],
    );
}

#[test]
fn eds019_numerically_contradictory_constraints() {
    expect(
        "Dead : F(x, y) / x > 5, x < 3 --> TRUE / ;",
        &[("EDS019", Severity::Error)],
    );
}

#[test]
fn eds019_conflicting_equalities() {
    expect(
        "DeadEq : F(x) / x = 1, x = 2 --> x / ;",
        &[("EDS019", Severity::Error)],
    );
}

#[test]
fn eds019_symbolically_contradictory_pair() {
    expect(
        "Dead2 : F(x, y) / x < y, y < x --> TRUE / ;",
        &[("EDS019", Severity::Error)],
    );
}

#[test]
fn eds019_satisfiable_interval_is_clean() {
    expect("Live : F(x) / x > 3, x < 5 --> x / ;", &[]);
}

#[test]
fn eds020_rule_in_no_block() {
    expect(
        "Used : F(x) / --> x / ;\n\
         Orphan : G(x) / --> x / ;\n\
         block(b, {Used}, 5) ;",
        &[("EDS020", Severity::Warning)],
    );
}

#[test]
fn eds020_silent_when_no_blocks_exist_at_all() {
    // A bare rule file (no strategy yet) is a legitimate intermediate
    // state; every rule being blockless is not worth a warning storm.
    expect("Loose : F(x) / --> x / ;", &[]);
}

#[test]
fn eds021_constraint_implied_by_an_earlier_one() {
    expect(
        "Redundant : F(x) / x > 5, x > 3 --> x / ;",
        &[("EDS021", Severity::Warning)],
    );
}

#[test]
fn eds021_tautological_constraint() {
    expect(
        "Taut : F(x) / x = x --> x / ;",
        &[("EDS021", Severity::Warning)],
    );
}

#[test]
fn eds021_strictly_tightening_constraints_are_clean() {
    expect("Tight : F(x) / x > 3, x > 5 --> x / ;", &[]);
}

#[test]
fn eds011_constraint_aware_subsumption() {
    // General's guard x > 0 is provably weaker than Specific's z > 5
    // under the match x |-> z, so Specific can never fire.
    expect(
        "General : F(x) / x > 0 --> TRUE / ;\n\
         Specific : F(z) / z > 5 --> FALSE / ;\n\
         block(s, {General, Specific}, 5) ;",
        &[("EDS011", Severity::Warning)],
    );
}

#[test]
fn eds011_stronger_earlier_constraint_does_not_subsume() {
    // Here the earlier rule's guard x > 5 is *stronger* than z > 0:
    // terms with 0 < z <= 5 still reach Specific.
    expect(
        "General : F(x) / x > 5 --> TRUE / ;\n\
         Specific : F(z) / z > 0 --> FALSE / ;\n\
         block(s, {General, Specific}, 5) ;",
        &[],
    );
}

#[test]
fn fixtures_cover_at_least_ten_distinct_codes() {
    // The registration path pins EDS008 separately (core crate); the
    // fixtures above must cover at least ten distinct codes by
    // themselves.
    let sources = [
        "R : F(x) / --> G(x, ghost) / ;",
        "R : F(x) / ghost = 1 --> x / ;",
        "R : F(x) / --> G(y) / CONJURE(x, y) ;",
        "R : F(x) / --> G(y) / DERIVE(x, x, y, y) ;",
        "R : F(x) / --> TRUE / DERIVE(x, x, H(y)) ;",
        "R : F(LIST(x*, y*)) / --> COUNT(LIST(x*)) / ;",
        "R : F(G(x*)) / --> TRUE / ;",
        "Known : F(x) / --> x / ;\nblock(b, {Missing}, 5) ;",
        "Grow : A(x) / --> B(A(x), A(x)) / ;\nblock(g, {Grow}, INF) ;",
        "General : F(x) / --> x / ;\nSpecific : F(G(y)) / --> y / ;\n\
         block(s, {General, Specific}, 5) ;",
        "AtoB : A(x) / --> B(x) / ;\nBtoA : B(x) / --> A(x) / ;\n\
         block(cycle, {AtoB, BtoA}, INF) ;",
        "Bad : FILTER(r) / --> r / ;",
        "Bad : FILTER(GHOSTREL, f) / --> GHOSTREL / ;",
        "Bad : SEARCH(LIST(EMP), 1.9 = 2.1, LIST(1.1)) / --> TRUE / ;",
        PING_PONG_SPLIT,
        "Produce : A(x) / --> ORPHAN(x) / ;\nblock(p, {Produce}, INF) ;\n\
         seq((p), 1) ;",
        "First : F(x, A) / --> x / ;\nSecond : F(B, y) / --> y / ;\n\
         block(amb, {First, Second}, INF) ;",
        "Dead : F(x, y) / x > 5, x < 3 --> TRUE / ;",
        "Used : F(x) / --> x / ;\nOrphan : G(x) / --> x / ;\n\
         block(b, {Used}, 5) ;",
        "Taut : F(x) / x = x --> x / ;",
    ];
    let mut codes: Vec<&str> = sources
        .iter()
        .flat_map(|s| lint(s))
        .map(|d| d.code)
        .collect();
    codes.sort_unstable();
    codes.dedup();
    assert!(
        codes.len() >= 16,
        "only {} distinct codes covered: {codes:?}",
        codes.len()
    );
}
