//! Golden-diagnostic fixtures for the static analyzer: deliberately
//! defective rules, each pinning the exact code and severity the
//! analyzer must report (and nothing else it must not).

use eds_rewrite::analyze::{analyze, SchemaProvider};
use eds_rewrite::methods::MethodSig;
use eds_rewrite::{parse_source, Diagnostic, MethodRegistry, RuleSet, Severity, SourceItem};

/// Toy catalog: EMP(3 attributes) and DEPT(2) exist, nothing else.
struct ToySchema;

impl SchemaProvider for ToySchema {
    fn relation_arity(&self, name: &str) -> Option<usize> {
        match name {
            "EMP" => Some(3),
            "DEPT" => Some(2),
            _ => None,
        }
    }
}

/// Load source and analyze it with the built-in + core-style registry.
fn lint(src: &str) -> Vec<Diagnostic> {
    let mut rules = RuleSet::new();
    let mut strategy = eds_rewrite::Strategy::new();
    for item in parse_source(src).expect("fixture must parse") {
        match item {
            SourceItem::Rule(r) => {
                rules.add(r);
            }
            SourceItem::Block(b) => strategy.add_block(b),
            SourceItem::Seq(s) => strategy.set_sequence(s),
        }
    }
    let mut methods = MethodRegistry::with_builtins();
    // A two-input, one-output method with a declared signature, so the
    // fixtures can probe arity and output-position checks.
    methods.register_with_sig(
        "DERIVE",
        MethodSig {
            arity: 3,
            outputs: &[2],
        },
        |_, _, _| Ok(false),
    );
    analyze(&rules, &strategy, &methods, Some(&ToySchema))
}

/// Assert the fixture produces exactly the expected (code, severity)
/// multiset, in order.
fn expect(src: &str, expected: &[(&str, Severity)]) {
    let got = lint(src);
    let shape: Vec<(&str, Severity)> = got.iter().map(|d| (d.code, d.severity)).collect();
    assert_eq!(shape, expected, "diagnostics were: {got:#?}");
}

#[test]
fn eds001_unbound_rhs_variable() {
    expect(
        "R : F(x) / --> G(x, ghost) / ;",
        &[("EDS001", Severity::Error)],
    );
}

#[test]
fn eds002_unbound_constraint_variable() {
    expect(
        "R : F(x) / ghost = 1 --> x / ;",
        &[("EDS002", Severity::Error)],
    );
}

#[test]
fn eds002_unbound_method_input() {
    expect(
        "R : F(x) / --> out / DERIVE(x, ghost, out) ;",
        &[("EDS002", Severity::Error)],
    );
}

#[test]
fn eds003_unknown_method() {
    expect(
        "R : F(x) / --> G(y) / CONJURE(x, y) ;",
        &[("EDS003", Severity::Error)],
    );
}

#[test]
fn eds004_method_arity_mismatch() {
    expect(
        "R : F(x) / --> G(y) / DERIVE(x, x, y, y) ;",
        &[("EDS004", Severity::Error)],
    );
}

#[test]
fn eds005_method_output_not_bindable() {
    // The output position holds a non-ground application: neither a
    // variable to bind nor a constant to compare against.
    expect(
        "R : F(x) / --> TRUE / DERIVE(x, x, H(y)) ;",
        &[("EDS005", Severity::Error)],
    );
}

#[test]
fn eds005_ground_output_is_a_check_not_an_error() {
    expect("R : F(x) / --> TRUE / DERIVE(x, x, 7) ;", &[]);
}

#[test]
fn eds006_adjacent_segment_variables_in_list() {
    expect(
        "R : F(LIST(x*, y*)) / --> COUNT(LIST(x*)) / ;",
        &[("EDS006", Severity::Warning)],
    );
}

#[test]
fn eds006_multiple_segment_variables_in_set() {
    expect(
        "R : F(SET(x*, A, y*)) / --> F(SET(x*, y*)) / ;",
        &[("EDS006", Severity::Warning), ("EDS006", Severity::Warning)],
    );
}

#[test]
fn eds007_segment_variable_under_plain_functor() {
    expect(
        "R : F(G(x*)) / --> TRUE / ;",
        &[("EDS007", Severity::Error)],
    );
}

#[test]
fn eds007_applies_to_lhs_only() {
    // RHS splicing under a plain functor is legitimate (APPEND-style
    // construction); constraints resolve bare segment variables to
    // lists. Neither may fire EDS007.
    expect("R : F(LIST(x*)) / ISEMPTY(x*) --> G(x*) / ;", &[]);
}

#[test]
fn eds009_unresolved_block_and_sequence_references() {
    expect(
        "Known : F(x) / --> x / ;\n\
         block(b, {Known, Missing}, 5) ;\n\
         seq((b, ghostblock), 1) ;",
        &[("EDS009", Severity::Warning), ("EDS009", Severity::Warning)],
    );
}

#[test]
fn eds010_growing_rule_in_unbounded_block() {
    expect(
        "Grow : A(x) / --> B(A(x), A(x)) / ;\n\
         block(g, {Grow}, INF) ;",
        &[("EDS010", Severity::Warning)],
    );
}

#[test]
fn eds010_not_reported_under_finite_limit() {
    expect(
        "Grow : A(x) / --> B(A(x), A(x)) / ;\n\
         block(g, {Grow}, 50) ;",
        &[],
    );
}

#[test]
fn eds011_lhs_subsumed_by_earlier_unconditional_rule() {
    expect(
        "General : F(x) / --> x / ;\n\
         Specific : F(G(y)) / --> y / ;\n\
         block(s, {General, Specific}, 5) ;",
        &[("EDS011", Severity::Warning)],
    );
}

#[test]
fn eds011_conditional_earlier_rule_does_not_subsume() {
    expect(
        "General : F(x) / ISA(x, constant) --> x / ;\n\
         Specific : F(G(y)) / --> y / ;\n\
         block(s, {General, Specific}, 5) ;",
        &[],
    );
}

#[test]
fn eds011_rule_listed_twice_in_one_block() {
    expect(
        "Once : F(x) / --> x / ;\n\
         block(b, {Once, Once}, 5) ;",
        &[("EDS011", Severity::Warning)],
    );
}

#[test]
fn eds012_self_feeding_pair_in_unbounded_block() {
    expect(
        "AtoB : A(x) / --> B(x) / ;\n\
         BtoA : B(x) / --> A(x) / ;\n\
         block(cycle, {AtoB, BtoA}, INF) ;",
        &[("EDS012", Severity::Warning)],
    );
}

#[test]
fn eds013_operator_arity_mismatch() {
    expect(
        "Bad : FILTER(r) / --> r / ;",
        &[("EDS013", Severity::Error)],
    );
}

#[test]
fn eds013_spliced_arguments_are_exempt() {
    expect("Ok : UNION(SET(args*)) / --> UNION(SET(args*)) / ;", &[]);
}

#[test]
fn eds014_unknown_relation_in_operator_position() {
    // Only the operator input position reports: the bare RHS atom is
    // not a relation reference.
    expect(
        "Bad : FILTER(GHOSTREL, f) / --> GHOSTREL / ;",
        &[("EDS014", Severity::Warning)],
    );
}

#[test]
fn eds014_known_relation_is_clean() {
    expect("Ok : FILTER(EMP, f) / --> EMP / ;", &[]);
}

#[test]
fn eds015_attribute_reference_out_of_range() {
    // EMP has 3 attributes; 1.9 addresses the ninth. 2.1 addresses a
    // second input that does not exist.
    expect(
        "Bad : SEARCH(LIST(EMP), 1.9 = 2.1, LIST(1.1)) / --> TRUE / ;",
        &[("EDS015", Severity::Warning), ("EDS015", Severity::Warning)],
    );
}

#[test]
fn eds015_in_range_references_are_clean() {
    expect(
        "Ok : SEARCH(LIST(EMP, DEPT), 1.3 = 2.2, LIST(1.1)) / --> TRUE / ;",
        &[],
    );
}

#[test]
fn fixtures_cover_at_least_ten_distinct_codes() {
    // The registration path pins EDS008 separately (core crate); the
    // fixtures above must cover at least ten distinct codes by
    // themselves.
    let sources = [
        "R : F(x) / --> G(x, ghost) / ;",
        "R : F(x) / ghost = 1 --> x / ;",
        "R : F(x) / --> G(y) / CONJURE(x, y) ;",
        "R : F(x) / --> G(y) / DERIVE(x, x, y, y) ;",
        "R : F(x) / --> TRUE / DERIVE(x, x, H(y)) ;",
        "R : F(LIST(x*, y*)) / --> COUNT(LIST(x*)) / ;",
        "R : F(G(x*)) / --> TRUE / ;",
        "Known : F(x) / --> x / ;\nblock(b, {Missing}, 5) ;",
        "Grow : A(x) / --> B(A(x), A(x)) / ;\nblock(g, {Grow}, INF) ;",
        "General : F(x) / --> x / ;\nSpecific : F(G(y)) / --> y / ;\n\
         block(s, {General, Specific}, 5) ;",
        "AtoB : A(x) / --> B(x) / ;\nBtoA : B(x) / --> A(x) / ;\n\
         block(cycle, {AtoB, BtoA}, INF) ;",
        "Bad : FILTER(r) / --> r / ;",
        "Bad : FILTER(GHOSTREL, f) / --> GHOSTREL / ;",
        "Bad : SEARCH(LIST(EMP), 1.9 = 2.1, LIST(1.1)) / --> TRUE / ;",
    ];
    let mut codes: Vec<&str> = sources
        .iter()
        .flat_map(|s| lint(s))
        .map(|d| d.code)
        .collect();
    codes.sort_unstable();
    codes.dedup();
    assert!(
        codes.len() >= 10,
        "only {} distinct codes covered: {codes:?}",
        codes.len()
    );
}
