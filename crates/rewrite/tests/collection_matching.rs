//! Edge cases for collection-variable (`x*`) matching: empty segments,
//! multiple sequence variables per collection, and commutative `SET`/`BAG`
//! matching — the corners of the Section-4.1 matcher that ordinary rule
//! suites rarely exercise.

use eds_rewrite::{all_matches, find_match, parse_term, Term};

fn t(src: &str) -> Term {
    parse_term(src).unwrap()
}

fn seq_of(binds: &eds_rewrite::Bindings, name: &str) -> Vec<String> {
    binds
        .get_seq(name)
        .unwrap_or_else(|| panic!("{name}* unbound"))
        .iter()
        .map(ToString::to_string)
        .collect()
}

// ---------------------------------------------------------------- empty

#[test]
fn seqvar_matches_empty_list() {
    let b = find_match(&t("F(LIST(x*))"), &t("F(LIST())")).expect("must match");
    assert_eq!(seq_of(&b, "x"), Vec::<String>::new());
}

#[test]
fn seqvar_matches_empty_set_and_bag() {
    let b = find_match(&t("F(SET(x*))"), &t("F(SET())")).expect("SET must match");
    assert_eq!(seq_of(&b, "x"), Vec::<String>::new());
    let b = find_match(&t("F(BAG(x*))"), &t("F(BAG())")).expect("BAG must match");
    assert_eq!(seq_of(&b, "x"), Vec::<String>::new());
}

#[test]
fn leading_and_trailing_seqvars_can_be_empty() {
    // x* and z* flank a single fixed element: both must bind empty.
    let b = find_match(&t("F(LIST(x*, A, z*))"), &t("F(LIST(A))")).expect("must match");
    assert_eq!(seq_of(&b, "x"), Vec::<String>::new());
    assert_eq!(seq_of(&b, "z"), Vec::<String>::new());
}

#[test]
fn empty_segment_between_fixed_elements() {
    // y* sits between A and B which are adjacent in the subject.
    let b = find_match(&t("F(LIST(A, y*, B))"), &t("F(LIST(A, B))")).expect("must match");
    assert_eq!(seq_of(&b, "y"), Vec::<String>::new());
    // ...and absorbs the middle when there is one.
    let b = find_match(&t("F(LIST(A, y*, B))"), &t("F(LIST(A, C, D, B))")).expect("must match");
    assert_eq!(seq_of(&b, "y"), vec!["C", "D"]);
}

#[test]
fn set_seqvar_can_be_empty_next_to_element_pattern() {
    // SET(x*, G(y)) against a one-element set: x* must bind empty.
    let b = find_match(&t("F(SET(x*, G(A)))"), &t("F(SET(G(A)))")).expect("must match");
    assert_eq!(seq_of(&b, "x"), Vec::<String>::new());
    assert_eq!(b.get("y"), None); // y was a literal A inside the pattern
}

// ------------------------------------------------- two seqvars per LIST

#[test]
fn two_seqvars_enumerate_every_split_in_order() {
    // x*, y* over a 3-element list: 4 splits, enumerated leftmost-first
    // (x takes as little as possible first — the matcher's documented
    // enumeration order, which rules rely on for determinism).
    let matches = all_matches(&t("F(LIST(x*, y*))"), &t("F(LIST(A, B, C))"));
    let splits: Vec<(Vec<String>, Vec<String>)> = matches
        .iter()
        .map(|b| (seq_of(b, "x"), seq_of(b, "y")))
        .collect();
    let s = |v: &[&str]| v.iter().map(ToString::to_string).collect::<Vec<_>>();
    assert_eq!(
        splits,
        vec![
            (s(&[]), s(&["A", "B", "C"])),
            (s(&["A"]), s(&["B", "C"])),
            (s(&["A", "B"]), s(&["C"])),
            (s(&["A", "B", "C"]), s(&[])),
        ]
    );
}

#[test]
fn two_seqvars_around_pivot_element() {
    // The pivot B can appear at several positions; every occurrence
    // yields one split.
    let matches = all_matches(&t("F(LIST(x*, B, y*))"), &t("F(LIST(B, A, B))"));
    let splits: Vec<(Vec<String>, Vec<String>)> = matches
        .iter()
        .map(|b| (seq_of(b, "x"), seq_of(b, "y")))
        .collect();
    let s = |v: &[&str]| v.iter().map(ToString::to_string).collect::<Vec<_>>();
    assert_eq!(
        splits,
        vec![(s(&[]), s(&["A", "B"])), (s(&["B", "A"]), s(&[])),]
    );
}

#[test]
fn repeated_seqvar_in_one_list_must_repeat_segment() {
    // LIST(x*, x*) — the same collection variable twice must bind the
    // same segment: only even-length subjects with equal halves match.
    assert!(find_match(&t("F(LIST(x*, x*))"), &t("F(LIST(A, B, A, B))")).is_some());
    assert!(find_match(&t("F(LIST(x*, x*))"), &t("F(LIST(A, B, B, A))")).is_none());
    assert!(find_match(&t("F(LIST(x*, x*))"), &t("F(LIST(A, B, A))")).is_none());
    let b = find_match(&t("F(LIST(x*, x*))"), &t("F(LIST(A, A))")).unwrap();
    assert_eq!(seq_of(&b, "x"), vec!["A"]);
}

#[test]
fn seqvar_shared_across_two_lists_must_agree() {
    let pat = t("PAIR(LIST(x*), LIST(x*))");
    assert!(find_match(&pat, &t("PAIR(LIST(A, B), LIST(A, B))")).is_some());
    assert!(find_match(&pat, &t("PAIR(LIST(A, B), LIST(B, A))")).is_none());
}

// ------------------------------------------------ SET/BAG commutativity

#[test]
fn set_matching_ignores_subject_order() {
    // G(y, f) must be found wherever it sits in the set.
    let pat = t("F(SET(x*, G(y, f)))");
    for subject in [
        "F(SET(G(B, TRUE), A, C))",
        "F(SET(A, G(B, TRUE), C))",
        "F(SET(A, C, G(B, TRUE)))",
    ] {
        let b = find_match(&pat, &t(subject)).unwrap_or_else(|| panic!("no match in {subject}"));
        assert_eq!(b.get("y").unwrap().to_string(), "B");
        // Rest segment is canonically ordered regardless of source order.
        assert_eq!(seq_of(&b, "x"), vec!["A", "C"]);
    }
}

#[test]
fn bag_matching_is_commutative_and_keeps_duplicates() {
    let pat = t("F(BAG(x*, G(y)))");
    let b = find_match(&pat, &t("F(BAG(A, G(B), A))")).expect("must match");
    assert_eq!(b.get("y").unwrap().to_string(), "B");
    // Both copies of A survive into the rest segment.
    let mut rest = seq_of(&b, "x");
    rest.sort();
    assert_eq!(rest, vec!["A", "A"]);
}

#[test]
fn set_duplicate_pattern_elements_need_distinct_subject_elements() {
    // SET(G(a), G(b)) consumes two distinct occurrences, so a 1-element
    // subject cannot satisfy it even though both pattern elements unify
    // with the single G(..).
    let pat = t("F(SET(G(a), G(b)))");
    assert!(find_match(&pat, &t("F(SET(G(A)))")).is_none());
    let b = find_match(&pat, &t("F(SET(G(A), G(B)))")).expect("must match");
    let mut pair = vec![
        b.get("a").unwrap().to_string(),
        b.get("b").unwrap().to_string(),
    ];
    pair.sort();
    assert_eq!(pair, vec!["A", "B"]);
}

#[test]
fn two_seqvars_in_set_enumerate_complementary_partitions() {
    // Every match partitions the set into two segments; together they
    // must always cover the whole subject.
    let matches = all_matches(&t("F(SET(x*, y*))"), &t("F(SET(A, B, C))"));
    assert!(!matches.is_empty());
    for b in &matches {
        let mut all: Vec<String> = seq_of(b, "x");
        all.extend(seq_of(b, "y"));
        all.sort();
        assert_eq!(all, vec!["A", "B", "C"]);
    }
    // 2^3 subsets for x*, complement goes to y*.
    assert_eq!(matches.len(), 8);
}

#[test]
fn set_canonical_rest_order_is_stable_across_subject_orders() {
    // The canonical (sorted) order of the x* binding must not depend on
    // how the subject spelled the set — rules that splice x* back into a
    // new collection rely on this for deterministic output.
    let pat = t("F(SET(x*, PIVOT))");
    let b1 = find_match(&pat, &t("F(SET(C, A, PIVOT, B))")).unwrap();
    let b2 = find_match(&pat, &t("F(SET(B, PIVOT, C, A))")).unwrap();
    assert_eq!(seq_of(&b1, "x"), seq_of(&b2, "x"));
    assert_eq!(seq_of(&b1, "x"), vec!["A", "B", "C"]);
}

#[test]
fn list_order_still_matters_where_set_order_does_not() {
    let list_pat = t("F(LIST(A, B))");
    assert!(find_match(&list_pat, &t("F(LIST(B, A))")).is_none());
    let set_pat = t("F(SET(A, B))");
    assert!(find_match(&set_pat, &t("F(SET(B, A))")).is_some());
}
