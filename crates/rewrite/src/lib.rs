//! # eds-rewrite — term rewriting under constraints
//!
//! Reproduces Section 4 of Finance & Gardarin, *"A Rule-Based Query
//! Rewriter in an Extensible DBMS"* (ICDE 1991):
//!
//! * [`term::Term`] — first-order terms with ordinary variables and
//!   *collection variables* (`x*`) matching argument segments;
//! * [`matching`] — backtracking matcher with ordered segment matching for
//!   `LIST` and commutative matching for `SET`/`BAG`;
//! * [`rule::Rule`] — `lhs / constraints --> rhs / methods`;
//! * [`methods`] — constraint evaluation over the ADT function library and
//!   the extensible method registry (`EVALUATE`, `SUBSTITUTE`, ...);
//! * [`dsl`] — parser for the Figure-6 rule language, including the
//!   `block`/`seq` meta-rules;
//! * [`strategy`] — bounded-saturation block execution and sequencing.
//!
//! ```
//! use eds_rewrite::{parse_source, parse_term, apply_block, BasicEnv,
//!                   MethodRegistry, RuleSet, SourceItem};
//!
//! // The paper's Section-4.1 example rule, written in the rule language.
//! let items = parse_source(
//!     "Example : F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE --> F(SET(x*)) / ;\n\
//!      block(b, {Example}, INF) ;",
//! ).unwrap();
//! let mut rules = RuleSet::new();
//! let mut block = None;
//! for item in items {
//!     match item {
//!         SourceItem::Rule(r) => {
//!             rules.add(r);
//!         }
//!         SourceItem::Block(b) => block = Some(b),
//!         _ => {}
//!     }
//! }
//!
//! let subject = parse_term("F(SET(A, B, G(B, TRUE)))").unwrap();
//! let out = apply_block(
//!     &rules, &block.unwrap(), &MethodRegistry::with_builtins(),
//!     &BasicEnv::new(), subject, false,
//! ).unwrap();
//! assert_eq!(out.term, parse_term("F(SET(A, B))").unwrap());
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod discover;
pub mod dsl;
pub mod engine;
pub mod error;
pub mod fixes;
mod flow;
pub mod matching;
pub mod methods;
mod overlap;
pub mod rule;
pub mod strategy;
pub mod symbol;
pub mod term;
pub mod trace;
pub mod verify;

pub use analyze::{analyze, analyze_rule, analyze_strategy, Diagnostic, SchemaProvider, Severity};
pub use discover::{
    canonical_rule_key, discover_rules, CostOracle, DifferentialOracle, DiscoverOptions,
    Discovered, Discovery, Fragment, Funnel, NoDifferential, NodeCountCost,
};
pub use dsl::{parse_source, parse_source_spanned, parse_term, SourceItem, Span, SpannedItem};
pub use engine::{apply_rule_once, Application, RewriteStats};
pub use error::{RewriteError, RwResult};
pub use fixes::{apply_fixes, Fix, FixOutcome, FixTarget};
pub use matching::{all_matches, find_match, match_term, Control};
pub use methods::{
    eval_constraint, eval_value, is_constant_term, normalize_builtins, resolve, BasicEnv,
    MethodRegistry, TermEnv,
};
pub use rule::{MethodCall, Rule};
pub use strategy::{
    apply_block, run_strategy, run_strategy_explore, Block, Exploration, ExploreOptions, Limit,
    RuleIndex, RuleSet, RunOutcome, Sequence, Strategy,
};
pub use symbol::{Symbol, ToSymbol};
pub use term::{Args, Bindings, Term};
pub use trace::{Trace, TraceEvent};
pub use verify::{
    equiv::{check_rule, Outcome as EquivOutcome},
    fuzz::{generate_case, rule_seed, shrink_candidates, FuzzCase, GenOutcome, TableSpec},
};
