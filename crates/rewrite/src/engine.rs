//! Single-rule application: match, check constraints, run methods, build
//! the right term.

use crate::error::{RewriteError, RwResult};
use crate::matching::{match_term, Control};
use crate::methods::{eval_constraint, normalize_builtins, MethodRegistry, TermEnv};
use crate::rule::Rule;
use crate::term::{Bindings, Term};

/// Counters accumulated while rewriting; `condition_checks` implements the
/// paper's block-limit unit ("each time a rule condition is checked, the
/// limit of the block is decreased by one").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Number of (rule, query) match attempts — the paper's "condition
    /// checks".
    pub condition_checks: u64,
    /// Number of successful rule applications.
    pub applications: u64,
    /// Number of candidate matches rejected by constraints or methods.
    pub rejected: u64,
}

impl RewriteStats {
    /// Merge another stats record into this one.
    pub fn absorb(&mut self, other: RewriteStats) {
        self.condition_checks += other.condition_checks;
        self.applications += other.applications;
        self.rejected += other.rejected;
    }
}

/// Where a rule fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Application {
    /// Position (path) of the rewritten subterm.
    pub path: Vec<usize>,
}

/// Attempt to apply `rule` once, at the outermost-leftmost position where
/// its pattern matches with satisfied constraints and methods. Returns the
/// rewritten whole term.
///
/// A match whose replacement equals the matched subterm is skipped — this
/// keeps idempotent rules from looping without consuming the block budget
/// on no-ops.
pub fn apply_rule_once(
    rule: &Rule,
    term: &Term,
    methods: &MethodRegistry,
    env: &dyn TermEnv,
    stats: &mut RewriteStats,
) -> RwResult<Option<(Term, Application)>> {
    stats.condition_checks += 1;
    let lhs_head = rule.lhs.as_app().map(|(h, _)| h);

    for path in term.positions() {
        let sub = term.at(&path).expect("position enumerated from term");
        // Cheap head filter before invoking the matcher.
        if let Some(h) = lhs_head {
            match sub.as_app() {
                Some((sh, _)) if sh == h => {}
                _ => continue,
            }
        }

        let mut rewritten: Option<Term> = None;
        let mut failure: Option<RewriteError> = None;
        let mut rejected: u64 = 0;

        let mut binds = Bindings::new();
        let mut sink = |b: &Bindings| {
            let mut candidate = b.clone();
            // 1. Constraints.
            for c in &rule.constraints {
                match eval_constraint(c, &mut candidate, methods, env) {
                    Ok(true) => {}
                    Ok(false) => {
                        rejected += 1;
                        return Control::Continue;
                    }
                    Err(e) => {
                        failure = Some(e);
                        return Control::Stop;
                    }
                }
            }
            // 2. Methods (may bind output variables).
            for m in &rule.methods {
                match methods.call(&m.name, &m.args, &mut candidate, env) {
                    Ok(true) => {}
                    Ok(false) => {
                        rejected += 1;
                        return Control::Continue;
                    }
                    Err(e) => {
                        failure = Some(e);
                        return Control::Stop;
                    }
                }
            }
            // 3. Build the right term.
            let built = normalize_builtins(&candidate.apply(&rule.rhs));
            if let Some(v) = built
                .variables()
                .into_iter()
                .find(|v| !candidate.contains(v))
            {
                failure = Some(RewriteError::UnboundInRhs {
                    rule: rule.name.clone(),
                    variable: v.to_owned(),
                });
                return Control::Stop;
            }
            if &built == sub {
                // No-op application; try another match.
                rejected += 1;
                return Control::Continue;
            }
            rewritten = Some(built);
            Control::Stop
        };
        match_term(&rule.lhs, sub, &mut binds, &mut sink);
        stats.rejected += rejected;

        if let Some(e) = failure {
            return Err(e);
        }
        if let Some(new_sub) = rewritten {
            stats.applications += 1;
            let new_term = term.replace_at(&path, new_sub);
            return Ok(Some((new_term, Application { path })));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::BasicEnv;
    use crate::rule::MethodCall;

    fn apply(rule: &Rule, term: &Term) -> Option<Term> {
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let mut stats = RewriteStats::default();
        apply_rule_once(rule, term, &methods, &env, &mut stats)
            .unwrap()
            .map(|(t, _)| t)
    }

    #[test]
    fn applies_at_nested_position() {
        // F(G(x)) --> x, applied inside H(...).
        let rule = Rule::simple(
            "collapse",
            Term::app("F", vec![Term::app("G", vec![Term::var("x")])]),
            Term::var("x"),
        );
        let term = Term::app(
            "H",
            vec![Term::app("F", vec![Term::app("G", vec![Term::int(7)])])],
        );
        assert_eq!(
            apply(&rule, &term),
            Some(Term::app("H", vec![Term::int(7)]))
        );
    }

    #[test]
    fn constraint_vetoes_match() {
        // F(x) / x > 5 --> G(x)
        let rule = Rule {
            name: "gate".into(),
            lhs: Term::app("F", vec![Term::var("x")]),
            constraints: vec![Term::app(">", vec![Term::var("x"), Term::int(5)])],
            rhs: Term::app("G", vec![Term::var("x")]),
            methods: vec![],
        };
        assert_eq!(apply(&rule, &Term::app("F", vec![Term::int(3)])), None);
        assert_eq!(
            apply(&rule, &Term::app("F", vec![Term::int(9)])),
            Some(Term::app("G", vec![Term::int(9)]))
        );
    }

    #[test]
    fn paper_example_rule_fires() {
        // F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE --> F(x*)
        // (the syntactically-correct example rule of Section 4.1).
        let rule = Rule {
            name: "example".into(),
            lhs: Term::app(
                "F",
                vec![Term::set(vec![
                    Term::seq("x"),
                    Term::app("G", vec![Term::var("y"), Term::var("f")]),
                ])],
            ),
            constraints: vec![
                Term::app("MEMBER", vec![Term::var("y"), Term::seq("x")]),
                Term::app("=", vec![Term::var("f"), Term::atom("TRUE")]),
            ],
            rhs: Term::app("F", vec![Term::seq("x")]),
            methods: vec![],
        };
        let term = Term::app(
            "F",
            vec![Term::set(vec![
                Term::atom("A"),
                Term::atom("B"),
                Term::app("G", vec![Term::atom("B"), Term::bool(true)]),
            ])],
        );
        let out = apply(&rule, &term).expect("rule should fire");
        assert_eq!(out, Term::app("F", vec![Term::atom("A"), Term::atom("B")]));
        // y not in x* -> no application.
        let term2 = Term::app(
            "F",
            vec![Term::set(vec![
                Term::atom("A"),
                Term::app("G", vec![Term::atom("B"), Term::bool(true)]),
            ])],
        );
        assert_eq!(apply(&rule, &term2), None);
    }

    #[test]
    fn method_output_used_in_rhs() {
        // F(x, y) / ISA(x, constant), ISA(y, constant) --> a / EVALUATE(F(x,y), a)
        // — the constant-folding simplification rule of Figure 12, with
        // F instantiated as "+".
        let rule = Rule {
            name: "fold".into(),
            lhs: Term::app("+", vec![Term::var("x"), Term::var("y")]),
            constraints: vec![
                Term::app("ISA", vec![Term::var("x"), Term::atom("constant")]),
                Term::app("ISA", vec![Term::var("y"), Term::atom("constant")]),
            ],
            rhs: Term::var("a"),
            methods: vec![MethodCall {
                name: "EVALUATE".into(),
                args: vec![
                    Term::app("+", vec![Term::var("x"), Term::var("y")]),
                    Term::var("a"),
                ],
            }],
        };
        let term = Term::app("+", vec![Term::int(40), Term::int(2)]);
        assert_eq!(apply(&rule, &term), Some(Term::int(42)));
        // Non-constant argument: no fold.
        let term2 = Term::app("+", vec![Term::attr(1, 1), Term::int(2)]);
        assert_eq!(apply(&rule, &term2), None);
    }

    #[test]
    fn noop_matches_are_skipped() {
        // x --> x never "applies".
        let rule = Rule::simple("identity", Term::var("x"), Term::var("x"));
        assert_eq!(apply(&rule, &Term::int(1)), None);
    }

    #[test]
    fn unbound_rhs_variable_is_an_error() {
        let rule = Rule::simple(
            "broken",
            Term::app("F", vec![Term::var("x")]),
            Term::app("G", vec![Term::var("zz")]),
        );
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let mut stats = RewriteStats::default();
        let err = apply_rule_once(
            &rule,
            &Term::app("F", vec![Term::int(1)]),
            &methods,
            &env,
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, RewriteError::UnboundInRhs { .. }));
    }

    #[test]
    fn stats_count_checks_and_applications() {
        let rule = Rule::simple(
            "collapse",
            Term::app("F", vec![Term::var("x")]),
            Term::var("x"),
        );
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let mut stats = RewriteStats::default();
        let term = Term::app("F", vec![Term::int(1)]);
        apply_rule_once(&rule, &term, &methods, &env, &mut stats).unwrap();
        assert_eq!(stats.condition_checks, 1);
        assert_eq!(stats.applications, 1);
    }
}
