//! Single-rule application: match, check constraints, run methods, build
//! the right term.
//!
//! The scanner is a recursive pre-order walk (outermost-leftmost, the
//! paper's application order) with two O(1) accelerations built on the
//! term representation:
//!
//! * **head gate** — a rule whose LHS is an application `F(...)` can only
//!   match at `F` nodes; subtrees whose cached functor fingerprint lacks
//!   `F`'s bit are skipped wholesale without visiting them;
//! * **dirty-region scan** — [`apply_rule_once_dirty`] restricts the walk
//!   to the spine and subtree of previously-rewritten positions, for the
//!   block loop's incremental worklist. Positions outside the dirty
//!   region are provably unchanged subtrees where the rule already failed
//!   to match, so skipping them cannot change which position matches
//!   first.

use crate::error::{RewriteError, RwResult};
use crate::matching::{match_term, Control};
use crate::methods::{eval_constraint, normalize_builtins, MethodRegistry, TermEnv};
use crate::rule::Rule;
use crate::symbol::Symbol;
use crate::term::{Bindings, Term};

/// Counters accumulated while rewriting; `condition_checks` implements the
/// paper's block-limit unit ("each time a rule condition is checked, the
/// limit of the block is decreased by one").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Number of (rule, query) match attempts — the paper's "condition
    /// checks".
    pub condition_checks: u64,
    /// Number of successful rule applications.
    pub applications: u64,
    /// Number of candidate matches rejected by constraints or methods.
    pub rejected: u64,
    /// Candidate rewrites scored by cost-guided exploration (including
    /// the mainline saturation result). Zero outside `Full` runs.
    pub explore_candidates: u64,
    /// Condition checks spent normalizing exploration candidates — extra
    /// work beyond the mainline, *not* included in `condition_checks`,
    /// so the mainline counter stays comparable across levels.
    pub explore_checks: u64,
    /// Times exploration stopped early because the estimated win could
    /// not repay the exploration cost (the generalized cost budget).
    pub explore_budget_stops: u64,
    /// Explorations where a candidate beat the mainline plan.
    pub explore_wins: u64,
}

impl RewriteStats {
    /// Merge another stats record into this one.
    pub fn absorb(&mut self, other: RewriteStats) {
        self.condition_checks += other.condition_checks;
        self.applications += other.applications;
        self.rejected += other.rejected;
        self.explore_candidates += other.explore_candidates;
        self.explore_checks += other.explore_checks;
        self.explore_budget_stops += other.explore_budget_stops;
        self.explore_wins += other.explore_wins;
    }
}

/// Where a rule fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Application {
    /// Position (path) of the rewritten subterm.
    pub path: Vec<usize>,
}

/// Try `rule` at exactly one position: enumerate matches, filter through
/// constraints and methods, build the replacement. `Ok(None)` when no
/// accepted match exists at this node.
fn match_at(
    rule: &Rule,
    sub: &Term,
    methods: &MethodRegistry,
    env: &dyn TermEnv,
    rejected: &mut u64,
) -> RwResult<Option<Term>> {
    let mut rewritten: Option<Term> = None;
    let mut failure: Option<RewriteError> = None;

    let mut binds = Bindings::new();
    let mut sink = |b: &Bindings| {
        let mut candidate = b.clone();
        // 1. Constraints.
        for c in &rule.constraints {
            match eval_constraint(c, &mut candidate, methods, env) {
                Ok(true) => {}
                Ok(false) => {
                    *rejected += 1;
                    return Control::Continue;
                }
                Err(e) => {
                    failure = Some(e);
                    return Control::Stop;
                }
            }
        }
        // 2. Methods (may bind output variables).
        for m in &rule.methods {
            match methods.call(&m.name, &m.args, &mut candidate, env) {
                Ok(true) => {}
                Ok(false) => {
                    *rejected += 1;
                    return Control::Continue;
                }
                Err(e) => {
                    failure = Some(e);
                    return Control::Stop;
                }
            }
        }
        // 3. Build the right term.
        let built = normalize_builtins(&candidate.apply(&rule.rhs));
        if let Some(v) = built
            .variables()
            .into_iter()
            .find(|v| !candidate.contains(*v))
        {
            failure = Some(RewriteError::UnboundInRhs {
                rule: rule.name.clone(),
                variable: v.to_owned(),
            });
            return Control::Stop;
        }
        if &built == sub {
            // No-op application; try another match.
            *rejected += 1;
            return Control::Continue;
        }
        rewritten = Some(built);
        Control::Stop
    };
    match_term(&rule.lhs, sub, &mut binds, &mut sink);

    if let Some(e) = failure {
        return Err(e);
    }
    Ok(rewritten)
}

/// Pre-order walk of the whole subtree at `node`, pruning subtrees whose
/// fingerprint proves the rule head absent. Returns the replacement and
/// the (root-relative) path of the first accepted match.
#[allow(clippy::too_many_arguments)]
fn walk(
    rule: &Rule,
    node: &Term,
    head: Option<Symbol>,
    path: &mut Vec<usize>,
    methods: &MethodRegistry,
    env: &dyn TermEnv,
    rejected: &mut u64,
) -> RwResult<Option<(Term, Vec<usize>)>> {
    let try_here = match head {
        Some(h) => node.head() == Some(h),
        None => true,
    };
    if try_here {
        if let Some(new_sub) = match_at(rule, node, methods, env, rejected)? {
            return Ok(Some((new_sub, path.clone())));
        }
    }
    if let Term::App(_, args) = node {
        for (i, a) in args.iter().enumerate() {
            if let Some(h) = head {
                if !a.may_contain(h) {
                    continue;
                }
            }
            path.push(i);
            let found = walk(rule, a, head, path, methods, env, rejected)?;
            path.pop();
            if found.is_some() {
                return Ok(found);
            }
        }
    }
    Ok(None)
}

/// Restricted walk for the incremental worklist: `suffixes` are the dirty
/// paths relative to `node`. Spine nodes (proper prefixes of a dirty
/// path) are tested and descended only toward dirty children; a node
/// reached by a full dirty path switches to the unrestricted [`walk`].
/// Visit order is still pre-order, so the first match found here is the
/// first match of the whole term.
#[allow(clippy::too_many_arguments)]
fn walk_dirty(
    rule: &Rule,
    node: &Term,
    head: Option<Symbol>,
    path: &mut Vec<usize>,
    suffixes: &[&[usize]],
    methods: &MethodRegistry,
    env: &dyn TermEnv,
    rejected: &mut u64,
) -> RwResult<Option<(Term, Vec<usize>)>> {
    if suffixes.iter().any(|s| s.is_empty()) {
        // The whole subtree is dirty.
        if head.is_none_or(|h| node.may_contain(h)) {
            return walk(rule, node, head, path, methods, env, rejected);
        }
        return Ok(None);
    }
    // Spine node: its child list changed, so the rule may newly match
    // here even though it failed before.
    let try_here = match head {
        Some(h) => node.head() == Some(h),
        None => true,
    };
    if try_here {
        if let Some(new_sub) = match_at(rule, node, methods, env, rejected)? {
            return Ok(Some((new_sub, path.clone())));
        }
    }
    if let Term::App(_, args) = node {
        // Group dirty suffixes by their leading child index; visit
        // children in ascending order to keep the walk pre-order.
        let mut by_child: std::collections::BTreeMap<usize, Vec<&[usize]>> =
            std::collections::BTreeMap::new();
        for s in suffixes {
            by_child.entry(s[0]).or_default().push(&s[1..]);
        }
        for (i, child_suffixes) in by_child {
            // Stale paths (from before an ancestor was replaced) may
            // point past the current arity; they are simply ignored.
            let Some(a) = args.get(i) else { continue };
            path.push(i);
            let found = walk_dirty(rule, a, head, path, &child_suffixes, methods, env, rejected)?;
            path.pop();
            if found.is_some() {
                return Ok(found);
            }
        }
    }
    Ok(None)
}

/// Attempt to apply `rule` once, at the outermost-leftmost position where
/// its pattern matches with satisfied constraints and methods. Returns the
/// rewritten whole term.
///
/// A match whose replacement equals the matched subterm is skipped — this
/// keeps idempotent rules from looping without consuming the block budget
/// on no-ops.
pub fn apply_rule_once(
    rule: &Rule,
    term: &Term,
    methods: &MethodRegistry,
    env: &dyn TermEnv,
    stats: &mut RewriteStats,
) -> RwResult<Option<(Term, Application)>> {
    stats.condition_checks += 1;
    let lhs_head = rule.lhs.head();
    if let Some(h) = lhs_head {
        if !term.may_contain(h) {
            return Ok(None);
        }
    }
    let mut rejected = 0;
    let found = walk(
        rule,
        term,
        lhs_head,
        &mut Vec::new(),
        methods,
        env,
        &mut rejected,
    )?;
    stats.rejected += rejected;
    finish(term, found, stats)
}

/// Like [`apply_rule_once`], but only re-examines the dirty region: for
/// each path in `dirty`, the spine from the root to that path plus the
/// entire subtree below it. Sound whenever the rule is known not to match
/// anywhere on the term as it was before the subterms at `dirty` were
/// replaced (the block loop's bookkeeping guarantees exactly that).
///
/// Counts one condition check, like any other attempt — the paper's
/// `Limit` accounting does not change with the scan strategy.
pub fn apply_rule_once_dirty(
    rule: &Rule,
    term: &Term,
    dirty: &[Vec<usize>],
    methods: &MethodRegistry,
    env: &dyn TermEnv,
    stats: &mut RewriteStats,
) -> RwResult<Option<(Term, Application)>> {
    stats.condition_checks += 1;
    let lhs_head = rule.lhs.head();
    if let Some(h) = lhs_head {
        if !term.may_contain(h) {
            return Ok(None);
        }
    }
    let suffixes: Vec<&[usize]> = dirty.iter().map(Vec::as_slice).collect();
    let mut rejected = 0;
    let found = walk_dirty(
        rule,
        term,
        lhs_head,
        &mut Vec::new(),
        &suffixes,
        methods,
        env,
        &mut rejected,
    )?;
    stats.rejected += rejected;
    finish(term, found, stats)
}

fn finish(
    term: &Term,
    found: Option<(Term, Vec<usize>)>,
    stats: &mut RewriteStats,
) -> RwResult<Option<(Term, Application)>> {
    match found {
        Some((new_sub, path)) => {
            stats.applications += 1;
            let new_term = term.replace_at(&path, new_sub);
            Ok(Some((new_term, Application { path })))
        }
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::BasicEnv;
    use crate::rule::MethodCall;

    fn apply(rule: &Rule, term: &Term) -> Option<Term> {
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let mut stats = RewriteStats::default();
        apply_rule_once(rule, term, &methods, &env, &mut stats)
            .unwrap()
            .map(|(t, _)| t)
    }

    #[test]
    fn applies_at_nested_position() {
        // F(G(x)) --> x, applied inside H(...).
        let rule = Rule::simple(
            "collapse",
            Term::app("F", vec![Term::app("G", vec![Term::var("x")])]),
            Term::var("x"),
        );
        let term = Term::app(
            "H",
            vec![Term::app("F", vec![Term::app("G", vec![Term::int(7)])])],
        );
        assert_eq!(
            apply(&rule, &term),
            Some(Term::app("H", vec![Term::int(7)]))
        );
    }

    #[test]
    fn constraint_vetoes_match() {
        // F(x) / x > 5 --> G(x)
        let rule = Rule {
            name: "gate".into(),
            lhs: Term::app("F", vec![Term::var("x")]),
            constraints: vec![Term::app(">", vec![Term::var("x"), Term::int(5)])],
            rhs: Term::app("G", vec![Term::var("x")]),
            methods: vec![],
        };
        assert_eq!(apply(&rule, &Term::app("F", vec![Term::int(3)])), None);
        assert_eq!(
            apply(&rule, &Term::app("F", vec![Term::int(9)])),
            Some(Term::app("G", vec![Term::int(9)]))
        );
    }

    #[test]
    fn paper_example_rule_fires() {
        // F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE --> F(x*)
        // (the syntactically-correct example rule of Section 4.1).
        let rule = Rule {
            name: "example".into(),
            lhs: Term::app(
                "F",
                vec![Term::set(vec![
                    Term::seq("x"),
                    Term::app("G", vec![Term::var("y"), Term::var("f")]),
                ])],
            ),
            constraints: vec![
                Term::app("MEMBER", vec![Term::var("y"), Term::seq("x")]),
                Term::app("=", vec![Term::var("f"), Term::atom("TRUE")]),
            ],
            rhs: Term::app("F", vec![Term::seq("x")]),
            methods: vec![],
        };
        let term = Term::app(
            "F",
            vec![Term::set(vec![
                Term::atom("A"),
                Term::atom("B"),
                Term::app("G", vec![Term::atom("B"), Term::bool(true)]),
            ])],
        );
        let out = apply(&rule, &term).expect("rule should fire");
        assert_eq!(out, Term::app("F", vec![Term::atom("A"), Term::atom("B")]));
        // y not in x* -> no application.
        let term2 = Term::app(
            "F",
            vec![Term::set(vec![
                Term::atom("A"),
                Term::app("G", vec![Term::atom("B"), Term::bool(true)]),
            ])],
        );
        assert_eq!(apply(&rule, &term2), None);
    }

    #[test]
    fn method_output_used_in_rhs() {
        // F(x, y) / ISA(x, constant), ISA(y, constant) --> a / EVALUATE(F(x,y), a)
        // — the constant-folding simplification rule of Figure 12, with
        // F instantiated as "+".
        let rule = Rule {
            name: "fold".into(),
            lhs: Term::app("+", vec![Term::var("x"), Term::var("y")]),
            constraints: vec![
                Term::app("ISA", vec![Term::var("x"), Term::atom("constant")]),
                Term::app("ISA", vec![Term::var("y"), Term::atom("constant")]),
            ],
            rhs: Term::var("a"),
            methods: vec![MethodCall {
                name: "EVALUATE".into(),
                args: vec![
                    Term::app("+", vec![Term::var("x"), Term::var("y")]),
                    Term::var("a"),
                ],
            }],
        };
        let term = Term::app("+", vec![Term::int(40), Term::int(2)]);
        assert_eq!(apply(&rule, &term), Some(Term::int(42)));
        // Non-constant argument: no fold.
        let term2 = Term::app("+", vec![Term::attr(1, 1), Term::int(2)]);
        assert_eq!(apply(&rule, &term2), None);
    }

    #[test]
    fn noop_matches_are_skipped() {
        // x --> x never "applies".
        let rule = Rule::simple("identity", Term::var("x"), Term::var("x"));
        assert_eq!(apply(&rule, &Term::int(1)), None);
    }

    #[test]
    fn unbound_rhs_variable_is_an_error() {
        let rule = Rule::simple(
            "broken",
            Term::app("F", vec![Term::var("x")]),
            Term::app("G", vec![Term::var("zz")]),
        );
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let mut stats = RewriteStats::default();
        let err = apply_rule_once(
            &rule,
            &Term::app("F", vec![Term::int(1)]),
            &methods,
            &env,
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, RewriteError::UnboundInRhs { .. }));
    }

    #[test]
    fn stats_count_checks_and_applications() {
        let rule = Rule::simple(
            "collapse",
            Term::app("F", vec![Term::var("x")]),
            Term::var("x"),
        );
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let mut stats = RewriteStats::default();
        let term = Term::app("F", vec![Term::int(1)]);
        apply_rule_once(&rule, &term, &methods, &env, &mut stats).unwrap();
        assert_eq!(stats.condition_checks, 1);
        assert_eq!(stats.applications, 1);
    }

    #[test]
    fn dirty_scan_agrees_with_full_scan() {
        // A term with two F-redexes; after rewriting the left one, a
        // dirty scan restricted to that path must find the same next
        // match as a full scan.
        let rule = Rule::simple(
            "collapse",
            Term::app("F", vec![Term::var("x")]),
            Term::var("x"),
        );
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();

        let term = Term::app(
            "H",
            vec![
                Term::app("F", vec![Term::int(1)]),
                Term::app("F", vec![Term::int(2)]),
            ],
        );
        let mut s1 = RewriteStats::default();
        let (t1, app1) = apply_rule_once(&rule, &term, &methods, &env, &mut s1)
            .unwrap()
            .unwrap();
        assert_eq!(app1.path, vec![0]);

        // Full rescan vs dirty rescan from the rewritten position.
        let mut s2 = RewriteStats::default();
        let full = apply_rule_once(&rule, &t1, &methods, &env, &mut s2)
            .unwrap()
            .unwrap();
        let mut s3 = RewriteStats::default();
        // The other F at [1] was never scanned past in the first call's
        // early return, so the conservative dirty set is "everything
        // after the application" — here modelled by marking the root
        // dirty, which degenerates to a full scan.
        let dirty = apply_rule_once_dirty(&rule, &t1, &[vec![]], &methods, &env, &mut s3)
            .unwrap()
            .unwrap();
        assert_eq!(full.0, dirty.0);
        assert_eq!(full.1.path, dirty.1.path);
        assert_eq!(s2.condition_checks, 1);
        assert_eq!(s3.condition_checks, 1);
    }

    #[test]
    fn dirty_scan_finds_spine_match() {
        // G(H(x)) --> x matches at the root only after the child is
        // rewritten into H(...): the spine of the dirty path must be
        // re-examined.
        let rule = Rule::simple(
            "spine",
            Term::app("G", vec![Term::app("H", vec![Term::var("x")])]),
            Term::var("x"),
        );
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        // Term G(H(1)) — pretend H(1) just replaced something at [0].
        let term = Term::app("G", vec![Term::app("H", vec![Term::int(1)])]);
        let mut stats = RewriteStats::default();
        let (out, app) =
            apply_rule_once_dirty(&rule, &term, &[vec![0]], &methods, &env, &mut stats)
                .unwrap()
                .unwrap();
        assert_eq!(out, Term::int(1));
        assert_eq!(app.path, Vec::<usize>::new());
    }

    #[test]
    fn dirty_scan_ignores_stale_paths() {
        let rule = Rule::simple(
            "collapse",
            Term::app("F", vec![Term::var("x")]),
            Term::var("x"),
        );
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let term = Term::app("G", vec![Term::int(1)]);
        let mut stats = RewriteStats::default();
        // Paths far outside the term's shape must be skipped silently.
        let out = apply_rule_once_dirty(
            &rule,
            &term,
            &[vec![5, 7], vec![0, 3]],
            &methods,
            &env,
            &mut stats,
        )
        .unwrap();
        assert!(out.is_none());
    }
}
