//! First-order terms with variables and collection variables.
//!
//! Terms are the uniform representation the paper rewrites: LERA operators
//! are interpreted as functions (`SEARCH`, `UNION`, `FIX`, ...), argument
//! collections are the `LIST`/`SET`/`BAG` constructors, qualifications are
//! boolean sub-terms (`AND`, `OR`, comparison functors), and attribute
//! references are `ATTR(i, j)` terms displayed as `i.j`.
//!
//! *Collection variables* (`x*`) stand for argument segments of a
//! collection constructor, "allowing the specification of strategies
//! involving long lists of arguments" (Section 4.1).
//!
//! # Representation
//!
//! The kernel is built for cheap traversal and rebuilding:
//!
//! * names are interned [`Symbol`]s — comparison and hashing never touch
//!   string bytes;
//! * `App` argument vectors are shared [`Args`] nodes (`Arc<[Term]>`), so
//!   cloning a term is one reference-count bump and [`Term::replace_at`]
//!   rebuilds only the spine from the root to the replaced position;
//! * every `App` node caches its subtree size, a structural hash, a
//!   64-bit functor Bloom fingerprint, and a groundness flag. Equality
//!   short-circuits on the hash, [`Term::size`] and [`Term::is_ground`]
//!   are O(1), and the engine prunes whole subtrees that cannot contain a
//!   rule's head functor via the fingerprint.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use eds_adt::Value;

use crate::symbol::{well_known, Symbol, ToSymbol};

/// Functor names reserved for collection constructors; they get segment
/// (and for `SET`/`BAG` commutative) matching semantics.
pub const COLLECTION_FUNCTORS: [&str; 3] = ["LIST", "SET", "BAG"];

/// A term.
#[derive(Debug, Clone)]
pub enum Term {
    /// An ordinary variable (`x`, `f`, `quali`, `exp'`). Matches exactly
    /// one term.
    Var(Symbol),
    /// A collection (sequence) variable (`x*`). Only legal as a direct
    /// argument of `LIST`/`SET`/`BAG`; matches a segment of arguments.
    SeqVar(Symbol),
    /// A literal constant.
    Const(Value),
    /// A function application `F(t1, ..., tn)`; nullary applications act
    /// as symbolic atoms (relation names, type names).
    App(Symbol, Args),
}

/// Shared, metadata-carrying argument list of an `App` node.
///
/// The arguments live behind an `Arc`, so cloning is O(1) and siblings
/// are structurally shared between a term and its rewritten versions.
/// Construction precomputes the aggregate data equality, sizing, and the
/// engine's fingerprint pruning rely on.
#[derive(Clone)]
pub struct Args {
    items: Arc<[Term]>,
    /// Total node count of the children.
    size: usize,
    /// Order-sensitive combination of the children's structural hashes.
    hash: u64,
    /// OR of the children's functor fingerprints.
    fp: u64,
    /// True when no child contains a variable of either kind.
    ground: bool,
}

fn mix(a: u64, b: u64) -> u64 {
    // xorshift-multiply combiner; collisions only cost a slice compare.
    let mut h = a.rotate_left(23) ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    h.wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

impl Args {
    /// Build from a child vector, computing the cached aggregates.
    pub fn from_vec(items: Vec<Term>) -> Args {
        let mut size = 0usize;
        let mut hash = 0x517C_C1B7_2722_0A95_u64;
        let mut fp = 0u64;
        let mut ground = true;
        for t in &items {
            size += t.size();
            hash = mix(hash, t.hash64());
            fp |= t.fingerprint();
            ground &= t.is_ground();
        }
        Args {
            items: items.into(),
            size,
            hash,
            fp,
            ground,
        }
    }

    /// The children as a slice.
    pub fn as_slice(&self) -> &[Term] {
        &self.items
    }
}

impl std::ops::Deref for Args {
    type Target = [Term];

    fn deref(&self) -> &[Term] {
        &self.items
    }
}

impl From<Vec<Term>> for Args {
    fn from(items: Vec<Term>) -> Args {
        Args::from_vec(items)
    }
}

impl FromIterator<Term> for Args {
    fn from_iter<I: IntoIterator<Item = Term>>(iter: I) -> Args {
        Args::from_vec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Args {
    type Item = &'a Term;
    type IntoIter = std::slice::Iter<'a, Term>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl fmt::Debug for Args {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.items.iter()).finish()
    }
}

impl PartialEq for Args {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.items, &other.items)
            || (self.hash == other.hash
                && self.size == other.size
                && self.items[..] == other.items[..])
    }
}

impl Eq for Args {}

impl Term {
    /// Symbolic atom (nullary application).
    pub fn atom(name: impl Into<Symbol>) -> Term {
        Term::App(name.into(), Args::from_vec(Vec::new()))
    }

    /// Application helper.
    pub fn app(name: impl Into<Symbol>, args: Vec<Term>) -> Term {
        Term::App(name.into(), Args::from_vec(args))
    }

    /// Variable helper.
    pub fn var(name: impl Into<Symbol>) -> Term {
        Term::Var(name.into())
    }

    /// Sequence-variable helper.
    pub fn seq(name: impl Into<Symbol>) -> Term {
        Term::SeqVar(name.into())
    }

    /// Integer literal helper.
    pub fn int(i: i64) -> Term {
        Term::Const(Value::Int(i))
    }

    /// String literal helper.
    pub fn str(s: impl Into<String>) -> Term {
        Term::Const(Value::Str(s.into()))
    }

    /// Boolean literal helper.
    pub fn bool(b: bool) -> Term {
        Term::Const(Value::Bool(b))
    }

    /// `LIST(...)` constructor.
    pub fn list(items: Vec<Term>) -> Term {
        Term::App(well_known::list(), Args::from_vec(items))
    }

    /// `SET(...)` constructor.
    pub fn set(items: Vec<Term>) -> Term {
        Term::App(well_known::set(), Args::from_vec(items))
    }

    /// An `ATTR(i, j)` positional attribute reference (displayed `i.j`).
    pub fn attr(rel: i64, attr: i64) -> Term {
        Term::App(
            well_known::attr(),
            Args::from_vec(vec![Term::int(rel), Term::int(attr)]),
        )
    }

    /// Is this term an application of `head`?
    pub fn is_app(&self, head: &str) -> bool {
        matches!(self, Term::App(h, _) if *h == head)
    }

    /// Application view.
    pub fn as_app(&self) -> Option<(&str, &[Term])> {
        match self {
            Term::App(h, args) => Some((h.as_str(), args.as_slice())),
            _ => None,
        }
    }

    /// Application view with the interned head symbol.
    pub fn as_app_sym(&self) -> Option<(Symbol, &[Term])> {
        match self {
            Term::App(h, args) => Some((*h, args.as_slice())),
            _ => None,
        }
    }

    /// The head symbol, when the term is an application.
    pub fn head(&self) -> Option<Symbol> {
        match self {
            Term::App(h, _) => Some(*h),
            _ => None,
        }
    }

    /// Constant view.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            _ => None,
        }
    }

    /// `ATTR(i, j)` view.
    pub fn as_attr(&self) -> Option<(i64, i64)> {
        match self.as_app() {
            Some(("ATTR", [Term::Const(Value::Int(i)), Term::Const(Value::Int(j))])) => {
                Some((*i, *j))
            }
            _ => None,
        }
    }

    /// Is the head a collection constructor (segment-matching semantics)?
    pub fn is_collection_ctor(head: &str) -> bool {
        COLLECTION_FUNCTORS.contains(&head)
    }

    /// True when the term contains no variables of either kind. O(1): the
    /// flag is cached per `App` node.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) | Term::SeqVar(_) => false,
            Term::Const(_) => true,
            Term::App(_, args) => args.ground,
        }
    }

    /// Collect the names of ordinary and sequence variables (in order of
    /// first occurrence, deduplicated).
    pub fn variables(&self) -> Vec<&str> {
        fn walk<'a>(t: &'a Term, out: &mut Vec<&'a str>) {
            match t {
                Term::Var(v) | Term::SeqVar(v) => {
                    if !out.contains(&v.as_str()) {
                        out.push(v.as_str());
                    }
                }
                Term::Const(_) => {}
                Term::App(_, args) => {
                    if !args.ground {
                        args.iter().for_each(|a| walk(a, out));
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Number of nodes in the term (size metric used by termination
    /// arguments: "subsets of rewriting rules can be isolated that either
    /// increase or decrease the number of terms in a query"). O(1): sizes
    /// are cached per `App` node.
    pub fn size(&self) -> usize {
        match self {
            Term::App(_, args) => 1 + args.size,
            _ => 1,
        }
    }

    /// Structural hash of the term; equal terms always hash equal. O(1)
    /// for `App` nodes thanks to the cached child combination.
    pub fn hash64(&self) -> u64 {
        match self {
            Term::Var(v) => mix(0x11, v.hash64()),
            Term::SeqVar(v) => mix(0x22, v.hash64()),
            Term::Const(v) => {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                v.hash(&mut h);
                mix(0x33, h.finish())
            }
            Term::App(head, args) => mix(mix(0x44, head.hash64()), args.hash),
        }
    }

    /// Bloom fingerprint of the functors applied anywhere in this term:
    /// bit `fp_bit(F)` is set iff some `App` node below (or at) this term
    /// has head `F`. No false negatives — a clear bit proves absence.
    pub fn fingerprint(&self) -> u64 {
        match self {
            Term::App(head, args) => head.fp_bit() | args.fp,
            _ => 0,
        }
    }

    /// Can an application of `head` occur anywhere in this term? O(1)
    /// conservative test: `false` is definite, `true` may be a Bloom
    /// false positive.
    pub fn may_contain(&self, head: Symbol) -> bool {
        self.fingerprint() & head.fp_bit() != 0
    }

    /// Iterate over all positions (paths) in the term, pre-order. The root
    /// path is empty.
    pub fn positions(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        fn walk(t: &Term, path: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            out.push(path.clone());
            if let Term::App(_, args) = t {
                for (i, a) in args.iter().enumerate() {
                    path.push(i);
                    walk(a, path, out);
                    path.pop();
                }
            }
        }
        walk(self, &mut Vec::new(), &mut out);
        out
    }

    /// The subterm at a position; `None` if the path is invalid.
    pub fn at(&self, path: &[usize]) -> Option<&Term> {
        let mut cur = self;
        for &i in path {
            match cur {
                Term::App(_, args) => cur = args.get(i)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// Replace the subterm at a position, returning the new term. Only
    /// the spine from the root to `path` is rebuilt; all sibling subtrees
    /// are shared with `self`.
    pub fn replace_at(&self, path: &[usize], replacement: Term) -> Term {
        if path.is_empty() {
            return replacement;
        }
        match self {
            Term::App(h, args) => {
                let mut new_args: Vec<Term> = args.as_slice().to_vec();
                if let Some(slot) = new_args.get_mut(path[0]) {
                    *slot = slot.replace_at(&path[1..], replacement);
                }
                Term::App(*h, Args::from_vec(new_args))
            }
            other => other.clone(),
        }
    }
}

impl PartialEq for Term {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Term::Var(a), Term::Var(b)) | (Term::SeqVar(a), Term::SeqVar(b)) => a == b,
            (Term::Const(a), Term::Const(b)) => a == b,
            (Term::App(h1, a1), Term::App(h2, a2)) => h1 == h2 && a1 == a2,
            _ => false,
        }
    }
}

impl Eq for Term {}

impl Hash for Term {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash64());
    }
}

impl PartialOrd for Term {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Term {
    /// Structural order identical to the pre-interning derived order
    /// (variant rank, then fields; names compare as strings) — the
    /// matcher's canonical `SET` segment order depends on it being
    /// deterministic across processes.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(t: &Term) -> u8 {
            match t {
                Term::Var(_) => 0,
                Term::SeqVar(_) => 1,
                Term::Const(_) => 2,
                Term::App(..) => 3,
            }
        }
        match (self, other) {
            (Term::Var(a), Term::Var(b)) | (Term::SeqVar(a), Term::SeqVar(b)) => a.cmp(b),
            (Term::Const(a), Term::Const(b)) => a.cmp(b),
            (Term::App(h1, a1), Term::App(h2, a2)) => h1
                .cmp(h2)
                .then_with(|| a1.items.iter().cmp(a2.items.iter())),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// A substitution: ordinary variables map to terms, sequence variables to
/// term segments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bindings {
    vars: HashMap<Symbol, Term>,
    seqs: HashMap<Symbol, Vec<Term>>,
}

impl Bindings {
    /// Empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binding of an ordinary variable.
    pub fn get(&self, name: impl ToSymbol) -> Option<&Term> {
        self.vars.get(&name.to_symbol())
    }

    /// Binding of a sequence variable.
    pub fn get_seq(&self, name: impl ToSymbol) -> Option<&[Term]> {
        self.seqs.get(&name.to_symbol()).map(Vec::as_slice)
    }

    /// Bind an ordinary variable (overwrites).
    pub fn bind(&mut self, name: impl ToSymbol, term: Term) {
        self.vars.insert(name.to_symbol(), term);
    }

    /// Bind a sequence variable (overwrites).
    pub fn bind_seq(&mut self, name: impl ToSymbol, terms: Vec<Term>) {
        self.seqs.insert(name.to_symbol(), terms);
    }

    /// Remove any binding for `name` (used by the matcher to backtrack).
    pub fn remove(&mut self, name: impl ToSymbol) {
        let sym = name.to_symbol();
        self.vars.remove(&sym);
        self.seqs.remove(&sym);
    }

    /// Whether a name has any binding.
    pub fn contains(&self, name: impl ToSymbol) -> bool {
        let sym = name.to_symbol();
        self.vars.contains_key(&sym) || self.seqs.contains_key(&sym)
    }

    /// Number of bound names.
    pub fn len(&self) -> usize {
        self.vars.len() + self.seqs.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty() && self.seqs.is_empty()
    }

    /// Apply the substitution to a term. Sequence variables are spliced
    /// into their enclosing argument list. Unbound variables are left in
    /// place (the engine checks rhs groundness separately). Ground
    /// subtrees are returned as O(1) shared clones.
    pub fn apply(&self, term: &Term) -> Term {
        match term {
            Term::Var(v) => self.vars.get(v).cloned().unwrap_or_else(|| term.clone()),
            Term::SeqVar(_) => term.clone(), // splicing happens in App args
            Term::Const(_) => term.clone(),
            Term::App(h, args) => {
                if args.ground {
                    return term.clone();
                }
                let mut new_args = Vec::with_capacity(args.len());
                for a in args {
                    match a {
                        Term::SeqVar(v) => match self.seqs.get(v) {
                            Some(segment) => new_args.extend(segment.iter().cloned()),
                            None => new_args.push(a.clone()),
                        },
                        other => new_args.push(self.apply(other)),
                    }
                }
                Term::App(*h, Args::from_vec(new_args))
            }
        }
    }

    /// Names of all bound variables (unsorted).
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.vars
            .keys()
            .map(Symbol::as_str)
            .chain(self.seqs.keys().map(Symbol::as_str))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v.as_str()),
            Term::SeqVar(v) => write!(f, "{v}*"),
            Term::Const(v) => write!(f, "{v}"),
            Term::App(h, args) => {
                if let Some((i, j)) = self.as_attr() {
                    return write!(f, "{i}.{j}");
                }
                match (h.as_str(), args.len()) {
                    ("AND", 2) => write!(f, "({} AND {})", args[0], args[1]),
                    ("OR", 2) => write!(f, "({} OR {})", args[0], args[1]),
                    ("NOT", 1) => write!(f, "NOT({})", args[0]),
                    ("=" | "<" | ">" | "<=" | ">=" | "<>" | "+" | "-" | "*" | "/", 2) => {
                        write!(f, "({} {} {})", args[0], h, args[1])
                    }
                    (_, 0) => f.write_str(h.as_str()),
                    _ => {
                        write!(f, "{h}(")?;
                        for (i, a) in args.iter().enumerate() {
                            if i > 0 {
                                f.write_str(", ")?;
                            }
                            write!(f, "{a}")?;
                        }
                        f.write_str(")")
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let t = Term::app(
            "SEARCH",
            vec![
                Term::list(vec![Term::atom("FILM")]),
                Term::app("=", vec![Term::attr(1, 1), Term::int(5)]),
                Term::list(vec![Term::attr(1, 2)]),
            ],
        );
        assert_eq!(t.to_string(), "SEARCH(LIST(FILM), (1.1 = 5), LIST(1.2))");
    }

    #[test]
    fn seqvar_display() {
        let t = Term::list(vec![Term::seq("x"), Term::var("u"), Term::seq("y")]);
        assert_eq!(t.to_string(), "LIST(x*, u, y*)");
    }

    #[test]
    fn apply_splices_sequences() {
        let mut b = Bindings::new();
        b.bind_seq("x", vec![Term::atom("A"), Term::atom("B")]);
        b.bind("u", Term::atom("C"));
        let t = Term::list(vec![Term::seq("x"), Term::var("u")]);
        assert_eq!(
            b.apply(&t),
            Term::list(vec![Term::atom("A"), Term::atom("B"), Term::atom("C")])
        );
    }

    #[test]
    fn apply_empty_segment_vanishes() {
        let mut b = Bindings::new();
        b.bind_seq("x", vec![]);
        let t = Term::list(vec![Term::seq("x"), Term::atom("A")]);
        assert_eq!(b.apply(&t), Term::list(vec![Term::atom("A")]));
    }

    #[test]
    fn positions_and_replace() {
        let t = Term::app("F", vec![Term::app("G", vec![Term::int(1)]), Term::int(2)]);
        let positions = t.positions();
        assert_eq!(positions.len(), 4); // F, G, 1, 2
        assert_eq!(t.at(&[0, 0]), Some(&Term::int(1)));
        let replaced = t.replace_at(&[0, 0], Term::int(9));
        assert_eq!(replaced.at(&[0, 0]), Some(&Term::int(9)));
        assert_eq!(replaced.at(&[1]), Some(&Term::int(2)));
    }

    #[test]
    fn variables_in_order() {
        let t = Term::app(
            "F",
            vec![
                Term::var("y"),
                Term::seq("x"),
                Term::var("y"),
                Term::var("z"),
            ],
        );
        assert_eq!(t.variables(), vec!["y", "x", "z"]);
    }

    #[test]
    fn size_counts_nodes() {
        let t = Term::app("F", vec![Term::app("G", vec![Term::int(1)]), Term::int(2)]);
        assert_eq!(t.size(), 4);
    }

    #[test]
    fn attr_roundtrip() {
        let t = Term::attr(2, 3);
        assert_eq!(t.as_attr(), Some((2, 3)));
        assert_eq!(t.to_string(), "2.3");
    }

    #[test]
    fn groundness() {
        assert!(Term::app("F", vec![Term::int(1)]).is_ground());
        assert!(!Term::app("F", vec![Term::var("x")]).is_ground());
        assert!(!Term::list(vec![Term::seq("x")]).is_ground());
    }

    #[test]
    fn replace_at_shares_siblings() {
        let big = Term::app("G", vec![Term::int(1), Term::int(2)]);
        let t = Term::app("F", vec![big.clone(), Term::int(3)]);
        let replaced = t.replace_at(&[1], Term::int(9));
        let (_, args) = replaced.as_app().unwrap();
        // The untouched first child is the same allocation, not a copy.
        match (&args[0], &big) {
            (Term::App(_, a), Term::App(_, b)) => {
                assert!(Arc::ptr_eq(&a.items, &b.items));
            }
            _ => panic!("expected App"),
        }
    }

    #[test]
    fn equal_terms_hash_equal() {
        let a = Term::app("F", vec![Term::attr(1, 2), Term::str("x")]);
        let b = Term::app("F", vec![Term::attr(1, 2), Term::str("x")]);
        assert_eq!(a, b);
        assert_eq!(a.hash64(), b.hash64());
        assert_ne!(
            a.hash64(),
            Term::app("F", vec![Term::attr(1, 2), Term::str("y")]).hash64()
        );
    }

    #[test]
    fn fingerprint_proves_absence() {
        let t = Term::app("SEARCH", vec![Term::list(vec![Term::atom("FILM")])]);
        assert!(t.may_contain(Symbol::intern("FILM")));
        assert!(t.may_contain(Symbol::intern("LIST")));
        assert!(t.may_contain(Symbol::intern("SEARCH")));
        // Not guaranteed false for arbitrary symbols (Bloom), but a
        // symbol with a distinct bit must be reported absent.
        let absent = Symbol::intern("DEFINITELY_NOT_PRESENT_F");
        if absent.fp_bit() & t.fingerprint() == 0 {
            assert!(!t.may_contain(absent));
        }
    }

    #[test]
    fn ordering_matches_structural_order() {
        // Var < SeqVar < Const < App; Apps by head then args.
        let mut v = vec![
            Term::app("B", vec![]),
            Term::int(1),
            Term::seq("s"),
            Term::var("a"),
            Term::app("A", vec![Term::int(2)]),
            Term::app("A", vec![Term::int(1)]),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Term::var("a"),
                Term::seq("s"),
                Term::int(1),
                Term::app("A", vec![Term::int(1)]),
                Term::app("A", vec![Term::int(2)]),
                Term::app("B", vec![]),
            ]
        );
    }
}
