//! First-order terms with variables and collection variables.
//!
//! Terms are the uniform representation the paper rewrites: LERA operators
//! are interpreted as functions (`SEARCH`, `UNION`, `FIX`, ...), argument
//! collections are the `LIST`/`SET`/`BAG` constructors, qualifications are
//! boolean sub-terms (`AND`, `OR`, comparison functors), and attribute
//! references are `ATTR(i, j)` terms displayed as `i.j`.
//!
//! *Collection variables* (`x*`) stand for argument segments of a
//! collection constructor, "allowing the specification of strategies
//! involving long lists of arguments" (Section 4.1).

use std::collections::HashMap;
use std::fmt;

use eds_adt::Value;

/// Functor names reserved for collection constructors; they get segment
/// (and for `SET`/`BAG` commutative) matching semantics.
pub const COLLECTION_FUNCTORS: [&str; 3] = ["LIST", "SET", "BAG"];

/// A term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An ordinary variable (`x`, `f`, `quali`, `exp'`). Matches exactly
    /// one term.
    Var(String),
    /// A collection (sequence) variable (`x*`). Only legal as a direct
    /// argument of `LIST`/`SET`/`BAG`; matches a segment of arguments.
    SeqVar(String),
    /// A literal constant.
    Const(Value),
    /// A function application `F(t1, ..., tn)`; nullary applications act
    /// as symbolic atoms (relation names, type names).
    App(String, Vec<Term>),
}

impl Term {
    /// Symbolic atom (nullary application).
    pub fn atom(name: impl Into<String>) -> Term {
        Term::App(name.into(), Vec::new())
    }

    /// Application helper.
    pub fn app(name: impl Into<String>, args: Vec<Term>) -> Term {
        Term::App(name.into(), args)
    }

    /// Variable helper.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Sequence-variable helper.
    pub fn seq(name: impl Into<String>) -> Term {
        Term::SeqVar(name.into())
    }

    /// Integer literal helper.
    pub fn int(i: i64) -> Term {
        Term::Const(Value::Int(i))
    }

    /// String literal helper.
    pub fn str(s: impl Into<String>) -> Term {
        Term::Const(Value::Str(s.into()))
    }

    /// Boolean literal helper.
    pub fn bool(b: bool) -> Term {
        Term::Const(Value::Bool(b))
    }

    /// `LIST(...)` constructor.
    pub fn list(items: Vec<Term>) -> Term {
        Term::App("LIST".into(), items)
    }

    /// `SET(...)` constructor.
    pub fn set(items: Vec<Term>) -> Term {
        Term::App("SET".into(), items)
    }

    /// An `ATTR(i, j)` positional attribute reference (displayed `i.j`).
    pub fn attr(rel: i64, attr: i64) -> Term {
        Term::App("ATTR".into(), vec![Term::int(rel), Term::int(attr)])
    }

    /// Is this term an application of `head`?
    pub fn is_app(&self, head: &str) -> bool {
        matches!(self, Term::App(h, _) if h == head)
    }

    /// Application view.
    pub fn as_app(&self) -> Option<(&str, &[Term])> {
        match self {
            Term::App(h, args) => Some((h.as_str(), args.as_slice())),
            _ => None,
        }
    }

    /// Constant view.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            _ => None,
        }
    }

    /// `ATTR(i, j)` view.
    pub fn as_attr(&self) -> Option<(i64, i64)> {
        match self.as_app() {
            Some(("ATTR", [Term::Const(Value::Int(i)), Term::Const(Value::Int(j))])) => {
                Some((*i, *j))
            }
            _ => None,
        }
    }

    /// Is the head a collection constructor (segment-matching semantics)?
    pub fn is_collection_ctor(head: &str) -> bool {
        COLLECTION_FUNCTORS.contains(&head)
    }

    /// True when the term contains no variables of either kind.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) | Term::SeqVar(_) => false,
            Term::Const(_) => true,
            Term::App(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Collect the names of ordinary and sequence variables (in order of
    /// first occurrence, deduplicated).
    pub fn variables(&self) -> Vec<&str> {
        fn walk<'a>(t: &'a Term, out: &mut Vec<&'a str>) {
            match t {
                Term::Var(v) | Term::SeqVar(v) => {
                    if !out.contains(&v.as_str()) {
                        out.push(v);
                    }
                }
                Term::Const(_) => {}
                Term::App(_, args) => args.iter().for_each(|a| walk(a, out)),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Number of nodes in the term (size metric used by termination
    /// arguments: "subsets of rewriting rules can be isolated that either
    /// increase or decrease the number of terms in a query").
    pub fn size(&self) -> usize {
        match self {
            Term::App(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
            _ => 1,
        }
    }

    /// Iterate over all positions (paths) in the term, pre-order. The root
    /// path is empty.
    pub fn positions(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        fn walk(t: &Term, path: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            out.push(path.clone());
            if let Term::App(_, args) = t {
                for (i, a) in args.iter().enumerate() {
                    path.push(i);
                    walk(a, path, out);
                    path.pop();
                }
            }
        }
        walk(self, &mut Vec::new(), &mut out);
        out
    }

    /// The subterm at a position; `None` if the path is invalid.
    pub fn at(&self, path: &[usize]) -> Option<&Term> {
        let mut cur = self;
        for &i in path {
            match cur {
                Term::App(_, args) => cur = args.get(i)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// Replace the subterm at a position, returning the new term.
    pub fn replace_at(&self, path: &[usize], replacement: Term) -> Term {
        if path.is_empty() {
            return replacement;
        }
        match self {
            Term::App(h, args) => {
                let mut new_args = args.clone();
                if let Some(slot) = new_args.get_mut(path[0]) {
                    *slot = slot.replace_at(&path[1..], replacement);
                }
                Term::App(h.clone(), new_args)
            }
            other => other.clone(),
        }
    }
}

/// A substitution: ordinary variables map to terms, sequence variables to
/// term segments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bindings {
    vars: HashMap<String, Term>,
    seqs: HashMap<String, Vec<Term>>,
}

impl Bindings {
    /// Empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binding of an ordinary variable.
    pub fn get(&self, name: &str) -> Option<&Term> {
        self.vars.get(name)
    }

    /// Binding of a sequence variable.
    pub fn get_seq(&self, name: &str) -> Option<&[Term]> {
        self.seqs.get(name).map(Vec::as_slice)
    }

    /// Bind an ordinary variable (overwrites).
    pub fn bind(&mut self, name: impl Into<String>, term: Term) {
        self.vars.insert(name.into(), term);
    }

    /// Bind a sequence variable (overwrites).
    pub fn bind_seq(&mut self, name: impl Into<String>, terms: Vec<Term>) {
        self.seqs.insert(name.into(), terms);
    }

    /// Remove any binding for `name` (used by the matcher to backtrack).
    pub fn remove(&mut self, name: &str) {
        self.vars.remove(name);
        self.seqs.remove(name);
    }

    /// Whether a name has any binding.
    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name) || self.seqs.contains_key(name)
    }

    /// Number of bound names.
    pub fn len(&self) -> usize {
        self.vars.len() + self.seqs.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty() && self.seqs.is_empty()
    }

    /// Apply the substitution to a term. Sequence variables are spliced
    /// into their enclosing argument list. Unbound variables are left in
    /// place (the engine checks rhs groundness separately).
    pub fn apply(&self, term: &Term) -> Term {
        match term {
            Term::Var(v) => self.vars.get(v).cloned().unwrap_or_else(|| term.clone()),
            Term::SeqVar(_) => term.clone(), // splicing happens in App args
            Term::Const(_) => term.clone(),
            Term::App(h, args) => {
                let mut new_args = Vec::with_capacity(args.len());
                for a in args {
                    match a {
                        Term::SeqVar(v) => match self.seqs.get(v) {
                            Some(segment) => new_args.extend(segment.iter().cloned()),
                            None => new_args.push(a.clone()),
                        },
                        other => new_args.push(self.apply(other)),
                    }
                }
                Term::App(h.clone(), new_args)
            }
        }
    }

    /// Names of all bound variables (unsorted).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.vars
            .keys()
            .map(String::as_str)
            .chain(self.seqs.keys().map(String::as_str))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v),
            Term::SeqVar(v) => write!(f, "{v}*"),
            Term::Const(v) => write!(f, "{v}"),
            Term::App(h, args) => {
                if let Some((i, j)) = self.as_attr() {
                    return write!(f, "{i}.{j}");
                }
                match (h.as_str(), args.len()) {
                    ("AND", 2) => write!(f, "({} AND {})", args[0], args[1]),
                    ("OR", 2) => write!(f, "({} OR {})", args[0], args[1]),
                    ("NOT", 1) => write!(f, "NOT({})", args[0]),
                    ("=" | "<" | ">" | "<=" | ">=" | "<>" | "+" | "-" | "*" | "/", 2) => {
                        write!(f, "({} {} {})", args[0], h, args[1])
                    }
                    (_, 0) => f.write_str(h),
                    _ => {
                        write!(f, "{h}(")?;
                        for (i, a) in args.iter().enumerate() {
                            if i > 0 {
                                f.write_str(", ")?;
                            }
                            write!(f, "{a}")?;
                        }
                        f.write_str(")")
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let t = Term::app(
            "SEARCH",
            vec![
                Term::list(vec![Term::atom("FILM")]),
                Term::app("=", vec![Term::attr(1, 1), Term::int(5)]),
                Term::list(vec![Term::attr(1, 2)]),
            ],
        );
        assert_eq!(t.to_string(), "SEARCH(LIST(FILM), (1.1 = 5), LIST(1.2))");
    }

    #[test]
    fn seqvar_display() {
        let t = Term::list(vec![Term::seq("x"), Term::var("u"), Term::seq("y")]);
        assert_eq!(t.to_string(), "LIST(x*, u, y*)");
    }

    #[test]
    fn apply_splices_sequences() {
        let mut b = Bindings::new();
        b.bind_seq("x", vec![Term::atom("A"), Term::atom("B")]);
        b.bind("u", Term::atom("C"));
        let t = Term::list(vec![Term::seq("x"), Term::var("u")]);
        assert_eq!(
            b.apply(&t),
            Term::list(vec![Term::atom("A"), Term::atom("B"), Term::atom("C")])
        );
    }

    #[test]
    fn apply_empty_segment_vanishes() {
        let mut b = Bindings::new();
        b.bind_seq("x", vec![]);
        let t = Term::list(vec![Term::seq("x"), Term::atom("A")]);
        assert_eq!(b.apply(&t), Term::list(vec![Term::atom("A")]));
    }

    #[test]
    fn positions_and_replace() {
        let t = Term::app("F", vec![Term::app("G", vec![Term::int(1)]), Term::int(2)]);
        let positions = t.positions();
        assert_eq!(positions.len(), 4); // F, G, 1, 2
        assert_eq!(t.at(&[0, 0]), Some(&Term::int(1)));
        let replaced = t.replace_at(&[0, 0], Term::int(9));
        assert_eq!(replaced.at(&[0, 0]), Some(&Term::int(9)));
        assert_eq!(replaced.at(&[1]), Some(&Term::int(2)));
    }

    #[test]
    fn variables_in_order() {
        let t = Term::app(
            "F",
            vec![
                Term::var("y"),
                Term::seq("x"),
                Term::var("y"),
                Term::var("z"),
            ],
        );
        assert_eq!(t.variables(), vec!["y", "x", "z"]);
    }

    #[test]
    fn size_counts_nodes() {
        let t = Term::app("F", vec![Term::app("G", vec![Term::int(1)]), Term::int(2)]);
        assert_eq!(t.size(), 4);
    }

    #[test]
    fn attr_roundtrip() {
        let t = Term::attr(2, 3);
        assert_eq!(t.as_attr(), Some((2, 3)));
        assert_eq!(t.to_string(), "2.3");
    }

    #[test]
    fn groundness() {
        assert!(Term::app("F", vec![Term::int(1)]).is_ground());
        assert!(!Term::app("F", vec![Term::var("x")]).is_ground());
        assert!(!Term::list(vec![Term::seq("x")]).is_ground());
    }
}
