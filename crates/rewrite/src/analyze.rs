//! Static analysis of rule sets and strategies (`eds-lint`).
//!
//! The paper's rule language pushes correctness and termination onto the
//! rule author: a malformed rule surfaces as a runtime rewrite failure
//! (`UnboundInRhs`, `UnknownMethod`) or as silent non-termination bounded
//! only by block limits. This module checks a [`RuleSet`] + [`Strategy`] +
//! [`MethodRegistry`] ahead of time and reports structured
//! [`Diagnostic`]s with stable codes:
//!
//! | Code | Severity | Check |
//! |---|---|---|
//! | `EDS001` | error | right-hand-side variable never bound by the LHS or a method output |
//! | `EDS002` | error | constraint / method-input variable never bound at its evaluation point |
//! | `EDS003` | error | method name does not resolve in the registry |
//! | `EDS004` | error | method call arity differs from the declared signature |
//! | `EDS005` | error | method output position holds a non-variable, non-ground term |
//! | `EDS006` | warning | ambiguous collection variables (`x* y*` adjacent in `LIST`, two in `SET`/`BAG`) |
//! | `EDS007` | error | segment variable under a non-collection functor in the LHS (never matches) |
//! | `EDS008` | error | duplicate rule registration (same name silently replaces) |
//! | `EDS009` | warning | block references an unknown rule / sequence references an unknown block |
//! | `EDS010` | warning | size-increasing rule inside a block with an unbounded limit |
//! | `EDS011` | warning | rule LHS subsumed by an earlier unconditional rule in the same block |
//! | `EDS012` | warning | rule pair in an unbounded block whose RHS roots re-feed each other's LHS roots |
//! | `EDS013` | error | LERA operator functor applied with the wrong arity |
//! | `EDS014` | warning | relation atom in an operator input position not found in the catalog |
//! | `EDS015` | warning | attribute reference out of range for the (fully known) search inputs |
//! | `EDS016` | warning | rewrite cycle over root functors spanning several unbounded blocks of the sequence |
//! | `EDS017` | warning | unbounded block introduces functors no later rule in the sequence consumes |
//! | `EDS018` | warning | overlapping rules in an unbounded block diverge with no rejoin (order-dependent results) |
//! | `EDS019` | error | contradictory constraint set: the rule can never fire |
//! | `EDS021` | warning | constraint is tautological or implied by the earlier constraints |
//! | `EDS030` | error | semantic verification refuted the rule: LHS ≢ RHS, counterexample attached |
//! | `EDS031` | info | rule shape outside the provable fragment; differential fuzzing is the only coverage |
//! | `EDS032` | warning | equivalence holds only under a side condition the rule cannot express |
//!
//! (`EDS020` — rule not a member of any block — sits between the two.
//! `EDS030`–`EDS032` are produced by the semantic verification tier in
//! [`crate::verify`], not by [`analyze`]; they share the diagnostic
//! plumbing so `eds-lint --verify` renders them uniformly.)
//!
//! Severity policy: *errors* are defects that make a rule dead or make it
//! fail at application time; *warnings* flag termination hazards and
//! heuristic findings that legitimate rules (the built-in DeMorgan and
//! push-down rules among them) trip by design.
//!
//! Diagnostics come out of [`analyze`] deterministically ordered (by
//! code, then rule, part, path, message, block) and deduplicated, and may
//! carry machine-applicable [`Fix`] suggestions applied by
//! [`apply_fixes`](crate::fixes::apply_fixes) (`eds-lint --fix`).

use std::collections::HashSet;
use std::fmt;

use eds_adt::Value;

use crate::fixes::{Fix, FixTarget};
use crate::flow;
use crate::matching::find_match;
use crate::methods::MethodRegistry;
use crate::overlap;
use crate::rule::{MethodCall, Rule};
use crate::strategy::{Block, Limit, RuleSet, Strategy};
use crate::term::Term;

/// How bad a finding is. `deny`-policy registration rejects on errors
/// only; warnings are always advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; nothing to act on.
    Info,
    /// Heuristic or termination-related finding; the rule may be fine.
    Warning,
    /// The rule is dead or will fail at application time.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("info"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One analyzer finding: a stable code, a severity, the rule/block it
/// belongs to, a span (rule part plus term path), and rendered text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`EDS001`..), never reused across releases.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Owning rule name, when the finding is about a rule.
    pub rule: Option<String>,
    /// Owning block name, when the finding is about block membership.
    pub block: Option<String>,
    /// Which part of the rule: `lhs`, `rhs`, `constraint N`, `method N`,
    /// `block`, `seq`.
    pub part: String,
    /// Term path (child indices) within the part, when one is meaningful.
    pub path: Vec<usize>,
    /// Human-readable description.
    pub message: String,
    /// Machine-applicable fixes; empty when no safe rewrite is known.
    pub suggestions: Vec<Fix>,
}

impl Diagnostic {
    pub(crate) fn new(
        code: &'static str,
        severity: Severity,
        part: impl Into<String>,
        message: String,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            rule: None,
            block: None,
            part: part.into(),
            path: Vec::new(),
            message,
            suggestions: Vec::new(),
        }
    }

    pub(crate) fn for_rule(mut self, rule: &str) -> Self {
        self.rule = Some(rule.to_owned());
        self
    }

    pub(crate) fn in_block(mut self, block: &str) -> Self {
        self.block = Some(block.to_owned());
        self
    }

    fn at(mut self, path: &[usize]) -> Self {
        self.path = path.to_vec();
        self
    }

    pub(crate) fn suggest(mut self, fix: Fix) -> Self {
        self.suggestions.push(fix);
        self
    }

    /// Is this an error-severity finding?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.severity)?;
        f.write_str(" [")?;
        let mut first = true;
        if let Some(r) = &self.rule {
            write!(f, "rule {r}")?;
            first = false;
        }
        if let Some(b) = &self.block {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "block {b}")?;
            first = false;
        }
        if !first {
            f.write_str(", ")?;
        }
        f.write_str(&self.part)?;
        for i in &self.path {
            write!(f, ".{i}")?;
        }
        write!(f, "]: {}", self.message)
    }
}

/// Catalog knowledge the schema-aware checks (`EDS014`/`EDS015`) consult.
/// The algebra/catalog layers sit above this crate, so they supply it as
/// a trait object; passing `None` to [`analyze`] skips those checks.
pub trait SchemaProvider {
    /// Attribute count of a stored relation, or `None` when unknown.
    fn relation_arity(&self, name: &str) -> Option<usize>;
}

/// LERA operator functors and their arities, as produced by the algebra
/// bridge (`expr_to_term`). A rule pattern using one of these heads with a
/// different argument count can never match a translated query — the rule
/// is dead. Kept in sync with `eds-lera`'s term bridge by the core
/// crate's lint-clean test over the built-in library.
const LERA_OPERATORS: [(&str, usize); 11] = [
    ("FILTER", 2),
    ("PROJECTION", 2),
    ("JOIN", 3),
    ("UNION", 1),
    ("DIFFERENCE", 2),
    ("INTERSECT", 2),
    ("SEARCH", 3),
    ("FIX", 2),
    ("NEST", 4),
    ("UNNEST", 2),
    ("DEDUP", 1),
];

fn lera_arity(head: &str) -> Option<usize> {
    LERA_OPERATORS
        .iter()
        .find(|(h, _)| *h == head)
        .map(|&(_, n)| n)
}

/// Analyze a whole knowledge base: every rule plus the strategy layer,
/// plus the whole-sequence abstract interpretation (functor flow,
/// critical pairs). Diagnostics come out deterministically ordered (by
/// code, then rule, part, path, message, block) and deduplicated on
/// everything but the block attribution.
pub fn analyze(
    rules: &RuleSet,
    strategy: &Strategy,
    methods: &MethodRegistry,
    schema: Option<&dyn SchemaProvider>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in rules.iter() {
        out.extend(analyze_rule(rule, methods, schema));
    }
    out.extend(analyze_strategy(rules, strategy));
    flow::check_flow(rules, strategy, &mut out);
    overlap::check_overlaps(rules, strategy, methods, &mut out);
    finalize(out)
}

/// Deterministic output: a stable total order plus deduplication of
/// findings reached through more than one path.
///
/// Separate passes (per-rule analysis, strategy checks, functor flow,
/// critical pairs) can report the same finding once per block a rule
/// belongs to — same code, rule, span (part plus term path) and message,
/// differing only in the `block` attribution. One report is enough, so
/// the dedup key deliberately excludes `block` (and the fix list); the
/// sort places `block` last so such duplicates are adjacent, and the
/// first block in sort order carries the finding.
fn finalize(mut out: Vec<Diagnostic>) -> Vec<Diagnostic> {
    out.sort_by(|a, b| {
        (a.code, &a.rule, &a.part, &a.path, &a.message, &a.block)
            .cmp(&(b.code, &b.rule, &b.part, &b.path, &b.message, &b.block))
    });
    out.dedup_by(|a, b| {
        a.code == b.code
            && a.rule == b.rule
            && a.part == b.part
            && a.path == b.path
            && a.message == b.message
    });
    out
}

/// The duplicate-registration diagnostic (`EDS008`). Emitted by the
/// registration path, not by [`analyze`]: an assembled [`RuleSet`] can no
/// longer show the collision.
pub fn duplicate_rule(name: &str) -> Diagnostic {
    Diagnostic::new(
        "EDS008",
        Severity::Error,
        "rule",
        format!("rule {name} is already registered; re-registering replaces it"),
    )
    .for_rule(name)
}

// --------------------------------------------------------------- rules

/// Run every per-rule check: variable safety, method-call validity,
/// collection-variable lints, operator arities, schema references.
pub fn analyze_rule(
    rule: &Rule,
    methods: &MethodRegistry,
    schema: Option<&dyn SchemaProvider>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_collection_vars(rule, &mut out);
    check_operator_arities(rule, &mut out);
    check_variable_flow(rule, methods, &mut out);
    check_constraint_sanity(rule, &mut out);
    if let Some(schema) = schema {
        check_schema_refs(rule, schema, &mut out);
    }
    for d in &mut out {
        d.rule = Some(rule.name.clone());
    }
    out
}

/// Every part of a rule, with its span label and whether it is matched
/// (LHS) rather than instantiated or evaluated.
fn parts(rule: &Rule) -> Vec<(String, &Term, bool)> {
    let mut parts = vec![("lhs".to_owned(), &rule.lhs, true)];
    for (i, c) in rule.constraints.iter().enumerate() {
        parts.push((format!("constraint {}", i + 1), c, false));
    }
    parts.push(("rhs".to_owned(), &rule.rhs, false));
    for (i, m) in rule.methods.iter().enumerate() {
        for a in &m.args {
            parts.push((format!("method {}", i + 1), a, false));
        }
    }
    parts
}

/// EDS006 / EDS007: collection-variable placement.
fn check_collection_vars(rule: &Rule, out: &mut Vec<Diagnostic>) {
    fn walk(t: &Term, in_lhs: bool, part: &str, path: &mut Vec<usize>, out: &mut Vec<Diagnostic>) {
        let Term::App(head, args) = t else {
            return;
        };
        let head = head.as_str();
        if Term::is_collection_ctor(head) {
            if head == "LIST" {
                for (i, w) in args.windows(2).enumerate() {
                    if let [Term::SeqVar(a), Term::SeqVar(b)] = w {
                        path.push(i);
                        out.push(
                            Diagnostic::new(
                                "EDS006",
                                Severity::Warning,
                                part,
                                format!(
                                    "adjacent segment variables {a}* {b}* split ambiguously; \
                                     the matcher commits to the shortest first segment"
                                ),
                            )
                            .at(path),
                        );
                        path.pop();
                    }
                }
            } else {
                let seqs: Vec<&Term> = args
                    .iter()
                    .filter(|a| matches!(a, Term::SeqVar(_)))
                    .collect();
                if seqs.len() > 1 {
                    out.push(
                        Diagnostic::new(
                            "EDS006",
                            Severity::Warning,
                            part,
                            format!(
                                "{} segment variables in one {head} pattern partition the \
                                 multiset ambiguously (the matcher enumerates every split)",
                                seqs.len()
                            ),
                        )
                        .at(path),
                    );
                }
            }
        } else if in_lhs {
            for (i, a) in args.iter().enumerate() {
                if let Term::SeqVar(v) = a {
                    path.push(i);
                    out.push(
                        Diagnostic::new(
                            "EDS007",
                            Severity::Error,
                            part,
                            format!(
                                "segment variable {v}* under non-collection functor {head} \
                                 never matches; the rule is dead"
                            ),
                        )
                        .at(path),
                    );
                    path.pop();
                }
            }
        }
        for (i, a) in args.iter().enumerate() {
            path.push(i);
            walk(a, in_lhs, part, path, out);
            path.pop();
        }
    }

    for (part, term, is_lhs) in parts(rule) {
        if is_lhs {
            if let Term::SeqVar(v) = term {
                out.push(Diagnostic::new(
                    "EDS007",
                    Severity::Error,
                    part.as_str(),
                    format!("segment variable {v}* cannot be a whole pattern; it never matches"),
                ));
                continue;
            }
        }
        walk(term, is_lhs, &part, &mut Vec::new(), out);
    }
}

/// EDS013: known operator functors applied at the wrong arity. Skipped
/// when a direct argument is a segment variable (splicing changes the
/// count at instantiation time).
fn check_operator_arities(rule: &Rule, out: &mut Vec<Diagnostic>) {
    fn walk(t: &Term, part: &str, path: &mut Vec<usize>, out: &mut Vec<Diagnostic>) {
        let Term::App(head, args) = t else {
            return;
        };
        if let Some(expected) = lera_arity(head.as_str()) {
            let spliced = args.iter().any(|a| matches!(a, Term::SeqVar(_)));
            if !spliced && args.len() != expected {
                out.push(
                    Diagnostic::new(
                        "EDS013",
                        Severity::Error,
                        part,
                        format!(
                            "operator {head} takes {expected} argument(s), found {}; \
                             the pattern can never match a translated query",
                            args.len()
                        ),
                    )
                    .at(path),
                );
            }
        }
        for (i, a) in args.iter().enumerate() {
            path.push(i);
            walk(a, part, path, out);
            path.pop();
        }
    }
    for (part, term, _) in parts(rule) {
        walk(term, &part, &mut Vec::new(), out);
    }
}

/// EDS001 / EDS002 / EDS003 / EDS004 / EDS005: dataflow over the rule's
/// evaluation order — LHS binds, then constraints run in order (method
/// constraints may bind their outputs), then methods run in order, then
/// the RHS is instantiated.
fn check_variable_flow(rule: &Rule, methods: &MethodRegistry, out: &mut Vec<Diagnostic>) {
    let mut bound: HashSet<&str> = rule.lhs.variables().into_iter().collect();

    for (i, c) in rule.constraints.iter().enumerate() {
        let part = format!("constraint {}", i + 1);
        check_condition(c, &part, &mut bound, methods, out);
    }
    for (i, m) in rule.methods.iter().enumerate() {
        let part = format!("method {}", i + 1);
        check_method_call(&m.name, &m.args, &part, &mut bound, methods, out);
    }
    for v in rule.rhs.variables() {
        if !bound.contains(v) {
            let mut d = Diagnostic::new(
                "EDS001",
                Severity::Error,
                "rhs",
                format!(
                    "right-hand side uses variable {v} which neither the LHS nor any \
                     method output binds; application would fail with UnboundInRhs"
                ),
            );
            if let Some(fix) = bind_via_method_fix(rule, v, methods) {
                d = d.suggest(fix);
            }
            out.push(d);
        }
    }
}

/// The EDS001 remediation: append a binding method call for the unbound
/// variable. Prefers the paper's `SCHEMA(input, output)` when its
/// standard signature is registered, falling back to the built-in
/// `EVALUATE(expr, out)`.
fn bind_via_method_fix(rule: &Rule, var: &str, methods: &MethodRegistry) -> Option<Fix> {
    let name = ["SCHEMA", "EVALUATE"].into_iter().find(|n| {
        methods
            .signature(n)
            .is_some_and(|s| s.arity == 2 && s.outputs == [1])
    })?;
    let input = rule
        .lhs
        .variables()
        .first()
        .map_or_else(|| Term::int(0), |v| Term::var(*v));
    let mut fixed = rule.clone();
    fixed.methods.push(MethodCall {
        name: name.to_owned(),
        args: vec![input.clone(), Term::var(var)],
    });
    Some(Fix {
        description: format!("bind {var} via {name}({input}, {var})"),
        target: FixTarget::Rule(rule.name.clone()),
        replacement: format!("{fixed} ;"),
    })
}

/// Check one constraint recursively, mirroring `eval_constraint`'s
/// structure: connectives recurse, `ISA`'s specification position may be
/// a deliberately unbound name (Figure 12's `ISA(x, constant)`), and
/// registered methods act as predicates that may bind outputs.
fn check_condition<'r>(
    c: &'r Term,
    part: &str,
    bound: &mut HashSet<&'r str>,
    methods: &MethodRegistry,
    out: &mut Vec<Diagnostic>,
) {
    if let Term::App(head, args) = c {
        match (head.as_str(), args.len()) {
            ("AND" | "OR", 2) => {
                check_condition(&args[0], part, bound, methods, out);
                check_condition(&args[1], part, bound, methods, out);
                return;
            }
            ("NOT", 1) => {
                check_condition(&args[0], part, bound, methods, out);
                return;
            }
            ("ISA", 2) => {
                // The spec position reads an unbound variable as a type
                // name (`constant`, `INT`, ...): exempt it.
                require_bound(&args[0], part, bound, out);
                return;
            }
            (name, _) if methods.contains(name) => {
                check_method_call(name, args, part, bound, methods, out);
                return;
            }
            _ => {}
        }
    }
    require_bound(c, part, bound, out);
}

/// EDS002 for every variable of `t` not in `bound`.
fn require_bound(t: &Term, part: &str, bound: &HashSet<&str>, out: &mut Vec<Diagnostic>) {
    for v in t.variables() {
        if !bound.contains(v) {
            out.push(Diagnostic::new(
                "EDS002",
                Severity::Error,
                part,
                format!(
                    "variable {v} is not bound at this point (not in the LHS and \
                     not an earlier method output); the condition can never hold"
                ),
            ));
        }
    }
}

/// EDS003/EDS004/EDS005 plus input-boundness for one method call, in
/// constraint or conclusion position. Extends `bound` with whatever the
/// call can bind.
fn check_method_call<'r>(
    name: &str,
    args: &'r [Term],
    part: &str,
    bound: &mut HashSet<&'r str>,
    methods: &MethodRegistry,
    out: &mut Vec<Diagnostic>,
) {
    if !methods.contains(name) {
        out.push(Diagnostic::new(
            "EDS003",
            Severity::Error,
            part,
            format!(
                "unknown method {name}; application would fail with UnknownMethod \
                 at the first match"
            ),
        ));
        // Can't reason about the call; assume it binds its arguments so
        // one defect doesn't cascade into spurious EDS001s.
        bind_all(args, bound);
        return;
    }
    let Some(sig) = methods.signature(name) else {
        // Registered without a signature (user closure): existence is all
        // we can check. Match the engine's historical leniency: any
        // argument variable counts as bindable.
        bind_all(args, bound);
        return;
    };
    if args.len() != sig.arity {
        out.push(Diagnostic::new(
            "EDS004",
            Severity::Error,
            part,
            format!(
                "method {name} takes {} argument(s), found {}; the call would fail",
                sig.arity,
                args.len()
            ),
        ));
        bind_all(args, bound);
        return;
    }
    for (idx, arg) in args.iter().enumerate() {
        if sig.is_output(idx) {
            match arg {
                Term::Var(_) => {}
                t if t.is_ground() => {} // a ground output makes the method a check
                other => out.push(
                    Diagnostic::new(
                        "EDS005",
                        Severity::Error,
                        part,
                        format!(
                            "output argument {} of {name} must be a variable (or a \
                             ground term used as a check), found {other}",
                            idx + 1
                        ),
                    )
                    .at(&[idx]),
                ),
            }
        } else {
            for v in arg.variables() {
                if !bound.contains(v) {
                    out.push(
                        Diagnostic::new(
                            "EDS002",
                            Severity::Error,
                            part,
                            format!(
                                "input argument {} of {name} references variable {v} \
                                 which is not bound at this point",
                                idx + 1
                            ),
                        )
                        .at(&[idx]),
                    );
                }
            }
        }
    }
    for &idx in sig.outputs {
        if let Some(arg) = args.get(idx) {
            bind_all(std::slice::from_ref(arg), bound);
        }
    }
}

fn bind_all<'r>(args: &'r [Term], bound: &mut HashSet<&'r str>) {
    for a in args {
        for v in a.variables() {
            bound.insert(v);
        }
    }
}

/// EDS014 / EDS015: catalog-aware reference checks.
fn check_schema_refs(rule: &Rule, schema: &dyn SchemaProvider, out: &mut Vec<Diagnostic>) {
    fn relation_inputs<'t>(head: &str, args: &'t [Term]) -> Vec<&'t Term> {
        match head {
            "FILTER" | "PROJECTION" | "UNNEST" | "DEDUP" | "NEST" => {
                args.first().into_iter().collect()
            }
            "JOIN" | "DIFFERENCE" | "INTERSECT" => args.iter().take(2).collect(),
            // FIX's first argument names the recursion, not a stored
            // relation; its body is an expression.
            "SEARCH" => match args.first().and_then(Term::as_app) {
                Some(("LIST", elems)) => elems.iter().collect(),
                _ => Vec::new(),
            },
            "UNION" => match args.first().and_then(Term::as_app) {
                Some(("SET", elems)) => elems.iter().collect(),
                _ => Vec::new(),
            },
            _ => Vec::new(),
        }
    }

    fn walk(t: &Term, part: &str, schema: &dyn SchemaProvider, out: &mut Vec<Diagnostic>) {
        let Some((head, args)) = t.as_app() else {
            return;
        };
        if lera_arity(head).is_some() {
            for input in relation_inputs(head, args) {
                if let Some((name, [])) = input.as_app() {
                    if !matches!(name, "TRUE" | "FALSE" | "NULL")
                        && schema.relation_arity(name).is_none()
                    {
                        out.push(Diagnostic::new(
                            "EDS014",
                            Severity::Warning,
                            part,
                            format!("relation {name} is not in the catalog"),
                        ));
                    }
                }
            }
            // Attribute-range check: only when every input of a SEARCH is
            // a known stored relation (rare in rules, common in seeded
            // plans and fixtures).
            if head == "SEARCH" {
                if let Some(("LIST", inputs)) = args.first().and_then(Term::as_app) {
                    let arities: Option<Vec<usize>> = inputs
                        .iter()
                        .map(|i| match i.as_app() {
                            Some((name, [])) => schema.relation_arity(name),
                            _ => None,
                        })
                        .collect();
                    if let Some(arities) = arities {
                        for scalar in args.iter().skip(1) {
                            check_attr_refs(scalar, &arities, part, out);
                        }
                    }
                }
            }
        }
        for a in args {
            walk(a, part, schema, out);
        }
    }

    fn check_attr_refs(t: &Term, arities: &[usize], part: &str, out: &mut Vec<Diagnostic>) {
        if let Some((idx, col)) = t.as_attr() {
            if idx < 1 || idx as usize > arities.len() {
                out.push(Diagnostic::new(
                    "EDS015",
                    Severity::Warning,
                    part,
                    format!(
                        "attribute reference {idx}.{col} addresses input {idx} but the \
                         search has {} input(s)",
                        arities.len()
                    ),
                ));
            } else if col < 1 || col as usize > arities[idx as usize - 1] {
                out.push(Diagnostic::new(
                    "EDS015",
                    Severity::Warning,
                    part,
                    format!(
                        "attribute reference {idx}.{col} is out of range: input {idx} \
                         has {} attribute(s)",
                        arities[idx as usize - 1]
                    ),
                ));
            }
            return;
        }
        if let Some((_, args)) = t.as_app() {
            for a in args {
                check_attr_refs(a, arities, part, out);
            }
        }
    }

    for (part, term, _) in parts(rule) {
        walk(term, &part, schema, out);
    }
}

// -------------------------------------------------- constraint algebra

/// Comparison functors the entailment engine reasons about.
pub(crate) const CMP_OPS: [&str; 6] = ["=", "<>", "<", "<=", ">", ">="];

/// Flatten top-level `AND`s into conjuncts.
pub fn conjuncts(t: &Term) -> Vec<&Term> {
    match t.as_app() {
        Some(("AND", [a, b])) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        _ => vec![t],
    }
}

fn as_cmp(t: &Term) -> Option<(&'static str, &Term, &Term)> {
    let (h, args) = t.as_app()?;
    if args.len() != 2 {
        return None;
    }
    CMP_OPS
        .iter()
        .find(|&&op| op == h)
        .map(|&op| (op, &args[0], &args[1]))
}

/// Widen a ground numeric constant — `Int` or `Real` — to an exact `f64`.
/// Integers outside the 2^53 exactly-representable window widen lossily,
/// so they are rejected rather than reasoned about incorrectly; the same
/// goes for non-finite reals. All comparisons on the widened values go
/// through `total_cmp`, which agrees with the ordinary ordering on the
/// finite values admitted here.
fn as_num(t: &Term) -> Option<f64> {
    const EXACT: i64 = 1 << 53;
    match t.as_const()? {
        Value::Int(n) if (-EXACT..=EXACT).contains(n) => Some(*n as f64),
        Value::Real(r) if r.0.is_finite() => Some(r.0),
        _ => None,
    }
}

fn num_eq(a: f64, b: f64) -> bool {
    a.total_cmp(&b) == std::cmp::Ordering::Equal
}

fn flip(op: &str) -> &'static str {
    match op {
        "<" => ">",
        ">" => "<",
        "<=" => ">=",
        ">=" => "<=",
        "=" => "=",
        _ => "<>",
    }
}

/// Orient a comparison so a ground-numeric operand sits on the right.
fn oriented(t: &Term) -> Option<(&'static str, &Term, &Term)> {
    let (op, l, r) = as_cmp(t)?;
    if as_num(l).is_some() && as_num(r).is_none() {
        Some((flip(op), r, l))
    } else {
        Some((op, l, r))
    }
}

/// Evaluate a comparison between ground constants, where decidable.
/// Numeric constants compare after Int↔Real widening, so `3 = 3.0` is
/// decided `true` exactly as the runtime comparison decides it.
fn eval_ground(op: &str, l: &Term, r: &Term) -> Option<bool> {
    if let (Some(a), Some(b)) = (as_num(l), as_num(r)) {
        let ord = a.total_cmp(&b);
        return Some(match op {
            "=" => ord.is_eq(),
            "<>" => ord.is_ne(),
            "<" => ord.is_lt(),
            "<=" => ord.is_le(),
            ">" => ord.is_gt(),
            _ => ord.is_ge(),
        });
    }
    let (lc, rc) = (l.as_const()?, r.as_const()?);
    match op {
        "=" => Some(lc == rc),
        "<>" => Some(lc != rc),
        _ => None,
    }
}

/// Is the condition true under every binding?
pub fn tautology(c: &Term) -> bool {
    if matches!(c.as_const(), Some(Value::Bool(true))) {
        return true;
    }
    let Some((op, l, r)) = as_cmp(c) else {
        return false;
    };
    if let Some(v) = eval_ground(op, l, r) {
        return v;
    }
    l == r && matches!(op, "=" | "<=" | ">=")
}

/// Is the condition false under every binding?
fn self_contradictory(c: &Term) -> bool {
    if matches!(c.as_const(), Some(Value::Bool(false))) {
        return true;
    }
    let Some((op, l, r)) = as_cmp(c) else {
        return false;
    };
    if let Some(v) = eval_ground(op, l, r) {
        return !v;
    }
    l == r && matches!(op, "<" | ">" | "<>")
}

/// One-sided bound on a numeric variable: the constant plus whether the
/// bound is exclusive (strict).
type Bound = (f64, bool);

/// The interval denoted by `x op k` over the widened numeric domain
/// (`None` = unbounded on that side). Bounds stay symbolic — no ±1
/// adjustment — because the variable may be `Real`-valued: `x > 3 AND
/// x < 4` is satisfiable at `x = 3.5`, so integer-gap reasoning would be
/// unsound here. Only called for ordering ops and `=`, never `<>`.
fn interval(op: &str, k: f64) -> (Option<Bound>, Option<Bound>) {
    match op {
        "=" => (Some((k, false)), Some((k, false))),
        "<" => (None, Some((k, true))),
        "<=" => (None, Some((k, false))),
        ">" => (Some((k, true)), None),
        _ => (Some((k, false)), None), // ">="
    }
}

/// Can `l op1 r` and `l op2 r` hold together for *any* l, r?
fn incompatible(a: &str, b: &str) -> bool {
    let pair = |x: &str, y: &str| (a == x && b == y) || (a == y && b == x);
    pair("<", ">")
        || pair("<", ">=")
        || pair("<", "=")
        || pair("<=", ">")
        || pair("=", "<>")
        || pair("=", ">")
}

/// Do two conjuncts contradict each other?
fn pair_contradicts(a: &Term, b: &Term) -> bool {
    let (Some((op1, l1, r1)), Some((op2, l2, r2))) = (oriented(a), oriented(b)) else {
        return false;
    };
    if l1 == l2 && r1 == r2 && incompatible(op1, op2) {
        return true;
    }
    // Swapped sides: restate b over (l1, r1) by flipping its operator.
    if l1 == r2 && r1 == l2 && incompatible(op1, flip(op2)) {
        return true;
    }
    if l1 == l2 {
        if let (Some(k1), Some(k2)) = (as_num(r1), as_num(r2)) {
            return bounds_empty(op1, k1, op2, k2);
        }
        if let (Some(c1), Some(c2)) = (r1.as_const(), r2.as_const()) {
            let eq_ne = (op1 == "=" && op2 == "<>") || (op1 == "<>" && op2 == "=");
            return (op1 == "=" && op2 == "=" && c1 != c2) || (eq_ne && c1 == c2);
        }
    }
    false
}

/// Is the set of numbers satisfying both `x op1 k1` and `x op2 k2`
/// empty?
fn bounds_empty(op1: &str, k1: f64, op2: &str, k2: f64) -> bool {
    match (op1, op2) {
        ("<>", "=") | ("=", "<>") => num_eq(k1, k2),
        ("<>", _) | (_, "<>") => false,
        _ => {
            let (lo1, hi1) = interval(op1, k1);
            let (lo2, hi2) = interval(op2, k2);
            // Tighter bound wins; on a value tie a strict bound is
            // tighter than an inclusive one.
            let lo = [lo1, lo2]
                .into_iter()
                .flatten()
                .max_by(|(a, sa), (b, sb)| a.total_cmp(b).then(sa.cmp(sb)));
            let hi = [hi1, hi2]
                .into_iter()
                .flatten()
                .min_by(|(a, sa), (b, sb)| a.total_cmp(b).then(sb.cmp(sa)));
            match (lo, hi) {
                (Some((l, ls)), Some((h, hs))) => {
                    l.total_cmp(&h).is_gt() || (num_eq(l, h) && (ls || hs))
                }
                _ => false,
            }
        }
    }
}

/// Is the whole conjunct set unsatisfiable (by the decidable fragment:
/// literals, ground comparisons, irreflexivity, pairwise interval and
/// operator conflicts)?
pub fn contradicts(conjunct_set: &[&Term]) -> bool {
    if conjunct_set.iter().any(|c| self_contradictory(c)) {
        return true;
    }
    for (i, a) in conjunct_set.iter().enumerate() {
        for b in conjunct_set.iter().skip(i + 1) {
            if pair_contradicts(a, b) {
                return true;
            }
        }
    }
    false
}

/// Does `x opp kp` imply `x opc kc` over the rationals?
fn cmp_implies(opp: &str, kp: f64, opc: &str, kc: f64) -> bool {
    if opp == "<>" {
        return opc == "<>" && num_eq(kp, kc);
    }
    if opc == "=" {
        return opp == "=" && num_eq(kp, kc);
    }
    if opc == "<>" {
        // The premise interval must exclude kc.
        let (lo, hi) = interval(opp, kp);
        return lo.is_some_and(|(l, s)| kc < l || (num_eq(kc, l) && s))
            || hi.is_some_and(|(h, s)| kc > h || (num_eq(kc, h) && s));
    }
    // The conclusion interval must contain the premise interval. On a
    // bound-value tie the conclusion side must be no stricter than the
    // premise side.
    let (plo, phi) = interval(opp, kp);
    let (clo, chi) = interval(opc, kc);
    let lo_ok = match (clo, plo) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some((c, cs)), Some((p, ps))) => p > c || (num_eq(p, c) && (!cs || ps)),
    };
    let hi_ok = match (chi, phi) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some((c, cs)), Some((p, ps))) => p < c || (num_eq(p, c) && (!cs || ps)),
    };
    lo_ok && hi_ok
}

/// Do the premises provably entail the conclusion? Sound but incomplete:
/// syntactic equality, tautologies, and single-premise comparison
/// weakening over ground numeric bounds (Int and Real widened to a
/// shared rational view).
pub fn entails(premises: &[&Term], conclusion: &Term) -> bool {
    if tautology(conclusion) || premises.contains(&conclusion) {
        return true;
    }
    let Some((opc, lc, rc)) = oriented(conclusion) else {
        return false;
    };
    let Some(kc) = as_num(rc) else {
        return false;
    };
    premises.iter().any(|p| {
        oriented(p).is_some_and(|(opp, lp, rp)| {
            lp == lc && as_num(rp).is_some_and(|kp| cmp_implies(opp, kp, opc, kc))
        })
    })
}

/// A fix that deletes the whole rule.
fn delete_rule_fix(rule: &Rule, description: String) -> Fix {
    Fix {
        description,
        target: FixTarget::Rule(rule.name.clone()),
        replacement: String::new(),
    }
}

/// EDS019 / EDS021: contradiction and redundancy over a rule's constraint
/// set.
fn check_constraint_sanity(rule: &Rule, out: &mut Vec<Diagnostic>) {
    if rule.constraints.is_empty() {
        return;
    }
    let all: Vec<&Term> = rule.constraints.iter().flat_map(conjuncts).collect();
    if contradicts(&all) {
        out.push(
            Diagnostic::new(
                "EDS019",
                Severity::Error,
                "constraint",
                format!(
                    "the constraint set {{{}}} is contradictory: no binding can satisfy \
                     it, so the rule can never fire",
                    rule.constraints
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )
            .suggest(delete_rule_fix(
                rule,
                format!("delete the unmatchable rule {}", rule.name),
            )),
        );
        return;
    }
    for (i, c) in rule.constraints.iter().enumerate() {
        let parts: Vec<&Term> = conjuncts(c);
        let earlier: Vec<&Term> = rule.constraints[..i].iter().flat_map(conjuncts).collect();
        let reason = if parts.iter().all(|p| tautology(p)) {
            Some("is always true")
        } else if !earlier.is_empty() && parts.iter().all(|p| entails(&earlier, p)) {
            Some("is implied by the constraints before it")
        } else {
            None
        };
        if let Some(reason) = reason {
            let mut slimmed = rule.clone();
            slimmed.constraints.remove(i);
            out.push(
                Diagnostic::new(
                    "EDS021",
                    Severity::Warning,
                    format!("constraint {}", i + 1),
                    format!("constraint {c} {reason}; it only costs evaluation time"),
                )
                .suggest(Fix {
                    description: format!("remove the redundant constraint {c}"),
                    target: FixTarget::Rule(rule.name.clone()),
                    replacement: format!("{slimmed} ;"),
                }),
            );
        }
    }
}

// ------------------------------------------------------------ strategy

/// EDS009 / EDS010 / EDS011 / EDS012: block-level and sequence-level
/// checks over the assembled strategy.
pub fn analyze_strategy(rules: &RuleSet, strategy: &Strategy) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    for block in strategy.blocks() {
        let mut seen: HashSet<&str> = HashSet::new();
        for name in &block.rules {
            if rules.get(name).is_none() {
                out.push(
                    Diagnostic::new(
                        "EDS009",
                        Severity::Warning,
                        "block",
                        format!(
                            "block {} references rule {name} which is not registered; \
                             the member is skipped at run time",
                            block.name
                        ),
                    )
                    .in_block(&block.name),
                );
            }
            if !seen.insert(name.as_str()) {
                let mut kept: Vec<String> = Vec::new();
                for member in &block.rules {
                    if !kept.contains(member) {
                        kept.push(member.clone());
                    }
                }
                let deduped = Block {
                    name: block.name.clone(),
                    rules: kept,
                    limit: block.limit,
                };
                out.push(
                    Diagnostic::new(
                        "EDS011",
                        Severity::Warning,
                        "block",
                        format!("rule {name} is listed twice in block {}", block.name),
                    )
                    .for_rule(name)
                    .in_block(&block.name)
                    .suggest(Fix {
                        description: format!("drop the repeated members of block {}", block.name),
                        target: FixTarget::Block(block.name.clone()),
                        replacement: format!("{deduped} ;"),
                    }),
                );
            }
        }

        let members: Vec<&Rule> = block.rules.iter().filter_map(|n| rules.get(n)).collect();

        if block.limit == Limit::Infinite {
            for rule in &members {
                if rule.rhs.size() > rule.lhs.size() {
                    out.push(
                        Diagnostic::new(
                            "EDS010",
                            Severity::Warning,
                            "rule",
                            format!(
                                "rule grows the term (|lhs| = {}, |rhs| = {}) inside block {} \
                                 whose limit is unbounded; termination relies on structure the \
                                 Section-4.2 decreasing heuristic cannot see",
                                rule.lhs.size(),
                                rule.rhs.size(),
                                block.name
                            ),
                        )
                        .for_rule(&rule.name)
                        .in_block(&block.name)
                        .suggest(flow::finite_limit_fix(block)),
                    );
                }
            }
            for (i, a) in members.iter().enumerate() {
                for b in members.iter().skip(i + 1) {
                    if self_feeding_pair(a, b) {
                        out.push(
                            Diagnostic::new(
                                "EDS012",
                                Severity::Warning,
                                "block",
                                format!(
                                    "rules {} and {} re-feed each other's LHS root functors \
                                     ({} <-> {}) in block {} with an unbounded limit: a \
                                     potential rewrite cycle",
                                    a.name,
                                    b.name,
                                    a.lhs.head().map_or_else(String::new, |h| h.to_string()),
                                    b.lhs.head().map_or_else(String::new, |h| h.to_string()),
                                    block.name
                                ),
                            )
                            .for_rule(&a.name)
                            .in_block(&block.name),
                        );
                    }
                }
            }
        }

        // Subsumption modulo constraints: an earlier method-free rule
        // whose LHS matches a later rule's LHS — and whose constraints,
        // instantiated through that match, are provably entailed by the
        // later rule's own constraints — fires first wherever the later
        // rule would.
        for (i, general) in members.iter().enumerate() {
            if !general.methods.is_empty() {
                continue;
            }
            for specific in members.iter().skip(i + 1) {
                if general.name == specific.name {
                    continue;
                }
                let Some(binds) = find_match(&general.lhs, &freeze(&specific.lhs)) else {
                    continue;
                };
                let premises_owned: Vec<Term> = specific.constraints.iter().map(freeze).collect();
                let premises: Vec<&Term> = premises_owned.iter().flat_map(conjuncts).collect();
                let weaker = general.constraints.iter().all(|c| {
                    let inst = binds.apply(c);
                    conjuncts(&inst).iter().all(|p| entails(&premises, p))
                });
                if !weaker {
                    continue;
                }
                let trimmed = Block {
                    name: block.name.clone(),
                    rules: block
                        .rules
                        .iter()
                        .filter(|n| *n != &specific.name)
                        .cloned()
                        .collect(),
                    limit: block.limit,
                };
                let condition = if general.constraints.is_empty() {
                    "unconditional".to_owned()
                } else {
                    "conditional (its constraints are provably no stronger)".to_owned()
                };
                out.push(
                    Diagnostic::new(
                        "EDS011",
                        Severity::Warning,
                        "block",
                        format!(
                            "LHS is subsumed by the earlier {condition} rule {} in \
                             block {}; this rule can never fire there",
                            general.name, block.name
                        ),
                    )
                    .for_rule(&specific.name)
                    .in_block(&block.name)
                    .suggest(Fix {
                        description: format!(
                            "remove the shadowed rule {} from block {}",
                            specific.name, block.name
                        ),
                        target: FixTarget::Block(block.name.clone()),
                        replacement: format!("{trimmed} ;"),
                    }),
                );
            }
        }
    }

    // EDS020: a registered rule no block ever lists is dead weight — the
    // strategy can never apply it.
    if strategy.blocks().next().is_some() {
        for rule in rules.iter() {
            let listed = strategy
                .blocks()
                .any(|b| b.rules.iter().any(|n| n == &rule.name));
            if !listed {
                out.push(
                    Diagnostic::new(
                        "EDS020",
                        Severity::Warning,
                        "rule",
                        format!(
                            "rule {} is not a member of any block; the strategy can \
                             never apply it",
                            rule.name
                        ),
                    )
                    .for_rule(&rule.name),
                );
            }
        }
    }

    if let Some(seq) = &strategy.sequence {
        for name in &seq.blocks {
            if strategy.block(name).is_none() {
                out.push(Diagnostic::new(
                    "EDS009",
                    Severity::Warning,
                    "seq",
                    format!(
                        "sequence references block {name} which is not defined; \
                         it is skipped at run time"
                    ),
                ));
            }
        }
    }

    out
}

/// Two distinct-rooted rules whose RHS roots feed each other's LHS roots,
/// with no size argument that the cycle shrinks.
fn self_feeding_pair(a: &Rule, b: &Rule) -> bool {
    let (Some(la), Some(ra), Some(lb), Some(rb)) =
        (a.lhs.head(), a.rhs.head(), b.lhs.head(), b.rhs.head())
    else {
        return false;
    };
    la != ra && ra == lb && rb == la && !(a.is_decreasing() && b.is_decreasing())
}

/// Freeze a pattern's variables to fresh atoms (segment variables freeze
/// to a single fresh element), so that matching another pattern against
/// the frozen term decides subsumption: the matcher succeeds iff the
/// general pattern covers every instance of the frozen one. Sound for the
/// Warning it backs; segment freezing makes it approximate in both
/// directions, which DESIGN.md documents.
fn freeze(t: &Term) -> Term {
    match t {
        Term::Var(v) => Term::atom(format!("\u{1}v{v}")),
        Term::SeqVar(v) => Term::atom(format!("\u{1}s{v}")),
        Term::Const(_) => t.clone(),
        Term::App(h, args) => {
            let frozen: Vec<Term> = args.iter().map(freeze).collect();
            Term::App(*h, frozen.into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_source;
    use crate::strategy::{Block, Sequence};
    use crate::SourceItem;

    fn load(src: &str) -> (RuleSet, Strategy) {
        let mut rules = RuleSet::new();
        let mut strategy = Strategy::new();
        for item in parse_source(src).unwrap() {
            match item {
                SourceItem::Rule(r) => {
                    rules.add(r);
                }
                SourceItem::Block(b) => strategy.add_block(b),
                SourceItem::Seq(s) => strategy.set_sequence(s),
            }
        }
        (rules, strategy)
    }

    #[test]
    fn clean_rule_has_no_diagnostics() {
        let (rules, strategy) = load(
            "Unwrap : F(G(x)) / --> x / ;\n\
             block(b, {Unwrap}, INF) ;\n\
             seq((b), 1) ;",
        );
        let methods = MethodRegistry::with_builtins();
        assert!(analyze(&rules, &strategy, &methods, None).is_empty());
    }

    #[test]
    fn subsumption_respects_segment_cardinality() {
        // SET(u, v) does not subsume SET(u, v, w*): the frozen w* stands
        // for at least one element.
        let (rules, strategy) = load(
            "Two   : F(SET(u, v)) / --> u / ;\n\
             Three : F(SET(u, v, w*)) / --> u / ;\n\
             block(b, {Two, Three}, 10) ;",
        );
        let methods = MethodRegistry::with_builtins();
        let diags = analyze(&rules, &strategy, &methods, None);
        assert!(!diags.iter().any(|d| d.code == "EDS011"), "{diags:?}");
    }

    #[test]
    fn identical_lhs_is_subsumed() {
        let (rules, strategy) = load(
            "First  : F(x) / --> A / ;\n\
             Second : F(y) / --> B / ;\n\
             block(b, {First, Second}, 10) ;",
        );
        let methods = MethodRegistry::with_builtins();
        let diags = analyze(&rules, &strategy, &methods, None);
        let hit = diags
            .iter()
            .find(|d| d.code == "EDS011")
            .expect("subsumption must be reported");
        assert_eq!(hit.rule.as_deref(), Some("Second"));
        assert_eq!(hit.severity, Severity::Warning);
    }

    #[test]
    fn display_renders_code_locus_and_path() {
        let d = Diagnostic::new("EDS001", Severity::Error, "rhs", "boom".into())
            .for_rule("R")
            .at(&[0, 1]);
        assert_eq!(d.to_string(), "EDS001 error [rule R, rhs.0.1]: boom");
    }

    #[test]
    fn strategy_reference_checks() {
        let mut rules = RuleSet::new();
        rules.add(Rule::simple(
            "Known",
            Term::app("F", vec![Term::var("x")]),
            Term::var("x"),
        ));
        let mut strategy = Strategy::new();
        strategy.add_block(Block {
            name: "b".into(),
            rules: vec!["Known".into(), "Missing".into()],
            limit: Limit::Finite(5),
        });
        strategy.set_sequence(Sequence {
            blocks: vec!["b".into(), "ghost".into()],
            passes: 1,
        });
        let diags = analyze_strategy(&rules, &strategy);
        assert_eq!(diags.iter().filter(|d| d.code == "EDS009").count(), 2);
    }
}
