//! Critical-pair overlap detection inside unbounded blocks (`EDS018`).
//!
//! Two rules of the same saturating block *overlap* when one rule's LHS
//! unifies with a non-variable position of the other's LHS: the unified
//! term (the *peak*) can be rewritten two different ways, and which way
//! the engine picks depends on rule order and traversal order. The pair
//! is only worth a warning when the two reducts are *divergent* — not
//! syntactically equal and not joinable by normalizing both sides with
//! every pure rule of the knowledge base (a bounded, global joinability
//! oracle in the spirit of Knuth–Bendix completion, minus completion).
//!
//! Scope limits, documented in DESIGN.md §4: only pure rules (no
//! constraints, no method calls) participate, rules mentioning segment
//! variables are skipped (unification is syntactic first-order), a rule's
//! overlap with itself at the root is ignored (trivially joinable), and
//! the joinability normalizer runs under a finite budget so detection
//! errs toward reporting.

use std::collections::{HashMap, HashSet};

use crate::analyze::{Diagnostic, Severity};
use crate::methods::{BasicEnv, MethodRegistry};
use crate::rule::Rule;
use crate::strategy::{apply_block, Block, Limit, RuleSet, Strategy};
use crate::symbol::Symbol;
use crate::term::Term;

/// Condition-check budget for the joinability normalizer. One unit buys
/// one rule-match *attempt* (not one rewrite), so a knowledge base with
/// R pure rules spends R per sweep; 4096 funds dozens of sweeps over
/// critical-pair-sized terms while still bounding a diverging normalizer.
const JOIN_BUDGET: u64 = 4096;

/// Bounded joinability oracle over the pure rules of a knowledge base.
///
/// Normalizes symbolic terms (variables frozen to opaque atoms, see
/// [`JoinOracle::normalize`]) with every constraint- and method-free rule
/// under a finite budget. Shared between the EDS018 overlap check and the
/// rule-discovery pipeline's redundancy gate ([`crate::discover`]).
pub(crate) struct JoinOracle<'a> {
    rules: &'a RuleSet,
    methods: &'a MethodRegistry,
    block: Block,
    env: BasicEnv,
}

impl<'a> JoinOracle<'a> {
    /// Build the oracle over all pure rules of `rules`.
    pub(crate) fn new(rules: &'a RuleSet, methods: &'a MethodRegistry) -> Self {
        let norm_names: Vec<String> = rules
            .iter()
            .filter(|r| is_pure(r))
            .map(|r| r.name.clone())
            .collect();
        Self {
            rules,
            methods,
            block: Block {
                name: "<joinability>".to_owned(),
                rules: norm_names,
                limit: Limit::Finite(JOIN_BUDGET),
            },
            env: BasicEnv::new(),
        }
    }

    /// Normalize a symbolic term. The engine refuses results carrying
    /// unbound variables (its subjects are ground queries), so the term's
    /// variables are frozen to marked atoms and thawed afterwards:
    /// pattern matching treats an opaque atom and a subject variable
    /// identically.
    pub(crate) fn normalize(&self, t: &Term) -> Term {
        let frozen = freeze_vars(t);
        let done = match apply_block(
            self.rules,
            &self.block,
            self.methods,
            &self.env,
            frozen.clone(),
            false,
        ) {
            Ok(o) => o.term,
            Err(_) => frozen,
        };
        thaw_vars(&done)
    }

    /// Do both terms normalize to the same form?
    pub(crate) fn joinable(&self, a: &Term, b: &Term) -> bool {
        self.normalize(a) == self.normalize(b)
    }
}

/// EDS018 over every unbounded block of the strategy.
pub(crate) fn check_overlaps(
    rules: &RuleSet,
    strategy: &Strategy,
    methods: &MethodRegistry,
    out: &mut Vec<Diagnostic>,
) {
    // Joinability oracle: normalize with *all* pure rules of the whole
    // knowledge base, not just the block under scrutiny — a peak whose
    // two reducts meet after a later block's cleanup step is confluent
    // for the strategy as a whole.
    let oracle = JoinOracle::new(rules, methods);
    let normalize = |t: &Term| -> Term { oracle.normalize(t) };

    let mut seen_blocks: HashSet<&str> = HashSet::new();
    let mut emitted: HashSet<(String, String, String)> = HashSet::new();
    for block in strategy.blocks() {
        if block.limit != Limit::Infinite || !seen_blocks.insert(block.name.as_str()) {
            continue;
        }
        let mut participants: Vec<&Rule> = Vec::new();
        for name in &block.rules {
            let Some(rule) = rules.get(name) else {
                continue;
            };
            if is_pure(rule)
                && !has_seq_var(&rule.lhs)
                && !has_seq_var(&rule.rhs)
                && !participants.iter().any(|r| r.name == rule.name)
            {
                participants.push(rule);
            }
        }
        for (i, a) in participants.iter().enumerate() {
            for (j, b) in participants.iter().enumerate() {
                if i == j {
                    continue;
                }
                for path in b.lhs.positions() {
                    // Root overlaps are symmetric; visit them once per
                    // unordered pair. Proper subterm overlaps depend on
                    // which rule is inner, so both orders run.
                    if path.is_empty() && i > j {
                        continue;
                    }
                    if !b.lhs.at(&path).is_some_and(|t| matches!(t, Term::App(..))) {
                        continue;
                    }
                    let Some((peak, inner, outer)) = critical_pair(a, b, &path) else {
                        continue;
                    };
                    if inner == outer || normalize(&inner) == normalize(&outer) {
                        continue;
                    }
                    let (first, second) =
                        if block_position(block, &a.name) <= block_position(block, &b.name) {
                            (a, b)
                        } else {
                            (b, a)
                        };
                    let key = (block.name.clone(), first.name.clone(), second.name.clone());
                    if !emitted.insert(key) {
                        continue;
                    }
                    out.push(
                        Diagnostic::new(
                            "EDS018",
                            Severity::Warning,
                            "lhs",
                            format!(
                                "rules {} and {} overlap on the term {peak} in block {} and \
                                 their reducts stay different after normalization ({} vs {}); \
                                 the rewrite result depends on rule order — make the pair \
                                 confluent or split the block",
                                a.name,
                                b.name,
                                block.name,
                                normalize(&inner),
                                normalize(&outer),
                            ),
                        )
                        .for_rule(&first.name)
                        .in_block(&block.name),
                    );
                }
            }
        }
    }
}

/// Marker prefix for frozen variables; `\u{1}` cannot be lexed, so no
/// user atom can collide.
const FREEZE_PREFIX: &str = "\u{1}o";

fn freeze_vars(t: &Term) -> Term {
    match t {
        Term::Var(v) => Term::atom(format!("{FREEZE_PREFIX}{v}")),
        Term::App(h, args) => {
            let frozen: Vec<Term> = args.iter().map(freeze_vars).collect();
            Term::App(*h, frozen.into())
        }
        _ => t.clone(),
    }
}

fn thaw_vars(t: &Term) -> Term {
    match t {
        Term::App(h, args) if args.is_empty() => match h.as_str().strip_prefix(FREEZE_PREFIX) {
            Some(name) => Term::var(name),
            None => t.clone(),
        },
        Term::App(h, args) => {
            let thawed: Vec<Term> = args.iter().map(thaw_vars).collect();
            Term::App(*h, thawed.into())
        }
        _ => t.clone(),
    }
}

fn is_pure(r: &Rule) -> bool {
    r.constraints.is_empty() && r.methods.is_empty()
}

fn has_seq_var(t: &Term) -> bool {
    match t {
        Term::SeqVar(_) => true,
        Term::App(_, args) => args.iter().any(has_seq_var),
        _ => false,
    }
}

fn block_position(block: &Block, rule: &str) -> usize {
    block
        .rules
        .iter()
        .position(|n| n == rule)
        .unwrap_or(usize::MAX)
}

/// The critical pair of `a` overlapping `b` at `path` inside `b.lhs`:
/// `(peak, inner_reduct, outer_reduct)`, or `None` when the patterns do
/// not unify there. `a`'s variables are renamed apart first.
fn critical_pair(a: &Rule, b: &Rule, path: &[usize]) -> Option<(Term, Term, Term)> {
    let la = rename_vars(&a.lhs);
    let ra = rename_vars(&a.rhs);
    let sub = b.lhs.at(path)?;
    let mut subst = Subst::new();
    if !unify(&la, sub, &mut subst) {
        return None;
    }
    let peak = substitute(&b.lhs, &subst);
    let inner = substitute(&b.lhs.replace_at(path, ra), &subst);
    let outer = substitute(&b.rhs, &subst);
    Some((peak, inner, outer))
}

/// Rename every variable `v` to `v\u{2}` so the two rules of a pair never
/// share a name accidentally.
fn rename_vars(t: &Term) -> Term {
    match t {
        Term::Var(v) => Term::var(format!("{v}\u{2}")),
        Term::App(h, args) => {
            let renamed: Vec<Term> = args.iter().map(rename_vars).collect();
            Term::App(*h, renamed.into())
        }
        _ => t.clone(),
    }
}

type Subst = HashMap<Symbol, Term>;

/// Chase a variable through the substitution to its representative.
fn resolve<'a>(t: &'a Term, s: &'a Subst) -> &'a Term {
    let mut cur = t;
    while let Term::Var(v) = cur {
        match s.get(v) {
            Some(next) => cur = next,
            None => break,
        }
    }
    cur
}

fn occurs(v: Symbol, t: &Term, s: &Subst) -> bool {
    match resolve(t, s) {
        Term::Var(w) => *w == v,
        Term::App(_, args) => args.iter().any(|a| occurs(v, a, s)),
        _ => false,
    }
}

/// Syntactic first-order unification with occurs check. Sequence
/// variables make unification fail outright: participants are filtered
/// before this runs, but a `SeqVar` can still surface through resolution.
fn unify(a: &Term, b: &Term, s: &mut Subst) -> bool {
    let (ra, rb) = (resolve(a, s).clone(), resolve(b, s).clone());
    match (&ra, &rb) {
        (Term::Var(x), Term::Var(y)) if x == y => true,
        (Term::Var(x), t) | (t, Term::Var(x)) => {
            if occurs(*x, t, s) {
                return false;
            }
            s.insert(*x, t.clone());
            true
        }
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::App(h1, a1), Term::App(h2, a2)) => {
            h1 == h2
                && a1.len() == a2.len()
                && a1.iter().zip(a2.iter()).all(|(x, y)| unify(x, y, s))
        }
        _ => false,
    }
}

/// Deep-apply the substitution (resolving chains) to a term.
fn substitute(t: &Term, s: &Subst) -> Term {
    let r = resolve(t, s);
    match r {
        Term::App(h, args) => {
            let subbed: Vec<Term> = args.iter().map(|a| substitute(a, s)).collect();
            Term::App(*h, subbed.into())
        }
        _ => r.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(src: &str) -> Rule {
        match crate::dsl::parse_source(src).unwrap().remove(0) {
            crate::dsl::SourceItem::Rule(r) => r,
            _ => panic!("not a rule"),
        }
    }

    #[test]
    fn unification_binds_both_sides_and_occurs_checks() {
        let mut s = Subst::new();
        let a = Term::app("F", vec![Term::var("x"), Term::atom("A")]);
        let b = Term::app("F", vec![Term::atom("B"), Term::var("y")]);
        assert!(unify(&a, &b, &mut s));
        assert_eq!(substitute(&a, &s), substitute(&b, &s));

        let mut s = Subst::new();
        let cyclic = Term::app("F", vec![Term::var("x")]);
        assert!(!unify(&Term::var("x"), &cyclic, &mut s));
    }

    #[test]
    fn critical_pair_at_root_instantiates_both_rhss() {
        let a = rule("A : F(x, A) / --> x / ;");
        let b = rule("B : F(B, y) / --> y / ;");
        let (peak, inner, outer) = critical_pair(&a, &b, &[]).unwrap();
        assert_eq!(peak, Term::app("F", vec![Term::atom("B"), Term::atom("A")]));
        assert_eq!(inner, Term::atom("B"));
        assert_eq!(outer, Term::atom("A"));
    }

    #[test]
    fn critical_pair_below_root_wraps_the_inner_reduct() {
        let inner_rule = rule("I : G(y) / --> y / ;");
        let outer_rule = rule("O : F(G(x)) / --> x / ;");
        let (peak, inner, outer) = critical_pair(&inner_rule, &outer_rule, &[0]).unwrap();
        assert!(peak.is_app("F"));
        // Inner reduct: F(G(x)) with the inner redex G(x) collapsed to
        // its argument, i.e. one F-wrapper around the outer reduct.
        assert_eq!(inner, Term::app("F", vec![outer]));
    }
}
