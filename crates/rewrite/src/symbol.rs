//! Interned functor / variable names.
//!
//! Every name occurring in a term (functors, variables, sequence
//! variables) is interned once into a global hash-consed table and
//! referred to by a [`Symbol`]: a `Copy` handle carrying the leaked
//! `&'static str` plus a precomputed 64-bit content hash. This makes the
//! kernel's hot operations cheap:
//!
//! * equality is a pointer comparison (hash-consing guarantees
//!   content-equal names share one allocation);
//! * hashing writes the precomputed hash, never touching the bytes;
//! * [`Symbol::fp_bit`] derives the Bloom bit used by subtree
//!   fingerprints for O(1) "can this functor occur below here?" tests;
//! * ordering still compares the underlying strings, so any order the
//!   matcher exposes (canonical `SET` segment order) is deterministic
//!   across processes — intern *ids* are not, string order is.

use std::collections::HashSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned name. Cheap to copy, O(1) to compare and hash.
#[derive(Clone, Copy)]
pub struct Symbol {
    text: &'static str,
    hash: u64,
}

fn intern_table() -> &'static Mutex<HashSet<&'static str>> {
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashSet::new()))
}

/// FNV-1a over the name's bytes: deterministic across processes, so node
/// hashes and fingerprints are stable run to run.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Symbol {
    /// Intern a name (idempotent).
    pub fn intern(name: &str) -> Symbol {
        let mut table = intern_table().lock().expect("symbol table poisoned");
        let text: &'static str = match table.get(name) {
            Some(t) => t,
            None => {
                let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
                table.insert(leaked);
                leaked
            }
        };
        Symbol {
            text,
            hash: fnv1a(text),
        }
    }

    /// The interned text. Free — no table lookup.
    pub fn as_str(&self) -> &'static str {
        self.text
    }

    /// Precomputed content hash (deterministic across runs).
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// The symbol's bit in a 64-bit subtree Bloom fingerprint.
    pub fn fp_bit(&self) -> u64 {
        1u64 << (self.hash & 63)
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        // Hash-consing: content-equal symbols share one allocation.
        std::ptr::eq(self.text.as_ptr(), other.text.as_ptr()) && self.text.len() == other.text.len()
    }
}

impl Eq for Symbol {}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self == other {
            std::cmp::Ordering::Equal
        } else {
            self.text.cmp(other.text)
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.text, f)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.text == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.text == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.text == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.text
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.text
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.text
    }
}

/// Conversion into [`Symbol`] for the name-taking `Bindings` API, so call
/// sites can pass a `Symbol`, `&Symbol`, `&str`, or `String` unchanged.
pub trait ToSymbol {
    /// Resolve to an interned symbol.
    fn to_symbol(&self) -> Symbol;
}

impl ToSymbol for Symbol {
    fn to_symbol(&self) -> Symbol {
        *self
    }
}

impl ToSymbol for str {
    fn to_symbol(&self) -> Symbol {
        Symbol::intern(self)
    }
}

impl ToSymbol for String {
    fn to_symbol(&self) -> Symbol {
        Symbol::intern(self)
    }
}

impl<T: ToSymbol + ?Sized> ToSymbol for &T {
    fn to_symbol(&self) -> Symbol {
        (**self).to_symbol()
    }
}

/// Pre-interned symbols for the kernel's reserved functors.
pub(crate) mod well_known {
    use super::Symbol;
    use std::sync::OnceLock;

    macro_rules! known {
        ($fn_name:ident, $text:literal) => {
            /// The interned symbol for the functor in the name.
            pub(crate) fn $fn_name() -> Symbol {
                static S: OnceLock<Symbol> = OnceLock::new();
                *S.get_or_init(|| Symbol::intern($text))
            }
        };
    }

    known!(list, "LIST");
    known!(set, "SET");
    known!(bag, "BAG");
    known!(attr, "ATTR");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_pointer_equal() {
        let a = Symbol::intern("SEARCH");
        let b = Symbol::intern("SEARCH");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str().as_ptr(), b.as_str().as_ptr()));
        assert_ne!(Symbol::intern("SEARCH"), Symbol::intern("UNION"));
    }

    #[test]
    fn ordering_follows_strings() {
        let mut syms = [
            Symbol::intern("NEST"),
            Symbol::intern("ATTR"),
            Symbol::intern("UNION"),
        ];
        syms.sort();
        let names: Vec<&str> = syms.iter().map(Symbol::as_str).collect();
        assert_eq!(names, vec!["ATTR", "NEST", "UNION"]);
    }

    #[test]
    fn str_comparisons_work_both_ways() {
        let s = Symbol::intern("LIST");
        assert!(s == "LIST");
        assert!("LIST" == s);
        assert!(s != "SET");
        assert!(s == "LIST");
    }

    #[test]
    fn hash_is_content_based() {
        assert_eq!(
            Symbol::intern("FILM").hash64(),
            Symbol::intern("FILM").hash64()
        );
        assert_ne!(
            Symbol::intern("FILM").hash64(),
            Symbol::intern("ACTOR").hash64()
        );
    }
}
