//! Machine-applicable fixes for analyzer diagnostics.
//!
//! A [`Fix`] names a top-level source item (rule or block) and carries
//! replacement text for the *whole* item — or the empty string to delete
//! it. The analyzer works on assembled [`Rule`](crate::Rule)s and
//! [`Block`](crate::Block)s, not source text, so a fix stores the target
//! *name* and [`apply_fixes`] resolves it to a byte span at apply time via
//! [`parse_source_spanned`](crate::dsl::parse_source_spanned). Replacement
//! text is regenerated from the item's `Display` form (which reparses, see
//! `rule_display_reparses`), so applied fixes always stay syntactically
//! valid.
//!
//! Applying fixes once handles each target at most once; drivers such as
//! `eds-lint --fix` re-lint and re-apply until a pass changes nothing,
//! which also gives the `--fix --check` idempotence guarantee.

use crate::analyze::Diagnostic;
use crate::dsl::{parse_source_spanned, SourceItem, Span};
use crate::error::RwResult;

/// What a fix rewrites: one named top-level item of a rules source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixTarget {
    /// The rewriting rule with this name.
    Rule(String),
    /// The `block(...)` definition with this name.
    Block(String),
}

impl FixTarget {
    /// Does this target name the given source item? Drivers use this to
    /// resolve a fix back to the item's byte span (via
    /// [`parse_source_spanned`]) when rendering machine formats.
    pub fn matches(&self, item: &SourceItem) -> bool {
        match (self, item) {
            (FixTarget::Rule(n), SourceItem::Rule(r)) => r.name == *n,
            (FixTarget::Block(n), SourceItem::Block(b)) => b.name == *n,
            _ => false,
        }
    }
}

/// A machine-applicable suggestion attached to a [`Diagnostic`]:
/// replace the target item's whole source text (empty = delete the item).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// Human-readable summary, e.g. `bind y via SCHEMA(x, y)`.
    pub description: String,
    /// Which source item the replacement substitutes.
    pub target: FixTarget,
    /// New text for the whole item, including the terminating `;`;
    /// an empty string deletes the item.
    pub replacement: String,
}

/// Result of one [`apply_fixes`] pass over a source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixOutcome {
    /// The rewritten source.
    pub text: String,
    /// How many fixes were spliced in.
    pub applied: usize,
}

/// Apply one round of the fixes carried by `diagnostics` to `src`.
///
/// Each target is fixed at most once per pass (the first suggestion for a
/// name wins); targets not present in this source are skipped, so a mixed
/// diagnostic list (builtins + user file) applies cleanly to the user
/// file alone. Returns the rewritten text and the number of applied
/// fixes. Errors only when `src` itself does not parse.
pub fn apply_fixes(src: &str, diagnostics: &[Diagnostic]) -> RwResult<FixOutcome> {
    let items = parse_source_spanned(src)?;
    let mut taken: Vec<&FixTarget> = Vec::new();
    let mut edits: Vec<(Span, &str)> = Vec::new();
    for d in diagnostics {
        for fix in &d.suggestions {
            if taken.contains(&&fix.target) {
                continue;
            }
            let Some(spanned) = items.iter().find(|si| fix.target.matches(&si.item)) else {
                continue;
            };
            taken.push(&fix.target);
            edits.push((spanned.span, fix.replacement.as_str()));
        }
    }
    edits.sort_by_key(|(s, _)| s.start);
    let applied = edits.len();
    let mut text = String::with_capacity(src.len());
    let mut cursor = 0;
    for (span, repl) in edits {
        text.push_str(&src[cursor..span.start]);
        text.push_str(repl);
        cursor = span.end;
        if repl.is_empty() {
            // Deleting an item also consumes trailing blanks and one
            // newline so no empty line is left behind.
            let rest = &src[cursor..];
            let skip = rest.len() - rest.trim_start_matches([' ', '\t']).len();
            cursor += skip;
            if src[cursor..].starts_with('\n') {
                cursor += 1;
            }
        }
    }
    text.push_str(&src[cursor..]);
    Ok(FixOutcome { text, applied })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{Diagnostic, Severity};

    fn diag_with_fix(fix: Fix) -> Diagnostic {
        Diagnostic::new("EDS010", Severity::Warning, "rule", "test".into()).suggest(fix)
    }

    #[test]
    fn replaces_one_item_in_place() {
        let src = "A : F(x) / --> x / ;\nblock(b, {A}, INF) ;\n";
        let out = apply_fixes(
            src,
            &[diag_with_fix(Fix {
                description: "limit".into(),
                target: FixTarget::Block("b".into()),
                replacement: "block(b, {A}, 100) ;".into(),
            })],
        )
        .unwrap();
        assert_eq!(out.applied, 1);
        assert_eq!(out.text, "A : F(x) / --> x / ;\nblock(b, {A}, 100) ;\n");
    }

    #[test]
    fn deletion_consumes_the_line() {
        let src = "A : F(x) / --> x / ;\nB : G(x) / --> x / ;\n";
        let out = apply_fixes(
            src,
            &[diag_with_fix(Fix {
                description: "delete".into(),
                target: FixTarget::Rule(String::from("A")),
                replacement: String::new(),
            })],
        )
        .unwrap();
        assert_eq!(out.text, "B : G(x) / --> x / ;\n");
    }

    #[test]
    fn absent_targets_and_duplicate_fixes_are_skipped() {
        let src = "A : F(x) / --> x / ;\n";
        let fix = Fix {
            description: "noop".into(),
            target: FixTarget::Rule("Ghost".into()),
            replacement: "Ghost : F(x) / --> x / ;".into(),
        };
        let twice = Fix {
            description: "twice".into(),
            target: FixTarget::Rule("A".into()),
            replacement: "A : F(y) / --> y / ;".into(),
        };
        let out = apply_fixes(
            src,
            &[
                diag_with_fix(fix),
                diag_with_fix(twice.clone()),
                diag_with_fix(twice),
            ],
        )
        .unwrap();
        assert_eq!(out.applied, 1);
        assert_eq!(out.text, "A : F(y) / --> y / ;\n");
    }
}
