//! Rewrite rules: `lhs / constraints --> rhs / methods`.

use std::fmt;

use crate::term::Term;

/// A method invocation in a rule conclusion, e.g.
/// `SUBSTITUTE(f, z, f')`. Output parameters are unbound variables among
/// the arguments; the method binds them.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodCall {
    /// Method name, resolved in the [`crate::methods::MethodRegistry`].
    pub name: String,
    /// Argument terms (interpreted under the match bindings).
    pub args: Vec<Term>,
}

impl fmt::Display for MethodCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

/// A term rewriting rule under constraints (Figure 6): "if the left term
/// appears in the query under the given set of constraints, it is
/// rewritten as the given right term after the application of the given
/// set of methods".
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name (unique within a knowledge base).
    pub name: String,
    /// Pattern to match.
    pub lhs: Term,
    /// Additional boolean conditions on the matched arguments.
    pub constraints: Vec<Term>,
    /// Replacement term; may reference variables bound by the match or by
    /// methods.
    pub rhs: Term,
    /// Methods run after a successful match to compute derived bindings.
    pub methods: Vec<MethodCall>,
}

impl Rule {
    /// Build a rule without constraints or methods.
    pub fn simple(name: impl Into<String>, lhs: Term, rhs: Term) -> Self {
        Rule {
            name: name.into(),
            lhs,
            constraints: Vec::new(),
            rhs,
            methods: Vec::new(),
        }
    }

    /// Variables of the right term that neither the left term nor any
    /// method argument could bind. A non-empty result indicates a rule
    /// that can never fire successfully.
    pub fn unbindable_rhs_vars(&self) -> Vec<&str> {
        let mut bindable: Vec<&str> = self.lhs.variables();
        for m in &self.methods {
            for a in &m.args {
                bindable.extend(a.variables());
            }
        }
        self.rhs
            .variables()
            .into_iter()
            .filter(|v| !bindable.contains(v))
            .collect()
    }

    /// Termination heuristic from Section 4.2: a rule is *decreasing* when
    /// its right term has strictly fewer nodes than its left term, so a
    /// block containing only decreasing rules terminates even with an
    /// infinite limit.
    pub fn is_decreasing(&self) -> bool {
        self.rhs.size() < self.lhs.size()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : {} / ", self.name, self.lhs)?;
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " --> {} / ", self.rhs)?;
        for (i, m) in self.methods.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decreasing_detection() {
        // F(G(x)) --> x is decreasing; x --> F(x) is not.
        let shrink = Rule::simple(
            "shrink",
            Term::app("F", vec![Term::app("G", vec![Term::var("x")])]),
            Term::var("x"),
        );
        assert!(shrink.is_decreasing());
        let grow = Rule::simple("grow", Term::var("x"), Term::app("F", vec![Term::var("x")]));
        assert!(!grow.is_decreasing());
    }

    #[test]
    fn unbindable_rhs_vars_found() {
        let rule = Rule {
            name: "r".into(),
            lhs: Term::app("F", vec![Term::var("x")]),
            constraints: vec![],
            rhs: Term::app("G", vec![Term::var("x"), Term::var("y")]),
            methods: vec![],
        };
        assert_eq!(rule.unbindable_rhs_vars(), vec!["y"]);
        let with_method = Rule {
            methods: vec![MethodCall {
                name: "SCHEMA".into(),
                args: vec![Term::var("x"), Term::var("y")],
            }],
            ..rule
        };
        assert!(with_method.unbindable_rhs_vars().is_empty());
    }

    #[test]
    fn display_roundtrips_shape() {
        let rule = Rule {
            name: "UnionMerge".into(),
            lhs: Term::app("UNION", vec![Term::set(vec![Term::seq("x")])]),
            constraints: vec![Term::atom("TRUE")],
            rhs: Term::app("UNION", vec![Term::set(vec![Term::seq("x")])]),
            methods: vec![],
        };
        let s = rule.to_string();
        assert!(s.contains("UnionMerge : UNION(SET(x*)) / TRUE --> UNION(SET(x*)) /"));
    }
}
