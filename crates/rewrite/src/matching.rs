//! Pattern matching with collection variables.
//!
//! Matching is *one-way* (pattern against a ground-ish subject), supports
//! segment matching for `LIST` arguments and commutative (multiset)
//! matching for `SET`/`BAG` arguments — "using sets as arguments eliminates
//! the use of permutation rules, as sets are unordered" (Section 4.1).
//! Because a pattern like `LIST(x*, t, y*)` can match in several ways, the
//! matcher enumerates alternatives through a callback and backtracks; the
//! engine's callback checks rule constraints and accepts the first
//! satisfying match.

use crate::symbol::{well_known, Symbol};
use crate::term::{Bindings, Term};

/// Continue enumeration or stop (match accepted)?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep enumerating alternative matches.
    Continue,
    /// Stop: the caller accepted this match.
    Stop,
}

/// Callback invoked once per successful match with the extended bindings.
pub type MatchSink<'a> = dyn FnMut(&Bindings) -> Control + 'a;

/// Enumerate matches of `pattern` against `subject` starting from `binds`.
/// Returns `Control::Stop` as soon as the sink accepts a match.
pub fn match_term(
    pattern: &Term,
    subject: &Term,
    binds: &mut Bindings,
    sink: &mut MatchSink<'_>,
) -> Control {
    match pattern {
        Term::Var(v) => {
            if let Some(bound) = binds.get(v) {
                if bound == subject {
                    sink(binds)
                } else {
                    Control::Continue
                }
            } else {
                binds.bind(*v, subject.clone());
                let ctl = sink(binds);
                if ctl == Control::Continue {
                    binds.remove(v);
                }
                ctl
            }
        }
        // A sequence variable is only meaningful inside a collection
        // constructor's argument list; elsewhere it matches nothing.
        Term::SeqVar(_) => Control::Continue,
        Term::Const(p) => match subject {
            Term::Const(s) if p == s => sink(binds),
            _ => Control::Continue,
        },
        Term::App(ph, pargs) => match subject {
            Term::App(sh, sargs) if ph == sh => {
                if *ph == well_known::list() {
                    match_segments(pargs, sargs, binds, sink)
                } else if *ph == well_known::set() {
                    match_multiset(pargs, sargs, binds, sink, true)
                } else if *ph == well_known::bag() {
                    match_multiset(pargs, sargs, binds, sink, false)
                } else if pargs.len() == sargs.len() {
                    match_pairwise(pargs, sargs, binds, sink)
                } else {
                    Control::Continue
                }
            }
            _ => Control::Continue,
        },
    }
}

/// Fixed-arity argument matching.
fn match_pairwise(
    pats: &[Term],
    subs: &[Term],
    binds: &mut Bindings,
    sink: &mut MatchSink<'_>,
) -> Control {
    match (pats.split_first(), subs.split_first()) {
        (None, None) => sink(binds),
        (Some((p0, prest)), Some((s0, srest))) => {
            let mut inner = |b: &Bindings| {
                let mut b2 = b.clone();
                match_pairwise(prest, srest, &mut b2, sink)
            };
            match_term(p0, s0, binds, &mut inner)
        }
        _ => Control::Continue,
    }
}

/// Ordered segment matching for `LIST` arguments: sequence variables match
/// contiguous segments; shorter segments are tried first.
fn match_segments(
    pats: &[Term],
    subs: &[Term],
    binds: &mut Bindings,
    sink: &mut MatchSink<'_>,
) -> Control {
    match pats.split_first() {
        None => {
            if subs.is_empty() {
                sink(binds)
            } else {
                Control::Continue
            }
        }
        Some((Term::SeqVar(v), prest)) => {
            if let Some(bound) = binds.get_seq(v) {
                let bound = bound.to_vec();
                if subs.len() >= bound.len() && subs[..bound.len()] == bound[..] {
                    return match_segments(prest, &subs[bound.len()..], binds, sink);
                }
                return Control::Continue;
            }
            // Minimum subjects the remaining patterns require.
            let min_rest = prest
                .iter()
                .filter(|p| !matches!(p, Term::SeqVar(_)))
                .count();
            let max_take = subs.len().saturating_sub(min_rest);
            // With no sequence variable left in the tail, every later
            // pattern consumes exactly one subject, so this segment's
            // length is forced — trying shorter prefixes would always
            // fail at the end of the list.
            let any_seq_left = prest.iter().any(|p| matches!(p, Term::SeqVar(_)));
            let min_take = if any_seq_left { 0 } else { max_take };
            for take in min_take..=max_take {
                binds.bind_seq(*v, subs[..take].to_vec());
                let ctl = match_segments(prest, &subs[take..], binds, sink);
                if ctl == Control::Stop {
                    return Control::Stop;
                }
                binds.remove(v);
            }
            Control::Continue
        }
        Some((p0, prest)) => {
            if subs.is_empty() {
                return Control::Continue;
            }
            let (s0, srest) = subs.split_first().expect("non-empty");
            let mut inner = |b: &Bindings| {
                let mut b2 = b.clone();
                match_segments(prest, srest, &mut b2, sink)
            };
            match_term(p0, s0, binds, &mut inner)
        }
    }
}

/// Commutative (multiset) matching for `SET`/`BAG` arguments. Element
/// patterns may match any remaining subject element; remaining elements
/// are distributed over the sequence variables. With `canonical_order`
/// (sets), collected segments are sorted so bindings are deterministic.
fn match_multiset(
    pats: &[Term],
    subs: &[Term],
    binds: &mut Bindings,
    sink: &mut MatchSink<'_>,
    canonical_order: bool,
) -> Control {
    // Split patterns into element patterns and sequence variables.
    let elem_pats: Vec<&Term> = pats
        .iter()
        .filter(|p| !matches!(p, Term::SeqVar(_)))
        .collect();
    let seq_vars: Vec<Symbol> = pats
        .iter()
        .filter_map(|p| match p {
            Term::SeqVar(v) => Some(*v),
            _ => None,
        })
        .collect();

    // Without sequence variables the counts must agree exactly.
    if seq_vars.is_empty() && elem_pats.len() != subs.len() {
        return Control::Continue;
    }
    if elem_pats.len() > subs.len() {
        return Control::Continue;
    }

    match_elems(&elem_pats, subs, &seq_vars, binds, sink, canonical_order)
}

fn match_elems(
    elem_pats: &[&Term],
    remaining: &[Term],
    seq_vars: &[Symbol],
    binds: &mut Bindings,
    sink: &mut MatchSink<'_>,
    canonical_order: bool,
) -> Control {
    match elem_pats.split_first() {
        None => distribute_rest(remaining, seq_vars, binds, sink, canonical_order),
        Some((p0, prest)) => {
            for i in 0..remaining.len() {
                let candidate = remaining[i].clone();
                let mut inner = |b: &Bindings| {
                    let mut b2 = b.clone();
                    let mut rest: Vec<Term> = remaining.to_vec();
                    rest.remove(i);
                    match_elems(prest, &rest, seq_vars, &mut b2, sink, canonical_order)
                };
                if match_term(p0, &candidate, binds, &mut inner) == Control::Stop {
                    return Control::Stop;
                }
            }
            Control::Continue
        }
    }
}

/// Distribute the leftover multiset elements over the sequence variables.
fn distribute_rest(
    remaining: &[Term],
    seq_vars: &[Symbol],
    binds: &mut Bindings,
    sink: &mut MatchSink<'_>,
    canonical_order: bool,
) -> Control {
    match seq_vars.split_first() {
        None => {
            if remaining.is_empty() {
                sink(binds)
            } else {
                Control::Continue
            }
        }
        Some((v, [])) => {
            // Single (last) sequence variable takes everything left.
            if let Some(bound) = binds.get_seq(v) {
                let mut bound = bound.to_vec();
                let mut rem = remaining.to_vec();
                bound.sort();
                rem.sort();
                return if bound == rem {
                    sink(binds)
                } else {
                    Control::Continue
                };
            }
            let mut seg = remaining.to_vec();
            if canonical_order {
                seg.sort();
            }
            binds.bind_seq(*v, seg);
            let ctl = sink(binds);
            if ctl == Control::Continue {
                binds.remove(v);
            }
            ctl
        }
        Some((v, vrest)) => {
            // Enumerate subsets for `v` (by index mask); small collections
            // only in practice — rules use at most two collection variables.
            let n = remaining.len();
            assert!(n <= 20, "multiset distribution over large collection");
            for mask in 0u64..(1u64 << n) {
                let mut mine = Vec::new();
                let mut rest = Vec::new();
                for (i, t) in remaining.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        mine.push(t.clone());
                    } else {
                        rest.push(t.clone());
                    }
                }
                if let Some(bound) = binds.get_seq(v) {
                    let mut bound = bound.to_vec();
                    bound.sort();
                    mine.sort();
                    if bound != mine {
                        continue;
                    }
                    if distribute_rest(&rest, vrest, binds, sink, canonical_order) == Control::Stop
                    {
                        return Control::Stop;
                    }
                } else {
                    if canonical_order {
                        mine.sort();
                    }
                    binds.bind_seq(*v, mine);
                    let ctl = distribute_rest(&rest, vrest, binds, sink, canonical_order);
                    binds.remove(v);
                    if ctl == Control::Stop {
                        return Control::Stop;
                    }
                }
            }
            Control::Continue
        }
    }
}

/// Convenience: the first match of `pattern` against `subject`, if any.
pub fn find_match(pattern: &Term, subject: &Term) -> Option<Bindings> {
    let mut result = None;
    let mut binds = Bindings::new();
    let mut sink = |b: &Bindings| {
        result = Some(b.clone());
        Control::Stop
    };
    match_term(pattern, subject, &mut binds, &mut sink);
    result
}

/// Convenience: all matches of `pattern` against `subject`.
pub fn all_matches(pattern: &Term, subject: &Term) -> Vec<Bindings> {
    let mut out = Vec::new();
    let mut binds = Bindings::new();
    let mut sink = |b: &Bindings| {
        out.push(b.clone());
        Control::Continue
    };
    match_term(pattern, subject, &mut binds, &mut sink);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: &str) -> Term {
        Term::atom(n)
    }

    #[test]
    fn var_binds_subject() {
        let b = find_match(&Term::var("x"), &a("FILM")).unwrap();
        assert_eq!(b.get("x"), Some(&a("FILM")));
    }

    #[test]
    fn repeated_var_must_agree() {
        let pat = Term::app("F", vec![Term::var("x"), Term::var("x")]);
        assert!(find_match(&pat, &Term::app("F", vec![a("A"), a("A")])).is_some());
        assert!(find_match(&pat, &Term::app("F", vec![a("A"), a("B")])).is_none());
    }

    #[test]
    fn head_and_arity_must_agree() {
        let pat = Term::app("F", vec![Term::var("x")]);
        assert!(find_match(&pat, &Term::app("G", vec![a("A")])).is_none());
        assert!(find_match(&pat, &Term::app("F", vec![a("A"), a("B")])).is_none());
    }

    #[test]
    fn list_segments_enumerate_splits() {
        // LIST(x*, v, y*) against LIST(A, B, C): v can be A, B or C.
        let pat = Term::list(vec![Term::seq("x"), Term::var("v"), Term::seq("y")]);
        let sub = Term::list(vec![a("A"), a("B"), a("C")]);
        let matches = all_matches(&pat, &sub);
        assert_eq!(matches.len(), 3);
        let vs: Vec<&Term> = matches.iter().map(|b| b.get("v").unwrap()).collect();
        assert_eq!(vs, vec![&a("A"), &a("B"), &a("C")]);
        // Segments reconstruct the original list.
        let m = &matches[1];
        assert_eq!(m.get_seq("x").unwrap(), &[a("A")]);
        assert_eq!(m.get_seq("y").unwrap(), &[a("C")]);
    }

    #[test]
    fn list_segment_matching_is_ordered() {
        let pat = Term::list(vec![a("B"), Term::seq("x")]);
        assert!(find_match(&pat, &Term::list(vec![a("A"), a("B")])).is_none());
        assert!(find_match(&pat, &Term::list(vec![a("B"), a("A")])).is_some());
    }

    #[test]
    fn set_matching_is_commutative() {
        // SET(x*, UNION(z)) from the union-merging rule of Figure 7:
        // the nested UNION may sit anywhere in the set.
        let pat = Term::set(vec![
            Term::seq("x"),
            Term::app("UNION", vec![Term::var("z")]),
        ]);
        let sub = Term::set(vec![a("R"), Term::app("UNION", vec![a("S")]), a("T")]);
        let b = find_match(&pat, &sub).unwrap();
        assert_eq!(b.get("z"), Some(&a("S")));
        let mut rest = b.get_seq("x").unwrap().to_vec();
        rest.sort();
        assert_eq!(rest, vec![a("R"), a("T")]);
    }

    #[test]
    fn set_exact_element_count_without_seqvars() {
        let pat = Term::set(vec![Term::var("u"), Term::var("v")]);
        assert!(find_match(&pat, &Term::set(vec![a("A"), a("B")])).is_some());
        assert!(find_match(&pat, &Term::set(vec![a("A")])).is_none());
        assert!(find_match(&pat, &Term::set(vec![a("A"), a("B"), a("C")])).is_none());
    }

    #[test]
    fn two_seqvars_in_list() {
        let pat = Term::list(vec![Term::seq("x"), Term::seq("y")]);
        let sub = Term::list(vec![a("A"), a("B")]);
        let matches = all_matches(&pat, &sub);
        // splits: (0,2) (1,1) (2,0)
        assert_eq!(matches.len(), 3);
    }

    #[test]
    fn two_seqvars_in_set_partition() {
        let pat = Term::set(vec![Term::seq("x"), Term::seq("y")]);
        let sub = Term::set(vec![a("A"), a("B")]);
        let matches = all_matches(&pat, &sub);
        // each of the 2 elements goes to x or y: 4 assignments
        assert_eq!(matches.len(), 4);
    }

    #[test]
    fn bound_seqvar_must_agree() {
        let pat = Term::app(
            "F",
            vec![
                Term::list(vec![Term::seq("x")]),
                Term::list(vec![Term::seq("x")]),
            ],
        );
        let good = Term::app(
            "F",
            vec![
                Term::list(vec![a("A"), a("B")]),
                Term::list(vec![a("A"), a("B")]),
            ],
        );
        let bad = Term::app(
            "F",
            vec![Term::list(vec![a("A")]), Term::list(vec![a("B")])],
        );
        assert!(find_match(&pat, &good).is_some());
        assert!(find_match(&pat, &bad).is_none());
    }

    #[test]
    fn nested_structure_match() {
        // The search-merging pattern skeleton of Figure 7.
        let pat = Term::app(
            "SEARCH",
            vec![
                Term::list(vec![
                    Term::seq("x"),
                    Term::app(
                        "SEARCH",
                        vec![Term::var("z"), Term::var("g"), Term::var("b")],
                    ),
                    Term::seq("v"),
                ]),
                Term::var("f"),
                Term::var("a"),
            ],
        );
        let inner = Term::app(
            "SEARCH",
            vec![
                Term::list(vec![a("FILM")]),
                Term::bool(true),
                Term::list(vec![Term::attr(1, 1)]),
            ],
        );
        let sub = Term::app(
            "SEARCH",
            vec![
                Term::list(vec![a("APPEARS_IN"), inner.clone()]),
                Term::bool(true),
                Term::list(vec![Term::attr(2, 1)]),
            ],
        );
        let b = find_match(&pat, &sub).unwrap();
        assert_eq!(b.get("z"), Some(&Term::list(vec![a("FILM")])));
        assert_eq!(b.get_seq("x").unwrap(), &[a("APPEARS_IN")]);
        assert_eq!(b.get_seq("v").unwrap(), &[] as &[Term]);
    }

    #[test]
    fn seqvar_outside_collection_never_matches() {
        let pat = Term::app("F", vec![Term::seq("x")]);
        assert!(find_match(&pat, &Term::app("F", vec![a("A")])).is_none());
    }

    #[test]
    fn const_matching() {
        assert!(find_match(&Term::int(5), &Term::int(5)).is_some());
        assert!(find_match(&Term::int(5), &Term::int(6)).is_none());
        assert!(find_match(&Term::str("a"), &Term::str("a")).is_some());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::term::Term;

    fn a(n: &str) -> Term {
        Term::atom(n)
    }

    #[test]
    fn set_with_duplicate_subject_elements() {
        // BAG semantics: SET(u, v) against SET with two equal elements —
        // the matcher sees the term's argument list as given.
        let pat = Term::app("F", vec![Term::set(vec![Term::var("u"), Term::var("v")])]);
        let sub = Term::app("F", vec![Term::set(vec![a("A"), a("A")])]);
        let matches = all_matches(&pat, &sub);
        assert_eq!(matches.len(), 2); // both assignments of the two A's
        for m in matches {
            assert_eq!(m.get("u"), Some(&a("A")));
            assert_eq!(m.get("v"), Some(&a("A")));
        }
    }

    #[test]
    fn bound_var_constrains_set_choice() {
        // F(u, SET(u, x*)): the first argument pins which set element u is.
        let pat = Term::app(
            "F",
            vec![
                Term::var("u"),
                Term::set(vec![Term::var("u"), Term::seq("x")]),
            ],
        );
        let sub = Term::app("F", vec![a("B"), Term::set(vec![a("A"), a("B"), a("C")])]);
        let b = find_match(&pat, &sub).expect("must match");
        assert_eq!(b.get("u"), Some(&a("B")));
        let mut rest = b.get_seq("x").unwrap().to_vec();
        rest.sort();
        assert_eq!(rest, vec![a("A"), a("C")]);
    }

    #[test]
    fn empty_list_pattern_matches_only_empty() {
        let pat = Term::list(vec![]);
        assert!(find_match(&pat, &Term::list(vec![])).is_some());
        assert!(find_match(&pat, &Term::list(vec![a("A")])).is_none());
    }

    #[test]
    fn seqvar_in_pattern_matches_empty_segment_subject() {
        let pat = Term::list(vec![Term::seq("x")]);
        let b = find_match(&pat, &Term::list(vec![])).unwrap();
        assert_eq!(b.get_seq("x").unwrap(), &[] as &[Term]);
    }

    #[test]
    fn list_does_not_match_set() {
        assert!(find_match(&Term::list(vec![Term::seq("x")]), &Term::set(vec![a("A")])).is_none());
    }

    #[test]
    fn deep_nesting_matches() {
        // Pattern and subject nested 10 levels deep.
        let mut pat = Term::var("x");
        let mut sub = Term::int(1);
        for _ in 0..10 {
            pat = Term::app("F", vec![pat]);
            sub = Term::app("F", vec![sub]);
        }
        let b = find_match(&pat, &sub).unwrap();
        assert_eq!(b.get("x"), Some(&Term::int(1)));
    }
}
