//! The rule-definition language of Figure 6.
//!
//! Concrete syntax (one item per `;`):
//!
//! ```text
//! // a rewriting rule
//! SearchMerge : SEARCH(LIST(x*, SEARCH(z, g, b), v*), f, a)
//!     / --> SEARCH(APPEND(x*, v*, z), f AND g, a')
//!     / SUBSTITUTE(f, z, f'), SUBSTITUTE(a, z, a') ;
//!
//! // meta-rules
//! block(merging, {SearchMerge, UnionMerge}, INF) ;
//! seq((typing, merging, permutation), 2) ;
//! ```
//!
//! Lexical conventions follow the paper: identifiers beginning with a
//! lower-case letter are variables (`x`, `f`, `quali`, primed forms `f'`),
//! a trailing `*` marks a collection variable (`x*`), and upper-case
//! identifiers are functors/atoms (`SEARCH`, `LIST`, `FILM`, `TRUE`).
//! Attribute references are written positionally as `1.2`. Qualification
//! formulas may use infix `AND`, `OR`, `NOT`, comparisons and `+`/`-`;
//! `{a, b}` abbreviates `SET(a, b)`. Comments run from `//` to end of
//! line.

use eds_adt::Value;

use crate::error::{RewriteError, RwResult};
use crate::rule::{MethodCall, Rule};
use crate::strategy::{Block, Limit, Sequence};
use crate::term::Term;

/// One parsed top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceItem {
    /// A rewriting rule.
    Rule(Rule),
    /// A `block(name, {rules}, limit)` definition.
    Block(Block),
    /// A `seq((blocks), passes)` meta-rule.
    Seq(Sequence),
}

/// A half-open byte range `[start, end)` into the original source text.
///
/// Spans cover an item from its first token through the terminating `;`,
/// which is exactly the region a lint [fix](crate::fixes::Fix) replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character of the item.
    pub start: usize,
    /// Byte offset one past the terminating `;`.
    pub end: usize,
}

/// A top-level item together with the byte span of its source text.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedItem {
    /// The parsed item.
    pub item: SourceItem,
    /// Where in the source text the item was written.
    pub span: Span,
}

/// Parse a rule-language source text into its items.
pub fn parse_source(src: &str) -> RwResult<Vec<SourceItem>> {
    Ok(parse_source_spanned(src)?
        .into_iter()
        .map(|s| s.item)
        .collect())
}

/// Parse a source text, keeping the byte span of each item so callers
/// (the autofix engine, editors) can splice replacements back in.
pub fn parse_source_spanned(src: &str) -> RwResult<Vec<SpannedItem>> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !matches!(p.peek(), Tok::Eof) {
        let start = p.tokens[p.pos].start;
        let item = p.parse_item()?;
        // `parse_item` always consumes the terminating `;`, so the
        // previous token is the one that closed the item.
        let end = p.tokens[p.pos - 1].end;
        items.push(SpannedItem {
            item,
            span: Span { start, end },
        });
    }
    Ok(items)
}

/// Parse a single term (handy for tests and interactive use).
pub fn parse_term(src: &str) -> RwResult<Term> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let t = p.parse_expr()?;
    p.expect_eof()?;
    Ok(t)
}

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    SeqIdent(String),
    Int(i64),
    Attr(i64, i64),
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Colon,
    Slash,
    Arrow,
    Eq,
    Lt,
    Gt,
    Le,
    Ge,
    Ne,
    Plus,
    Minus,
    Eof,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
    /// Byte offset of the token's first character.
    start: usize,
    /// Byte offset one past the token's last character.
    end: usize,
}

fn lex_err<T>(line: usize, col: usize, message: impl Into<String>) -> RwResult<T> {
    Err(RewriteError::Parse {
        line,
        column: col,
        message: message.into(),
    })
}

fn lex(src: &str) -> RwResult<Vec<Spanned>> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    // Byte offset of each char index (plus the end-of-input sentinel), so
    // token spans can be expressed in bytes over the original `&str`.
    let mut byte_of: Vec<usize> = Vec::with_capacity(chars.len() + 1);
    byte_of.extend(src.char_indices().map(|(b, _)| b));
    byte_of.push(src.len());
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Spanned {
                tok: $tok,
                line,
                col,
                start: byte_of[i],
                end: byte_of[i + $len],
            });
            i += $len;
            col += $len;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            ',' => push!(Tok::Comma, 1),
            ';' => push!(Tok::Semi, 1),
            ':' => push!(Tok::Colon, 1),
            '/' => push!(Tok::Slash, 1),
            '=' => push!(Tok::Eq, 1),
            '+' => push!(Tok::Plus, 1),
            '^' => push!(Tok::Ident("AND".into()), 1),
            '<' => match chars.get(i + 1) {
                Some('=') => push!(Tok::Le, 2),
                Some('>') => push!(Tok::Ne, 2),
                _ => push!(Tok::Lt, 1),
            },
            '>' => match chars.get(i + 1) {
                Some('=') => push!(Tok::Ge, 2),
                _ => push!(Tok::Gt, 1),
            },
            '-' => {
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) == Some(&'>') {
                    push!(Tok::Arrow, 3);
                } else {
                    push!(Tok::Minus, 1);
                }
            }
            '\'' => {
                // String literal; '' escapes a quote (SQL style).
                let start_col = col;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match chars.get(j) {
                        None => return lex_err(line, start_col, "unterminated string literal"),
                        Some('\'') if chars.get(j + 1) == Some(&'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        Some('\'') => {
                            j += 1;
                            break;
                        }
                        Some(ch) => {
                            s.push(*ch);
                            j += 1;
                        }
                    }
                }
                let len = j - i;
                push!(Tok::Str(s), len);
            }
            d if d.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                let first: i64 = chars[i..j]
                    .iter()
                    .collect::<String>()
                    .parse()
                    .map_err(|_| RewriteError::Parse {
                        line,
                        column: col,
                        message: "integer literal out of range".into(),
                    })?;
                // `1.2` is a positional attribute reference.
                if chars.get(j) == Some(&'.') && chars.get(j + 1).is_some_and(char::is_ascii_digit)
                {
                    let mut k = j + 1;
                    while k < chars.len() && chars[k].is_ascii_digit() {
                        k += 1;
                    }
                    let second: i64 =
                        chars[j + 1..k]
                            .iter()
                            .collect::<String>()
                            .parse()
                            .map_err(|_| RewriteError::Parse {
                                line,
                                column: col,
                                message: "attribute index out of range".into(),
                            })?;
                    let len = k - i;
                    push!(Tok::Attr(first, second), len);
                } else {
                    let len = j - i;
                    push!(Tok::Int(first), len);
                }
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let mut j = i;
                while j < chars.len()
                    && (chars[j].is_ascii_alphanumeric() || chars[j] == '_' || chars[j] == '\'')
                {
                    j += 1;
                }
                let name: String = chars[i..j].iter().collect();
                if chars.get(j) == Some(&'*') {
                    let len = j + 1 - i;
                    push!(Tok::SeqIdent(name), len);
                } else {
                    let len = j - i;
                    push!(Tok::Ident(name), len);
                }
            }
            '*' => {
                return lex_err(
                    line,
                    col,
                    "'*' is only valid as a collection-variable suffix",
                )
            }
            other => return lex_err(line, col, format!("unexpected character '{other}'")),
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
        start: src.len(),
        end: src.len(),
    });
    Ok(out)
}

// --------------------------------------------------------------- parser

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn here(&self) -> (usize, usize) {
        let s = &self.tokens[self.pos];
        (s.line, s.col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> RwResult<T> {
        let (line, column) = self.here();
        Err(RewriteError::Parse {
            line,
            column,
            message: message.into(),
        })
    }

    fn expect(&mut self, tok: Tok, what: &str) -> RwResult<()> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn expect_eof(&mut self) -> RwResult<()> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            self.err("trailing input after term")
        }
    }

    fn parse_item(&mut self) -> RwResult<SourceItem> {
        let name = match self.bump() {
            Tok::Ident(n) => n,
            other => return self.err(format!("expected item name, found {other:?}")),
        };
        match name.as_str() {
            "block" => self.parse_block(),
            "seq" => self.parse_seq(),
            _ => self.parse_rule(name),
        }
    }

    /// `name : lhs [/ constraints] --> rhs [/ methods] ;`
    fn parse_rule(&mut self, name: String) -> RwResult<SourceItem> {
        self.expect(Tok::Colon, "':' after rule name")?;
        let lhs = self.parse_expr()?;
        let mut constraints = Vec::new();
        if matches!(self.peek(), Tok::Slash) {
            self.bump();
            while !matches!(self.peek(), Tok::Arrow) {
                constraints.push(self.parse_expr()?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                }
            }
        }
        self.expect(Tok::Arrow, "'-->'")?;
        let rhs = self.parse_expr()?;
        let mut methods = Vec::new();
        if matches!(self.peek(), Tok::Slash) {
            self.bump();
            while !matches!(self.peek(), Tok::Semi) {
                let m = self.parse_method_call()?;
                methods.push(m);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                }
            }
        }
        self.expect(Tok::Semi, "';' ending the rule")?;
        Ok(SourceItem::Rule(Rule {
            name,
            lhs,
            constraints,
            rhs,
            methods,
        }))
    }

    fn parse_method_call(&mut self) -> RwResult<MethodCall> {
        let name = match self.bump() {
            Tok::Ident(n) => n,
            other => return self.err(format!("expected method name, found {other:?}")),
        };
        self.expect(Tok::LParen, "'(' after method name")?;
        let mut args = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "')' closing method call")?;
        Ok(MethodCall { name, args })
    }

    /// `block(name, {rule, ...}, limit) ;`
    fn parse_block(&mut self) -> RwResult<SourceItem> {
        self.expect(Tok::LParen, "'(' after block")?;
        let name = match self.bump() {
            Tok::Ident(n) => n,
            other => return self.err(format!("expected block name, found {other:?}")),
        };
        self.expect(Tok::Comma, "',' after block name")?;
        self.expect(Tok::LBrace, "'{' starting rule list")?;
        let mut rules = Vec::new();
        if !matches!(self.peek(), Tok::RBrace) {
            loop {
                match self.bump() {
                    Tok::Ident(n) => rules.push(n),
                    other => return self.err(format!("expected rule name, found {other:?}")),
                }
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RBrace, "'}' ending rule list")?;
        self.expect(Tok::Comma, "',' before block limit")?;
        let limit = match self.bump() {
            Tok::Int(n) if n >= 0 => Limit::Finite(n as u64),
            Tok::Ident(kw) if kw.eq_ignore_ascii_case("INF") => Limit::Infinite,
            other => return self.err(format!("expected limit (integer or INF), found {other:?}")),
        };
        self.expect(Tok::RParen, "')' closing block")?;
        self.expect(Tok::Semi, "';' ending block")?;
        Ok(SourceItem::Block(Block { name, rules, limit }))
    }

    /// `seq((block, ...), passes) ;`
    fn parse_seq(&mut self) -> RwResult<SourceItem> {
        self.expect(Tok::LParen, "'(' after seq")?;
        self.expect(Tok::LParen, "'(' starting block list")?;
        let mut blocks = Vec::new();
        loop {
            match self.bump() {
                Tok::Ident(n) => blocks.push(n),
                other => return self.err(format!("expected block name, found {other:?}")),
            }
            if matches!(self.peek(), Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(Tok::RParen, "')' ending block list")?;
        self.expect(Tok::Comma, "',' before pass count")?;
        let passes = match self.bump() {
            Tok::Int(n) if n >= 0 => n as u64,
            Tok::Ident(kw) if kw.eq_ignore_ascii_case("INF") => u64::MAX,
            other => return self.err(format!("expected pass count, found {other:?}")),
        };
        self.expect(Tok::RParen, "')' closing seq")?;
        self.expect(Tok::Semi, "';' ending seq")?;
        Ok(SourceItem::Seq(Sequence { blocks, passes }))
    }

    // Expression precedence: OR < AND < NOT < comparison < additive < primary.
    fn parse_expr(&mut self) -> RwResult<Term> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Tok::Ident(k) if k.eq_ignore_ascii_case("OR")) {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Term::app("OR", vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> RwResult<Term> {
        let mut lhs = self.parse_cmp()?;
        while matches!(self.peek(), Tok::Ident(k) if k.eq_ignore_ascii_case("AND")) {
            self.bump();
            let rhs = self.parse_cmp()?;
            lhs = Term::app("AND", vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> RwResult<Term> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Tok::Eq => "=",
            Tok::Lt => "<",
            Tok::Gt => ">",
            Tok::Le => "<=",
            Tok::Ge => ">=",
            Tok::Ne => "<>",
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_additive()?;
        Ok(Term::app(op, vec![lhs, rhs]))
    }

    fn parse_additive(&mut self) -> RwResult<Term> {
        let mut lhs = self.parse_primary()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => "+",
                Tok::Minus => "-",
                _ => break,
            };
            self.bump();
            let rhs = self.parse_primary()?;
            lhs = Term::app(op, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn parse_primary(&mut self) -> RwResult<Term> {
        match self.bump() {
            Tok::Int(n) => Ok(Term::int(n)),
            Tok::Attr(i, j) => Ok(Term::attr(i, j)),
            Tok::Str(s) => Ok(Term::Const(Value::Str(s))),
            Tok::Minus => match self.bump() {
                Tok::Int(n) => Ok(Term::int(-n)),
                other => self.err(format!("expected number after '-', found {other:?}")),
            },
            Tok::LParen => {
                let t = self.parse_expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(t)
            }
            Tok::LBrace => {
                // {a, b, c} is sugar for SET(a, b, c).
                let mut items = Vec::new();
                if !matches!(self.peek(), Tok::RBrace) {
                    loop {
                        items.push(self.parse_expr()?);
                        if matches!(self.peek(), Tok::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBrace, "'}' ending set literal")?;
                Ok(Term::set(items))
            }
            Tok::SeqIdent(name) => Ok(Term::seq(classify_var_name(&name))),
            Tok::Ident(name) => {
                if matches!(self.peek(), Tok::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Tok::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if matches!(self.peek(), Tok::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "')' closing argument list")?;
                    Ok(Term::app(canonical_functor(&name), args))
                } else if name.eq_ignore_ascii_case("TRUE") {
                    Ok(Term::bool(true))
                } else if name.eq_ignore_ascii_case("FALSE") {
                    Ok(Term::bool(false))
                } else if starts_lower(&name) {
                    Ok(Term::var(name))
                } else {
                    Ok(Term::atom(canonical_functor(&name)))
                }
            }
            other => self.err(format!("expected a term, found {other:?}")),
        }
    }
}

fn starts_lower(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
}

/// Functors are case-normalized to upper-case so `search` and `SEARCH`
/// denote the same operator; variables keep their exact spelling.
fn canonical_functor(name: &str) -> String {
    name.to_ascii_uppercase()
}

fn classify_var_name(name: &str) -> String {
    name.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(src: &str) -> Rule {
        match parse_source(src).unwrap().remove(0) {
            SourceItem::Rule(r) => r,
            other => panic!("expected rule, got {other:?}"),
        }
    }

    #[test]
    fn parse_simple_term() {
        let t = parse_term("SEARCH(LIST(FILM), 1.1 = 5, LIST(1.2))").unwrap();
        assert_eq!(t.to_string(), "SEARCH(LIST(FILM), (1.1 = 5), LIST(1.2))");
    }

    #[test]
    fn variables_vs_atoms() {
        let t = parse_term("F(x, FILM, y*)").unwrap();
        assert_eq!(
            t,
            Term::app(
                "F",
                vec![Term::var("x"), Term::atom("FILM"), Term::seq("y")]
            )
        );
    }

    #[test]
    fn functor_case_insensitive() {
        assert_eq!(
            parse_term("search(x)").unwrap(),
            parse_term("SEARCH(x)").unwrap()
        );
    }

    #[test]
    fn infix_precedence() {
        let t = parse_term("a = 1 AND b < 2 OR NOT(c)").unwrap();
        assert_eq!(t.to_string(), "(((a = 1) AND (b < 2)) OR NOT(c))");
    }

    #[test]
    fn parse_search_merging_rule_of_fig7() {
        let r = rule(
            "SearchMerge : SEARCH(LIST(x*, SEARCH(z, g, b), v*), f, a) / \
             --> SEARCH(APPEND(x*, v*, z), f AND g, a') / \
             SUBSTITUTE(f, z, f'), SUBSTITUTE(a, z, a') ;",
        );
        assert_eq!(r.name, "SearchMerge");
        assert!(r.constraints.is_empty());
        assert_eq!(r.methods.len(), 2);
        assert_eq!(r.methods[0].name, "SUBSTITUTE");
        // lhs shape
        let (h, args) = r.lhs.as_app().unwrap();
        assert_eq!(h, "SEARCH");
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn parse_union_merging_rule_of_fig7() {
        let r = rule("UnionMerge : UNION(SET(x*, UNION(z))) / --> UNION(SET_UNION(x*, z)) / ;");
        assert_eq!(
            r.lhs,
            Term::app(
                "UNION",
                vec![Term::set(vec![
                    Term::seq("x"),
                    Term::app("UNION", vec![Term::var("z")])
                ])]
            )
        );
    }

    #[test]
    fn parse_rule_with_constraint() {
        let r = rule(
            "PushNest : SEARCH(LIST(x*, NEST(z, a, b), y*), quali AND qualj, exp) / \
             REFER(a, quali) --> \
             SEARCH(LIST(x*, NEST(SEARCH(z, quali', exp'), a, b), y*), qualj, exp) / \
             SUBSTITUTE(quali, z, a, quali'), SCHEMA(z, exp') ;",
        );
        assert_eq!(r.constraints.len(), 1);
        assert!(r.constraints[0].is_app("REFER"));
        assert_eq!(r.methods.len(), 2);
    }

    #[test]
    fn parse_simplification_rules_of_fig12() {
        let items = parse_source(
            "GtLeContradiction : x > y AND x <= y / --> FALSE / ;\n\
             AndFalse : f AND FALSE / --> FALSE / ;\n\
             DiffZeroIsEq : x - y = 0 / ISA(x, constant), ISA(y, constant) --> x = y / ;",
        )
        .unwrap();
        assert_eq!(items.len(), 3);
        if let SourceItem::Rule(r) = &items[2] {
            assert_eq!(r.constraints.len(), 2);
            assert_eq!(
                r.lhs,
                Term::app(
                    "=",
                    vec![
                        Term::app("-", vec![Term::var("x"), Term::var("y")]),
                        Term::int(0)
                    ]
                )
            );
        } else {
            panic!("expected rule");
        }
    }

    #[test]
    fn parse_integrity_constraint_of_fig10() {
        // x E {...} is written MEMBER(x, {...}).
        let r = rule(
            "CategoryDomain : F(x) / ISA(x, Category) --> \
             F(x) AND MEMBER(x, {'Comedy', 'Adventure', 'Science Fiction', 'Western'}) / ;",
        );
        let (h, args) = r.rhs.as_app().unwrap();
        assert_eq!(h, "AND");
        let member = &args[1];
        let (_, margs) = member.as_app().unwrap();
        let (sh, selems) = margs[1].as_app().unwrap();
        assert_eq!(sh, "SET");
        assert_eq!(selems.len(), 4);
    }

    #[test]
    fn parse_block_and_seq() {
        let items = parse_source(
            "block(merging, {SearchMerge, UnionMerge}, INF) ;\n\
             block(simplify, {AndFalse}, 100) ;\n\
             seq((merging, simplify), 2) ;",
        )
        .unwrap();
        assert_eq!(items.len(), 3);
        match &items[0] {
            SourceItem::Block(b) => {
                assert_eq!(b.name, "merging");
                assert_eq!(b.rules, vec!["SearchMerge", "UnionMerge"]);
                assert_eq!(b.limit, Limit::Infinite);
            }
            other => panic!("expected block, got {other:?}"),
        }
        match &items[2] {
            SourceItem::Seq(s) => {
                assert_eq!(s.blocks, vec!["merging", "simplify"]);
                assert_eq!(s.passes, 2);
            }
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn string_escapes() {
        let t = parse_term("'it''s'").unwrap();
        assert_eq!(t, Term::str("it's"));
    }

    #[test]
    fn negative_number() {
        assert_eq!(parse_term("-5").unwrap(), Term::int(-5));
    }

    #[test]
    fn primed_variables() {
        let t = parse_term("F(f', a')").unwrap();
        assert_eq!(t, Term::app("F", vec![Term::var("f'"), Term::var("a'")]));
    }

    #[test]
    fn attr_refs_lexed_not_reals() {
        assert_eq!(parse_term("1.2").unwrap(), Term::attr(1, 2));
        assert_eq!(parse_term("12.34").unwrap(), Term::attr(12, 34));
    }

    #[test]
    fn error_reports_position() {
        let err = parse_source("Bad : F(x --> x / ;").unwrap_err();
        match err {
            RewriteError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(matches!(
            parse_term("'abc"),
            Err(RewriteError::Parse { .. })
        ));
    }

    #[test]
    fn true_false_are_boolean_constants() {
        // They must match the bridged form of LERA qualifications, which
        // uses boolean literals.
        assert_eq!(parse_term("TRUE").unwrap(), Term::bool(true));
        assert_eq!(parse_term("false").unwrap(), Term::bool(false));
    }

    #[test]
    fn spanned_items_cover_exact_source_slices() {
        let src = "  First : F(x) / --> x / ;\n// note\nblock(b, {First}, INF) ;\n";
        let items = parse_source_spanned(src).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(
            &src[items[0].span.start..items[0].span.end],
            "First : F(x) / --> x / ;"
        );
        assert_eq!(
            &src[items[1].span.start..items[1].span.end],
            "block(b, {First}, INF) ;"
        );
    }

    #[test]
    fn spans_are_byte_offsets_even_after_multibyte_text() {
        // A multi-byte character in a comment must not desync spans.
        let src = "// naïve café\nR : F(x) / --> x / ;";
        let items = parse_source_spanned(src).unwrap();
        assert_eq!(
            &src[items[0].span.start..items[0].span.end],
            "R : F(x) / --> x / ;"
        );
    }

    #[test]
    fn rule_display_reparses() {
        let original =
            rule("Example : F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE --> F(SET(x*)) / ;");
        let redisplayed = format!("{original} ;");
        let reparsed = rule(&redisplayed);
        assert_eq!(original.lhs, reparsed.lhs);
        assert_eq!(original.rhs, reparsed.rhs);
        assert_eq!(original.constraints, reparsed.constraints);
    }
}
