//! Standardized bounded enumeration of candidate terms.
//!
//! Discovery searches the same fragment the bounded prover decides
//! ([`crate::verify::equiv`]): `AND`/`OR`/`NOT` over boolean variables
//! and `TRUE`/`FALSE`, comparisons over scalar variables, and optionally
//! small integer literals with `+`/`-`/`*`. Enumeration is *standardized*
//! so two sessions (or two machines in CI) produce byte-identical
//! candidate streams:
//!
//! * terms are generated size class by size class, smallest first, in a
//!   fixed grammar order;
//! * commutative operators (`AND`, `OR`, `=`, `<>`, `+`, `*`) only admit
//!   argument pairs in canonical [`term_key`] order — the mirrored form
//!   is counted as symmetry-pruned, never generated;
//! * the mirror comparisons `>`/`>=` are never generated; a candidate
//!   that would need them appears as the `<`/`<=` form with swapped
//!   operands (again counted as pruned);
//! * candidate *pairs* are deduplicated by a canonical key that renames
//!   variables by first occurrence across the (LHS, RHS) pair jointly,
//!   so `NOT(NOT(g)) --> g` and `NOT(NOT(f)) --> f` are one candidate.
//!
//! The canonicalization is deliberately not full AC normalization —
//! nested associations of `AND` are kept distinct — because the rewrite
//! engine itself is syntactic; what matters is that the *same* function
//! keys both the enumerated candidates and any externally supplied rule
//! ([`canonical_rule_key`]), so "re-discovered up to renaming" is a
//! string comparison.

use std::collections::BTreeMap;

use crate::rule::Rule;
use crate::term::Term;
use crate::verify::equiv::{
    eval_bool, nth_valuation, Kind, Tri, Valuation, BOOL_DOMAIN, SCALAR_DOMAIN,
};

/// The generation vocabulary, fixed per [`crate::discover::Fragment`].
#[derive(Debug, Clone)]
pub(crate) struct Vocab {
    pub(crate) bool_vars: Vec<&'static str>,
    pub(crate) scalar_vars: Vec<&'static str>,
    /// Generate comparison atoms over the scalar variables.
    pub(crate) cmp: bool,
    /// Generate integer literals and `+`/`-`/`*` scalar composites.
    pub(crate) arith: bool,
}

impl Vocab {
    /// The fixed variable→kind map the valuation grid enumerates.
    pub(crate) fn kinds(&self) -> BTreeMap<String, Kind> {
        let mut kinds = BTreeMap::new();
        for v in &self.bool_vars {
            kinds.insert((*v).to_owned(), Kind::Bool);
        }
        for v in &self.scalar_vars {
            kinds.insert((*v).to_owned(), Kind::Scalar);
        }
        kinds
    }
}

/// Deterministic total order on terms used for commutative-argument
/// canonicalization: by node count, then display form.
pub(crate) fn term_key(t: &Term) -> (usize, String) {
    (t.size(), t.to_string())
}

/// Result of one enumeration sweep.
#[derive(Debug, Default)]
pub(crate) struct Enumerated {
    /// Boolean-rooted terms, ordered by size class then grammar order.
    pub(crate) terms: Vec<Term>,
    /// Symmetric forms skipped (commutative mirrors, `>`/`>=` mirrors).
    pub(crate) symmetry_pruned: usize,
    /// The `max_terms` cap fired and a size class was cut short.
    pub(crate) truncated: bool,
}

/// Enumerate every boolean-rooted term of the vocabulary up to
/// `max_size` nodes. With `prune` set, symmetric duplicates are skipped
/// (and counted); with it clear the full unpruned stream is produced —
/// the property tests diff the two to show pruning loses nothing.
pub(crate) fn enumerate_terms(
    vocab: &Vocab,
    max_size: usize,
    prune: bool,
    max_terms: usize,
) -> Enumerated {
    let mut out = Enumerated::default();

    // Scalar layer: only ever appears under a comparison (1 node) next
    // to a sibling operand (>= 1 node), so its budget is max_size - 2.
    let max_scalar = max_size.saturating_sub(2);
    let mut scalars: Vec<Vec<Term>> = vec![Vec::new(); max_scalar + 1];
    if vocab.cmp && max_scalar >= 1 {
        for v in &vocab.scalar_vars {
            scalars[1].push(Term::var(*v));
        }
        if vocab.arith {
            scalars[1].push(Term::int(0));
            scalars[1].push(Term::int(1));
        }
        // Only the operators the rule DSL can spell infix participate:
        // binary `+` (commutative, key-ordered under pruning) and
        // binary `-`. `*` is reserved by the lexer for the
        // collection-variable suffix and unary minus only applies to
        // integer literals, so terms built from either could never
        // round-trip through an emitted `.rules` file.
        if vocab.arith {
            for s in 2..=max_scalar {
                for la in 1..s.saturating_sub(1) {
                    let lb = s - 1 - la;
                    for i in 0..scalars[la].len() {
                        for j in 0..scalars[lb].len() {
                            let (a, b) = (scalars[la][i].clone(), scalars[lb][j].clone());
                            if prune && term_key(&a) > term_key(&b) {
                                out.symmetry_pruned += 1;
                            } else {
                                scalars[s].push(Term::app("+", vec![a.clone(), b.clone()]));
                            }
                            scalars[s].push(Term::app("-", vec![a, b]));
                        }
                    }
                }
            }
        }
    }

    // Boolean layer.
    let mut bools: Vec<Vec<Term>> = vec![Vec::new(); max_size + 1];
    if max_size >= 1 {
        // `Term::bool`, not `Term::atom`: the parser lexes TRUE/FALSE
        // to `Const` values, and the joinability oracle matches
        // enumerated candidates against *parsed* knowledge-base rules —
        // an atom spelling would never unify with a constant literal.
        bools[1].push(Term::bool(true));
        bools[1].push(Term::bool(false));
        for v in &vocab.bool_vars {
            bools[1].push(Term::var(*v));
        }
    }
    // `=`/`<>` commute; `<`/`<=` cover `>`/`>=` by operand swap.
    let sym_cmp = ["=", "<>"];
    let asym_cmp = ["<", "<="];
    let mirror_cmp = [">", ">="];
    'sizes: for s in 2..=max_size {
        for i in 0..bools[s - 1].len() {
            let t = bools[s - 1][i].clone();
            bools[s].push(Term::app("NOT", vec![t]));
        }
        if vocab.cmp && s >= 3 {
            for la in 1..=(s - 2).min(max_scalar) {
                let lb = s - 1 - la;
                if lb < 1 || lb > max_scalar {
                    continue;
                }
                for i in 0..scalars[la].len() {
                    for j in 0..scalars[lb].len() {
                        let (a, b) = (scalars[la][i].clone(), scalars[lb][j].clone());
                        for op in sym_cmp {
                            if prune && term_key(&a) > term_key(&b) {
                                out.symmetry_pruned += 1;
                                continue;
                            }
                            bools[s].push(Term::app(op, vec![a.clone(), b.clone()]));
                        }
                        for op in asym_cmp {
                            if prune {
                                // The mirrored `>`/`>=` form is covered
                                // by this term with swapped operands.
                                out.symmetry_pruned += 1;
                            }
                            bools[s].push(Term::app(op, vec![a.clone(), b.clone()]));
                        }
                        if !prune {
                            for op in mirror_cmp {
                                bools[s].push(Term::app(op, vec![a.clone(), b.clone()]));
                            }
                        }
                    }
                }
            }
        }
        for la in 1..s.saturating_sub(1) {
            let lb = s - 1 - la;
            for i in 0..bools[la].len() {
                for j in 0..bools[lb].len() {
                    let (a, b) = (bools[la][i].clone(), bools[lb][j].clone());
                    for op in ["AND", "OR"] {
                        if prune && term_key(&a) > term_key(&b) {
                            out.symmetry_pruned += 1;
                            continue;
                        }
                        bools[s].push(Term::app(op, vec![a.clone(), b.clone()]));
                    }
                }
            }
        }
        let total: usize = bools.iter().map(Vec::len).sum();
        if total > max_terms {
            let keep = bools[s].len().saturating_sub(total - max_terms);
            bools[s].truncate(keep);
            out.truncated = true;
            break 'sizes;
        }
    }

    out.terms = bools.into_iter().flatten().collect();
    out
}

/// The full valuation grid over the vocabulary's fixed variable kinds.
pub(crate) fn grid_for(vocab: &Vocab) -> Vec<Valuation> {
    let kinds = vocab.kinds();
    let total: usize = kinds
        .values()
        .map(|k| match k {
            Kind::Bool => BOOL_DOMAIN.len(),
            Kind::Scalar => SCALAR_DOMAIN.len(),
        })
        .product();
    (0..total).map(|i| nth_valuation(&kinds, i)).collect()
}

/// Truth vector of a term over the grid, as bytes (FALSE=0, UNKNOWN=1,
/// TRUE=2). `None` if the term leaves the boolean fragment (cannot
/// happen for enumerated terms; defensive for external callers).
pub(crate) fn signature(t: &Term, grid: &[Valuation]) -> Option<Vec<u8>> {
    grid.iter()
        .map(|v| {
            eval_bool(t, v).map(|tri| match tri {
                Tri::False => 0,
                Tri::Unknown => 1,
                Tri::True => 2,
            })
        })
        .collect()
}

/// Grid positions where every *scalar* variable is non-NULL (boolean
/// variables may still be UNKNOWN). Two terms agreeing exactly on these
/// positions are equivalent under `NOTNULL` guards on the scalars.
pub(crate) fn scalar_nonnull_positions(grid: &[Valuation]) -> Vec<usize> {
    grid.iter()
        .enumerate()
        .filter(|(_, v)| v.scalars.values().all(Option::is_some))
        .map(|(i, _)| i)
        .collect()
}

/// Mirror-normalize comparisons and sort commutative arguments, bottom
/// up. Not full AC canonicalization (see module docs).
pub(crate) fn structure_normalize(t: &Term) -> Term {
    match t {
        Term::App(h, args) => {
            let mut na: Vec<Term> = args.iter().map(structure_normalize).collect();
            match (h.as_str(), na.len()) {
                (">", 2) => {
                    na.swap(0, 1);
                    Term::app("<", na)
                }
                (">=", 2) => {
                    na.swap(0, 1);
                    Term::app("<=", na)
                }
                ("AND" | "OR" | "=" | "<>" | "+", 2) => {
                    if term_key(&na[0]) > term_key(&na[1]) {
                        na.swap(0, 1);
                    }
                    Term::App(*h, na.into())
                }
                _ => Term::App(*h, na.into()),
            }
        }
        _ => t.clone(),
    }
}

fn var_order(t: &Term, order: &mut Vec<String>) {
    match t {
        Term::Var(v) if !order.iter().any(|o| o == v.as_str()) => {
            order.push(v.as_str().to_owned());
        }
        Term::App(_, args) => {
            for a in args {
                var_order(a, order);
            }
        }
        _ => {}
    }
}

/// Simultaneous variable substitution (no chained renames, so mapping
/// `x -> y` while `y` exists is safe).
fn rename_term(t: &Term, map: &BTreeMap<String, String>) -> Term {
    match t {
        Term::Var(v) => match map.get(v.as_str()) {
            Some(n) => Term::var(n.as_str()),
            None => t.clone(),
        },
        Term::App(h, args) => {
            let renamed: Vec<Term> = args.iter().map(|a| rename_term(a, map)).collect();
            Term::App(*h, renamed.into())
        }
        _ => t.clone(),
    }
}

/// Canonical key of a candidate (LHS, RHS, guards) triple: iterate
/// structure normalization and joint first-occurrence renaming to a
/// fixpoint (bounded), then print. Two rules equal up to variable
/// renaming, commutative argument order, and `>`/`>=` mirroring get the
/// same key.
pub(crate) fn canonical_key(lhs: &Term, rhs: &Term, guards: &[Term]) -> String {
    let mut l = lhs.clone();
    let mut r = rhs.clone();
    let mut g: Vec<Term> = guards.to_vec();
    for _ in 0..4 {
        let ln = structure_normalize(&l);
        let rn = structure_normalize(&r);
        let mut order = Vec::new();
        var_order(&ln, &mut order);
        var_order(&rn, &mut order);
        for gt in &g {
            var_order(gt, &mut order);
        }
        let map: BTreeMap<String, String> = order
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), format!("v{}", i + 1)))
            .collect();
        let l2 = rename_term(&ln, &map);
        let r2 = rename_term(&rn, &map);
        let mut g2: Vec<Term> = g.iter().map(|t| rename_term(t, &map)).collect();
        g2.sort_by_key(ToString::to_string);
        if l2 == l && r2 == r && g2 == g {
            break;
        }
        l = l2;
        r = r2;
        g = g2;
    }
    let guards_s = g
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!("{l} / {guards_s} --> {r}")
}

/// Canonical key of an existing rule — the comparison side of the
/// re-discovery ("up to renaming") check.
pub fn canonical_rule_key(rule: &Rule) -> String {
    canonical_key(&rule.lhs, &rule.rhs, &rule.constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{parse_source, SourceItem};

    fn rule(src: &str) -> Rule {
        match parse_source(src).unwrap().remove(0) {
            SourceItem::Rule(r) => r,
            other => panic!("expected rule, got {other:?}"),
        }
    }

    fn bool_vocab() -> Vocab {
        Vocab {
            bool_vars: vec!["f", "g"],
            scalar_vars: vec![],
            cmp: false,
            arith: false,
        }
    }

    #[test]
    fn enumeration_is_deterministic_and_size_ordered() {
        let a = enumerate_terms(&bool_vocab(), 4, true, usize::MAX);
        let b = enumerate_terms(&bool_vocab(), 4, true, usize::MAX);
        assert_eq!(a.terms, b.terms);
        let sizes: Vec<usize> = a.terms.iter().map(Term::size).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted, "terms not emitted in size order");
        assert!(!a.truncated);
    }

    #[test]
    fn commutative_mirrors_are_pruned_and_counted() {
        let pruned = enumerate_terms(&bool_vocab(), 3, true, usize::MAX);
        let full = enumerate_terms(&bool_vocab(), 3, false, usize::MAX);
        assert!(pruned.terms.len() < full.terms.len());
        assert_eq!(
            pruned.terms.len() + pruned.symmetry_pruned,
            full.terms.len(),
            "every pruned term must be accounted"
        );
        // AND(f, TRUE) is pruned (TRUE sorts before f); AND(TRUE, f) kept.
        let has = |t: &Term| pruned.terms.contains(t);
        let kept = Term::app("AND", vec![Term::bool(true), Term::var("f")]);
        let dropped = Term::app("AND", vec![Term::var("f"), Term::bool(true)]);
        assert!(has(&kept));
        assert!(!has(&dropped));
    }

    #[test]
    fn mirror_comparisons_normalize_to_the_same_key() {
        let not_gt = rule("NotGt : NOT(x > y) / --> x <= y / ;");
        let not_lt_swapped = rule("N : NOT(b < a) / --> b >= a / ;");
        assert_eq!(
            canonical_rule_key(&not_gt),
            canonical_rule_key(&not_lt_swapped)
        );
    }

    #[test]
    fn renaming_and_argument_order_share_a_key() {
        let a = rule("A : g AND TRUE / --> g / ;");
        let b = rule("B : TRUE AND f / --> f / ;");
        assert_eq!(canonical_rule_key(&a), canonical_rule_key(&b));
        let c = rule("C : FALSE OR f / --> f / ;");
        assert_ne!(canonical_rule_key(&a), canonical_rule_key(&c));
    }

    #[test]
    fn signatures_separate_inequivalent_terms_and_merge_equivalents() {
        let vocab = bool_vocab();
        let grid = grid_for(&vocab);
        assert_eq!(grid.len(), 9);
        let f = Term::var("f");
        let nnf = Term::app("NOT", vec![Term::app("NOT", vec![Term::var("f")])]);
        let g = Term::var("g");
        assert_eq!(signature(&f, &grid), signature(&nnf, &grid));
        assert_ne!(signature(&f, &grid), signature(&g, &grid));
    }

    #[test]
    fn scalar_nonnull_projection_admits_unknown_booleans() {
        let vocab = Vocab {
            bool_vars: vec!["f"],
            scalar_vars: vec!["x"],
            cmp: true,
            arith: false,
        };
        let grid = grid_for(&vocab);
        assert_eq!(grid.len(), 15);
        let pos = scalar_nonnull_positions(&grid);
        // 3 bool values x 4 non-null scalars.
        assert_eq!(pos.len(), 12);
        assert!(pos
            .iter()
            .all(|&i| !grid[i].scalars.values().any(Option::is_none)));
    }
}
