//! Verified rule discovery: standardized enumeration of candidate
//! rewrite rules, prover-gated and cost-ranked.
//!
//! The paper's extensibility story has the database implementor *write*
//! rewrite rules; this module closes the loop and lets the system
//! propose them. The pipeline is a survival funnel:
//!
//! 1. **Enumerate** every boolean-rooted term of the bounded fragment
//!    ([`enumerate`]), with symmetry pruning (commutative argument
//!    order, `>`/`>=` mirroring) and explicit size/budget caps;
//! 2. **Bucket** terms by their truth vector over the full 3-valued
//!    valuation grid — two terms in one bucket are equivalent on the
//!    bounded domain, so (larger → smallest member) is a candidate rule.
//!    A second, NULL-lenient bucketing over the scalar-non-NULL grid
//!    positions yields *guarded* candidates whose equivalence needs
//!    `NOTNULL(...)` side conditions;
//! 3. **Gate** each candidate through the authoritative bounded prover
//!    ([`crate::verify::equiv::check_rule`]) — bucketing is a fast
//!    pre-filter, the prover verdict is the one that counts;
//! 4. **Rank** by a pluggable [`CostOracle`], keeping only strictly
//!    cost-decreasing rules;
//! 5. **Dedup** against the existing knowledge base with the bounded
//!    joinability oracle the overlap checker uses — a candidate both of
//!    whose sides already normalize to the same form teaches the system
//!    nothing;
//! 6. **Cross-examine** survivors with a pluggable
//!    [`DifferentialOracle`] (in `eds-core`, the differential fuzz
//!    harness), then emit a `.rules` source ([`Discovery::render`]).
//!
//! The oracles are traits because `eds-lera` (cost model) and `eds-core`
//! (reference executor) sit *above* this crate in the dependency order;
//! they inject the real implementations.

pub mod enumerate;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::methods::{BasicEnv, MethodRegistry};
use crate::overlap::JoinOracle;
use crate::rule::Rule;
use crate::strategy::RuleSet;
use crate::term::Term;
use crate::verify::equiv::{check_rule, classify, Kind, Outcome};

pub use enumerate::canonical_rule_key;
use enumerate::{
    canonical_key, enumerate_terms, grid_for, scalar_nonnull_positions, signature, term_key, Vocab,
};

/// Hard ceiling on enumerated terms regardless of options; protects
/// against a size/fragment combination that explodes.
const MAX_TERMS: usize = 200_000;

/// The candidate fragment to search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fragment {
    /// `AND`/`OR`/`NOT` over two boolean variables and `TRUE`/`FALSE`.
    Bool,
    /// [`Fragment::Bool`] plus comparisons over two scalar variables.
    Cmp,
    /// [`Fragment::Cmp`] plus integer literals `0`/`1` and `+`/`-`/`*`.
    #[default]
    Full,
}

impl Fragment {
    fn vocab(self) -> Vocab {
        match self {
            Fragment::Bool => Vocab {
                bool_vars: vec!["f", "g"],
                scalar_vars: vec![],
                cmp: false,
                arith: false,
            },
            Fragment::Cmp => Vocab {
                bool_vars: vec!["f", "g"],
                scalar_vars: vec!["x", "y"],
                cmp: true,
                arith: false,
            },
            Fragment::Full => Vocab {
                bool_vars: vec!["f", "g"],
                scalar_vars: vec!["x", "y"],
                cmp: true,
                arith: true,
            },
        }
    }

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<Fragment> {
        match s {
            "bool" => Some(Fragment::Bool),
            "cmp" => Some(Fragment::Cmp),
            "full" => Some(Fragment::Full),
            _ => None,
        }
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Fragment::Bool => "bool",
            Fragment::Cmp => "cmp",
            Fragment::Full => "full",
        })
    }
}

/// Tuning knobs for one discovery run. The defaults are the pinned CI
/// configuration; the withholding experiment in `eds-core` depends on
/// them re-discovering the held-out boolean/comparison rules.
#[derive(Debug, Clone)]
pub struct DiscoverOptions {
    /// Seed for the candidate exploration order (not for soundness —
    /// every emitted rule is prover-gated regardless).
    pub seed: u64,
    /// Maximum LHS size in term nodes.
    pub max_term_size: usize,
    /// Maximum candidate pairs admitted to the gate loop.
    pub budget: usize,
    /// Stop after this many accepted rules.
    pub max_rules: usize,
    /// Fragment to search.
    pub fragment: Fragment,
    /// Prefix for emitted rule names (`D001`, `D002`, ...).
    pub name_prefix: String,
}

impl Default for DiscoverOptions {
    fn default() -> Self {
        Self {
            seed: 0xED5,
            max_term_size: 5,
            budget: 4096,
            max_rules: 24,
            fragment: Fragment::Full,
            name_prefix: "D".to_owned(),
        }
    }
}

/// Pluggable cost judge: the estimated evaluation cost of a
/// qualification term, lower is better. `None` means "cannot score" and
/// rejects the candidate (discovery only emits rules it can defend).
pub trait CostOracle {
    /// Cost of evaluating `t` as a filter qualification.
    fn qual_cost(&self, t: &Term) -> Option<f64>;
}

/// Default oracle: term node count. Deterministic, dependency-free, and
/// monotone with the engine's own [`Rule::is_decreasing`] notion.
#[derive(Debug, Default, Clone, Copy)]
pub struct NodeCountCost;

impl CostOracle for NodeCountCost {
    fn qual_cost(&self, t: &Term) -> Option<f64> {
        Some(t.size() as f64)
    }
}

/// Pluggable differential cross-examiner: return a refutation detail if
/// executing worlds before/after the rewrite ever disagrees.
pub trait DifferentialOracle {
    /// `Some(detail)` refutes the rule; `None` clears it.
    fn refute(&self, rule: &Rule) -> Option<String>;
}

/// Default oracle: no differential harness available (the bounded prover
/// remains the gate).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoDifferential;

impl DifferentialOracle for NoDifferential {
    fn refute(&self, _rule: &Rule) -> Option<String> {
        None
    }
}

/// Survival-funnel accounting for one discovery run. Every enumerated
/// shape is attributed to exactly one fate; nothing is silently dropped.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Funnel {
    /// Boolean-rooted terms enumerated (after symmetry pruning).
    pub terms_enumerated: usize,
    /// Symmetric duplicates skipped during enumeration.
    pub symmetry_pruned: usize,
    /// Term enumeration hit the hard cap.
    pub terms_truncated: bool,
    /// Distinct truth-vector buckets.
    pub buckets: usize,
    /// Candidate (LHS, RHS) pairs formed from the buckets.
    pub candidates: usize,
    /// Candidates dropped because the pair budget was exhausted.
    pub budget_truncated: usize,
    /// Candidates collapsing onto an already-seen canonical form.
    pub renaming_pruned: usize,
    /// Candidates the bounded prover certified outright.
    pub proved: usize,
    /// ... of which needed `NOTNULL` guards.
    pub guarded: usize,
    /// Candidates the prover refuted (bucketing false positives).
    pub refuted: usize,
    /// Prover verdict conditional — side condition not dischargeable.
    pub conditional: usize,
    /// Prover declined — outside its fragment.
    pub unsupported: usize,
    /// Proved but not strictly cost-decreasing under the oracle.
    pub cost_rejected: usize,
    /// Proved and cheaper, but already joinable in the knowledge base.
    pub redundant: usize,
    /// Rejected by the differential oracle.
    pub fuzz_rejected: usize,
    /// Rules emitted.
    pub emitted: usize,
}

impl fmt::Display for Funnel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} terms (+{} symmetry-pruned) -> {} buckets -> {} candidates \
             (-{} budget, -{} renaming) -> {} proved ({} guarded, {} refuted, \
             {} conditional, {} unsupported) -> {} cost-wins (-{} cost) -> \
             {} novel (-{} redundant) -> {} emitted (-{} fuzz)",
            self.terms_enumerated,
            self.symmetry_pruned,
            self.buckets,
            self.candidates,
            self.budget_truncated,
            self.renaming_pruned,
            self.proved,
            self.guarded,
            self.refuted,
            self.conditional,
            self.unsupported,
            self.proved - self.cost_rejected,
            self.cost_rejected,
            self.proved - self.cost_rejected - self.redundant,
            self.redundant,
            self.emitted,
            self.fuzz_rejected,
        )
    }
}

/// One emitted rule with its provenance.
#[derive(Debug, Clone)]
pub struct Discovered {
    /// The rule, named `<prefix><NNN>` in rank order.
    pub rule: Rule,
    /// Canonical form key (the re-discovery comparison handle).
    pub key: String,
    /// Valuations the prover admitted when certifying it.
    pub valuations: usize,
    /// Cost of the LHS under the oracle.
    pub lhs_cost: f64,
    /// Cost of the RHS under the oracle.
    pub rhs_cost: f64,
    /// The rule needed `NOTNULL` guards.
    pub guarded: bool,
}

/// Result of one discovery run.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// Accepted rules, ranked by descending cost win.
    pub rules: Vec<Discovered>,
    /// Survival-funnel accounting.
    pub funnel: Funnel,
    /// Options echo (for rendering and replay).
    pub seed: u64,
    /// Fragment searched.
    pub fragment: Fragment,
    /// Candidate-pair budget used.
    pub budget: usize,
}

impl Discovery {
    /// Render the run as a loadable `.rules` source: one rule per
    /// survivor plus a finite-limit block so the analyzer sees every
    /// rule reachable and bounded.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "// Discovered rewrite rules (eds-discover).");
        let _ = writeln!(
            out,
            "// seed: {:#x}; fragment: {}; budget: {} candidate pairs",
            self.seed, self.fragment, self.budget
        );
        let _ = writeln!(out, "// funnel: {}", self.funnel);
        for d in &self.rules {
            let _ = writeln!(
                out,
                "// cost {:.1} -> {:.1}{}",
                d.lhs_cost,
                d.rhs_cost,
                if d.guarded {
                    " (sound under the NOTNULL guards)"
                } else {
                    ""
                }
            );
            let _ = writeln!(out, "{} ;", d.rule);
        }
        if !self.rules.is_empty() {
            let names: Vec<&str> = self.rules.iter().map(|d| d.rule.name.as_str()).collect();
            let _ = writeln!(out, "block(discovered, {{{}}}, 100) ;", names.join(", "));
        }
        out
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A candidate before gating.
struct Candidate {
    lhs: usize,
    rhs: usize,
    guarded: bool,
}

/// Variables of `t` in first-occurrence order.
fn vars_of(t: &Term) -> Vec<String> {
    let mut seen = Vec::new();
    fn walk(t: &Term, seen: &mut Vec<String>) {
        match t {
            Term::Var(v) if !seen.iter().any(|s| s == v.as_str()) => {
                seen.push(v.as_str().to_owned());
            }
            Term::App(_, args) => {
                for a in args {
                    walk(a, seen);
                }
            }
            _ => {}
        }
    }
    walk(t, &mut seen);
    seen
}

/// Rename a candidate's variables to the conventional alphabet by kind
/// (`f, g, ...` boolean; `x, y, ...` scalar), first occurrence first.
fn pretty_rename(lhs: &Term, rhs: &Term, guards: &[Term]) -> Option<(Term, Term, Vec<Term>)> {
    let mut kinds = BTreeMap::new();
    classify(lhs, Kind::Bool, &mut kinds).ok()?;
    classify(rhs, Kind::Bool, &mut kinds).ok()?;
    let mut order = vars_of(lhs);
    for v in vars_of(rhs) {
        if !order.contains(&v) {
            order.push(v);
        }
    }
    let bool_pool = ["f", "g", "h", "i"];
    let scalar_pool = ["x", "y", "z", "w"];
    let (mut nb, mut ns) = (0usize, 0usize);
    let mut map = BTreeMap::new();
    for v in order {
        let name = match kinds.get(&v)? {
            Kind::Bool => {
                nb += 1;
                bool_pool.get(nb - 1)?
            }
            Kind::Scalar => {
                ns += 1;
                scalar_pool.get(ns - 1)?
            }
        };
        map.insert(v, (*name).to_owned());
    }
    fn apply(t: &Term, map: &BTreeMap<String, String>) -> Term {
        match t {
            Term::Var(v) => match map.get(v.as_str()) {
                Some(n) => Term::var(n.as_str()),
                None => t.clone(),
            },
            Term::App(h, args) => {
                let a: Vec<Term> = args.iter().map(|x| apply(x, map)).collect();
                Term::App(*h, a.into())
            }
            _ => t.clone(),
        }
    }
    let mut g: Vec<Term> = guards.iter().map(|t| apply(t, &map)).collect();
    g.sort_by_key(ToString::to_string);
    Some((apply(lhs, &map), apply(rhs, &map), g))
}

/// `NOTNULL` guards over every scalar variable of the pair.
fn notnull_guards(lhs: &Term, rhs: &Term) -> Option<Vec<Term>> {
    let mut kinds = BTreeMap::new();
    classify(lhs, Kind::Bool, &mut kinds).ok()?;
    classify(rhs, Kind::Bool, &mut kinds).ok()?;
    let scalars: Vec<&String> = kinds
        .iter()
        .filter(|(_, k)| **k == Kind::Scalar)
        .map(|(v, _)| v)
        .collect();
    if scalars.is_empty() {
        return None;
    }
    Some(
        scalars
            .into_iter()
            .map(|v| Term::app("NOTNULL", vec![Term::var(v.as_str())]))
            .collect(),
    )
}

/// Run the discovery pipeline against an existing knowledge base. See
/// the module docs for the funnel; `existing` both seeds the redundancy
/// oracle and keeps growing as candidates are accepted, so later
/// candidates subsumed by earlier discoveries are rejected too.
pub fn discover_rules(
    existing: &RuleSet,
    methods: &MethodRegistry,
    opts: &DiscoverOptions,
    cost: &dyn CostOracle,
    differential: &dyn DifferentialOracle,
) -> Discovery {
    let vocab = opts.fragment.vocab();
    let mut funnel = Funnel::default();

    // 1. Enumerate.
    let enumerated = enumerate_terms(&vocab, opts.max_term_size, true, MAX_TERMS);
    funnel.terms_enumerated = enumerated.terms.len();
    funnel.symmetry_pruned = enumerated.symmetry_pruned;
    funnel.terms_truncated = enumerated.truncated;

    // 2. Bucket by truth vector (full grid, then scalar-non-NULL
    //    projection for guarded candidates).
    let grid = grid_for(&vocab);
    let nonnull = scalar_nonnull_positions(&grid);
    let mut sigs: Vec<Vec<u8>> = Vec::with_capacity(enumerated.terms.len());
    let mut full_buckets: BTreeMap<Vec<u8>, Vec<usize>> = BTreeMap::new();
    let mut lenient_buckets: BTreeMap<Vec<u8>, Vec<usize>> = BTreeMap::new();
    for (i, t) in enumerated.terms.iter().enumerate() {
        let Some(sig) = signature(t, &grid) else {
            // Cannot happen for enumerated shapes; skip defensively.
            sigs.push(Vec::new());
            continue;
        };
        let projected: Vec<u8> = nonnull.iter().map(|&p| sig[p]).collect();
        full_buckets.entry(sig.clone()).or_default().push(i);
        lenient_buckets.entry(projected).or_default().push(i);
        sigs.push(sig);
    }
    funnel.buckets = full_buckets.len();

    // 3. Form candidate pairs: (larger term -> smallest equivalent).
    let terms = &enumerated.terms;
    let mut candidates: Vec<(usize, u64, Candidate)> = Vec::new();
    let push_pairs = |bucket: &[usize], guarded: bool, out: &mut Vec<(usize, u64, Candidate)>| {
        let mut members = bucket.to_vec();
        members.sort_by_key(|&i| term_key(&terms[i]));
        for (mi, &lhs) in members.iter().enumerate() {
            let lhs_vars: BTreeSet<String> = vars_of(&terms[lhs]).into_iter().collect();
            // Smallest strictly-smaller member whose variables the LHS
            // binds; earlier members are smaller by the sort.
            let rhs = members[..mi].iter().copied().find(|&r| {
                terms[r].size() < terms[lhs].size()
                    && vars_of(&terms[r]).iter().all(|v| lhs_vars.contains(v))
            });
            let Some(rhs) = rhs else { continue };
            if guarded {
                // Only propose a guard when the full grid actually
                // disagrees (else the unguarded pair covers it) and the
                // disagreement is attributable to scalar NULLs.
                if sigs[lhs] == sigs[rhs] {
                    continue;
                }
                if notnull_guards(&terms[lhs], &terms[rhs]).is_none() {
                    continue;
                }
            }
            let order_key = splitmix64(
                splitmix64(opts.seed)
                    ^ fnv1a(&format!("{} --> {}", terms[lhs], terms[rhs]))
                    ^ u64::from(guarded),
            );
            out.push((
                terms[lhs].size(),
                order_key,
                Candidate { lhs, rhs, guarded },
            ));
        }
    };
    for bucket in full_buckets.values() {
        push_pairs(bucket, false, &mut candidates);
    }
    for bucket in lenient_buckets.values() {
        push_pairs(bucket, true, &mut candidates);
    }
    // Seed-deterministic exploration order: smallest LHS first, then a
    // seeded shuffle within each size class.
    candidates.sort_by_key(|a| (a.0, a.1));
    funnel.candidates = candidates.len();
    if candidates.len() > opts.budget {
        funnel.budget_truncated = candidates.len() - opts.budget;
        candidates.truncate(opts.budget);
    }

    // 4. Gate loop: canonical dedup -> prover -> cost -> redundancy ->
    //    differential.
    let env = BasicEnv::new();
    let mut working = existing.clone();
    // Canonical forms already in the knowledge base. The joinability
    // oracle below catches candidates the existing rules *rewrite*
    // away; this set additionally catches mirror images of existing
    // rules (e.g. `NOT(a < b) --> b <= a` when `NOT(x < y) --> x >= y`
    // is registered), which no rule chain joins because nothing relates
    // the mirrored comparators.
    let existing_keys: BTreeSet<String> = existing.iter().map(canonical_rule_key).collect();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut accepted: Vec<Discovered> = Vec::new();
    for (_, _, cand) in candidates {
        if accepted.len() >= opts.max_rules {
            break;
        }
        let (raw_lhs, raw_rhs) = (&terms[cand.lhs], &terms[cand.rhs]);
        let raw_guards = if cand.guarded {
            match notnull_guards(raw_lhs, raw_rhs) {
                Some(g) => g,
                None => continue,
            }
        } else {
            Vec::new()
        };
        let key = canonical_key(raw_lhs, raw_rhs, &raw_guards);
        if !seen.insert(key.clone()) {
            funnel.renaming_pruned += 1;
            continue;
        }
        let Some((lhs, rhs, guards)) = pretty_rename(raw_lhs, raw_rhs, &raw_guards) else {
            funnel.unsupported += 1;
            continue;
        };
        let rule = Rule {
            name: format!("{}cand{}", opts.name_prefix, accepted.len() + 1),
            lhs,
            constraints: guards,
            rhs,
            methods: Vec::new(),
        };
        // Authoritative gate: the bucketing above is a pre-filter, the
        // prover verdict decides.
        let valuations = match check_rule(&rule, methods, &env) {
            Outcome::Proved { valuations } => valuations,
            Outcome::Refuted(_) => {
                funnel.refuted += 1;
                continue;
            }
            Outcome::Conditional(_) => {
                funnel.conditional += 1;
                continue;
            }
            Outcome::Unsupported(_) => {
                funnel.unsupported += 1;
                continue;
            }
        };
        funnel.proved += 1;
        if cand.guarded {
            funnel.guarded += 1;
        }
        let (Some(lc), Some(rc)) = (cost.qual_cost(&rule.lhs), cost.qual_cost(&rule.rhs)) else {
            funnel.cost_rejected += 1;
            continue;
        };
        if rc >= lc {
            funnel.cost_rejected += 1;
            continue;
        }
        // Redundancy: a canonical form the KB already has, or joinable
        // sides, teach the engine nothing new. The working set includes
        // rules accepted earlier in this run.
        if existing_keys.contains(&key)
            || JoinOracle::new(&working, methods).joinable(&rule.lhs, &rule.rhs)
        {
            funnel.redundant += 1;
            continue;
        }
        if differential.refute(&rule).is_some() {
            funnel.fuzz_rejected += 1;
            continue;
        }
        working.add(rule.clone());
        accepted.push(Discovered {
            rule,
            key,
            valuations,
            lhs_cost: lc,
            rhs_cost: rc,
            guarded: cand.guarded,
        });
    }

    // 5. Rank by descending cost win, then inter-reduce: the gate
    //    loop's working set only grew forward, so a rule accepted early
    //    can still be an instance of a more general rule accepted
    //    later. Re-check each survivor, biggest win first, against the
    //    existing KB plus the survivors kept so far — the kept set is
    //    mutually irreducible, so the emitted block carries no shadowed
    //    rules.
    accepted.sort_by(|a, b| {
        let (wa, wb) = (a.lhs_cost - a.rhs_cost, b.lhs_cost - b.rhs_cost);
        wb.partial_cmp(&wa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.key.cmp(&b.key))
    });
    let mut kept = existing.clone();
    accepted.retain(|d| {
        if JoinOracle::new(&kept, methods).joinable(&d.rule.lhs, &d.rule.rhs) {
            funnel.redundant += 1;
            return false;
        }
        kept.add(d.rule.clone());
        true
    });
    for (i, d) in accepted.iter_mut().enumerate() {
        d.rule.name = format!("{}{:03}", opts.name_prefix, i + 1);
    }
    funnel.emitted = accepted.len();

    Discovery {
        rules: accepted,
        funnel,
        seed: opts.seed,
        fragment: opts.fragment,
        budget: opts.budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{parse_source, SourceItem};

    fn registry() -> MethodRegistry {
        MethodRegistry::with_builtins()
    }

    fn run(opts: &DiscoverOptions, existing: &RuleSet) -> Discovery {
        discover_rules(existing, &registry(), opts, &NodeCountCost, &NoDifferential)
    }

    fn bool_opts() -> DiscoverOptions {
        DiscoverOptions {
            fragment: Fragment::Bool,
            max_term_size: 4,
            ..DiscoverOptions::default()
        }
    }

    #[test]
    fn discovery_on_an_empty_kb_finds_the_boolean_simplifications() {
        let d = run(&bool_opts(), &RuleSet::new());
        assert!(d.funnel.emitted > 0, "{}", d.funnel);
        let keys: Vec<&str> = d.rules.iter().map(|r| r.key.as_str()).collect();
        for src in [
            "W : NOT(NOT(f)) / --> f / ;",
            "W : f AND TRUE / --> f / ;",
            "W : f OR FALSE / --> f / ;",
            "W : NOT(TRUE) / --> FALSE / ;",
        ] {
            let want = match parse_source(src).unwrap().remove(0) {
                SourceItem::Rule(r) => canonical_rule_key(&r),
                _ => unreachable!(),
            };
            assert!(
                keys.contains(&want.as_str()),
                "missing {src} (key {want}); got {keys:#?}"
            );
        }
    }

    #[test]
    fn emitted_canonical_keys_are_unique() {
        let d = run(&DiscoverOptions::default(), &RuleSet::new());
        let mut keys: Vec<&String> = d.rules.iter().map(|r| &r.key).collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(n, keys.len(), "duplicate canonical forms emitted");
    }

    #[test]
    fn fixed_seed_is_deterministic_end_to_end() {
        let opts = DiscoverOptions::default();
        let a = run(&opts, &RuleSet::new());
        let b = run(&opts, &RuleSet::new());
        assert_eq!(a.funnel, b.funnel);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn every_emitted_rule_is_strictly_decreasing_and_named_in_rank_order() {
        let d = run(&DiscoverOptions::default(), &RuleSet::new());
        let mut last_win = f64::INFINITY;
        for (i, r) in d.rules.iter().enumerate() {
            assert!(r.rhs_cost < r.lhs_cost, "{} not a cost win", r.rule);
            assert!(r.rule.is_decreasing(), "{} not decreasing", r.rule);
            let win = r.lhs_cost - r.rhs_cost;
            assert!(win <= last_win, "ranking not monotone at {}", r.rule);
            last_win = win;
            assert_eq!(r.rule.name, format!("D{:03}", i + 1));
        }
    }

    #[test]
    fn known_rules_are_redundant_and_not_re_emitted() {
        // Seed the KB with the double-negation collapse: discovery must
        // not re-propose it (nor anything its normalizer now joins).
        let mut kb = RuleSet::new();
        let r = match parse_source("NotNot : NOT(NOT(f)) / --> f / ;")
            .unwrap()
            .remove(0)
        {
            SourceItem::Rule(r) => r,
            _ => unreachable!(),
        };
        let key = canonical_rule_key(&r);
        kb.add(r);
        let d = run(&bool_opts(), &kb);
        assert!(d.funnel.redundant > 0, "{}", d.funnel);
        assert!(
            d.rules.iter().all(|x| x.key != key),
            "re-emitted a known rule"
        );
    }

    #[test]
    fn guarded_discoveries_carry_notnull_side_conditions_and_prove() {
        // x = x is TRUE only for non-NULL x: the lenient bucketing must
        // surface it with a NOTNULL(x) guard the prover certifies.
        let opts = DiscoverOptions {
            fragment: Fragment::Cmp,
            ..DiscoverOptions::default()
        };
        let d = run(&opts, &RuleSet::new());
        let guarded: Vec<&Discovered> = d.rules.iter().filter(|r| r.guarded).collect();
        assert!(!guarded.is_empty(), "{}", d.funnel);
        for g in &guarded {
            assert!(
                g.rule.constraints.iter().all(|c| c.is_app("NOTNULL")),
                "{}",
                g.rule
            );
        }
        let want = match parse_source("W : x = x / NOTNULL(x) --> TRUE / ;")
            .unwrap()
            .remove(0)
        {
            SourceItem::Rule(r) => canonical_rule_key(&r),
            _ => unreachable!(),
        };
        assert!(
            d.rules.iter().any(|r| r.key == want),
            "missing x = x / NOTNULL(x) --> TRUE; got {:#?}",
            d.rules.iter().map(|r| r.key.as_str()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rendered_source_parses_back_and_reverifies() {
        let d = run(&bool_opts(), &RuleSet::new());
        let src = d.render();
        let items = parse_source(&src).expect("rendered source must parse");
        let rules: Vec<Rule> = items
            .into_iter()
            .filter_map(|i| match i {
                SourceItem::Rule(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(rules.len(), d.rules.len());
        let env = BasicEnv::new();
        for r in &rules {
            assert!(
                matches!(check_rule(r, &registry(), &env), Outcome::Proved { .. }),
                "re-parsed {r} no longer proves"
            );
        }
    }

    #[test]
    fn symmetry_pruning_loses_no_provable_candidate() {
        // Brute force: enumerate WITHOUT symmetry pruning, form every
        // prover-certified (larger, smaller) pair, and check its
        // canonical form is reachable from the pruned stream too.
        let vocab = Fragment::Bool.vocab();
        let pruned = enumerate_terms(&vocab, 4, true, usize::MAX);
        let full = enumerate_terms(&vocab, 4, false, usize::MAX);
        let grid = grid_for(&vocab);
        let pruned_keys: BTreeSet<String> = {
            let mut keys = BTreeSet::new();
            let mut buckets: BTreeMap<Vec<u8>, Vec<usize>> = BTreeMap::new();
            for (i, t) in pruned.terms.iter().enumerate() {
                buckets
                    .entry(signature(t, &grid).unwrap())
                    .or_default()
                    .push(i);
            }
            for bucket in buckets.values() {
                for &l in bucket {
                    for &r in bucket {
                        if pruned.terms[r].size() < pruned.terms[l].size() {
                            keys.insert(canonical_key(&pruned.terms[l], &pruned.terms[r], &[]));
                        }
                    }
                }
            }
            keys
        };
        let mut buckets: BTreeMap<Vec<u8>, Vec<usize>> = BTreeMap::new();
        for (i, t) in full.terms.iter().enumerate() {
            buckets
                .entry(signature(t, &grid).unwrap())
                .or_default()
                .push(i);
        }
        let (mut pairs, mut missing) = (0usize, Vec::new());
        for bucket in buckets.values() {
            for &l in bucket {
                for &r in bucket {
                    if full.terms[r].size() >= full.terms[l].size() {
                        continue;
                    }
                    pairs += 1;
                    let key = canonical_key(&full.terms[l], &full.terms[r], &[]);
                    if !pruned_keys.contains(&key) {
                        missing.push(key);
                    }
                }
            }
        }
        assert!(pairs > 0);
        missing.sort();
        missing.dedup();
        assert!(
            missing.is_empty(),
            "symmetry pruning dropped {} provable candidates: {missing:#?}",
            missing.len()
        );
    }
}
