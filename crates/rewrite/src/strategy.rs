//! Control: blocks of rules and sequences of blocks (Section 4.2).
//!
//! `block({rules}, value)` groups rules and bounds the number of condition
//! checks; `seq((blocks), value)` runs blocks in order, a bounded number
//! of passes. "Any optimizer generated with the rule language is a
//! sequence of blocks of rules which can be applied multiple times."
//!
//! The block loop here is the kernel's hot path, and two structures keep
//! it fast without changing observable semantics (rewrite results,
//! application order, and `condition_checks` accounting are identical to
//! the naive loop):
//!
//! * [`RuleIndex`] resolves each member rule's LHS root functor once per
//!   block run, so every attempt starts with an O(1) fingerprint test
//!   ("does this functor occur anywhere in the query?") instead of a term
//!   walk;
//! * an incremental *position worklist*: once a rule has scanned the term
//!   and failed, it is only re-scanned against the regions later
//!   applications actually changed (the rewritten subtree plus its
//!   ancestor spine), not the whole term.

use std::collections::{HashMap, HashSet};

use crate::engine::{apply_rule_once, apply_rule_once_dirty, RewriteStats};
use crate::error::{RewriteError, RwResult};
use crate::methods::{MethodRegistry, TermEnv};
use crate::rule::Rule;
use crate::symbol::Symbol;
use crate::term::Term;
use crate::trace::{Trace, TraceEvent};

/// Block application limit: a finite number of condition checks, or
/// saturation ("an infinite limit means application up to saturation").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limit {
    /// At most this many condition checks.
    Finite(u64),
    /// Run until no rule in the block applies.
    Infinite,
}

impl Limit {
    fn budget(self) -> u64 {
        match self {
            Limit::Finite(n) => n,
            Limit::Infinite => u64::MAX,
        }
    }
}

impl std::fmt::Display for Limit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Limit::Finite(n) => write!(f, "{n}"),
            Limit::Infinite => write!(f, "INF"),
        }
    }
}

/// A named block of rules with its application limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block name, referenced by sequences.
    pub name: String,
    /// Names of member rules (the same rule may appear in several blocks).
    pub rules: Vec<String>,
    /// Condition-check budget.
    pub limit: Limit,
}

impl std::fmt::Display for Block {
    /// Renders in the concrete syntax of Figure 6 minus the trailing `;`,
    /// so `format!("{block} ;")` reparses — the autofix engine relies on
    /// this to regenerate block definitions.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "block({}, {{", self.name)?;
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}, {})", self.limit)
    }
}

/// The meta-rule ordering blocks: run `blocks` in sequence, `passes`
/// times.
#[derive(Debug, Clone, PartialEq)]
pub struct Sequence {
    /// Block names, applied in order.
    pub blocks: Vec<String>,
    /// Maximum number of passes over the whole list.
    pub passes: u64,
}

/// An indexed set of rules (the rewriting knowledge base).
///
/// Removal tombstones the slot instead of shifting the tail, so both
/// `remove` and `get` are O(1); iteration stays in insertion order. The
/// slot vector is compacted once tombstones outnumber live rules.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    slots: Vec<Option<Rule>>,
    index: HashMap<String, usize>,
    live: usize,
}

impl RuleSet {
    /// Empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule. Returns the previously registered rule with the same
    /// name when the call replaced one (`HashMap::insert` style), so
    /// callers can surface silent shadowing instead of swallowing it.
    pub fn add(&mut self, rule: Rule) -> Option<Rule> {
        if let Some(&i) = self.index.get(&rule.name) {
            self.slots[i].replace(rule)
        } else {
            self.index.insert(rule.name.clone(), self.slots.len());
            self.slots.push(Some(rule));
            self.live += 1;
            None
        }
    }

    /// Is a rule with this name registered?
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Remove a rule by name; the database implementor "can add or delete
    /// rewriting rules". O(1): the slot is tombstoned, not shifted over.
    pub fn remove(&mut self, name: &str) -> bool {
        match self.index.remove(name) {
            Some(i) => {
                self.slots[i] = None;
                self.live -= 1;
                if self.slots.len() >= 16 && self.live * 2 < self.slots.len() {
                    self.compact();
                }
                true
            }
            None => false,
        }
    }

    /// Drop tombstones and rebuild the name index. Amortized against the
    /// removals that created the tombstones.
    fn compact(&mut self) {
        self.slots.retain(Option::is_some);
        self.index.clear();
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(r) = slot {
                self.index.insert(r.name.clone(), i);
            }
        }
    }

    /// Look up a rule.
    pub fn get(&self, name: &str) -> Option<&Rule> {
        self.index.get(name).and_then(|&i| self.slots[i].as_ref())
    }

    /// All rules, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no rules are present.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// A complete control strategy: block definitions plus the sequence
/// meta-rule. "Changing block definitions or the list of blocks in the
/// sequence meta-rule may completely change the generated optimizer."
#[derive(Debug, Clone, Default)]
pub struct Strategy {
    blocks: Vec<Block>,
    by_name: HashMap<String, usize>,
    /// The sequence meta-rule; defaults to all blocks, one pass.
    pub sequence: Option<Sequence>,
    /// Names of *choice-point* blocks: blocks whose rules are heuristic
    /// (permutation, merging, semantic transformations) rather than pure
    /// normalization, so intermediate states they pass through are worth
    /// keeping as exploration candidates. Only consulted by
    /// [`run_strategy_explore`]; plain [`run_strategy`] ignores it.
    explore: HashSet<String>,
}

impl Strategy {
    /// Empty strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define (or replace) a block.
    pub fn add_block(&mut self, block: Block) {
        if let Some(&i) = self.by_name.get(&block.name) {
            self.blocks[i] = block;
        } else {
            self.by_name.insert(block.name.clone(), self.blocks.len());
            self.blocks.push(block);
        }
    }

    /// Set the sequence meta-rule.
    pub fn set_sequence(&mut self, seq: Sequence) {
        self.sequence = Some(seq);
    }

    /// Look up a block.
    pub fn block(&self, name: &str) -> Option<&Block> {
        self.by_name.get(name).map(|&i| &self.blocks[i])
    }

    /// Override the limit of an existing block — the dynamic-limit knob
    /// discussed in the paper's conclusion ("limits can even be adjusted
    /// during the query rewriting process").
    pub fn set_limit(&mut self, block: &str, limit: Limit) -> RwResult<()> {
        match self.by_name.get(block) {
            Some(&i) => {
                self.blocks[i].limit = limit;
                Ok(())
            }
            None => Err(RewriteError::UnknownBlock(block.to_owned())),
        }
    }

    /// Blocks in definition order.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Declare which blocks are choice points for cost-guided
    /// exploration (replaces any previous set). Unknown names are
    /// harmless — they simply never match a block.
    pub fn set_explore_blocks<I, S>(&mut self, names: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.explore = names.into_iter().map(Into::into).collect();
    }

    /// Is `name` a declared choice-point block?
    pub fn is_explore_block(&self, name: &str) -> bool {
        self.explore.contains(name)
    }

    /// The effective block execution order.
    pub(crate) fn order(&self) -> (Vec<&Block>, u64) {
        match &self.sequence {
            Some(seq) => (
                seq.blocks.iter().filter_map(|n| self.block(n)).collect(),
                seq.passes,
            ),
            None => (self.blocks.iter().collect(), 1),
        }
    }
}

/// What a member rule still has to look at. After a rule scans the whole
/// term and fails, only later applications can make it match again — and
/// only at the rewritten position's spine or subtree.
#[derive(Debug, Clone)]
enum Dirty {
    /// The rule has untested positions anywhere in the term (initial
    /// state, and the state of a rule right after it fires: the scan
    /// stopped at the application site, so later positions were never
    /// examined).
    All,
    /// The rule failed on the term as of its last scan; only these
    /// positions (spine + subtree each) have changed since.
    Paths(Vec<Vec<usize>>),
    /// The rule failed and nothing changed since: the attempt can be
    /// resolved without touching the term.
    Clean,
}

/// Beyond this many accumulated dirty paths a full rescan is cheaper than
/// a restricted one.
const DIRTY_PATH_CAP: usize = 64;

impl Dirty {
    fn note(&mut self, path: &[usize]) {
        match self {
            Dirty::All => {}
            Dirty::Paths(paths) => {
                if paths.last().map(Vec::as_slice) != Some(path) {
                    paths.push(path.to_vec());
                    if paths.len() > DIRTY_PATH_CAP {
                        *self = Dirty::All;
                    }
                }
            }
            Dirty::Clean => *self = Dirty::Paths(vec![path.to_vec()]),
        }
    }
}

/// Root-functor index over a block's member rules.
///
/// Built once per block run: resolves member names against the
/// [`RuleSet`], records each rule's LHS head [`Symbol`], and ORs their
/// fingerprint bits into a mask. During the saturation loop an attempt
/// against a rule whose head functor does not occur in the query is
/// rejected by one AND against the term's cached fingerprint — the term
/// is never walked. Rules whose LHS is not an application (a bare
/// variable or constant pattern) are *wildcards* and always scan.
///
/// Missing members are skipped, matching the block semantics for deleted
/// rules.
#[derive(Debug)]
pub struct RuleIndex<'r> {
    members: Vec<IndexedRule<'r>>,
    head_mask: u64,
    wildcards: usize,
}

#[derive(Debug)]
struct IndexedRule<'r> {
    rule: &'r Rule,
    head: Option<Symbol>,
}

impl<'r> RuleIndex<'r> {
    /// Index `block`'s members against `rules`.
    pub fn build(rules: &'r RuleSet, block: &Block) -> Self {
        let mut members = Vec::with_capacity(block.rules.len());
        let mut head_mask = 0u64;
        let mut wildcards = 0usize;
        for name in &block.rules {
            let Some(rule) = rules.get(name) else {
                continue;
            };
            let head = rule.lhs.head();
            match head {
                Some(h) => head_mask |= h.fp_bit(),
                None => wildcards += 1,
            }
            members.push(IndexedRule { rule, head });
        }
        RuleIndex {
            members,
            head_mask,
            wildcards,
        }
    }

    /// Number of resolvable member rules.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the block has no resolvable members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// O(1) pretest: can *any* member rule possibly match `term`? False
    /// means every member's head functor is provably absent.
    pub fn any_head_present(&self, term: &Term) -> bool {
        self.wildcards > 0 || self.head_mask & term.fingerprint() != 0
    }
}

/// Outcome of a strategy run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The rewritten term.
    pub term: Term,
    /// Aggregate counters.
    pub stats: RewriteStats,
    /// Per-application trace (empty unless tracing was requested). Under
    /// exploration the trace describes the *mainline* saturation run;
    /// when a candidate wins, [`RunOutcome::exploration`] records the
    /// divergence.
    pub trace: Trace,
    /// True when some block stopped because its limit ran out rather than
    /// by saturation.
    pub budget_exhausted: bool,
    /// Cost-guided exploration report ([`run_strategy_explore`] only).
    pub exploration: Option<Exploration>,
}

/// What cost-guided exploration did for one statement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exploration {
    /// Plans scored, including the mainline saturation result.
    pub considered: u64,
    /// Estimated cost of the emitted plan.
    pub chosen_cost: f64,
    /// Estimated cost of the best plan *not* emitted, when more than one
    /// was scored.
    pub runner_up_cost: Option<f64>,
    /// True when the emitted plan is not the mainline result.
    pub improved: bool,
}

/// Knobs and scoring callback for [`run_strategy_explore`].
///
/// The score maps a candidate term to an estimated execution cost
/// (`None` when the term cannot be lowered or estimated — such
/// candidates are discarded). The budget generalizes the paper's
/// fixed block limits: exploration stops as soon as the best plan found
/// so far is already cheaper than the estimated price of normalizing
/// one more candidate (`check_cost` × the running per-candidate check
/// average), or when `max_checks`/`k` run out.
pub struct ExploreOptions<'a> {
    /// Maximum candidates to normalize and score (beyond the mainline).
    pub k: usize,
    /// Hard cap on condition checks spent normalizing candidates.
    pub max_checks: u64,
    /// Estimated-cost units one condition check is worth; the exchange
    /// rate between rewrite-time work and execution-time work.
    pub check_cost: f64,
    /// Plan scoring callback.
    pub score: &'a dyn Fn(&Term) -> Option<f64>,
}

/// Per block run, at most this many trajectory snapshots are retained as
/// exploration candidates: the pre-block state plus the most recent
/// states (late snapshots have absorbed the most normalization, so they
/// are the likeliest to differ from the mainline only at the harmful
/// step).
const SNAPSHOT_CAP: usize = 16;

/// Run one block to saturation or budget exhaustion. Each *condition
/// check* (attempt to match one rule against the query) costs one unit of
/// the block's limit, following Section 4.2 — including attempts resolved
/// by the fingerprint pretest or the worklist without scanning, so a
/// block's `Limit` means exactly what it meant under the naive loop.
pub fn apply_block(
    rules: &RuleSet,
    block: &Block,
    methods: &MethodRegistry,
    env: &dyn TermEnv,
    term: Term,
    collect_trace: bool,
) -> RwResult<RunOutcome> {
    apply_block_capture(rules, block, methods, env, term, collect_trace, None)
}

/// [`apply_block`], optionally snapshotting the term before each
/// successful application into `capture` (bounded by [`SNAPSHOT_CAP`]:
/// the pre-block state plus the most recent states). The saturation
/// loop itself is unchanged — the snapshots are the block's visited
/// trajectory, which cost-guided exploration mines for candidates.
fn apply_block_capture(
    rules: &RuleSet,
    block: &Block,
    methods: &MethodRegistry,
    env: &dyn TermEnv,
    mut term: Term,
    collect_trace: bool,
    mut capture: Option<&mut Vec<Term>>,
) -> RwResult<RunOutcome> {
    let mut budget = block.limit.budget();
    let mut stats = RewriteStats::default();
    let mut trace = Trace::default();
    let mut exhausted = false;

    // Blocks may reference rules the implementor has since deleted
    // ("the database implementor can add or delete rewriting rules");
    // missing members are skipped rather than failing the whole block.
    let index = RuleIndex::build(rules, block);
    let mut dirty: Vec<Dirty> = vec![Dirty::All; index.members.len()];

    'outer: loop {
        let mut progressed = false;
        for (i, member) in index.members.iter().enumerate() {
            if budget == 0 {
                exhausted = true;
                break 'outer;
            }
            budget -= 1;
            // Resolve the attempt as cheaply as its state allows; every
            // branch costs exactly one condition check.
            let outcome = match &dirty[i] {
                Dirty::Clean => {
                    stats.condition_checks += 1;
                    None
                }
                _ if member.head.is_some_and(|h| !term.may_contain(h)) => {
                    stats.condition_checks += 1;
                    None
                }
                Dirty::All => apply_rule_once(member.rule, &term, methods, env, &mut stats)?,
                Dirty::Paths(paths) => {
                    apply_rule_once_dirty(member.rule, &term, paths, methods, env, &mut stats)?
                }
            };
            match outcome {
                Some((new_term, app)) => {
                    if let Some(snaps) = capture.as_deref_mut() {
                        if snaps.len() >= SNAPSHOT_CAP {
                            // Keep the pre-block state, evict the oldest
                            // intermediate.
                            snaps.remove(1);
                        }
                        snaps.push(term.clone());
                    }
                    if collect_trace {
                        trace.push(TraceEvent {
                            block: block.name.clone(),
                            rule: member.rule.name.clone(),
                            path: app.path.clone(),
                            before_size: term.size(),
                            after_size: new_term.size(),
                        });
                    }
                    term = new_term;
                    progressed = true;
                    // The firing rule's scan stopped at the application
                    // site: everything after it is untested. Every other
                    // rule only needs to revisit the changed region.
                    for (j, d) in dirty.iter_mut().enumerate() {
                        if j == i {
                            *d = Dirty::All;
                        } else {
                            d.note(&app.path);
                        }
                    }
                }
                None => dirty[i] = Dirty::Clean,
            }
        }
        if !progressed {
            break;
        }
    }

    Ok(RunOutcome {
        term,
        stats,
        trace,
        budget_exhausted: exhausted,
        exploration: None,
    })
}

/// Run a full strategy: the sequence of blocks, `passes` times, stopping
/// early once a whole pass makes no change.
pub fn run_strategy(
    rules: &RuleSet,
    strategy: &Strategy,
    methods: &MethodRegistry,
    env: &dyn TermEnv,
    mut term: Term,
    collect_trace: bool,
) -> RwResult<RunOutcome> {
    let (order, passes) = strategy.order();
    let mut stats = RewriteStats::default();
    let mut trace = Trace::default();
    let mut exhausted = false;

    for _ in 0..passes {
        let before = term.clone();
        for block in &order {
            let outcome = apply_block(rules, block, methods, env, term, collect_trace)?;
            term = outcome.term;
            stats.absorb(outcome.stats);
            trace.extend(outcome.trace);
            exhausted |= outcome.budget_exhausted;
        }
        if term == before {
            break;
        }
    }

    Ok(RunOutcome {
        term,
        stats,
        trace,
        budget_exhausted: exhausted,
        exploration: None,
    })
}

/// [`run_strategy`] plus cost-guided candidate exploration.
///
/// The mainline saturation run proceeds exactly as under
/// [`run_strategy`], but at each declared choice-point block (see
/// [`Strategy::set_explore_blocks`]) the trajectory of intermediate
/// terms is snapshotted. Afterwards, each snapshot — a state the
/// saturation passed *through* and would normally discard — is
/// normalized by the remaining non-choice-point blocks of the sequence
/// and scored; the cheapest plan overall is emitted.
///
/// Skipping the choice-point blocks during candidate normalization is
/// what preserves the candidate's distinguishing shape (re-running the
/// merging block would just re-flatten an intentionally kept nested
/// join); it is sound because every rule in the knowledge base is
/// semantics-preserving, so *any* prefix of applications yields an
/// equivalent plan.
///
/// Exploration work is bounded by the cost budget in `explore` (see
/// [`ExploreOptions`]); the extra condition checks are accounted in
/// `RewriteStats::explore_checks`, leaving `condition_checks` identical
/// to what `Simple` would report for the same statement.
pub fn run_strategy_explore(
    rules: &RuleSet,
    strategy: &Strategy,
    methods: &MethodRegistry,
    env: &dyn TermEnv,
    mut term: Term,
    collect_trace: bool,
    explore: &ExploreOptions,
) -> RwResult<RunOutcome> {
    let (order, passes) = strategy.order();
    let mut stats = RewriteStats::default();
    let mut trace = Trace::default();
    let mut exhausted = false;
    // (pass, block index, term) for every snapshot taken at a
    // choice-point block; the position locates the remaining blocks the
    // candidate still has to be normalized by.
    let mut snapshots: Vec<(u64, usize, Term)> = Vec::new();

    for pass in 0..passes {
        let before = term.clone();
        for (bi, block) in order.iter().enumerate() {
            let mut taken: Vec<Term> = Vec::new();
            let capture = strategy.is_explore_block(&block.name).then_some(&mut taken);
            let outcome =
                apply_block_capture(rules, block, methods, env, term, collect_trace, capture)?;
            term = outcome.term;
            stats.absorb(outcome.stats);
            trace.extend(outcome.trace);
            exhausted |= outcome.budget_exhausted;
            snapshots.extend(taken.into_iter().map(|t| (pass, bi, t)));
        }
        if term == before {
            break;
        }
    }

    // Score the mainline; an unscorable mainline disables exploration
    // for this statement (nothing to compare against).
    let Some(mainline_cost) = (explore.score)(&term) else {
        return Ok(RunOutcome {
            term,
            stats,
            trace,
            budget_exhausted: exhausted,
            exploration: None,
        });
    };
    stats.explore_candidates += 1;
    let mut best_term = term.clone();
    let mut best_cost = mainline_cost;
    let mut runner_up: Option<f64> = None;
    // Trajectory states already normalized (snapshots repeat when a
    // block is revisited across passes) and plans already scored (many
    // snapshots normalize to the same plan — including the mainline's).
    let mut seen_snaps: HashSet<Term> = HashSet::new();
    let mut seen_plans: HashSet<Term> = HashSet::new();
    seen_plans.insert(term.clone());
    let mut scored = 0usize;
    // The expected price of the next candidate's normalization, seeded
    // with the mainline's own check count and refined as candidates are
    // processed.
    let mut expected_checks = stats.condition_checks.max(1);

    // Most recent snapshots first: they have absorbed the most
    // normalization, so they differ from the mainline by the fewest
    // (and latest) choice-point applications.
    for (pass, bi, snap) in snapshots.into_iter().rev() {
        if scored >= explore.k {
            break;
        }
        if stats.explore_checks >= explore.max_checks
            || best_cost <= explore.check_cost * expected_checks as f64
        {
            // The best plan found is already cheaper to run than one
            // more candidate is to produce: exploring further cannot
            // pay for itself.
            stats.explore_budget_stops += 1;
            break;
        }
        if !seen_snaps.insert(snap.clone()) {
            continue;
        }
        let (normalized, checks) = normalize_candidate(
            rules, strategy, &order, passes, methods, env, pass, bi, snap,
        )?;
        stats.explore_checks += checks;
        expected_checks = checks.max(1);
        if !seen_plans.insert(normalized.clone()) {
            continue;
        }
        scored += 1;
        stats.explore_candidates += 1;
        let Some(cost) = (explore.score)(&normalized) else {
            continue;
        };
        if cost < best_cost {
            runner_up = Some(best_cost);
            best_cost = cost;
            best_term = normalized;
        } else if runner_up.is_none_or(|r| cost < r) {
            runner_up = Some(cost);
        }
    }

    let improved = best_term != term;
    if improved {
        stats.explore_wins += 1;
    }
    Ok(RunOutcome {
        term: best_term,
        stats,
        trace,
        budget_exhausted: exhausted,
        exploration: Some(Exploration {
            considered: stats.explore_candidates,
            chosen_cost: best_cost,
            runner_up_cost: runner_up,
            improved,
        }),
    })
}

/// Normalize an exploration candidate by the remainder of the sequence:
/// the blocks after its capture position in that pass, then the
/// remaining passes — skipping choice-point blocks, whose re-application
/// would erase what makes the candidate different. Returns the
/// normalized term and the condition checks spent.
#[allow(clippy::too_many_arguments)]
fn normalize_candidate(
    rules: &RuleSet,
    strategy: &Strategy,
    order: &[&Block],
    passes: u64,
    methods: &MethodRegistry,
    env: &dyn TermEnv,
    start_pass: u64,
    start_bi: usize,
    mut term: Term,
) -> RwResult<(Term, u64)> {
    let mut checks = 0u64;
    for pass in start_pass..passes {
        let first = if pass == start_pass { start_bi + 1 } else { 0 };
        let before = term.clone();
        for block in order.iter().skip(first) {
            if strategy.is_explore_block(&block.name) {
                continue;
            }
            let outcome = apply_block(rules, block, methods, env, term, false)?;
            term = outcome.term;
            checks += outcome.stats.condition_checks;
        }
        if pass > start_pass && term == before {
            break;
        }
    }
    Ok((term, checks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::BasicEnv;

    fn shrink_rule() -> Rule {
        Rule::simple(
            "unwrap",
            Term::app("F", vec![Term::var("x")]),
            Term::var("x"),
        )
    }

    fn grow_rule() -> Rule {
        Rule::simple(
            "wrap",
            Term::app("G", vec![Term::var("x")]),
            Term::app("G", vec![Term::app("F", vec![Term::var("x")])]),
        )
    }

    fn nested(n: usize) -> Term {
        let mut t = Term::int(0);
        for _ in 0..n {
            t = Term::app("F", vec![t]);
        }
        t
    }

    #[test]
    fn saturation_with_decreasing_rule_terminates() {
        let mut rules = RuleSet::new();
        rules.add(shrink_rule());
        let block = Block {
            name: "b".into(),
            rules: vec!["unwrap".into()],
            limit: Limit::Infinite,
        };
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let out = apply_block(&rules, &block, &methods, &env, nested(10), false).unwrap();
        assert_eq!(out.term, Term::int(0));
        assert_eq!(out.stats.applications, 10);
        assert!(!out.budget_exhausted);
    }

    #[test]
    fn finite_limit_stops_looping_rule() {
        // "wrap" grows forever; the block budget must stop it.
        let mut rules = RuleSet::new();
        rules.add(grow_rule());
        let block = Block {
            name: "b".into(),
            rules: vec!["wrap".into()],
            limit: Limit::Finite(25),
        };
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let start = Term::app("G", vec![Term::int(1)]);
        let out = apply_block(&rules, &block, &methods, &env, start, false).unwrap();
        assert!(out.budget_exhausted);
        assert_eq!(out.stats.condition_checks, 25);
        assert_eq!(out.stats.applications, 25);
    }

    #[test]
    fn zero_limit_disables_block() {
        // "Simple queries do not need sophisticated optimization: a 0
        // limit can then be given to all blocks" (Section 7).
        let mut rules = RuleSet::new();
        rules.add(shrink_rule());
        let block = Block {
            name: "b".into(),
            rules: vec!["unwrap".into()],
            limit: Limit::Finite(0),
        };
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let start = nested(3);
        let out = apply_block(&rules, &block, &methods, &env, start.clone(), false).unwrap();
        assert_eq!(out.term, start);
        assert_eq!(out.stats.applications, 0);
    }

    #[test]
    fn sequence_runs_blocks_in_order() {
        // Block 1 rewrites A -> B, block 2 rewrites B -> C; order matters.
        let mut rules = RuleSet::new();
        rules.add(Rule::simple("ab", Term::atom("A"), Term::atom("B")));
        rules.add(Rule::simple("bc", Term::atom("B"), Term::atom("C")));
        let mut strategy = Strategy::new();
        strategy.add_block(Block {
            name: "first".into(),
            rules: vec!["ab".into()],
            limit: Limit::Infinite,
        });
        strategy.add_block(Block {
            name: "second".into(),
            rules: vec!["bc".into()],
            limit: Limit::Infinite,
        });
        strategy.set_sequence(Sequence {
            blocks: vec!["first".into(), "second".into()],
            passes: 1,
        });
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let out = run_strategy(&rules, &strategy, &methods, &env, Term::atom("A"), true).unwrap();
        assert_eq!(out.term, Term::atom("C"));
        assert_eq!(out.trace.events().len(), 2);

        // Reversed sequence needs two passes to reach C.
        strategy.set_sequence(Sequence {
            blocks: vec!["second".into(), "first".into()],
            passes: 1,
        });
        let out = run_strategy(&rules, &strategy, &methods, &env, Term::atom("A"), false).unwrap();
        assert_eq!(out.term, Term::atom("B"));
        strategy.set_sequence(Sequence {
            blocks: vec!["second".into(), "first".into()],
            passes: 2,
        });
        let out = run_strategy(&rules, &strategy, &methods, &env, Term::atom("A"), false).unwrap();
        assert_eq!(out.term, Term::atom("C"));
    }

    /// Choice block rewrites A → B → C (two steps); a separate cleanup
    /// block rewrites any `D(x)` wrapper away. Scoring A=3, B=1, C=2
    /// must make exploration emit B — a state the mainline only passed
    /// through.
    fn explore_fixture() -> (RuleSet, Strategy) {
        let mut rules = RuleSet::new();
        rules.add(Rule::simple("ab", Term::atom("A"), Term::atom("B")));
        rules.add(Rule::simple("bc", Term::atom("B"), Term::atom("C")));
        rules.add(Rule::simple(
            "unwrap_d",
            Term::app("D", vec![Term::var("x")]),
            Term::var("x"),
        ));
        let mut strategy = Strategy::new();
        strategy.add_block(Block {
            name: "choice".into(),
            rules: vec!["ab".into(), "bc".into()],
            limit: Limit::Infinite,
        });
        strategy.add_block(Block {
            name: "cleanup".into(),
            rules: vec!["unwrap_d".into()],
            limit: Limit::Infinite,
        });
        strategy.set_sequence(Sequence {
            blocks: vec!["choice".into(), "cleanup".into()],
            passes: 2,
        });
        strategy.set_explore_blocks(["choice"]);
        (rules, strategy)
    }

    fn score_abc(t: &Term) -> Option<f64> {
        match t {
            t if *t == Term::atom("A") => Some(3.0),
            t if *t == Term::atom("B") => Some(1.0),
            t if *t == Term::atom("C") => Some(2.0),
            _ => None,
        }
    }

    #[test]
    fn exploration_recovers_discarded_intermediate() {
        let (rules, strategy) = explore_fixture();
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let opts = ExploreOptions {
            k: 8,
            max_checks: 10_000,
            check_cost: 0.0,
            score: &score_abc,
        };
        let out = run_strategy_explore(
            &rules,
            &strategy,
            &methods,
            &env,
            Term::atom("A"),
            false,
            &opts,
        )
        .unwrap();
        // Mainline saturates to C; the snapshot trajectory holds A and
        // B, and B scores cheapest.
        assert_eq!(out.term, Term::atom("B"));
        let exp = out.exploration.expect("explored");
        assert!(exp.improved);
        assert_eq!(exp.chosen_cost, 1.0);
        assert_eq!(exp.runner_up_cost, Some(2.0));
        assert!(exp.considered >= 2);
        assert_eq!(out.stats.explore_wins, 1);
        assert!(out.stats.explore_checks > 0);
        // The mainline's own counters match what run_strategy reports.
        let plain =
            run_strategy(&rules, &strategy, &methods, &env, Term::atom("A"), false).unwrap();
        assert_eq!(plain.term, Term::atom("C"));
        assert_eq!(out.stats.condition_checks, plain.stats.condition_checks);
        assert_eq!(out.stats.applications, plain.stats.applications);
    }

    #[test]
    fn exploration_budget_stops_when_win_cannot_pay() {
        let (rules, strategy) = explore_fixture();
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        // Every plan is dirt cheap relative to the price of a check:
        // the budget must refuse to normalize even one candidate.
        let opts = ExploreOptions {
            k: 8,
            max_checks: 10_000,
            check_cost: 1e9,
            score: &score_abc,
        };
        let out = run_strategy_explore(
            &rules,
            &strategy,
            &methods,
            &env,
            Term::atom("A"),
            false,
            &opts,
        )
        .unwrap();
        assert_eq!(out.term, Term::atom("C"), "mainline kept");
        assert_eq!(out.stats.explore_budget_stops, 1);
        assert_eq!(out.stats.explore_checks, 0);
        let exp = out.exploration.expect("report still present");
        assert!(!exp.improved);
        assert_eq!(exp.considered, 1);
    }

    #[test]
    fn unscorable_mainline_disables_exploration() {
        let (rules, strategy) = explore_fixture();
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let opts = ExploreOptions {
            k: 8,
            max_checks: 10_000,
            check_cost: 0.0,
            score: &|_| None,
        };
        let out = run_strategy_explore(
            &rules,
            &strategy,
            &methods,
            &env,
            Term::atom("A"),
            false,
            &opts,
        )
        .unwrap();
        assert_eq!(out.term, Term::atom("C"));
        assert!(out.exploration.is_none());
        assert_eq!(out.stats.explore_candidates, 0);
    }

    #[test]
    fn candidates_are_normalized_by_remaining_blocks() {
        // The candidate kept from the choice block still goes through
        // the cleanup block: wrap the intermediate in D(...) via the
        // choice rules and check the winner is unwrapped.
        let mut rules = RuleSet::new();
        rules.add(Rule::simple(
            "ab",
            Term::atom("A"),
            Term::app("D", vec![Term::atom("B")]),
        ));
        rules.add(Rule::simple(
            "bc",
            Term::app("D", vec![Term::atom("B")]),
            Term::atom("C"),
        ));
        rules.add(Rule::simple(
            "unwrap_d",
            Term::app("D", vec![Term::var("x")]),
            Term::var("x"),
        ));
        let mut strategy = Strategy::new();
        strategy.add_block(Block {
            name: "choice".into(),
            rules: vec!["ab".into(), "bc".into()],
            limit: Limit::Infinite,
        });
        strategy.add_block(Block {
            name: "cleanup".into(),
            rules: vec!["unwrap_d".into()],
            limit: Limit::Infinite,
        });
        strategy.set_sequence(Sequence {
            blocks: vec!["choice".into(), "cleanup".into()],
            passes: 1,
        });
        strategy.set_explore_blocks(["choice"]);
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        // D(B) is a mid-choice state; normalized through cleanup it
        // becomes B, which the score prefers over the mainline C.
        let opts = ExploreOptions {
            k: 8,
            max_checks: 10_000,
            check_cost: 0.0,
            score: &|t: &Term| {
                if *t == Term::atom("B") {
                    Some(1.0)
                } else if t.is_app("D") {
                    Some(50.0)
                } else {
                    Some(10.0)
                }
            },
        };
        let out = run_strategy_explore(
            &rules,
            &strategy,
            &methods,
            &env,
            Term::atom("A"),
            false,
            &opts,
        )
        .unwrap();
        assert_eq!(out.term, Term::atom("B"), "candidate was normalized");
    }

    #[test]
    fn deleted_rules_are_skipped_by_blocks() {
        let mut rules = RuleSet::new();
        rules.add(shrink_rule());
        let block = Block {
            name: "b".into(),
            rules: vec!["missing".into(), "unwrap".into()],
            limit: Limit::Infinite,
        };
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let out = apply_block(&rules, &block, &methods, &env, nested(2), false).unwrap();
        assert_eq!(out.term, Term::int(0)); // remaining rule still runs
    }

    #[test]
    fn ruleset_add_replace_remove() {
        let mut rules = RuleSet::new();
        assert!(rules.add(shrink_rule()).is_none());
        assert!(rules.add(grow_rule()).is_none());
        assert_eq!(rules.len(), 2);
        assert!(rules.contains("unwrap"));
        // Same-name add replaces and hands back the shadowed rule.
        let replaced = rules.add(Rule::simple(
            "unwrap",
            Term::app("F", vec![Term::var("x")]),
            Term::app("H", vec![Term::var("x")]),
        ));
        assert_eq!(replaced.unwrap().rhs, Term::var("x"));
        assert_eq!(rules.len(), 2);
        assert!(rules.get("unwrap").unwrap().rhs.is_app("H"));
        assert!(rules.remove("unwrap"));
        assert!(!rules.remove("unwrap"));
        assert!(rules.get("wrap").is_some());
    }

    #[test]
    fn removal_keeps_iteration_order_and_lookups() {
        let mut rules = RuleSet::new();
        for i in 0..40 {
            rules.add(Rule::simple(
                format!("r{i}"),
                Term::app(format!("F{i}"), vec![Term::var("x")]),
                Term::var("x"),
            ));
        }
        // Remove every other rule; enough removals to trigger compaction.
        for i in (0..40).step_by(2) {
            assert!(rules.remove(&format!("r{i}")));
        }
        assert_eq!(rules.len(), 20);
        let names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        let expected: Vec<String> = (1..40).step_by(2).map(|i| format!("r{i}")).collect();
        assert_eq!(names, expected);
        // Survivors still resolve after compaction rebuilt the index.
        for i in (1..40).step_by(2) {
            assert!(rules.get(&format!("r{i}")).is_some(), "r{i} lost");
        }
        assert!(rules.get("r0").is_none());
    }

    /// Regression: interleave remove/add/get *across* the compaction
    /// boundary (`slots.len() >= 16 && live*2 < slots.len()`). Compaction
    /// rebuilds the name index with new slot positions; every subsequent
    /// add (including same-name replacement), remove and get must agree
    /// with a straightforward model of the set.
    #[test]
    fn interleaved_mutation_across_compaction_boundary() {
        use std::collections::BTreeMap;

        fn check(rules: &RuleSet, model: &BTreeMap<String, String>, insertion: &[String]) {
            assert_eq!(rules.len(), model.len());
            assert_eq!(rules.is_empty(), model.is_empty());
            // Iteration preserves insertion order of the live rules.
            let got: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
            let expected: Vec<&str> = insertion
                .iter()
                .filter(|n| model.contains_key(*n))
                .map(String::as_str)
                .collect();
            assert_eq!(got, expected);
            // Every live rule resolves to its latest body; removed names miss.
            for (name, head) in model {
                assert!(
                    rules.get(name).is_some_and(|r| r.lhs.is_app(head)),
                    "{name} must map to head {head}"
                );
            }
        }

        let mk = |name: &str, head: &str| {
            Rule::simple(name, Term::app(head, vec![Term::var("x")]), Term::var("x"))
        };
        let mut rules = RuleSet::new();
        let mut model: BTreeMap<String, String> = BTreeMap::new();
        let mut insertion: Vec<String> = Vec::new();

        // Fill to exactly 20 slots, no tombstones.
        for i in 0..20 {
            let (name, head) = (format!("r{i}"), format!("F{i}"));
            rules.add(mk(&name, &head));
            model.insert(name.clone(), head);
            insertion.push(name);
        }
        check(&rules, &model, &insertion);

        // Remove 9 of 20: live=11, 11*2=22 >= 20, so still tombstoned.
        for i in 0..9 {
            assert!(rules.remove(&format!("r{i}")));
            model.remove(&format!("r{i}"));
        }
        check(&rules, &model, &insertion);

        // Same-name replacement through a tombstoned vector must not
        // resurrect positions: r12's head changes in place.
        rules.add(mk("r12", "G12"));
        model.insert("r12".into(), "G12".into());
        check(&rules, &model, &insertion);

        // The 10th removal crosses the boundary: live=10, 10*2=20 < 20 is
        // false... one more: live drops to 10 (20 slots) then 9 (compacts).
        assert!(rules.remove("r9"));
        model.remove("r9");
        assert!(rules.remove("r10"));
        model.remove("r10");
        check(&rules, &model, &insertion); // index was just rebuilt

        // Post-compaction: adds append at fresh slot positions, replacement
        // of a survivor keeps its compacted position, removal of a
        // pre-compaction name stays a miss.
        assert!(!rules.remove("r3"));
        rules.add(mk("r15", "H15"));
        model.insert("r15".into(), "H15".into());
        for i in 20..24 {
            let (name, head) = (format!("r{i}"), format!("F{i}"));
            rules.add(mk(&name, &head));
            model.insert(name.clone(), head);
            insertion.push(name);
        }
        check(&rules, &model, &insertion);

        // Drive straight through a *second* compaction with interleaved
        // add/remove/get on every step.
        for i in 11..22 {
            assert!(rules.remove(&format!("r{i}")), "r{i} should be live");
            model.remove(&format!("r{i}"));
            let (name, head) = (format!("n{i}"), format!("N{i}"));
            rules.add(mk(&name, &head));
            model.insert(name.clone(), head);
            insertion.push(name);
            check(&rules, &model, &insertion);
        }
    }

    #[test]
    fn rule_index_pretest_and_wildcards() {
        let mut rules = RuleSet::new();
        rules.add(shrink_rule());
        let block = Block {
            name: "b".into(),
            rules: vec!["unwrap".into(), "missing".into()],
            limit: Limit::Infinite,
        };
        let index = RuleIndex::build(&rules, &block);
        assert_eq!(index.len(), 1);
        assert!(index.any_head_present(&Term::app("F", vec![Term::int(1)])));
        assert!(!index.any_head_present(&Term::app("G", vec![Term::int(1)])));

        // A bare-variable LHS is a wildcard: it must always pass the
        // pretest.
        rules.add(Rule::simple("any", Term::var("x"), Term::atom("DONE")));
        let block2 = Block {
            name: "b2".into(),
            rules: vec!["any".into()],
            limit: Limit::Infinite,
        };
        let index2 = RuleIndex::build(&rules, &block2);
        assert!(index2.any_head_present(&Term::app("G", vec![Term::int(1)])));
    }

    #[test]
    fn worklist_matches_naive_results_on_interacting_rules() {
        // Two rules that enable each other repeatedly: G(F(x)) -> F(G(x))
        // sinks G below F; F(F(x)) -> F(x) merges. The worklist must
        // reach the same normal form and the same counters as the naive
        // full-rescan loop (fixed by the stats assertions elsewhere).
        let mut rules = RuleSet::new();
        rules.add(Rule::simple(
            "sink",
            Term::app("G", vec![Term::app("F", vec![Term::var("x")])]),
            Term::app("F", vec![Term::app("G", vec![Term::var("x")])]),
        ));
        rules.add(Rule::simple(
            "merge",
            Term::app("F", vec![Term::app("F", vec![Term::var("x")])]),
            Term::app("F", vec![Term::var("x")]),
        ));
        let block = Block {
            name: "b".into(),
            rules: vec!["sink".into(), "merge".into()],
            limit: Limit::Infinite,
        };
        // G(G(F(F(G(F(0)))))) — plenty of interaction.
        let term = Term::app(
            "G",
            vec![Term::app(
                "G",
                vec![Term::app(
                    "F",
                    vec![Term::app(
                        "F",
                        vec![Term::app("G", vec![Term::app("F", vec![Term::int(0)])])],
                    )],
                )],
            )],
        );
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let out = apply_block(&rules, &block, &methods, &env, term, false).unwrap();
        // Normal form: one F on top, Gs below, no F-F pairs: F(G(G(G(0)))).
        assert_eq!(
            out.term,
            Term::app(
                "F",
                vec![Term::app(
                    "G",
                    vec![Term::app("G", vec![Term::app("G", vec![Term::int(0)])])]
                )]
            )
        );
        assert!(!out.budget_exhausted);
    }

    #[test]
    fn dynamic_limit_adjustment() {
        let mut strategy = Strategy::new();
        strategy.add_block(Block {
            name: "b".into(),
            rules: vec![],
            limit: Limit::Infinite,
        });
        strategy.set_limit("b", Limit::Finite(3)).unwrap();
        assert_eq!(strategy.block("b").unwrap().limit, Limit::Finite(3));
        assert!(strategy.set_limit("nope", Limit::Infinite).is_err());
    }
}
