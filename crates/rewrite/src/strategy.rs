//! Control: blocks of rules and sequences of blocks (Section 4.2).
//!
//! `block({rules}, value)` groups rules and bounds the number of condition
//! checks; `seq((blocks), value)` runs blocks in order, a bounded number
//! of passes. "Any optimizer generated with the rule language is a
//! sequence of blocks of rules which can be applied multiple times."

use std::collections::HashMap;

use crate::engine::{apply_rule_once, RewriteStats};
use crate::error::{RewriteError, RwResult};
use crate::methods::{MethodRegistry, TermEnv};
use crate::rule::Rule;
use crate::term::Term;
use crate::trace::{Trace, TraceEvent};

/// Block application limit: a finite number of condition checks, or
/// saturation ("an infinite limit means application up to saturation").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limit {
    /// At most this many condition checks.
    Finite(u64),
    /// Run until no rule in the block applies.
    Infinite,
}

impl Limit {
    fn budget(self) -> u64 {
        match self {
            Limit::Finite(n) => n,
            Limit::Infinite => u64::MAX,
        }
    }
}

/// A named block of rules with its application limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block name, referenced by sequences.
    pub name: String,
    /// Names of member rules (the same rule may appear in several blocks).
    pub rules: Vec<String>,
    /// Condition-check budget.
    pub limit: Limit,
}

/// The meta-rule ordering blocks: run `blocks` in sequence, `passes`
/// times.
#[derive(Debug, Clone, PartialEq)]
pub struct Sequence {
    /// Block names, applied in order.
    pub blocks: Vec<String>,
    /// Maximum number of passes over the whole list.
    pub passes: u64,
}

/// An indexed set of rules (the rewriting knowledge base).
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
    index: HashMap<String, usize>,
}

impl RuleSet {
    /// Empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule; replaces any rule with the same name.
    pub fn add(&mut self, rule: Rule) {
        if let Some(&i) = self.index.get(&rule.name) {
            self.rules[i] = rule;
        } else {
            self.index.insert(rule.name.clone(), self.rules.len());
            self.rules.push(rule);
        }
    }

    /// Remove a rule by name; the database implementor "can add or delete
    /// rewriting rules".
    pub fn remove(&mut self, name: &str) -> bool {
        match self.index.remove(name) {
            Some(i) => {
                self.rules.remove(i);
                // Reindex the tail.
                for (j, r) in self.rules.iter().enumerate().skip(i) {
                    self.index.insert(r.name.clone(), j);
                }
                true
            }
            None => false,
        }
    }

    /// Look up a rule.
    pub fn get(&self, name: &str) -> Option<&Rule> {
        self.index.get(name).map(|&i| &self.rules[i])
    }

    /// All rules, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are present.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// A complete control strategy: block definitions plus the sequence
/// meta-rule. "Changing block definitions or the list of blocks in the
/// sequence meta-rule may completely change the generated optimizer."
#[derive(Debug, Clone, Default)]
pub struct Strategy {
    blocks: Vec<Block>,
    by_name: HashMap<String, usize>,
    /// The sequence meta-rule; defaults to all blocks, one pass.
    pub sequence: Option<Sequence>,
}

impl Strategy {
    /// Empty strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define (or replace) a block.
    pub fn add_block(&mut self, block: Block) {
        if let Some(&i) = self.by_name.get(&block.name) {
            self.blocks[i] = block;
        } else {
            self.by_name.insert(block.name.clone(), self.blocks.len());
            self.blocks.push(block);
        }
    }

    /// Set the sequence meta-rule.
    pub fn set_sequence(&mut self, seq: Sequence) {
        self.sequence = Some(seq);
    }

    /// Look up a block.
    pub fn block(&self, name: &str) -> Option<&Block> {
        self.by_name.get(name).map(|&i| &self.blocks[i])
    }

    /// Override the limit of an existing block — the dynamic-limit knob
    /// discussed in the paper's conclusion ("limits can even be adjusted
    /// during the query rewriting process").
    pub fn set_limit(&mut self, block: &str, limit: Limit) -> RwResult<()> {
        match self.by_name.get(block) {
            Some(&i) => {
                self.blocks[i].limit = limit;
                Ok(())
            }
            None => Err(RewriteError::UnknownBlock(block.to_owned())),
        }
    }

    /// Blocks in definition order.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// The effective block execution order.
    fn order(&self) -> (Vec<&Block>, u64) {
        match &self.sequence {
            Some(seq) => (
                seq.blocks.iter().filter_map(|n| self.block(n)).collect(),
                seq.passes,
            ),
            None => (self.blocks.iter().collect(), 1),
        }
    }
}

/// Outcome of a strategy run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The rewritten term.
    pub term: Term,
    /// Aggregate counters.
    pub stats: RewriteStats,
    /// Per-application trace (empty unless tracing was requested).
    pub trace: Trace,
    /// True when some block stopped because its limit ran out rather than
    /// by saturation.
    pub budget_exhausted: bool,
}

/// Run one block to saturation or budget exhaustion. Each *condition
/// check* (attempt to match one rule against the query) costs one unit of
/// the block's limit, following Section 4.2.
pub fn apply_block(
    rules: &RuleSet,
    block: &Block,
    methods: &MethodRegistry,
    env: &dyn TermEnv,
    mut term: Term,
    collect_trace: bool,
) -> RwResult<RunOutcome> {
    let mut budget = block.limit.budget();
    let mut stats = RewriteStats::default();
    let mut trace = Trace::default();
    let mut exhausted = false;

    // Blocks may reference rules the implementor has since deleted
    // ("the database implementor can add or delete rewriting rules");
    // missing members are skipped rather than failing the whole block.
    let members: Vec<&Rule> = block
        .rules
        .iter()
        .filter_map(|name| rules.get(name))
        .collect();

    'outer: loop {
        let mut progressed = false;
        for rule in &members {
            if budget == 0 {
                exhausted = true;
                break 'outer;
            }
            budget -= 1;
            if let Some((new_term, app)) = apply_rule_once(rule, &term, methods, env, &mut stats)? {
                if collect_trace {
                    trace.push(TraceEvent {
                        block: block.name.clone(),
                        rule: rule.name.clone(),
                        path: app.path,
                        before_size: term.size(),
                        after_size: new_term.size(),
                    });
                }
                term = new_term;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    Ok(RunOutcome {
        term,
        stats,
        trace,
        budget_exhausted: exhausted,
    })
}

/// Run a full strategy: the sequence of blocks, `passes` times, stopping
/// early once a whole pass makes no change.
pub fn run_strategy(
    rules: &RuleSet,
    strategy: &Strategy,
    methods: &MethodRegistry,
    env: &dyn TermEnv,
    mut term: Term,
    collect_trace: bool,
) -> RwResult<RunOutcome> {
    let (order, passes) = strategy.order();
    let mut stats = RewriteStats::default();
    let mut trace = Trace::default();
    let mut exhausted = false;

    for _ in 0..passes {
        let before = term.clone();
        for block in &order {
            let outcome = apply_block(rules, block, methods, env, term, collect_trace)?;
            term = outcome.term;
            stats.absorb(outcome.stats);
            trace.extend(outcome.trace);
            exhausted |= outcome.budget_exhausted;
        }
        if term == before {
            break;
        }
    }

    Ok(RunOutcome {
        term,
        stats,
        trace,
        budget_exhausted: exhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::BasicEnv;

    fn shrink_rule() -> Rule {
        Rule::simple(
            "unwrap",
            Term::app("F", vec![Term::var("x")]),
            Term::var("x"),
        )
    }

    fn grow_rule() -> Rule {
        Rule::simple(
            "wrap",
            Term::app("G", vec![Term::var("x")]),
            Term::app("G", vec![Term::app("F", vec![Term::var("x")])]),
        )
    }

    fn nested(n: usize) -> Term {
        let mut t = Term::int(0);
        for _ in 0..n {
            t = Term::app("F", vec![t]);
        }
        t
    }

    #[test]
    fn saturation_with_decreasing_rule_terminates() {
        let mut rules = RuleSet::new();
        rules.add(shrink_rule());
        let block = Block {
            name: "b".into(),
            rules: vec!["unwrap".into()],
            limit: Limit::Infinite,
        };
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let out = apply_block(&rules, &block, &methods, &env, nested(10), false).unwrap();
        assert_eq!(out.term, Term::int(0));
        assert_eq!(out.stats.applications, 10);
        assert!(!out.budget_exhausted);
    }

    #[test]
    fn finite_limit_stops_looping_rule() {
        // "wrap" grows forever; the block budget must stop it.
        let mut rules = RuleSet::new();
        rules.add(grow_rule());
        let block = Block {
            name: "b".into(),
            rules: vec!["wrap".into()],
            limit: Limit::Finite(25),
        };
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let start = Term::app("G", vec![Term::int(1)]);
        let out = apply_block(&rules, &block, &methods, &env, start, false).unwrap();
        assert!(out.budget_exhausted);
        assert_eq!(out.stats.condition_checks, 25);
        assert_eq!(out.stats.applications, 25);
    }

    #[test]
    fn zero_limit_disables_block() {
        // "Simple queries do not need sophisticated optimization: a 0
        // limit can then be given to all blocks" (Section 7).
        let mut rules = RuleSet::new();
        rules.add(shrink_rule());
        let block = Block {
            name: "b".into(),
            rules: vec!["unwrap".into()],
            limit: Limit::Finite(0),
        };
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let start = nested(3);
        let out = apply_block(&rules, &block, &methods, &env, start.clone(), false).unwrap();
        assert_eq!(out.term, start);
        assert_eq!(out.stats.applications, 0);
    }

    #[test]
    fn sequence_runs_blocks_in_order() {
        // Block 1 rewrites A -> B, block 2 rewrites B -> C; order matters.
        let mut rules = RuleSet::new();
        rules.add(Rule::simple("ab", Term::atom("A"), Term::atom("B")));
        rules.add(Rule::simple("bc", Term::atom("B"), Term::atom("C")));
        let mut strategy = Strategy::new();
        strategy.add_block(Block {
            name: "first".into(),
            rules: vec!["ab".into()],
            limit: Limit::Infinite,
        });
        strategy.add_block(Block {
            name: "second".into(),
            rules: vec!["bc".into()],
            limit: Limit::Infinite,
        });
        strategy.set_sequence(Sequence {
            blocks: vec!["first".into(), "second".into()],
            passes: 1,
        });
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let out = run_strategy(&rules, &strategy, &methods, &env, Term::atom("A"), true).unwrap();
        assert_eq!(out.term, Term::atom("C"));
        assert_eq!(out.trace.events().len(), 2);

        // Reversed sequence needs two passes to reach C.
        strategy.set_sequence(Sequence {
            blocks: vec!["second".into(), "first".into()],
            passes: 1,
        });
        let out = run_strategy(&rules, &strategy, &methods, &env, Term::atom("A"), false).unwrap();
        assert_eq!(out.term, Term::atom("B"));
        strategy.set_sequence(Sequence {
            blocks: vec!["second".into(), "first".into()],
            passes: 2,
        });
        let out = run_strategy(&rules, &strategy, &methods, &env, Term::atom("A"), false).unwrap();
        assert_eq!(out.term, Term::atom("C"));
    }

    #[test]
    fn deleted_rules_are_skipped_by_blocks() {
        let mut rules = RuleSet::new();
        rules.add(shrink_rule());
        let block = Block {
            name: "b".into(),
            rules: vec!["missing".into(), "unwrap".into()],
            limit: Limit::Infinite,
        };
        let env = BasicEnv::new();
        let methods = MethodRegistry::with_builtins();
        let out = apply_block(&rules, &block, &methods, &env, nested(2), false).unwrap();
        assert_eq!(out.term, Term::int(0)); // remaining rule still runs
    }

    #[test]
    fn ruleset_add_replace_remove() {
        let mut rules = RuleSet::new();
        rules.add(shrink_rule());
        rules.add(grow_rule());
        assert_eq!(rules.len(), 2);
        rules.add(Rule::simple(
            "unwrap",
            Term::app("F", vec![Term::var("x")]),
            Term::app("H", vec![Term::var("x")]),
        ));
        assert_eq!(rules.len(), 2);
        assert!(rules.get("unwrap").unwrap().rhs.is_app("H"));
        assert!(rules.remove("unwrap"));
        assert!(!rules.remove("unwrap"));
        assert!(rules.get("wrap").is_some());
    }

    #[test]
    fn dynamic_limit_adjustment() {
        let mut strategy = Strategy::new();
        strategy.add_block(Block {
            name: "b".into(),
            rules: vec![],
            limit: Limit::Infinite,
        });
        strategy.set_limit("b", Limit::Finite(3)).unwrap();
        assert_eq!(strategy.block("b").unwrap().limit, Limit::Finite(3));
        assert!(strategy.set_limit("nope", Limit::Infinite).is_err());
    }
}
