//! Constraint evaluation and method calls.
//!
//! Rule *constraints* are additional boolean conditions bearing on the
//! matched arguments; rule *methods* are external functions (paper:
//! "programmed in C", here Rust closures) that compute derived bindings
//! used in the right term — e.g. `SUBSTITUTE(f, z, f')` binds `f'`.
//! Both are dispatched through a [`MethodRegistry`], and value-level
//! computation is delegated to the ADT [`FunctionRegistry`] so that "all
//! functions including the constraints should be written using known ADT
//! functions" (Section 4.1).

use std::collections::HashMap;
use std::sync::Arc;

use eds_adt::{EvalContext, FunctionRegistry, ObjectStore, Type, TypeRegistry, Value};

use crate::error::{RewriteError, RwResult};
use crate::term::{Bindings, Term};

/// Environment a rewrite session runs in: value-level functions, objects,
/// types, and optional schema knowledge contributed by the algebra layer.
pub trait TermEnv {
    /// ADT function registry used to evaluate ground function terms.
    fn functions(&self) -> &FunctionRegistry;
    /// Object store (for `VALUE` in constant folding).
    fn objects(&self) -> &ObjectStore;
    /// Type registry (for `ISA`).
    fn types(&self) -> &TypeRegistry;
    /// Attribute types of a relation-valued term, when the environment
    /// can infer them. Needed by `SCHEMA`, `SPLITNEST` and the semantic
    /// rules.
    fn rel_schema(&self, _term: &Term) -> Option<Vec<Type>> {
        None
    }
    /// Output arity (attribute count) of a relation-valued term, when the
    /// environment can infer it. Needed by `SUBSTITUTE`/`SCHEMA`.
    fn rel_arity(&self, term: &Term) -> Option<usize> {
        self.rel_schema(term).map(|s| s.len())
    }
    /// Static type of a scalar term, when derivable (drives `ISA` on
    /// non-constant terms).
    fn term_type(&self, _term: &Term) -> Option<Type> {
        None
    }
    /// Integrity-constraint templates applicable to a value of type `ty`:
    /// predicates over the variable `x` declared by the database
    /// administrator (Figure 10). Subclass substitution (Figure 11) falls
    /// out of the `ISA` check used to collect them.
    fn constraints_for(&self, _ty: &Type) -> Vec<Term> {
        Vec::new()
    }
}

/// Is this term a *constant* in the sense of the `ISA(x, constant)` rule
/// constraints of Figure 12: a literal, or a collection/tuple constructor
/// applied to constants?
pub fn is_constant_term(t: &Term) -> bool {
    match t {
        Term::Const(_) => true,
        Term::App(h, args) => {
            matches!(
                h.as_str(),
                "SET"
                    | "BAG"
                    | "LIST"
                    | "TUPLE"
                    | "TRUE"
                    | "FALSE"
                    | "NULL"
                    | "MAKESET"
                    | "MAKEBAG"
                    | "MAKELIST"
            ) && args.iter().all(is_constant_term)
        }
        _ => false,
    }
}

/// Conservative static non-NULL analysis backing the built-in `NOTNULL`
/// guard: true only for terms that provably cannot evaluate to NULL —
/// non-NULL literals, the boolean atoms, and arithmetic all of whose
/// operands are themselves statically non-NULL. Variables, attribute
/// references and anything else return false.
pub fn statically_not_null(t: &Term) -> bool {
    match t {
        Term::Const(v) => !matches!(v, Value::Null),
        Term::App(h, args) => match (h.as_str(), args.len()) {
            ("TRUE" | "FALSE", 0) => true,
            ("-", 1) => statically_not_null(&args[0]),
            ("+" | "-" | "*", 2) => args.iter().all(statically_not_null),
            _ => false,
        },
        _ => false,
    }
}

/// A self-contained environment for tests and standalone use.
#[derive(Debug, Default)]
pub struct BasicEnv {
    /// Function registry (pre-loaded with built-ins).
    pub functions: FunctionRegistry,
    /// Object store.
    pub objects: ObjectStore,
    /// Type registry.
    pub types: TypeRegistry,
}

impl BasicEnv {
    /// Environment with built-in functions and empty stores.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TermEnv for BasicEnv {
    fn functions(&self) -> &FunctionRegistry {
        &self.functions
    }
    fn objects(&self) -> &ObjectStore {
        &self.objects
    }
    fn types(&self) -> &TypeRegistry {
        &self.types
    }
}

/// Resolve a term under bindings: ordinary variables are replaced by their
/// bindings, sequence variables inside collection constructors are
/// spliced. A bare sequence variable resolves to a `LIST` of its segment
/// (so constraints like `MEMBER(y, x*)` can treat segments as lists).
pub fn resolve(term: &Term, binds: &Bindings) -> Term {
    match term {
        Term::SeqVar(v) => match binds.get_seq(v) {
            Some(seg) => Term::list(seg.to_vec()),
            None => term.clone(),
        },
        other => binds.apply(other),
    }
}

/// A method implementation. Receives the call's argument terms *resolved
/// under the current bindings where possible* (output variables stay as
/// `Term::Var`), and may extend the bindings. Returning `Ok(false)` means
/// "the method does not apply here" and vetoes the rule application.
pub type MethodFn =
    Arc<dyn Fn(&[Term], &mut Bindings, &dyn TermEnv) -> RwResult<bool> + Send + Sync>;

/// Declared shape of a method: how many arguments it takes and which
/// argument positions (0-based) it *binds* rather than reads. The static
/// analyzer ([`crate::analyze`]) uses signatures to check calls at rule
/// registration; methods registered without one are checked for existence
/// only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodSig {
    /// Exact argument count.
    pub arity: usize,
    /// 0-based output positions among the arguments.
    pub outputs: &'static [usize],
}

impl MethodSig {
    /// Signature with `arity` arguments, all of them inputs (a predicate).
    pub const fn predicate(arity: usize) -> Self {
        MethodSig {
            arity,
            outputs: &[],
        }
    }

    /// Is `idx` an output position?
    pub fn is_output(&self, idx: usize) -> bool {
        self.outputs.contains(&idx)
    }
}

/// Registry of methods usable in rule constraints and conclusions.
#[derive(Clone, Default)]
pub struct MethodRegistry {
    methods: HashMap<String, MethodFn>,
    sigs: HashMap<String, MethodSig>,
}

impl std::fmt::Debug for MethodRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&String> = self.methods.keys().collect();
        names.sort();
        f.debug_struct("MethodRegistry")
            .field("methods", &names)
            .finish()
    }
}

impl MethodRegistry {
    /// Registry pre-loaded with the generic built-in methods —
    /// `EVALUATE` (constant folding) and `NOTNULL` (static non-NULL
    /// guard); `REFER`-style helpers are algebra-specific and are
    /// registered by the optimizer crate.
    pub fn with_builtins() -> Self {
        let mut reg = Self::default();
        reg.register_with_sig(
            "EVALUATE",
            MethodSig {
                arity: 2,
                outputs: &[1],
            },
            |args, binds, env| {
                // EVALUATE(expr, out): constant-fold a ground expression.
                if args.len() != 2 {
                    return Err(RewriteError::MethodFailed {
                        method: "EVALUATE".into(),
                        message: format!("expected 2 arguments, got {}", args.len()),
                    });
                }
                let expr = resolve(&args[0], binds);
                if !expr.is_ground() {
                    return Ok(false);
                }
                let value = match eval_value(&expr, binds, env) {
                    Ok(v) => v,
                    Err(_) => return Ok(false),
                };
                bind_output(&args[1], Term::Const(value), binds, "EVALUATE")
            },
        );
        reg.register_with_sig("NOTNULL", MethodSig::predicate(1), |args, binds, _env| {
            // NOTNULL(x): admit the rule only when the resolved
            // argument is *statically* non-NULL. Anything the
            // analysis cannot decide declines the application — the
            // guard errs toward vetoing, never toward unsoundness.
            if args.len() != 1 {
                return Err(RewriteError::MethodFailed {
                    method: "NOTNULL".into(),
                    message: format!("expected 1 argument, got {}", args.len()),
                });
            }
            Ok(statically_not_null(&resolve(&args[0], binds)))
        });
        reg
    }

    /// Register (or replace) a method without a declared signature: the
    /// analyzer then only checks that calls resolve by name.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&[Term], &mut Bindings, &dyn TermEnv) -> RwResult<bool> + Send + Sync + 'static,
    ) {
        let key = name.to_ascii_uppercase();
        self.sigs.remove(&key);
        self.methods.insert(key, Arc::new(f));
    }

    /// Register (or replace) a method together with its signature, making
    /// calls to it fully checkable at rule-registration time.
    pub fn register_with_sig(
        &mut self,
        name: &str,
        sig: MethodSig,
        f: impl Fn(&[Term], &mut Bindings, &dyn TermEnv) -> RwResult<bool> + Send + Sync + 'static,
    ) {
        let key = name.to_ascii_uppercase();
        self.sigs.insert(key.clone(), sig);
        self.methods.insert(key, Arc::new(f));
    }

    /// Whether `name` is a registered method.
    pub fn contains(&self, name: &str) -> bool {
        self.methods.contains_key(&name.to_ascii_uppercase())
    }

    /// The declared signature of `name`, when one was registered.
    pub fn signature(&self, name: &str) -> Option<MethodSig> {
        self.sigs.get(&name.to_ascii_uppercase()).copied()
    }

    /// Invoke a method.
    pub fn call(
        &self,
        name: &str,
        args: &[Term],
        binds: &mut Bindings,
        env: &dyn TermEnv,
    ) -> RwResult<bool> {
        let f = self
            .methods
            .get(&name.to_ascii_uppercase())
            .ok_or_else(|| RewriteError::UnknownMethod(name.to_owned()))?;
        f(args, binds, env)
    }
}

/// Bind a method output argument: it must be an unbound variable (or the
/// exact same term, making the method a check).
pub fn bind_output(arg: &Term, value: Term, binds: &mut Bindings, method: &str) -> RwResult<bool> {
    match arg {
        Term::Var(v) => {
            if let Some(existing) = binds.get(v) {
                Ok(existing == &value)
            } else {
                binds.bind(*v, value);
                Ok(true)
            }
        }
        other => {
            let resolved = resolve(other, binds);
            if resolved == value {
                Ok(true)
            } else {
                Err(RewriteError::MethodFailed {
                    method: method.to_owned(),
                    message: format!("output position holds non-variable term {other}"),
                })
            }
        }
    }
}

/// Evaluate a ground scalar term to a [`Value`]: constants evaluate to
/// themselves, `AND`/`OR`/`NOT` use three-valued logic, comparisons use
/// SQL semantics, everything else dispatches to the ADT function registry.
pub fn eval_value(term: &Term, binds: &Bindings, env: &dyn TermEnv) -> RwResult<Value> {
    let term = resolve(term, binds);
    eval_resolved(&term, env)
}

fn eval_resolved(term: &Term, env: &dyn TermEnv) -> RwResult<Value> {
    match term {
        Term::Const(v) => Ok(v.clone()),
        Term::Var(v) => Err(RewriteError::UnboundVariable(v.to_string())),
        Term::SeqVar(v) => Err(RewriteError::UnboundVariable(format!("{v}*"))),
        Term::App(head, args) => match (head.as_str(), args.as_slice()) {
            ("TRUE", []) => Ok(Value::Bool(true)),
            ("FALSE", []) => Ok(Value::Bool(false)),
            ("NULL", []) => Ok(Value::Null),
            // A statement parameter has no value until bind time. Reported
            // as an unbound variable so conditions that inspect it are
            // *unsatisfied* (the rule defers to bind time) rather than hard
            // errors — the parameter-independence gate of the prepared-
            // statement pipeline.
            ("PARAM", [_]) => Err(RewriteError::UnboundVariable("?".into())),
            ("AND", [a, b]) => {
                let va = eval_resolved(a, env)?;
                let vb = eval_resolved(b, env)?;
                Ok(three_valued_and(va, vb))
            }
            ("OR", [a, b]) => {
                let va = eval_resolved(a, env)?;
                let vb = eval_resolved(b, env)?;
                Ok(three_valued_or(va, vb))
            }
            ("NOT", [a]) => match eval_resolved(a, env)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                other => Err(RewriteError::NonBooleanConstraint(other.to_string())),
            },
            ("=" | "<" | ">" | "<=" | ">=" | "<>", [a, b]) => {
                let va = eval_resolved(a, env)?;
                let vb = eval_resolved(b, env)?;
                Ok(eval_cmp(head.as_str(), &va, &vb))
            }
            // Collection constructors evaluate their elements.
            ("LIST", elems) => Ok(Value::list(eval_all(elems, env)?)),
            ("SET", elems) => Ok(Value::set(eval_all(elems, env)?)),
            ("BAG", elems) => Ok(Value::bag(eval_all(elems, env)?)),
            ("TUPLE", elems) => Ok(Value::Tuple(eval_all(elems, env)?)),
            (name, args) => {
                let values = eval_all(args, env)?;
                let ctx = EvalContext {
                    objects: env.objects(),
                    types: env.types(),
                };
                env.functions()
                    .call(name, &values, &ctx)
                    .map_err(Into::into)
            }
        },
    }
}

fn eval_all(terms: &[Term], env: &dyn TermEnv) -> RwResult<Vec<Value>> {
    terms.iter().map(|t| eval_resolved(t, env)).collect()
}

/// SQL comparison returning NULL on NULL inputs.
pub fn eval_cmp(op: &str, a: &Value, b: &Value) -> Value {
    match a.sql_cmp(b) {
        None => Value::Null,
        Some(ord) => {
            let res = match op {
                "=" => ord.is_eq(),
                "<" => ord.is_lt(),
                ">" => ord.is_gt(),
                "<=" => ord.is_le(),
                ">=" => ord.is_ge(),
                "<>" => ord.is_ne(),
                _ => unreachable!("non-comparison operator {op}"),
            };
            Value::Bool(res)
        }
    }
}

fn three_valued_and(a: Value, b: Value) -> Value {
    match (a, b) {
        (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
        (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn three_valued_or(a: Value, b: Value) -> Value {
    match (a, b) {
        (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
        (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

/// Evaluate a rule constraint to a boolean.
///
/// Special forms handled structurally (before value evaluation):
/// * `ISA(t, spec)` — `spec` may be the atom `constant` (syntactic check:
///   is `t` a literal?), a collection-kind atom, or a registered type
///   name; non-constant terms consult [`TermEnv::term_type`];
/// * `MEMBER(t, x*)` — membership of a *term* in a bound segment;
/// * `=`/`<>` between non-value terms — structural term equality;
/// * registered methods usable as boolean predicates (e.g. `REFER`).
///
/// Everything else is evaluated as a value expression which must yield a
/// boolean (NULL counts as not satisfied).
pub fn eval_constraint(
    constraint: &Term,
    binds: &mut Bindings,
    methods: &MethodRegistry,
    env: &dyn TermEnv,
) -> RwResult<bool> {
    if let Some((head, args)) = constraint.as_app() {
        match (head, args.len()) {
            ("AND", 2) => {
                return Ok(eval_constraint(&args[0], binds, methods, env)?
                    && eval_constraint(&args[1], binds, methods, env)?);
            }
            ("OR", 2) => {
                return Ok(eval_constraint(&args[0], binds, methods, env)?
                    || eval_constraint(&args[1], binds, methods, env)?);
            }
            ("NOT", 1) => {
                return Ok(!eval_constraint(&args[0], binds, methods, env)?);
            }
            ("TRUE", 0) => return Ok(true),
            ("FALSE", 0) => return Ok(false),
            ("ISA", 2) => return eval_isa(&args[0], &args[1], binds, env),
            ("ISEMPTY", 1) => {
                // Structural emptiness of a segment or collection term
                // (needed before value evaluation, whose elements may be
                // relation atoms).
                let t = resolve(&args[0], binds);
                if let Some((h, elems)) = t.as_app() {
                    if Term::is_collection_ctor(h) {
                        return Ok(elems.is_empty());
                    }
                }
            }
            ("MEMBER", 2) => {
                // Term-level membership when the second argument is a
                // segment or a non-ground collection term.
                let needle = resolve(&args[0], binds);
                let hay = resolve(&args[1], binds);
                if let Some((h, elems)) = hay.as_app() {
                    if Term::is_collection_ctor(h) {
                        return Ok(elems.contains(&needle));
                    }
                }
                // Fall through to value evaluation below.
            }
            ("=" | "<>", 2) => {
                let l = resolve(&args[0], binds);
                let r = resolve(&args[1], binds);
                let both_values = l.as_const().is_some() && r.as_const().is_some();
                if !both_values && (l.is_ground() || r.is_ground()) {
                    // Structural comparison of terms (e.g. `f = TRUE`
                    // compares the bound formula with the TRUE atom).
                    let eq = l == r || term_is_truth(&l, &r);
                    return Ok(if head == "=" { eq } else { !eq });
                }
            }
            _ => {
                if methods.contains(head) {
                    return methods.call(head, args, binds, env);
                }
            }
        }
    }
    match eval_value(constraint, binds, env) {
        Ok(Value::Bool(b)) => Ok(b),
        Ok(Value::Null) => Ok(false),
        Ok(other) => Err(RewriteError::NonBooleanConstraint(other.to_string())),
        Err(RewriteError::UnboundVariable(_)) => Ok(false),
        Err(e) => Err(e),
    }
}

/// `f = TRUE` must accept both the `TRUE` atom and the boolean constant.
fn term_is_truth(l: &Term, r: &Term) -> bool {
    let truthy = |t: &Term| t.is_app("TRUE") || t.as_const() == Some(&Value::Bool(true));
    let falsy = |t: &Term| t.is_app("FALSE") || t.as_const() == Some(&Value::Bool(false));
    (truthy(l) && truthy(r)) || (falsy(l) && falsy(r))
}

fn eval_isa(
    subject: &Term,
    spec: &Term,
    binds: &mut Bindings,
    env: &dyn TermEnv,
) -> RwResult<bool> {
    let subject = resolve(subject, binds);
    let spec_name = match spec {
        Term::App(h, args) if args.is_empty() => h.as_str().to_owned(),
        // Lower-case specification names (like `constant` in Figure 12)
        // lex as variables; an unbound variable in specification
        // position is read as the name itself.
        Term::Var(v) => match binds.get(v) {
            Some(Term::App(h, a)) if a.is_empty() => h.as_str().to_owned(),
            None => v.as_str().to_owned(),
            _ => return Ok(false),
        },
        Term::Const(Value::Str(s)) => s.clone(),
        _ => return Ok(false),
    };

    // Syntactic specification: ISA(x, constant).
    if spec_name.eq_ignore_ascii_case("constant") {
        return Ok(is_constant_term(&subject));
    }

    let target = parse_type_spec(&spec_name, env.types());
    match &subject {
        Term::Const(v) => {
            let types = env.types();
            let objects = env.objects();
            Ok(types.value_isa(v, &target, &|oid| {
                objects.type_of(eds_adt::Oid(oid)).ok().map(str::to_owned)
            }))
        }
        other => match env.term_type(other) {
            Some(ty) => Ok(env.types().isa(&ty, &target)),
            None => Ok(false),
        },
    }
}

/// Interpret a type-specification atom: a collection-kind keyword, a
/// scalar keyword, or a registered named type.
pub fn parse_type_spec(name: &str, _types: &TypeRegistry) -> Type {
    match name.to_ascii_uppercase().as_str() {
        "BOOL" => Type::Bool,
        "INT" | "INTEGER" => Type::Int,
        "REAL" => Type::Real,
        "NUMERIC" => Type::Numeric,
        "CHAR" | "STRING" => Type::Char,
        "SET" => Type::Coll(eds_adt::CollKind::Set, Box::new(Type::Any)),
        "BAG" => Type::Coll(eds_adt::CollKind::Bag, Box::new(Type::Any)),
        "LIST" => Type::Coll(eds_adt::CollKind::List, Box::new(Type::Any)),
        "ARRAY" => Type::Coll(eds_adt::CollKind::Array, Box::new(Type::Any)),
        "COLLECTION" => Type::AnyColl(Box::new(Type::Any)),
        _ => Type::Named(name.to_owned()),
    }
}

/// Normalize optimizer built-in *term functions* appearing in rule
/// right-hand sides: `APPEND(...)` concatenates list-valued arguments into
/// a `LIST`, `SET_UNION(...)` unions set-valued arguments into a `SET`.
/// Non-collection arguments contribute themselves. Applied bottom-up after
/// substitution.
pub fn normalize_builtins(term: &Term) -> Term {
    match term {
        Term::App(head, args) => {
            let args: Vec<Term> = args.iter().map(normalize_builtins).collect();
            match head.as_str() {
                "APPEND" if args.iter().any(|a| a.is_app("LIST")) => {
                    Term::list(flatten(&args, "LIST"))
                }
                "SET_UNION" | "SETUNION" => Term::set(flatten(&args, "SET")),
                _ => Term::App(*head, args.into()),
            }
        }
        other => other.clone(),
    }
}

fn flatten(args: &[Term], ctor: &str) -> Vec<Term> {
    let mut out = Vec::new();
    for a in args {
        match a.as_app() {
            Some((h, elems)) if h == ctor => out.extend(elems.iter().cloned()),
            _ => out.push(a.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> BasicEnv {
        BasicEnv::new()
    }

    #[test]
    fn eval_ground_arithmetic() {
        let e = env();
        let t = Term::app("+", vec![Term::int(2), Term::int(3)]);
        assert_eq!(eval_value(&t, &Bindings::new(), &e).unwrap(), Value::Int(5));
    }

    #[test]
    fn eval_member_value_level() {
        let e = env();
        let t = Term::app(
            "MEMBER",
            vec![
                Term::str("Adventure"),
                Term::set(vec![Term::str("Comedy"), Term::str("Adventure")]),
            ],
        );
        assert_eq!(
            eval_value(&t, &Bindings::new(), &e).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn constraint_member_on_segment() {
        let e = env();
        let methods = MethodRegistry::with_builtins();
        let mut binds = Bindings::new();
        binds.bind("y", Term::atom("B"));
        binds.bind_seq("x", vec![Term::atom("A"), Term::atom("B")]);
        let c = Term::app("MEMBER", vec![Term::var("y"), Term::seq("x")]);
        assert!(eval_constraint(&c, &mut binds, &methods, &e).unwrap());
        binds.bind("y", Term::atom("Z"));
        assert!(!eval_constraint(&c, &mut binds, &methods, &e).unwrap());
    }

    #[test]
    fn constraint_formula_equals_true_atom() {
        let e = env();
        let methods = MethodRegistry::with_builtins();
        let mut binds = Bindings::new();
        binds.bind("f", Term::bool(true));
        let c = Term::app("=", vec![Term::var("f"), Term::atom("TRUE")]);
        assert!(eval_constraint(&c, &mut binds, &methods, &e).unwrap());
        binds.bind("f", Term::app("=", vec![Term::attr(1, 1), Term::int(5)]));
        assert!(!eval_constraint(&c, &mut binds, &methods, &e).unwrap());
    }

    #[test]
    fn isa_constant_is_syntactic() {
        let e = env();
        let methods = MethodRegistry::with_builtins();
        let mut binds = Bindings::new();
        binds.bind("x", Term::int(3));
        binds.bind("y", Term::attr(1, 1));
        let c_x = Term::app("ISA", vec![Term::var("x"), Term::atom("constant")]);
        let c_y = Term::app("ISA", vec![Term::var("y"), Term::atom("constant")]);
        assert!(eval_constraint(&c_x, &mut binds, &methods, &e).unwrap());
        assert!(!eval_constraint(&c_y, &mut binds, &methods, &e).unwrap());
    }

    #[test]
    fn isa_value_against_scalar_types() {
        let e = env();
        let methods = MethodRegistry::with_builtins();
        let mut binds = Bindings::new();
        binds.bind("x", Term::int(3));
        let c = Term::app("ISA", vec![Term::var("x"), Term::atom("NUMERIC")]);
        assert!(eval_constraint(&c, &mut binds, &methods, &e).unwrap());
        let c2 = Term::app("ISA", vec![Term::var("x"), Term::atom("CHAR")]);
        assert!(!eval_constraint(&c2, &mut binds, &methods, &e).unwrap());
    }

    #[test]
    fn evaluate_method_folds_constants() {
        let e = env();
        let methods = MethodRegistry::with_builtins();
        let mut binds = Bindings::new();
        binds.bind("x", Term::int(6));
        binds.bind("y", Term::int(7));
        let args = vec![
            Term::app("*", vec![Term::var("x"), Term::var("y")]),
            Term::var("a"),
        ];
        assert!(methods.call("EVALUATE", &args, &mut binds, &e).unwrap());
        assert_eq!(binds.get("a"), Some(&Term::Const(Value::Int(42))));
    }

    #[test]
    fn evaluate_method_rejects_non_ground() {
        let e = env();
        let methods = MethodRegistry::with_builtins();
        let mut binds = Bindings::new();
        let args = vec![
            Term::app("*", vec![Term::var("x"), Term::int(2)]),
            Term::var("a"),
        ];
        assert!(!methods.call("EVALUATE", &args, &mut binds, &e).unwrap());
        assert!(binds.get("a").is_none());
    }

    #[test]
    fn normalize_append_and_set_union() {
        // append(x*, v*, z) after substitution: APPEND(A, B, LIST(C)) and
        // set_union(x*, z): SET_UNION(R, SET(S, T)).
        let t = Term::app(
            "APPEND",
            vec![
                Term::atom("A"),
                Term::atom("B"),
                Term::list(vec![Term::atom("C")]),
            ],
        );
        assert_eq!(
            normalize_builtins(&t),
            Term::list(vec![Term::atom("A"), Term::atom("B"), Term::atom("C")])
        );
        let u = Term::app(
            "SET_UNION",
            vec![
                Term::atom("R"),
                Term::set(vec![Term::atom("S"), Term::atom("T")]),
            ],
        );
        assert_eq!(
            normalize_builtins(&u),
            Term::set(vec![Term::atom("R"), Term::atom("S"), Term::atom("T")])
        );
    }

    #[test]
    fn three_valued_connectives() {
        let e = env();
        let and_null = Term::app("AND", vec![Term::atom("TRUE"), Term::atom("NULL")]);
        assert_eq!(
            eval_value(&and_null, &Bindings::new(), &e).unwrap(),
            Value::Null
        );
        let and_false = Term::app("AND", vec![Term::atom("NULL"), Term::atom("FALSE")]);
        assert_eq!(
            eval_value(&and_false, &Bindings::new(), &e).unwrap(),
            Value::Bool(false)
        );
        let or_true = Term::app("OR", vec![Term::atom("NULL"), Term::atom("TRUE")]);
        assert_eq!(
            eval_value(&or_true, &Bindings::new(), &e).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn unknown_method_errors() {
        let e = env();
        let methods = MethodRegistry::with_builtins();
        let mut binds = Bindings::new();
        let err = methods.call("ALEXANDER", &[], &mut binds, &e).unwrap_err();
        assert_eq!(err, RewriteError::UnknownMethod("ALEXANDER".into()));
    }

    #[test]
    fn comparison_chain() {
        let e = env();
        let methods = MethodRegistry::with_builtins();
        let mut binds = Bindings::new();
        binds.bind("x", Term::int(5));
        binds.bind("y", Term::int(9));
        let c = Term::app("<", vec![Term::var("x"), Term::var("y")]);
        assert!(eval_constraint(&c, &mut binds, &methods, &e).unwrap());
        let c2 = Term::app(">=", vec![Term::var("x"), Term::var("y")]);
        assert!(!eval_constraint(&c2, &mut binds, &methods, &e).unwrap());
    }

    #[test]
    fn param_leaf_defers_value_conditions() {
        let e = env();
        let methods = MethodRegistry::with_builtins();
        let mut binds = Bindings::new();
        let param = Term::app("PARAM", vec![Term::int(0)]);
        // ISA(x, constant) is false: a parameter is not a constant.
        binds.bind("x", param.clone());
        let isa = Term::app("ISA", vec![Term::var("x"), Term::atom("constant")]);
        assert!(!eval_constraint(&isa, &mut binds, &methods, &e).unwrap());
        // A value comparison against a parameter is unsatisfied, not an
        // error — the rule defers to bind time.
        let cmp = Term::app("<", vec![Term::var("x"), Term::int(10)]);
        assert!(!eval_constraint(&cmp, &mut binds, &methods, &e).unwrap());
        // EVALUATE refuses to fold an expression containing a parameter.
        let args = vec![
            Term::app("+", vec![param, Term::int(1)]),
            Term::var("folded"),
        ];
        assert!(!methods.call("EVALUATE", &args, &mut binds, &e).unwrap());
        assert!(binds.get("folded").is_none());
    }

    #[test]
    fn unbound_variable_constraint_is_unsatisfied() {
        let e = env();
        let methods = MethodRegistry::with_builtins();
        let mut binds = Bindings::new();
        let c = Term::app("<", vec![Term::var("nope"), Term::int(1)]);
        assert!(!eval_constraint(&c, &mut binds, &methods, &e).unwrap());
    }
}
