//! Errors of the term-rewriting layer.

use std::fmt;

use eds_adt::AdtError;

/// Errors raised while parsing rule sources, evaluating constraints, or
/// running the rewrite engine.
#[derive(Debug, Clone, PartialEq)]
pub enum RewriteError {
    /// Syntax error in the rule DSL.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        column: usize,
        /// What went wrong.
        message: String,
    },
    /// A constraint or method referenced a variable with no binding.
    UnboundVariable(String),
    /// A sequence variable was used outside a collection constructor.
    SeqVarOutsideCollection(String),
    /// A constraint evaluated to a non-boolean.
    NonBooleanConstraint(String),
    /// The named method is not registered.
    UnknownMethod(String),
    /// The named rule is not in the knowledge base.
    UnknownRule(String),
    /// The named block is not defined.
    UnknownBlock(String),
    /// A method failed irrecoverably (as opposed to merely not applying).
    MethodFailed {
        /// Method name.
        method: String,
        /// Failure description.
        message: String,
    },
    /// Error bubbled up from the ADT layer during constraint evaluation.
    Adt(AdtError),
    /// A rule's right-hand side used a variable the left-hand side and
    /// methods never bound.
    UnboundInRhs {
        /// Rule name.
        rule: String,
        /// Offending variable.
        variable: String,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Parse {
                line,
                column,
                message,
            } => write!(f, "rule syntax error at {line}:{column}: {message}"),
            RewriteError::UnboundVariable(v) => write!(f, "unbound variable '{v}'"),
            RewriteError::SeqVarOutsideCollection(v) => {
                write!(f, "collection variable '{v}*' used outside LIST/SET/BAG")
            }
            RewriteError::NonBooleanConstraint(c) => {
                write!(f, "constraint did not evaluate to a boolean: {c}")
            }
            RewriteError::UnknownMethod(m) => write!(f, "unknown method '{m}'"),
            RewriteError::UnknownRule(r) => write!(f, "unknown rule '{r}'"),
            RewriteError::UnknownBlock(b) => write!(f, "unknown block '{b}'"),
            RewriteError::MethodFailed { method, message } => {
                write!(f, "method {method} failed: {message}")
            }
            RewriteError::Adt(e) => write!(f, "{e}"),
            RewriteError::UnboundInRhs { rule, variable } => {
                write!(
                    f,
                    "rule {rule}: right-hand side uses unbound variable '{variable}'"
                )
            }
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<AdtError> for RewriteError {
    fn from(e: AdtError) -> Self {
        RewriteError::Adt(e)
    }
}

/// Result alias for the rewriting layer.
pub type RwResult<T> = Result<T, RewriteError>;
