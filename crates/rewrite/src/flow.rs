//! Cross-block functor-flow analysis over the whole sequence
//! (`EDS016`/`EDS017`).
//!
//! Each rule is abstracted to the edge *LHS root functor → RHS root
//! functor*; the edges of every unbounded block in the effective
//! execution order form a flow graph. A strongly connected component
//! whose edges span two or more unbounded blocks is a rewrite cycle the
//! per-block check (`EDS012`) is structurally blind to: within any single
//! block each half of the cycle looks like a plain one-way rewrite
//! (`EDS016`). Dually, an unbounded block whose rules introduce functors
//! no rule later in the sequence matches on saturates for nothing
//! (`EDS017`).

use std::collections::{HashMap, HashSet};

use crate::analyze::{Diagnostic, Severity};
use crate::fixes::{Fix, FixTarget};
use crate::rule::Rule;
use crate::strategy::{Block, Limit, RuleSet, Strategy};
use crate::symbol::Symbol;
use crate::term::Term;

/// Run both flow checks, appending findings to `out`.
pub(crate) fn check_flow(rules: &RuleSet, strategy: &Strategy, out: &mut Vec<Diagnostic>) {
    let (order, passes) = strategy.order();
    if order.is_empty() {
        return;
    }
    check_cross_block_cycles(rules, &order, passes, out);
    check_wasted_saturation(rules, &order, passes, out);
}

/// One functor-flow edge: a rule in an unbounded block rewriting a
/// `from`-rooted term into a `to`-rooted term.
struct Edge<'a> {
    from: Symbol,
    to: Symbol,
    rule: &'a Rule,
    block: &'a Block,
}

fn flow_edges<'a>(rules: &'a RuleSet, order: &[&'a Block]) -> Vec<Edge<'a>> {
    let mut seen_blocks = HashSet::new();
    let mut edges = Vec::new();
    for block in order {
        if block.limit != Limit::Infinite || !seen_blocks.insert(block.name.as_str()) {
            continue;
        }
        let mut seen_rules = HashSet::new();
        for name in &block.rules {
            if !seen_rules.insert(name.as_str()) {
                continue;
            }
            let Some(rule) = rules.get(name) else {
                continue;
            };
            let (Some(from), Some(to)) = (rule.lhs.head(), rule.rhs.head()) else {
                continue;
            };
            // Same-root rewrites cannot *close* a cross-functor cycle and
            // self-cycles within one block are EDS012's territory.
            if from != to {
                edges.push(Edge {
                    from,
                    to,
                    rule,
                    block,
                });
            }
        }
    }
    edges
}

/// EDS016: strongly connected functor sets whose edges span at least two
/// distinct unbounded blocks, with at least one non-decreasing rule on
/// the cycle, under a sequence that revisits blocks (`passes >= 2`).
fn check_cross_block_cycles(
    rules: &RuleSet,
    order: &[&Block],
    passes: u64,
    out: &mut Vec<Diagnostic>,
) {
    if passes < 2 {
        // A single pass runs each block once in order; a functor pushed
        // "back" to an earlier block's territory is never revisited.
        return;
    }
    let edges = flow_edges(rules, order);
    if edges.is_empty() {
        return;
    }

    // Mutual reachability over a graph this small is cheapest as BFS from
    // every node.
    let mut adj: HashMap<Symbol, Vec<Symbol>> = HashMap::new();
    let mut nodes: Vec<Symbol> = Vec::new();
    for e in &edges {
        for n in [e.from, e.to] {
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
        adj.entry(e.from).or_default().push(e.to);
    }
    let reach = |start: Symbol| -> HashSet<Symbol> {
        let mut seen = HashSet::new();
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            for &m in adj.get(&n).into_iter().flatten() {
                if seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        seen
    };
    let reachable: HashMap<Symbol, HashSet<Symbol>> =
        nodes.iter().map(|&n| (n, reach(n))).collect();

    // Group nodes into cycles: u and v share one iff each reaches the
    // other; a node on no cycle does not even reach itself.
    let mut assigned: HashSet<Symbol> = HashSet::new();
    for &n in &nodes {
        if assigned.contains(&n) || !reachable[&n].contains(&n) {
            continue;
        }
        let scc: Vec<Symbol> = nodes
            .iter()
            .copied()
            .filter(|&m| reachable[&n].contains(&m) && reachable[&m].contains(&n))
            .collect();
        assigned.extend(scc.iter().copied());
        let in_scc = |s: Symbol| scc.contains(&s);
        let cycle_edges: Vec<&Edge> = edges
            .iter()
            .filter(|e| in_scc(e.from) && in_scc(e.to))
            .collect();
        let mut block_names: Vec<&str> =
            cycle_edges.iter().map(|e| e.block.name.as_str()).collect();
        block_names.sort_unstable();
        block_names.dedup();
        if block_names.len() < 2 || cycle_edges.iter().all(|e| e.rule.is_decreasing()) {
            // Entirely inside one block (EDS012's job), or every step
            // shrinks the term so the cycle burns itself out.
            continue;
        }
        let functors = scc
            .iter()
            .map(Symbol::to_string)
            .collect::<Vec<_>>()
            .join(" <-> ");
        let passes_txt = if passes == u64::MAX {
            "INF".to_owned()
        } else {
            passes.to_string()
        };
        for e in &cycle_edges {
            out.push(
                Diagnostic::new(
                    "EDS016",
                    Severity::Warning,
                    "rule",
                    format!(
                        "rule {} rewrites {} into {}, closing a rewrite cycle over {{{functors}}} \
                         that spans the unbounded blocks {{{}}} across {passes_txt} passes; no \
                         single block sees the whole cycle (EDS012 cannot fire) and the sequence \
                         can ping-pong until pass exhaustion — give the blocks finite limits",
                        e.rule.name,
                        e.from,
                        e.to,
                        block_names.join(", "),
                    ),
                )
                .for_rule(&e.rule.name)
                .in_block(&e.block.name)
                .suggest(finite_limit_fix(e.block)),
            );
        }
    }
}

/// The stock EDS010/EDS016 remediation: rewrite the block with a finite
/// condition-check budget.
pub(crate) fn finite_limit_fix(block: &Block) -> Fix {
    let bounded = Block {
        name: block.name.clone(),
        rules: block.rules.clone(),
        limit: Limit::Finite(100),
    };
    Fix {
        description: format!("replace block {}'s INF limit with 100", block.name),
        target: FixTarget::Block(block.name.clone()),
        replacement: format!("{bounded} ;"),
    }
}

/// Every functor heading an `App` node anywhere in `t`.
fn app_heads(t: &Term) -> HashSet<Symbol> {
    fn walk(t: &Term, out: &mut HashSet<Symbol>) {
        if let Term::App(h, args) = t {
            out.insert(*h);
            for a in args {
                walk(a, out);
            }
        }
    }
    let mut out = HashSet::new();
    walk(t, &mut out);
    out
}

/// EDS017: a rule in an unbounded block whose RHS introduces functors,
/// none of which any rule at the same or a later sequence position (any
/// position at all when the sequence makes a second pass) matches on.
fn check_wasted_saturation(
    rules: &RuleSet,
    order: &[&Block],
    passes: u64,
    out: &mut Vec<Diagnostic>,
) {
    // LHS root functors per order position: what each block consumes.
    let roots_at: Vec<HashSet<Symbol>> = order
        .iter()
        .map(|b| {
            b.rules
                .iter()
                .filter_map(|n| rules.get(n))
                .filter_map(|r| r.lhs.head())
                .collect()
        })
        .collect();
    let all_roots: HashSet<Symbol> = roots_at.iter().flatten().copied().collect();

    let mut reported: HashSet<(&str, &str)> = HashSet::new();
    for (p, block) in order.iter().enumerate() {
        if block.limit != Limit::Infinite {
            continue;
        }
        let consumers: HashSet<Symbol> = if passes >= 2 {
            all_roots.clone()
        } else {
            roots_at[p..].iter().flatten().copied().collect()
        };
        for name in &block.rules {
            let Some(rule) = rules.get(name) else {
                continue;
            };
            let produced = app_heads(&rule.rhs);
            if produced.is_empty() {
                continue;
            }
            let introduced: Vec<Symbol> = {
                let lhs_heads = app_heads(&rule.lhs);
                let mut v: Vec<Symbol> = produced.difference(&lhs_heads).copied().collect();
                v.sort_unstable_by_key(Symbol::to_string);
                v
            };
            if introduced.is_empty() || !produced.is_disjoint(&consumers) {
                continue;
            }
            if reported.insert((name.as_str(), block.name.as_str())) {
                let names = introduced
                    .iter()
                    .map(Symbol::to_string)
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push(
                    Diagnostic::new(
                        "EDS017",
                        Severity::Warning,
                        "rhs",
                        format!(
                            "rule introduces functor(s) {{{names}}} but no rule anywhere later \
                             in the sequence matches on any functor its RHS produces; running \
                             block {} to saturation (limit INF) is wasted work",
                            block.name
                        ),
                    )
                    .for_rule(&rule.name)
                    .in_block(&block.name),
                );
            }
        }
    }
}
