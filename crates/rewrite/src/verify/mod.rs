//! Semantic verification of rewrite rules (`eds-verify`).
//!
//! The analyzer ([`crate::analyze`]) gates the knowledge base
//! *structurally*; this module gates it *semantically*, with two
//! complementary instruments:
//!
//! * [`equiv`] — a bounded 3-valued equivalence prover for pure
//!   boolean/comparison rules: exhaustive small-domain valuation with
//!   Kleene NULL semantics, honoring the rule's side conditions;
//! * [`fuzz`] — a deterministic differential-fuzz case generator: per
//!   rule, a seeded random world (tables, rows, a subject term the LHS
//!   matches) that a harness executes before and after rewriting to
//!   compare results row for row. The generator is engine-agnostic; the
//!   executing harness lives in `eds-core` (`verify_rules`), which owns
//!   the reference executor.
//!
//! Findings reuse the analyzer's [`Diagnostic`] plumbing under three new
//! codes:
//!
//! | Code | Severity | Meaning |
//! |---|---|---|
//! | `EDS030` | error | the rule was **refuted** — prover witness or shrunk fuzz counterexample attached |
//! | `EDS031` | info | outside the provable fragment — differential fuzzing is the only coverage |
//! | `EDS032` | warning | equivalence needs a NOT-NULL side condition (add `NOTNULL(...)` guards) |

pub mod equiv;
pub mod fuzz;

use crate::analyze::{Diagnostic, Severity};

/// Stable code for a refuted rule.
pub const EDS030: &str = "EDS030";
/// Stable code for fuzz-only coverage.
pub const EDS031: &str = "EDS031";
/// Stable code for an inexpressible side condition.
pub const EDS032: &str = "EDS032";

/// An `EDS030` error: the rule was refuted; `detail` carries the
/// counterexample (prover valuation or shrunk fuzz case with its seed).
pub fn refuted(rule: &str, detail: &str) -> Diagnostic {
    Diagnostic::new(
        EDS030,
        Severity::Error,
        "rule",
        format!("semantic verification refuted '{rule}': {detail}"),
    )
    .for_rule(rule)
}

/// An `EDS031` info note: the rule is outside the provable fragment and
/// only differential fuzzing (if the generator supports its shape)
/// covers it.
pub fn unsupported(rule: &str, detail: &str) -> Diagnostic {
    Diagnostic::new(
        EDS031,
        Severity::Info,
        "rule",
        format!("'{rule}' is outside the provable fragment ({detail}); differential fuzzing is the only semantic coverage"),
    )
    .for_rule(rule)
}

/// An `EDS032` warning: the rule is equivalence-preserving only under a
/// side condition it cannot express (or whose side conditions the prover
/// cannot discharge).
pub fn side_condition(rule: &str, detail: &str) -> Diagnostic {
    Diagnostic::new(EDS032, Severity::Warning, "rule", detail.to_owned()).for_rule(rule)
}
