//! Deterministic differential-fuzz case generation.
//!
//! For a rule, [`generate_case`] manufactures a small random world that
//! the rule's LHS pattern is guaranteed to match structurally: fresh base
//! tables with random small arities, a handful of rows drawn from a tiny
//! integer pool, and a subject term obtained by *instantiating* the LHS —
//! every pattern variable is replaced by a concrete relation, predicate,
//! or scalar of the right kind. The harness (in `eds-core`) then rewrites
//! the subject with only that rule enabled and compares reference-executor
//! results row for row; [`shrink_candidates`] proposes strictly smaller
//! variants of a failing case for the harness to re-check.
//!
//! Everything here is pure and seeded — the same `(rule, seed)` pair
//! always yields the same case, which is what makes CI counterexamples
//! replayable locally. This module deliberately knows nothing about the
//! engine: it emits table specs, rows and terms; executing them is the
//! harness's job.

use std::collections::BTreeMap;

use eds_adt::Value;

use crate::analyze::CMP_OPS;
use crate::rule::Rule;
use crate::term::Term;

/// Minimal splitmix64 — the crate has no RNG dependency, and statistical
/// quality far beyond "spreads the seed" is not needed here.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (`n` must be nonzero; the modulo bias
    /// is irrelevant at these tiny ranges).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Mix a rule name into a base seed so every rule fuzzes a distinct but
/// reproducible stream (FNV-1a over the name).
pub fn rule_seed(base: u64, rule_name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in rule_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    base ^ h
}

/// A generated base table.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name (`T1`, `T2`, ...), unique within the case.
    pub name: String,
    /// Number of INT columns.
    pub arity: usize,
}

/// One replayable differential test case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The seed that produced it (after [`rule_seed`] mixing).
    pub seed: u64,
    /// Base tables the subject references.
    pub tables: Vec<TableSpec>,
    /// `rows[i]` holds the rows of `tables[i]`.
    pub rows: Vec<Vec<Vec<i64>>>,
    /// A relation-valued operator term the rule's LHS matches.
    pub subject: Term,
}

impl std::fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (t, rows) in self.tables.iter().zip(&self.rows) {
            write!(f, "{}/{} = {rows:?}; ", t.name, t.arity)?;
        }
        write!(f, "subject = {}", self.subject)
    }
}

/// What [`generate_case`] produced.
#[derive(Debug, Clone)]
pub enum GenOutcome {
    /// A runnable case.
    Case(Box<FuzzCase>),
    /// The LHS shape is outside the generator's vocabulary (reason given);
    /// the rule has no differential coverage.
    Unsupported(String),
}

/// Values inserted into generated rows and used for scalar literals. The
/// pool is deliberately tiny so that joins and equalities actually hit.
const INT_POOL: [i64; 5] = [-1, 0, 1, 2, 3];
const MAX_ROWS: u64 = 5; // 0..=4 rows per table

/// Argument kinds of the LERA operator functors, mirroring the
/// `term_bridge` signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArgKind {
    Rel,
    Pred,
    ScalarList,
    RelList,
    RelColl,
}

fn rel_sig(head: &str) -> Option<&'static [ArgKind]> {
    use ArgKind::{Pred, Rel, RelColl, RelList, ScalarList};
    Some(match head {
        "FILTER" => &[Rel, Pred],
        "PROJECTION" => &[Rel, ScalarList],
        "JOIN" => &[Rel, Rel, Pred],
        "UNION" => &[RelColl],
        "DIFFERENCE" | "INTERSECT" => &[Rel, Rel],
        "SEARCH" => &[RelList, Pred, ScalarList],
        "DEDUP" => &[Rel],
        _ => return None,
    })
}

fn is_pred_head(head: &str, arity: usize) -> bool {
    matches!(
        (head, arity),
        ("AND" | "OR", 2) | ("NOT", 1) | ("TRUE" | "FALSE", 0)
    ) || (arity == 2 && CMP_OPS.contains(&head))
}

struct Gen {
    rng: Rng,
    tables: Vec<TableSpec>,
    /// Pattern variable → the concrete term it was instantiated to (and
    /// for relation variables, the arity).
    binds: BTreeMap<String, (Term, Option<usize>)>,
    seq_binds: BTreeMap<String, Vec<Term>>,
}

impl Gen {
    fn fresh_table(&mut self, required: Option<usize>) -> (Term, usize) {
        let arity = required.unwrap_or_else(|| 1 + self.rng.below(3) as usize);
        let name = format!("T{}", self.tables.len() + 1);
        let term = Term::atom(name.clone());
        self.tables.push(TableSpec { name, arity });
        (term, arity)
    }

    fn inst_rel(&mut self, t: &Term, required: Option<usize>) -> Result<(Term, usize), String> {
        match t {
            Term::Var(v) => {
                if let Some((term, arity)) = self.binds.get(v.as_str()).cloned() {
                    let arity = arity
                        .ok_or_else(|| "relation variable reused as non-relation".to_owned())?;
                    if required.is_some_and(|r| r != arity) {
                        return Err(format!("conflicting arity requirements on '{v}'"));
                    }
                    return Ok((term, arity));
                }
                let (term, arity) = self.fresh_table(required);
                self.binds
                    .insert(v.as_str().to_owned(), (term.clone(), Some(arity)));
                Ok((term, arity))
            }
            Term::App(head, args) => {
                let (head, args) = (head.as_str(), args.as_slice());
                let Some(sig) = rel_sig(head) else {
                    return Err(format!(
                        "operator {head}/{} in relation position",
                        args.len()
                    ));
                };
                if sig.len() != args.len() {
                    return Err(format!(
                        "{head} arity {} (expected {})",
                        args.len(),
                        sig.len()
                    ));
                }
                match head {
                    "FILTER" => {
                        let (rel, arity) = self.inst_rel(&args[0], required)?;
                        let pred = self.inst_pred(&args[1], &[arity])?;
                        Ok((Term::app("FILTER", vec![rel, pred]), arity))
                    }
                    "PROJECTION" => {
                        let (rel, arity) = self.inst_rel(&args[0], None)?;
                        let proj = self.inst_scalar_list(&args[1], &[arity], required)?;
                        let out = proj.len();
                        Ok((Term::app("PROJECTION", vec![rel, Term::list(proj)]), out))
                    }
                    "JOIN" => {
                        let (need_l, need_r) = match required {
                            Some(r) if r < 2 => {
                                return Err("JOIN cannot produce arity < 2".to_owned())
                            }
                            Some(r) => {
                                let l = 1 + self.rng.below(r as u64 - 1) as usize;
                                (Some(l), Some(r - l))
                            }
                            None => (None, None),
                        };
                        let (l, al) = self.inst_rel(&args[0], need_l)?;
                        let (r, ar) = self.inst_rel(&args[1], need_r)?;
                        let pred = self.inst_pred(&args[2], &[al, ar])?;
                        Ok((Term::app("JOIN", vec![l, r, pred]), al + ar))
                    }
                    "UNION" => {
                        let arity = required.unwrap_or_else(|| 1 + self.rng.below(3) as usize);
                        let (kind, members) = self.inst_rel_members(&args[0], arity)?;
                        Ok((Term::app("UNION", vec![Term::app(kind, members)]), arity))
                    }
                    "DIFFERENCE" | "INTERSECT" => {
                        let arity = required.unwrap_or_else(|| 1 + self.rng.below(3) as usize);
                        let (l, _) = self.inst_rel(&args[0], Some(arity))?;
                        let (r, _) = self.inst_rel(&args[1], Some(arity))?;
                        Ok((Term::app(head, vec![l, r]), arity))
                    }
                    "SEARCH" => {
                        let (inputs, arities) = self.inst_search_inputs(&args[0])?;
                        let pred = self.inst_pred(&args[1], &arities)?;
                        let proj = self.inst_scalar_list(&args[2], &arities, required)?;
                        let out = proj.len();
                        Ok((
                            Term::app("SEARCH", vec![inputs, pred, Term::list(proj)]),
                            out,
                        ))
                    }
                    // DEDUP
                    _ => {
                        let (rel, arity) = self.inst_rel(&args[0], required)?;
                        Ok((Term::app("DEDUP", vec![rel]), arity))
                    }
                }
            }
            Term::SeqVar(v) => Err(format!("collection variable '{v}*' in relation position")),
            Term::Const(_) => Err("literal in relation position".to_owned()),
        }
    }

    /// Instantiate the member collection of a `UNION` pattern: a
    /// `SET`/`BAG`/`LIST` whose items are relations of `arity`, with
    /// collection variables expanding to 0–2 fresh members.
    fn inst_rel_members(
        &mut self,
        t: &Term,
        arity: usize,
    ) -> Result<(&'static str, Vec<Term>), String> {
        let Term::App(head, items) = t else {
            return Err("UNION pattern without a collection constructor".to_owned());
        };
        let kind = match head.as_str() {
            "SET" => "SET",
            "BAG" => "BAG",
            "LIST" => "LIST",
            other => return Err(format!("UNION over {other}")),
        };
        let mut members = Vec::new();
        for item in items.as_slice() {
            if let Term::SeqVar(v) = item {
                let extra = self.expand_seq_rels(v.as_str(), arity)?;
                members.extend(extra);
            } else {
                members.push(self.inst_rel(item, Some(arity))?.0);
            }
        }
        if members.is_empty() {
            members.push(self.fresh_table(Some(arity)).0);
        }
        Ok((kind, members))
    }

    fn expand_seq_rels(&mut self, name: &str, arity: usize) -> Result<Vec<Term>, String> {
        if let Some(terms) = self.seq_binds.get(name) {
            return Ok(terms.clone());
        }
        let n = self.rng.below(3);
        let terms: Vec<Term> = (0..n).map(|_| self.fresh_table(Some(arity)).0).collect();
        self.seq_binds.insert(name.to_owned(), terms.clone());
        Ok(terms)
    }

    fn inst_search_inputs(&mut self, t: &Term) -> Result<(Term, Vec<usize>), String> {
        match t {
            Term::Var(v) => {
                if let Some((term, _)) = self.binds.get(v.as_str()).cloned() {
                    let arities = search_input_arities(&term, &self.tables)?;
                    return Ok((term, arities));
                }
                let n = 1 + self.rng.below(2);
                let mut items = Vec::new();
                let mut arities = Vec::new();
                for _ in 0..n {
                    let (item, a) = self.fresh_table(None);
                    items.push(item);
                    arities.push(a);
                }
                let term = Term::list(items);
                self.binds
                    .insert(v.as_str().to_owned(), (term.clone(), None));
                Ok((term, arities))
            }
            Term::App(head, items) if head.as_str() == "LIST" => {
                let mut out = Vec::new();
                let mut arities = Vec::new();
                for item in items.as_slice() {
                    if let Term::SeqVar(v) = item {
                        // Search inputs need not share arity; fresh
                        // ones get their own random widths.
                        let arity = 1 + self.rng.below(3) as usize;
                        for extra in self.expand_seq_rels(v.as_str(), arity)? {
                            arities.push(search_input_arities(&extra, &self.tables)?[0]);
                            out.push(extra);
                        }
                    } else {
                        let (rel, a) = self.inst_rel(item, None)?;
                        out.push(rel);
                        arities.push(a);
                    }
                }
                if out.is_empty() {
                    let (rel, a) = self.fresh_table(None);
                    out.push(rel);
                    arities.push(a);
                }
                Ok((Term::list(out), arities))
            }
            _ => Err("SEARCH inputs neither a variable nor a LIST".to_owned()),
        }
    }

    fn inst_pred(&mut self, t: &Term, env: &[usize]) -> Result<Term, String> {
        match t {
            Term::Var(v) => {
                if let Some((term, _)) = self.binds.get(v.as_str()) {
                    return Ok(term.clone());
                }
                let pred = self.gen_pred(env, 2);
                self.binds
                    .insert(v.as_str().to_owned(), (pred.clone(), None));
                Ok(pred)
            }
            Term::App(head, args) => {
                let (head, args) = (head.as_str(), args.as_slice());
                match (head, args.len()) {
                    ("AND" | "OR", 2) => Ok(Term::app(
                        head,
                        vec![
                            self.inst_pred(&args[0], env)?,
                            self.inst_pred(&args[1], env)?,
                        ],
                    )),
                    ("NOT", 1) => Ok(Term::app("NOT", vec![self.inst_pred(&args[0], env)?])),
                    ("TRUE" | "FALSE", 0) => Ok(t.clone()),
                    (op, 2) if CMP_OPS.contains(&op) => Ok(Term::app(
                        op,
                        vec![
                            self.inst_scalar(&args[0], env)?,
                            self.inst_scalar(&args[1], env)?,
                        ],
                    )),
                    _ => Err(format!("predicate operator {head}/{}", args.len())),
                }
            }
            Term::SeqVar(v) => Err(format!("collection variable '{v}*' in predicate position")),
            Term::Const(Value::Bool(_)) => Ok(t.clone()),
            Term::Const(_) => Err("non-boolean literal in predicate position".to_owned()),
        }
    }

    fn inst_scalar(&mut self, t: &Term, env: &[usize]) -> Result<Term, String> {
        match t {
            Term::Var(v) => {
                if let Some((term, _)) = self.binds.get(v.as_str()) {
                    return Ok(term.clone());
                }
                let s = self.gen_scalar(env, 1);
                self.binds.insert(v.as_str().to_owned(), (s.clone(), None));
                Ok(s)
            }
            Term::Const(_) => Ok(t.clone()),
            Term::App(head, args) => {
                let (head, args) = (head.as_str(), args.as_slice());
                if t.as_attr().is_some() {
                    return Ok(t.clone());
                }
                match (head, args.len()) {
                    ("+" | "-" | "*", 2) => Ok(Term::app(
                        head,
                        vec![
                            self.inst_scalar(&args[0], env)?,
                            self.inst_scalar(&args[1], env)?,
                        ],
                    )),
                    ("-", 1) => Ok(Term::app("-", vec![self.inst_scalar(&args[0], env)?])),
                    _ => Err(format!("scalar operator {head}/{}", args.len())),
                }
            }
            Term::SeqVar(v) => Err(format!("collection variable '{v}*' in scalar position")),
        }
    }

    fn inst_scalar_list(
        &mut self,
        t: &Term,
        env: &[usize],
        required: Option<usize>,
    ) -> Result<Vec<Term>, String> {
        match t {
            Term::Var(v) => {
                if let Some((term, _)) = self.binds.get(v.as_str()) {
                    if let Some(("LIST", items)) = term.as_app() {
                        if required.is_some_and(|r| r != items.len()) {
                            return Err(format!("conflicting projection widths on '{v}'"));
                        }
                        return Ok(items.to_vec());
                    }
                    return Err(format!("'{v}' reused outside a projection list"));
                }
                let n = required.unwrap_or_else(|| 1 + self.rng.below(2) as usize);
                let items: Vec<Term> = (0..n).map(|_| self.gen_scalar(env, 1)).collect();
                self.binds
                    .insert(v.as_str().to_owned(), (Term::list(items.clone()), None));
                Ok(items)
            }
            Term::App(head, items) if head.as_str() == "LIST" => {
                let mut out = Vec::new();
                for item in items.as_slice() {
                    if let Term::SeqVar(v) = item {
                        if let Some(terms) = self.seq_binds.get(v.as_str()) {
                            out.extend(terms.clone());
                        } else {
                            let n = self.rng.below(3);
                            let terms: Vec<Term> =
                                (0..n).map(|_| self.gen_scalar(env, 1)).collect();
                            self.seq_binds.insert(v.as_str().to_owned(), terms.clone());
                            out.extend(terms);
                        }
                    } else {
                        out.push(self.inst_scalar(item, env)?);
                    }
                }
                if out.is_empty() {
                    out.push(self.gen_scalar(env, 1));
                }
                if required.is_some_and(|r| r != out.len()) {
                    return Err("projection list width conflicts with the context".to_owned());
                }
                Ok(out)
            }
            _ => Err("projection list neither a variable nor a LIST".to_owned()),
        }
    }

    /// A random predicate over inputs with the given arities.
    fn gen_pred(&mut self, env: &[usize], depth: u32) -> Term {
        let roll = self.rng.below(100);
        if depth > 0 && roll < 40 {
            return match roll % 4 {
                0 => Term::app(
                    "AND",
                    vec![self.gen_pred(env, depth - 1), self.gen_pred(env, depth - 1)],
                ),
                1 => Term::app(
                    "OR",
                    vec![self.gen_pred(env, depth - 1), self.gen_pred(env, depth - 1)],
                ),
                2 => Term::app("NOT", vec![self.gen_pred(env, depth - 1)]),
                _ => Term::app(
                    CMP_OPS[self.rng.below(CMP_OPS.len() as u64) as usize],
                    vec![self.gen_scalar(env, 1), self.gen_scalar(env, 1)],
                ),
            };
        }
        if roll < 85 {
            Term::app(
                CMP_OPS[self.rng.below(CMP_OPS.len() as u64) as usize],
                vec![self.gen_scalar(env, 1), self.gen_scalar(env, 1)],
            )
        } else if roll < 93 {
            Term::atom("TRUE")
        } else {
            Term::atom("FALSE")
        }
    }

    /// A random scalar over inputs with the given arities.
    fn gen_scalar(&mut self, env: &[usize], depth: u32) -> Term {
        let roll = self.rng.below(100);
        if !env.is_empty() && roll < 55 {
            let rel = 1 + self.rng.below(env.len() as u64);
            let attr = 1 + self.rng.below(env[rel as usize - 1] as u64);
            return Term::attr(rel as i64, attr as i64);
        }
        if depth > 0 && roll >= 80 {
            let op = ["+", "-", "*"][self.rng.below(3) as usize];
            return Term::app(
                op,
                vec![
                    self.gen_scalar(env, depth - 1),
                    self.gen_scalar(env, depth - 1),
                ],
            );
        }
        Term::int(INT_POOL[self.rng.below(INT_POOL.len() as u64) as usize])
    }
}

/// Arities of the already-instantiated relations inside a `LIST` binding
/// (used when a whole-inputs variable is reused).
fn search_input_arities(t: &Term, tables: &[TableSpec]) -> Result<Vec<usize>, String> {
    let lookup = |name: &str| {
        tables
            .iter()
            .find(|spec| spec.name == name)
            .map(|spec| spec.arity)
            .ok_or_else(|| format!("unknown generated table {name}"))
    };
    match t.as_app() {
        Some(("LIST", items)) => items
            .iter()
            .map(|i| match i.as_app() {
                Some((name, [])) => lookup(name),
                _ => Err("non-atomic reused search input".to_owned()),
            })
            .collect(),
        Some((name, [])) => Ok(vec![lookup(name)?]),
        _ => Err("non-atomic reused search input".to_owned()),
    }
}

/// Generate one case for `rule` from `seed`, or explain why the LHS
/// shape is outside the generator's vocabulary.
pub fn generate_case(rule: &Rule, seed: u64) -> GenOutcome {
    let mut gen = Gen {
        rng: Rng::new(seed),
        tables: Vec::new(),
        binds: BTreeMap::new(),
        seq_binds: BTreeMap::new(),
    };
    let subject = match &rule.lhs {
        Term::App(head, _) if rel_sig(head.as_str()).is_some() => {
            match gen.inst_rel(&rule.lhs, None) {
                Ok((subject, _)) => subject,
                Err(reason) => return GenOutcome::Unsupported(reason),
            }
        }
        Term::App(head, args) if is_pred_head(head.as_str(), args.len()) => {
            // A pure qualification rule: embed the instantiated predicate
            // in a FILTER over one fresh table so it executes.
            let (rel, arity) = gen.fresh_table(None);
            match gen.inst_pred(&rule.lhs, &[arity]) {
                Ok(pred) => Term::app("FILTER", vec![rel, pred]),
                Err(reason) => return GenOutcome::Unsupported(reason),
            }
        }
        other => {
            return GenOutcome::Unsupported(format!(
                "LHS root {other} is neither a relational operator nor a qualification"
            ))
        }
    };
    let mut rows = Vec::with_capacity(gen.tables.len());
    for spec in &gen.tables {
        let n = gen.rng.below(MAX_ROWS);
        let mut table_rows = Vec::with_capacity(n as usize);
        for _ in 0..n {
            table_rows.push(
                (0..spec.arity)
                    .map(|_| INT_POOL[gen.rng.below(INT_POOL.len() as u64) as usize])
                    .collect(),
            );
        }
        rows.push(table_rows);
    }
    GenOutcome::Case(Box::new(FuzzCase {
        seed,
        tables: gen.tables,
        rows,
        subject,
    }))
}

/// Strictly smaller variants of a failing case, in preference order. The
/// harness re-checks each candidate (rule still applies, results still
/// differ) and keeps the first that does, looping to a fixpoint.
pub fn shrink_candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    // Fewer rows first: data shrinks are the cheapest to re-check and
    // give the most readable counterexamples.
    for (ti, rows) in case.rows.iter().enumerate() {
        for ri in 0..rows.len() {
            let mut c = case.clone();
            c.rows[ti].remove(ri);
            out.push(c);
        }
    }
    // Structural shrinks on the subject: hoist a boolean child over its
    // connective, collapse a comparison to a literal, zero a constant.
    for pos in case.subject.positions() {
        if pos.is_empty() {
            continue;
        }
        let Some(sub) = case.subject.at(&pos) else {
            continue;
        };
        if let Some((head, args)) = sub.as_app() {
            match (head, args.len()) {
                ("AND" | "OR", 2) => {
                    for child in args {
                        out.push(replaced(case, &pos, child.clone()));
                    }
                }
                ("NOT", 1) => out.push(replaced(case, &pos, args[0].clone())),
                (op, 2) if CMP_OPS.contains(&op) => {
                    out.push(replaced(case, &pos, Term::atom("TRUE")));
                    out.push(replaced(case, &pos, Term::atom("FALSE")));
                }
                _ => {}
            }
        }
        if let Some(Value::Int(n)) = sub.as_const() {
            if *n != 0 {
                out.push(replaced(case, &pos, Term::int(0)));
            }
        }
    }
    out
}

fn replaced(case: &FuzzCase, pos: &[usize], with: Term) -> FuzzCase {
    let mut c = case.clone();
    c.subject = case.subject.replace_at(pos, with);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_source;
    use crate::SourceItem;

    fn rule(src: &str) -> Rule {
        match parse_source(src).unwrap().remove(0) {
            SourceItem::Rule(r) => r,
            other => panic!("expected a rule, got {other:?}"),
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let r = rule("Merge : FILTER(FILTER(r, p), q) / --> FILTER(r, AND(p, q)) / ;");
        let (GenOutcome::Case(a), GenOutcome::Case(b)) =
            (generate_case(&r, 42), generate_case(&r, 42))
        else {
            panic!("expected cases");
        };
        assert_eq!(a.subject, b.subject);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn filter_pattern_instantiates_to_a_matching_subject() {
        let r = rule("Merge : FILTER(FILTER(r, p), q) / --> FILTER(r, AND(p, q)) / ;");
        let GenOutcome::Case(case) = generate_case(&r, 7) else {
            panic!("expected a case");
        };
        // The subject is FILTER(FILTER(T1, ...), ...): the pattern
        // matches at the root by construction.
        let (head, args) = case.subject.as_app().unwrap();
        assert_eq!(head, "FILTER");
        assert!(args[0].is_app("FILTER"));
        assert_eq!(case.tables.len(), 1);
    }

    #[test]
    fn qualification_rules_embed_in_a_filter() {
        let r = rule("DM : NOT(AND(f, g)) / --> OR(NOT(f), NOT(g)) / ;");
        let GenOutcome::Case(case) = generate_case(&r, 3) else {
            panic!("expected a case");
        };
        let (head, args) = case.subject.as_app().unwrap();
        assert_eq!(head, "FILTER");
        assert!(args[1].is_app("NOT"));
    }

    #[test]
    fn nest_rules_are_unsupported() {
        let r = rule("N : NEST(r, LIST(1), LIST(2), SET) / --> r / ;");
        assert!(matches!(generate_case(&r, 1), GenOutcome::Unsupported(_)));
    }

    #[test]
    fn shrinks_never_grow() {
        let r = rule("Merge : FILTER(FILTER(r, p), q) / --> FILTER(r, AND(p, q)) / ;");
        let GenOutcome::Case(case) = generate_case(&r, 99) else {
            panic!("expected a case");
        };
        for cand in shrink_candidates(&case) {
            let fewer_rows = cand.rows.iter().map(Vec::len).sum::<usize>()
                < case.rows.iter().map(Vec::len).sum::<usize>();
            // Zeroing a constant keeps the size; every other candidate
            // shrinks the subject or the data.
            let no_larger_subject = cand.subject.size() <= case.subject.size();
            assert!(fewer_rows || no_larger_subject, "{cand}");
            assert!(cand.subject.size() <= case.subject.size(), "{cand}");
        }
    }
}
