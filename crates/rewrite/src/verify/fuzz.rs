//! Deterministic differential-fuzz case generation.
//!
//! For a rule, [`generate_case`] manufactures a small random world that
//! the rule's LHS pattern is guaranteed to match structurally: fresh base
//! tables with random small arities, a handful of rows drawn from a tiny
//! integer pool, and a subject term obtained by *instantiating* the LHS —
//! every pattern variable is replaced by a concrete relation, predicate,
//! or scalar of the right kind. The harness (in `eds-core`) then rewrites
//! the subject with only that rule enabled and compares reference-executor
//! results row for row; [`shrink_candidates`] proposes strictly smaller
//! variants of a failing case for the harness to re-check.
//!
//! Everything here is pure and seeded — the same `(rule, seed)` pair
//! always yields the same case, which is what makes CI counterexamples
//! replayable locally. This module deliberately knows nothing about the
//! engine: it emits table specs, rows and terms; executing them is the
//! harness's job.

use std::collections::{BTreeMap, BTreeSet};

use eds_adt::Value;

use crate::analyze::CMP_OPS;
use crate::rule::Rule;
use crate::term::Term;

/// Minimal splitmix64 — the crate has no RNG dependency, and statistical
/// quality far beyond "spreads the seed" is not needed here.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (`n` must be nonzero; the modulo bias
    /// is irrelevant at these tiny ranges).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Mix a rule name into a base seed so every rule fuzzes a distinct but
/// reproducible stream (FNV-1a over the name).
pub fn rule_seed(base: u64, rule_name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in rule_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    base ^ h
}

/// A generated base table.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name (`T1`, `T2`, ...), unique within the case.
    pub name: String,
    /// Number of INT columns.
    pub arity: usize,
}

/// One replayable differential test case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The seed that produced it (after [`rule_seed`] mixing).
    pub seed: u64,
    /// Base tables the subject references.
    pub tables: Vec<TableSpec>,
    /// `rows[i]` holds the rows of `tables[i]`.
    pub rows: Vec<Vec<Vec<i64>>>,
    /// A relation-valued operator term the rule's LHS matches.
    pub subject: Term,
}

impl std::fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (t, rows) in self.tables.iter().zip(&self.rows) {
            write!(f, "{}/{} = {rows:?}; ", t.name, t.arity)?;
        }
        write!(f, "subject = {}", self.subject)
    }
}

/// What [`generate_case`] produced.
#[derive(Debug, Clone)]
pub enum GenOutcome {
    /// A runnable case.
    Case(Box<FuzzCase>),
    /// The LHS shape is outside the generator's vocabulary (reason given);
    /// the rule has no differential coverage.
    Unsupported(String),
}

/// Values inserted into generated rows and used for scalar literals. The
/// pool is deliberately tiny so that joins and equalities actually hit.
const INT_POOL: [i64; 5] = [-1, 0, 1, 2, 3];
const MAX_ROWS: u64 = 5; // 0..=4 rows per table

/// Argument kinds of the LERA operator functors, mirroring the
/// `term_bridge` signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArgKind {
    Rel,
    Pred,
    ScalarList,
    RelList,
    RelColl,
    AttrList,
    Kind,
    FixName,
}

fn rel_sig(head: &str) -> Option<&'static [ArgKind]> {
    use ArgKind::{AttrList, FixName, Kind, Pred, Rel, RelColl, RelList, ScalarList};
    Some(match head {
        "FILTER" => &[Rel, Pred],
        "PROJECTION" => &[Rel, ScalarList],
        "JOIN" => &[Rel, Rel, Pred],
        "UNION" => &[RelColl],
        "DIFFERENCE" | "INTERSECT" => &[Rel, Rel],
        "SEARCH" => &[RelList, Pred, ScalarList],
        "DEDUP" => &[Rel],
        "NEST" => &[Rel, AttrList, AttrList, Kind],
        "FIX" => &[FixName, Rel],
        _ => return None,
    })
}

fn is_pred_head(head: &str, arity: usize) -> bool {
    matches!(
        (head, arity),
        ("AND" | "OR", 2) | ("NOT", 1) | ("TRUE" | "FALSE", 0) | ("MEMBER", 2)
    ) || (arity == 2 && CMP_OPS.contains(&head))
}

fn is_scalar_head(head: &str, arity: usize) -> bool {
    matches!((head, arity), ("+" | "-" | "*", 2) | ("-", 1))
}

/// Pattern variables that a rule's `ISA(v, constant)` side conditions
/// require to be constants. Instantiating them as anything else
/// guarantees the rule never fires (zero differential coverage), so the
/// generator honors the constraint up front.
fn constant_vars(rule: &Rule) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for c in &rule.constraints {
        if let Some(("ISA", [Term::Var(v), spec])) = c.as_app() {
            let constant =
                matches!(spec, Term::Var(s) if s.as_str() == "constant") || spec.is_app("constant");
            if constant {
                out.insert(v.as_str().to_owned());
            }
        }
    }
    out
}

/// AND-fold a non-empty conjunct list.
fn conjoin(mut conjuncts: Vec<Term>) -> Term {
    let mut t = conjuncts.remove(0);
    for c in conjuncts {
        t = Term::app("AND", vec![t, c]);
    }
    t
}

struct Gen {
    rng: Rng,
    tables: Vec<TableSpec>,
    /// Pattern variable → the concrete term it was instantiated to (and
    /// for relation variables, the arity).
    binds: BTreeMap<String, (Term, Option<usize>)>,
    seq_binds: BTreeMap<String, Vec<Term>>,
    /// Variables `ISA(v, constant)` side conditions pin to literals.
    const_vars: BTreeSet<String>,
    /// Fixpoint relations generated so far (names `F1`, `F2`, ...).
    fix_count: usize,
}

impl Gen {
    fn fresh_table(&mut self, required: Option<usize>) -> (Term, usize) {
        let arity = required.unwrap_or_else(|| 1 + self.rng.below(3) as usize);
        let name = format!("T{}", self.tables.len() + 1);
        let term = Term::atom(name.clone());
        self.tables.push(TableSpec { name, arity });
        (term, arity)
    }

    fn inst_rel(&mut self, t: &Term, required: Option<usize>) -> Result<(Term, usize), String> {
        match t {
            Term::Var(v) => {
                if let Some((term, arity)) = self.binds.get(v.as_str()).cloned() {
                    let arity = arity
                        .ok_or_else(|| "relation variable reused as non-relation".to_owned())?;
                    if required.is_some_and(|r| r != arity) {
                        return Err(format!("conflicting arity requirements on '{v}'"));
                    }
                    return Ok((term, arity));
                }
                let (term, arity) = self.fresh_table(required);
                self.binds
                    .insert(v.as_str().to_owned(), (term.clone(), Some(arity)));
                Ok((term, arity))
            }
            Term::App(head, args) => {
                let (head, args) = (head.as_str(), args.as_slice());
                let Some(sig) = rel_sig(head) else {
                    return Err(format!(
                        "operator {head}/{} in relation position",
                        args.len()
                    ));
                };
                if sig.len() != args.len() {
                    return Err(format!(
                        "{head} arity {} (expected {})",
                        args.len(),
                        sig.len()
                    ));
                }
                match head {
                    "FILTER" => {
                        let (rel, arity) = self.inst_rel(&args[0], required)?;
                        let pred = self.inst_pred(&args[1], &[arity])?;
                        Ok((Term::app("FILTER", vec![rel, pred]), arity))
                    }
                    "PROJECTION" => {
                        let (rel, arity) = self.inst_rel(&args[0], None)?;
                        let proj = self.inst_scalar_list(&args[1], &[arity], required)?;
                        let out = proj.len();
                        Ok((Term::app("PROJECTION", vec![rel, Term::list(proj)]), out))
                    }
                    "JOIN" => {
                        let (need_l, need_r) = match required {
                            Some(r) if r < 2 => {
                                return Err("JOIN cannot produce arity < 2".to_owned())
                            }
                            Some(r) => {
                                let l = 1 + self.rng.below(r as u64 - 1) as usize;
                                (Some(l), Some(r - l))
                            }
                            None => (None, None),
                        };
                        let (l, al) = self.inst_rel(&args[0], need_l)?;
                        let (r, ar) = self.inst_rel(&args[1], need_r)?;
                        let pred = self.inst_pred(&args[2], &[al, ar])?;
                        Ok((Term::app("JOIN", vec![l, r, pred]), al + ar))
                    }
                    "UNION" => {
                        let arity = required.unwrap_or_else(|| 1 + self.rng.below(3) as usize);
                        let (kind, members) = self.inst_rel_members(&args[0], arity)?;
                        Ok((Term::app("UNION", vec![Term::app(kind, members)]), arity))
                    }
                    "DIFFERENCE" | "INTERSECT" => {
                        let arity = required.unwrap_or_else(|| 1 + self.rng.below(3) as usize);
                        let (l, _) = self.inst_rel(&args[0], Some(arity))?;
                        let (r, _) = self.inst_rel(&args[1], Some(arity))?;
                        Ok((Term::app(head, vec![l, r]), arity))
                    }
                    "SEARCH" => {
                        let (inputs, arities, focus) = self.inst_search_inputs(&args[0])?;
                        // When the input list carries a NEST or FIX, a free
                        // predicate variable is bound to the focus conjuncts
                        // instead of a random predicate: a qualification of
                        // exactly the shape the push-down methods (SPLITNEST,
                        // ADORNMENT) can act on, so those rules actually fire.
                        let pred = match &args[1] {
                            Term::Var(v)
                                if !focus.is_empty() && !self.binds.contains_key(v.as_str()) =>
                            {
                                let p = conjoin(focus);
                                self.binds.insert(v.as_str().to_owned(), (p.clone(), None));
                                p
                            }
                            _ => self.inst_pred(&args[1], &arities)?,
                        };
                        let proj = self.inst_scalar_list(&args[2], &arities, required)?;
                        let out = proj.len();
                        Ok((
                            Term::app("SEARCH", vec![inputs, pred, Term::list(proj)]),
                            out,
                        ))
                    }
                    "NEST" => {
                        let (nested_p, group_p, in_arity) =
                            self.nest_partition(&args[1], &args[2], required)?;
                        let (rel, _) = self.inst_rel(&args[0], Some(in_arity))?;
                        let kind = self.inst_kind(&args[3])?;
                        let out = group_p.len() + 1;
                        Ok((
                            Term::app(
                                "NEST",
                                vec![
                                    rel,
                                    Term::list(nested_p.iter().map(|&i| Term::int(i)).collect()),
                                    Term::list(group_p.iter().map(|&i| Term::int(i)).collect()),
                                    kind,
                                ],
                            ),
                            out,
                        ))
                    }
                    "FIX" => {
                        if required.is_some_and(|r| r != 2) {
                            return Err("generated fixpoints have arity 2".to_owned());
                        }
                        let (Term::Var(rv), Term::Var(ev)) = (&args[0], &args[1]) else {
                            return Err("FIX pattern with a non-variable name or body".to_owned());
                        };
                        let (name, body) = match (
                            self.binds.get(rv.as_str()).cloned(),
                            self.binds.get(ev.as_str()).cloned(),
                        ) {
                            (Some((n, _)), Some((b, _))) => (n, b),
                            (None, None) => {
                                let (n, b) = self.gen_fix_body();
                                self.binds.insert(rv.as_str().to_owned(), (n.clone(), None));
                                self.binds
                                    .insert(ev.as_str().to_owned(), (b.clone(), Some(2)));
                                (n, b)
                            }
                            _ => return Err("half-bound FIX pattern".to_owned()),
                        };
                        Ok((Term::app("FIX", vec![name, body]), 2))
                    }
                    // DEDUP
                    _ => {
                        let (rel, arity) = self.inst_rel(&args[0], required)?;
                        Ok((Term::app("DEDUP", vec![rel]), arity))
                    }
                }
            }
            Term::SeqVar(v) => Err(format!("collection variable '{v}*' in relation position")),
            Term::Const(_) => Err("literal in relation position".to_owned()),
        }
    }

    /// Instantiate the member collection of a `UNION` pattern: a
    /// `SET`/`BAG`/`LIST` whose items are relations of `arity`, with
    /// collection variables expanding to 0–2 fresh members.
    fn inst_rel_members(
        &mut self,
        t: &Term,
        arity: usize,
    ) -> Result<(&'static str, Vec<Term>), String> {
        // A bare variable stands for the whole member collection: bind it
        // to a SET of fresh tables (UnionMerge's inner `UNION(z)`).
        if let Term::Var(v) = t {
            if let Some((term, _)) = self.binds.get(v.as_str()).cloned() {
                return match term.as_app() {
                    Some(("SET", items)) => Ok(("SET", items.to_vec())),
                    _ => Err(format!("'{v}' reused outside a member collection")),
                };
            }
            let n = 1 + self.rng.below(2);
            let members: Vec<Term> = (0..n).map(|_| self.fresh_table(Some(arity)).0).collect();
            self.binds
                .insert(v.as_str().to_owned(), (Term::set(members.clone()), None));
            return Ok(("SET", members));
        }
        let Term::App(head, items) = t else {
            return Err("UNION pattern without a collection constructor".to_owned());
        };
        let kind = match head.as_str() {
            "SET" => "SET",
            "BAG" => "BAG",
            "LIST" => "LIST",
            other => return Err(format!("UNION over {other}")),
        };
        let mut members = Vec::new();
        for item in items.as_slice() {
            if let Term::SeqVar(v) = item {
                let extra = self.expand_seq_rels(v.as_str(), arity)?;
                members.extend(extra);
            } else {
                members.push(self.inst_rel(item, Some(arity))?.0);
            }
        }
        if members.is_empty() {
            members.push(self.fresh_table(Some(arity)).0);
        }
        Ok((kind, members))
    }

    fn expand_seq_rels(&mut self, name: &str, arity: usize) -> Result<Vec<Term>, String> {
        if let Some(terms) = self.seq_binds.get(name) {
            return Ok(terms.clone());
        }
        let n = self.rng.below(3);
        let terms: Vec<Term> = (0..n).map(|_| self.fresh_table(Some(arity)).0).collect();
        self.seq_binds.insert(name.to_owned(), terms.clone());
        Ok(terms)
    }

    /// Instantiate a `SEARCH` input list. The third component is the
    /// *focus* conjuncts: for every NEST or FIX input, one equality of
    /// the shape the push-down methods require — `ATTR(pos, g) = const`
    /// over a group attribute (NEST) or the binding-preserved first
    /// attribute (FIX). The caller uses them as the predicate when the
    /// pattern leaves it free.
    fn inst_search_inputs(&mut self, t: &Term) -> Result<(Term, Vec<usize>, Vec<Term>), String> {
        match t {
            Term::Var(v) => {
                if let Some((term, _)) = self.binds.get(v.as_str()).cloned() {
                    let arities = search_input_arities(&term, &self.tables)?;
                    return Ok((term, arities, Vec::new()));
                }
                let n = 1 + self.rng.below(2);
                let mut items = Vec::new();
                let mut arities = Vec::new();
                for _ in 0..n {
                    let (item, a) = self.fresh_table(None);
                    items.push(item);
                    arities.push(a);
                }
                let term = Term::list(items);
                self.binds
                    .insert(v.as_str().to_owned(), (term.clone(), None));
                Ok((term, arities, Vec::new()))
            }
            Term::App(head, items) if head.as_str() == "LIST" => {
                let mut out = Vec::new();
                let mut arities = Vec::new();
                let mut focus = Vec::new();
                for item in items.as_slice() {
                    if let Term::SeqVar(v) = item {
                        // Search inputs need not share arity; fresh
                        // ones get their own random widths.
                        let arity = 1 + self.rng.below(3) as usize;
                        for extra in self.expand_seq_rels(v.as_str(), arity)? {
                            arities.push(search_input_arities(&extra, &self.tables)?[0]);
                            out.push(extra);
                        }
                    } else {
                        let (rel, a) = self.inst_rel(item, None)?;
                        let pos = (arities.len() + 1) as i64;
                        let item_head = match item {
                            Term::App(h, _) => h.as_str(),
                            _ => "",
                        };
                        match item_head {
                            "FIX" => {
                                // The generated fixpoint preserves bindings
                                // on attribute 1 only.
                                focus.push(Term::app(
                                    "=",
                                    vec![Term::attr(pos, 1), self.pool_const()],
                                ));
                            }
                            "NEST" if a >= 2 => {
                                // Any group attribute (outputs 1..arity-1;
                                // the collection is last).
                                let g = 1 + self.rng.below(a as u64 - 1) as i64;
                                focus.push(Term::app(
                                    "=",
                                    vec![Term::attr(pos, g), self.pool_const()],
                                ));
                            }
                            _ => {}
                        }
                        out.push(rel);
                        arities.push(a);
                    }
                }
                if out.is_empty() {
                    let (rel, a) = self.fresh_table(None);
                    out.push(rel);
                    arities.push(a);
                }
                Ok((Term::list(out), arities, focus))
            }
            _ => Err("SEARCH inputs neither a variable nor a LIST".to_owned()),
        }
    }

    fn pool_const(&mut self) -> Term {
        Term::int(INT_POOL[self.rng.below(INT_POOL.len() as u64) as usize])
    }

    /// Choose (or read off) the nested/group attribute partition of a
    /// `NEST` pattern. Variable patterns get a generated partition — the
    /// last input attribute nested, the rest grouping — sized to the
    /// required output arity when the context imposes one.
    fn nest_partition(
        &mut self,
        nested: &Term,
        group: &Term,
        required_out: Option<usize>,
    ) -> Result<(Vec<i64>, Vec<i64>, usize), String> {
        fn attr_ints(t: &Term) -> Option<Vec<i64>> {
            match t.as_app() {
                Some(("LIST", items)) => items
                    .iter()
                    .map(|i| match i.as_const() {
                        Some(Value::Int(n)) => Some(*n),
                        _ => None,
                    })
                    .collect(),
                _ => None,
            }
        }
        match (nested, group) {
            (Term::Var(nv), Term::Var(gv)) => {
                if self.binds.contains_key(nv.as_str()) || self.binds.contains_key(gv.as_str()) {
                    return Err("NEST attribute lists reused across patterns".to_owned());
                }
                // Output = group attributes then the collection, so the
                // input arity is out - 1 grouping columns + 1 nested one.
                let in_arity = match required_out {
                    Some(r) if r >= 2 => r,
                    Some(_) => return Err("NEST cannot produce arity < 2".to_owned()),
                    None => 2 + self.rng.below(2) as usize,
                };
                let nested_p = vec![in_arity as i64];
                let group_p: Vec<i64> = (1..in_arity as i64).collect();
                let as_list =
                    |ints: &[i64]| Term::list(ints.iter().map(|&i| Term::int(i)).collect());
                self.binds
                    .insert(nv.as_str().to_owned(), (as_list(&nested_p), None));
                self.binds
                    .insert(gv.as_str().to_owned(), (as_list(&group_p), None));
                Ok((nested_p, group_p, in_arity))
            }
            _ => {
                let (Some(nested_p), Some(group_p)) = (attr_ints(nested), attr_ints(group)) else {
                    return Err("NEST attribute lists neither variables nor INT lists".to_owned());
                };
                if nested_p.is_empty() || nested_p.iter().chain(&group_p).any(|&i| i < 1) {
                    return Err("malformed NEST attribute lists".to_owned());
                }
                if required_out.is_some_and(|r| r != group_p.len() + 1) {
                    return Err("NEST output arity conflicts with the context".to_owned());
                }
                let in_arity = nested_p.iter().chain(&group_p).copied().max().unwrap() as usize;
                Ok((nested_p, group_p, in_arity))
            }
        }
    }

    fn inst_kind(&mut self, t: &Term) -> Result<Term, String> {
        match t {
            Term::Var(v) => {
                if let Some((term, _)) = self.binds.get(v.as_str()) {
                    return Ok(term.clone());
                }
                let kind = Term::atom("SET");
                self.binds
                    .insert(v.as_str().to_owned(), (kind.clone(), None));
                Ok(kind)
            }
            Term::App(h, args)
                if args.is_empty() && matches!(h.as_str(), "SET" | "BAG" | "LIST" | "ARRAY") =>
            {
                Ok(t.clone())
            }
            other => Err(format!("NEST collection kind {other}")),
        }
    }

    /// A transitive-closure-shaped fixpoint over two fresh arity-2
    /// tables: `UNION(SET(seed, SEARCH((F, delta), 1.2 = 2.1, (1.1,
    /// 2.2))))`. Linear recursion with attribute 1 projected verbatim
    /// from the recursive occurrence — exactly the class the
    /// ADORNMENT/ALEXANDER methods can reduce when the outer
    /// qualification binds attribute 1.
    fn gen_fix_body(&mut self) -> (Term, Term) {
        self.fix_count += 1;
        let name = Term::atom(format!("F{}", self.fix_count));
        let (seed, _) = self.fresh_table(Some(2));
        let (delta, _) = self.fresh_table(Some(2));
        let rec = Term::app(
            "SEARCH",
            vec![
                Term::list(vec![name.clone(), delta]),
                Term::app("=", vec![Term::attr(1, 2), Term::attr(2, 1)]),
                Term::list(vec![Term::attr(1, 1), Term::attr(2, 2)]),
            ],
        );
        let body = Term::app("UNION", vec![Term::set(vec![seed, rec])]);
        (name, body)
    }

    fn inst_pred(&mut self, t: &Term, env: &[usize]) -> Result<Term, String> {
        match t {
            Term::Var(v) => {
                if let Some((term, _)) = self.binds.get(v.as_str()) {
                    return Ok(term.clone());
                }
                let pred = self.gen_pred(env, 2);
                self.binds
                    .insert(v.as_str().to_owned(), (pred.clone(), None));
                Ok(pred)
            }
            Term::App(head, args) => {
                let (head, args) = (head.as_str(), args.as_slice());
                match (head, args.len()) {
                    ("AND" | "OR", 2) => Ok(Term::app(
                        head,
                        vec![
                            self.inst_pred(&args[0], env)?,
                            self.inst_pred(&args[1], env)?,
                        ],
                    )),
                    ("NOT", 1) => Ok(Term::app("NOT", vec![self.inst_pred(&args[0], env)?])),
                    ("TRUE" | "FALSE", 0) => Ok(t.clone()),
                    ("MEMBER", 2) => Ok(Term::app(
                        "MEMBER",
                        vec![
                            self.inst_scalar(&args[0], env)?,
                            self.inst_set(&args[1], env)?,
                        ],
                    )),
                    (op, 2) if CMP_OPS.contains(&op) => Ok(Term::app(
                        op,
                        vec![
                            self.inst_scalar(&args[0], env)?,
                            self.inst_scalar(&args[1], env)?,
                        ],
                    )),
                    _ => Err(format!("predicate operator {head}/{}", args.len())),
                }
            }
            Term::SeqVar(v) => Err(format!("collection variable '{v}*' in predicate position")),
            Term::Const(Value::Bool(_)) => Ok(t.clone()),
            Term::Const(_) => Err("non-boolean literal in predicate position".to_owned()),
        }
    }

    /// Instantiate a set-valued pattern position (`MEMBER`'s second
    /// argument): a variable becomes a small literal `SET`, a concrete
    /// collection constructor has its items instantiated as scalars.
    fn inst_set(&mut self, t: &Term, env: &[usize]) -> Result<Term, String> {
        match t {
            Term::Var(v) => {
                if let Some((term, _)) = self.binds.get(v.as_str()) {
                    return Ok(term.clone());
                }
                let n = 1 + self.rng.below(3);
                let items: Vec<Term> = (0..n).map(|_| self.pool_const()).collect();
                let set = Term::set(items);
                self.binds
                    .insert(v.as_str().to_owned(), (set.clone(), None));
                Ok(set)
            }
            Term::App(h, items) if matches!(h.as_str(), "SET" | "MAKESET" | "BAG" | "LIST") => {
                let inst: Result<Vec<Term>, String> = items
                    .iter()
                    .map(|item| self.inst_scalar(item, env))
                    .collect();
                Ok(Term::app(h.as_str(), inst?))
            }
            other => Err(format!("set-valued position {other}")),
        }
    }

    fn inst_scalar(&mut self, t: &Term, env: &[usize]) -> Result<Term, String> {
        match t {
            Term::Var(v) => {
                if let Some((term, _)) = self.binds.get(v.as_str()) {
                    return Ok(term.clone());
                }
                let s = if self.const_vars.contains(v.as_str()) {
                    self.pool_const()
                } else {
                    self.gen_scalar(env, 1)
                };
                self.binds.insert(v.as_str().to_owned(), (s.clone(), None));
                Ok(s)
            }
            Term::Const(_) => Ok(t.clone()),
            Term::App(head, args) => {
                let (head, args) = (head.as_str(), args.as_slice());
                if t.as_attr().is_some() {
                    return Ok(t.clone());
                }
                match (head, args.len()) {
                    ("+" | "-" | "*", 2) => Ok(Term::app(
                        head,
                        vec![
                            self.inst_scalar(&args[0], env)?,
                            self.inst_scalar(&args[1], env)?,
                        ],
                    )),
                    ("-", 1) => Ok(Term::app("-", vec![self.inst_scalar(&args[0], env)?])),
                    _ => Err(format!("scalar operator {head}/{}", args.len())),
                }
            }
            Term::SeqVar(v) => Err(format!("collection variable '{v}*' in scalar position")),
        }
    }

    fn inst_scalar_list(
        &mut self,
        t: &Term,
        env: &[usize],
        required: Option<usize>,
    ) -> Result<Vec<Term>, String> {
        match t {
            Term::Var(v) => {
                if let Some((term, _)) = self.binds.get(v.as_str()) {
                    if let Some(("LIST", items)) = term.as_app() {
                        if required.is_some_and(|r| r != items.len()) {
                            return Err(format!("conflicting projection widths on '{v}'"));
                        }
                        return Ok(items.to_vec());
                    }
                    return Err(format!("'{v}' reused outside a projection list"));
                }
                let n = required.unwrap_or_else(|| 1 + self.rng.below(2) as usize);
                let items: Vec<Term> = (0..n).map(|_| self.gen_scalar(env, 1)).collect();
                self.binds
                    .insert(v.as_str().to_owned(), (Term::list(items.clone()), None));
                Ok(items)
            }
            Term::App(head, items) if head.as_str() == "LIST" => {
                let mut out = Vec::new();
                for item in items.as_slice() {
                    if let Term::SeqVar(v) = item {
                        if let Some(terms) = self.seq_binds.get(v.as_str()) {
                            out.extend(terms.clone());
                        } else {
                            let n = self.rng.below(3);
                            let terms: Vec<Term> =
                                (0..n).map(|_| self.gen_scalar(env, 1)).collect();
                            self.seq_binds.insert(v.as_str().to_owned(), terms.clone());
                            out.extend(terms);
                        }
                    } else {
                        out.push(self.inst_scalar(item, env)?);
                    }
                }
                if out.is_empty() {
                    out.push(self.gen_scalar(env, 1));
                }
                if required.is_some_and(|r| r != out.len()) {
                    return Err("projection list width conflicts with the context".to_owned());
                }
                Ok(out)
            }
            _ => Err("projection list neither a variable nor a LIST".to_owned()),
        }
    }

    /// A random predicate over inputs with the given arities.
    fn gen_pred(&mut self, env: &[usize], depth: u32) -> Term {
        let roll = self.rng.below(100);
        if depth > 0 && roll < 40 {
            return match roll % 4 {
                0 => Term::app(
                    "AND",
                    vec![self.gen_pred(env, depth - 1), self.gen_pred(env, depth - 1)],
                ),
                1 => Term::app(
                    "OR",
                    vec![self.gen_pred(env, depth - 1), self.gen_pred(env, depth - 1)],
                ),
                2 => Term::app("NOT", vec![self.gen_pred(env, depth - 1)]),
                _ => Term::app(
                    CMP_OPS[self.rng.below(CMP_OPS.len() as u64) as usize],
                    vec![self.gen_scalar(env, 1), self.gen_scalar(env, 1)],
                ),
            };
        }
        if roll < 85 {
            Term::app(
                CMP_OPS[self.rng.below(CMP_OPS.len() as u64) as usize],
                vec![self.gen_scalar(env, 1), self.gen_scalar(env, 1)],
            )
        } else if roll < 93 {
            Term::atom("TRUE")
        } else {
            Term::atom("FALSE")
        }
    }

    /// A random scalar over inputs with the given arities.
    fn gen_scalar(&mut self, env: &[usize], depth: u32) -> Term {
        let roll = self.rng.below(100);
        if !env.is_empty() && roll < 55 {
            let rel = 1 + self.rng.below(env.len() as u64);
            let attr = 1 + self.rng.below(env[rel as usize - 1] as u64);
            return Term::attr(rel as i64, attr as i64);
        }
        if depth > 0 && roll >= 80 {
            let op = ["+", "-", "*"][self.rng.below(3) as usize];
            return Term::app(
                op,
                vec![
                    self.gen_scalar(env, depth - 1),
                    self.gen_scalar(env, depth - 1),
                ],
            );
        }
        Term::int(INT_POOL[self.rng.below(INT_POOL.len() as u64) as usize])
    }
}

/// Arities of the already-instantiated relations inside a `LIST` binding
/// (used when a whole-inputs variable is reused).
fn search_input_arities(t: &Term, tables: &[TableSpec]) -> Result<Vec<usize>, String> {
    let lookup = |name: &str| {
        tables
            .iter()
            .find(|spec| spec.name == name)
            .map(|spec| spec.arity)
            .ok_or_else(|| format!("unknown generated table {name}"))
    };
    match t.as_app() {
        Some(("LIST", items)) => items
            .iter()
            .map(|i| match i.as_app() {
                Some((name, [])) => lookup(name),
                _ => Err("non-atomic reused search input".to_owned()),
            })
            .collect(),
        Some((name, [])) => Ok(vec![lookup(name)?]),
        _ => Err("non-atomic reused search input".to_owned()),
    }
}

/// Generate one case for `rule` from `seed`, or explain why the LHS
/// shape is outside the generator's vocabulary.
pub fn generate_case(rule: &Rule, seed: u64) -> GenOutcome {
    let mut gen = Gen {
        rng: Rng::new(seed),
        tables: Vec::new(),
        binds: BTreeMap::new(),
        seq_binds: BTreeMap::new(),
        const_vars: constant_vars(rule),
        fix_count: 0,
    };
    let subject = match &rule.lhs {
        Term::App(head, _) if rel_sig(head.as_str()).is_some() => {
            match gen.inst_rel(&rule.lhs, None) {
                Ok((subject, _)) => subject,
                Err(reason) => return GenOutcome::Unsupported(reason),
            }
        }
        Term::App(head, args) if is_pred_head(head.as_str(), args.len()) => {
            // A pure qualification rule: embed the instantiated predicate
            // in a FILTER over one fresh table so it executes.
            let (rel, arity) = gen.fresh_table(None);
            match gen.inst_pred(&rule.lhs, &[arity]) {
                Ok(pred) => Term::app("FILTER", vec![rel, pred]),
                Err(reason) => return GenOutcome::Unsupported(reason),
            }
        }
        Term::App(head, args) if is_scalar_head(head.as_str(), args.len()) => {
            // A scalar-rooted rule (the arithmetic folds): embed the
            // instantiated scalar as the projection of one fresh table.
            // The rewriter matches at every subterm position, so the
            // rule fires inside the projection list.
            let (rel, arity) = gen.fresh_table(None);
            match gen.inst_scalar(&rule.lhs, &[arity]) {
                Ok(scalar) => Term::app("PROJECTION", vec![rel, Term::list(vec![scalar])]),
                Err(reason) => return GenOutcome::Unsupported(reason),
            }
        }
        other => {
            return GenOutcome::Unsupported(format!(
                "LHS root {other} is neither a relational operator nor a qualification"
            ))
        }
    };
    let mut rows = Vec::with_capacity(gen.tables.len());
    for spec in &gen.tables {
        let n = gen.rng.below(MAX_ROWS);
        let mut table_rows = Vec::with_capacity(n as usize);
        for _ in 0..n {
            table_rows.push(
                (0..spec.arity)
                    .map(|_| INT_POOL[gen.rng.below(INT_POOL.len() as u64) as usize])
                    .collect(),
            );
        }
        rows.push(table_rows);
    }
    GenOutcome::Case(Box::new(FuzzCase {
        seed,
        tables: gen.tables,
        rows,
        subject,
    }))
}

/// Strictly smaller variants of a failing case, in preference order. The
/// harness re-checks each candidate (rule still applies, results still
/// differ) and keeps the first that does, looping to a fixpoint.
pub fn shrink_candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    // Fewer rows first: data shrinks are the cheapest to re-check and
    // give the most readable counterexamples.
    for (ti, rows) in case.rows.iter().enumerate() {
        for ri in 0..rows.len() {
            let mut c = case.clone();
            c.rows[ti].remove(ri);
            out.push(c);
        }
    }
    // Structural shrinks on the subject: hoist a boolean child over its
    // connective, collapse a comparison to a literal, zero a constant.
    for pos in case.subject.positions() {
        if pos.is_empty() {
            continue;
        }
        let Some(sub) = case.subject.at(&pos) else {
            continue;
        };
        if let Some((head, args)) = sub.as_app() {
            match (head, args.len()) {
                ("AND" | "OR", 2) => {
                    for child in args {
                        out.push(replaced(case, &pos, child.clone()));
                    }
                }
                ("NOT", 1) => out.push(replaced(case, &pos, args[0].clone())),
                (op, 2) if CMP_OPS.contains(&op) => {
                    out.push(replaced(case, &pos, Term::atom("TRUE")));
                    out.push(replaced(case, &pos, Term::atom("FALSE")));
                }
                _ => {}
            }
        }
        if let Some(Value::Int(n)) = sub.as_const() {
            if *n != 0 {
                out.push(replaced(case, &pos, Term::int(0)));
            }
        }
    }
    out
}

fn replaced(case: &FuzzCase, pos: &[usize], with: Term) -> FuzzCase {
    let mut c = case.clone();
    c.subject = case.subject.replace_at(pos, with);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_source;
    use crate::SourceItem;

    fn rule(src: &str) -> Rule {
        match parse_source(src).unwrap().remove(0) {
            SourceItem::Rule(r) => r,
            other => panic!("expected a rule, got {other:?}"),
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let r = rule("Merge : FILTER(FILTER(r, p), q) / --> FILTER(r, AND(p, q)) / ;");
        let (GenOutcome::Case(a), GenOutcome::Case(b)) =
            (generate_case(&r, 42), generate_case(&r, 42))
        else {
            panic!("expected cases");
        };
        assert_eq!(a.subject, b.subject);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn filter_pattern_instantiates_to_a_matching_subject() {
        let r = rule("Merge : FILTER(FILTER(r, p), q) / --> FILTER(r, AND(p, q)) / ;");
        let GenOutcome::Case(case) = generate_case(&r, 7) else {
            panic!("expected a case");
        };
        // The subject is FILTER(FILTER(T1, ...), ...): the pattern
        // matches at the root by construction.
        let (head, args) = case.subject.as_app().unwrap();
        assert_eq!(head, "FILTER");
        assert!(args[0].is_app("FILTER"));
        assert_eq!(case.tables.len(), 1);
    }

    #[test]
    fn qualification_rules_embed_in_a_filter() {
        let r = rule("DM : NOT(AND(f, g)) / --> OR(NOT(f), NOT(g)) / ;");
        let GenOutcome::Case(case) = generate_case(&r, 3) else {
            panic!("expected a case");
        };
        let (head, args) = case.subject.as_app().unwrap();
        assert_eq!(head, "FILTER");
        assert!(args[1].is_app("NOT"));
    }

    #[test]
    fn nest_rules_instantiate_with_concrete_attribute_lists() {
        let r = rule("N : NEST(r, LIST(2), LIST(1), SET) / --> NEST(r, LIST(2), LIST(1), SET) / ;");
        let GenOutcome::Case(case) = generate_case(&r, 1) else {
            panic!("expected a case");
        };
        let (head, args) = case.subject.as_app().unwrap();
        assert_eq!(head, "NEST");
        // Input arity covers the largest referenced attribute.
        assert_eq!(case.tables[0].arity, 2);
        assert!(args[3].is_app("SET"));
    }

    #[test]
    fn nest_in_search_inputs_gets_a_group_attribute_focus_predicate() {
        let r = rule(
            "P : SEARCH(LIST(x*, NEST(z, a, b, k), y*), f, exp) / --> \
             SEARCH(LIST(x*, NEST(z, a, b, k), y*), f, exp) / ;",
        );
        let mut supported = 0;
        for seed in 0..16u64 {
            let GenOutcome::Case(case) = generate_case(&r, seed) else {
                continue;
            };
            supported += 1;
            // The predicate is the focus conjunct: an equality over a
            // group attribute of the NEST input, which is what SPLITNEST
            // needs to push the qualification below the nest.
            let (_, args) = case.subject.as_app().unwrap();
            let (op, cmp) = args[1].as_app().unwrap();
            assert_eq!(op, "=", "pred = {}", args[1]);
            assert!(cmp[0].as_attr().is_some(), "pred = {}", args[1]);
        }
        assert!(supported >= 8, "only {supported}/16 seeds produced cases");
    }

    #[test]
    fn fix_in_search_inputs_generates_a_reducible_recursion() {
        let r = rule(
            "F : SEARCH(LIST(x*, FIX(r, e), y*), f, a) / --> \
             SEARCH(LIST(x*, FIX(r, e), y*), f, a) / ;",
        );
        let GenOutcome::Case(case) = generate_case(&r, 5) else {
            panic!("expected a case");
        };
        // Somewhere in the subject there is FIX(F1, UNION(SET(seed,
        // recursive-search))) — the linear class ALEXANDER reduces.
        let fix = case
            .subject
            .positions()
            .into_iter()
            .filter_map(|p| case.subject.at(&p).cloned())
            .find(|t| t.is_app("FIX"))
            .expect("a FIX subterm");
        let (_, fix_args) = fix.as_app().unwrap();
        assert_eq!(fix_args[0], Term::atom("F1"));
        assert!(fix_args[1].is_app("UNION"));
    }

    #[test]
    fn union_collection_variables_expand_to_member_sets() {
        let r = rule("U : UNION(SET(x*, UNION(z))) / --> UNION(SET_UNION(x*, z)) / ;");
        let GenOutcome::Case(case) = generate_case(&r, 11) else {
            panic!("expected a case");
        };
        let (head, args) = case.subject.as_app().unwrap();
        assert_eq!(head, "UNION");
        // The inner UNION(z) instantiated with z bound to a concrete SET.
        let inner = args[0]
            .as_app()
            .unwrap()
            .1
            .iter()
            .find(|t| t.is_app("UNION"))
            .expect("nested UNION");
        assert!(inner.as_app().unwrap().1[0].is_app("SET"));
    }

    #[test]
    fn isa_constant_variables_instantiate_as_literals() {
        let r =
            rule("PF : x + y / ISA(x, constant), ISA(y, constant) --> a / EVALUATE(x + y, a) ;");
        for seed in 0..8u64 {
            let GenOutcome::Case(case) = generate_case(&r, seed) else {
                panic!("expected a case");
            };
            // PROJECTION(T1, LIST(c1 + c2)) with both operands literal,
            // so the EVALUATE side condition always succeeds.
            let (head, args) = case.subject.as_app().unwrap();
            assert_eq!(head, "PROJECTION");
            let sum = &args[1].as_app().unwrap().1[0];
            let (_, operands) = sum.as_app().unwrap();
            assert!(operands.iter().all(|t| t.as_const().is_some()), "{sum}");
        }
    }

    #[test]
    fn member_predicates_instantiate_over_literal_sets() {
        let r = rule("MF : MEMBER(x, s) / ISA(x, constant), ISA(s, constant) --> a / EVALUATE(MEMBER(x, s), a) ;");
        let GenOutcome::Case(case) = generate_case(&r, 2) else {
            panic!("expected a case");
        };
        let (_, args) = case.subject.as_app().unwrap();
        let (mh, margs) = args[1].as_app().unwrap();
        assert_eq!(mh, "MEMBER");
        assert!(margs[0].as_const().is_some());
        assert!(margs[1].is_app("SET"));
    }

    #[test]
    fn shrinks_never_grow() {
        let r = rule("Merge : FILTER(FILTER(r, p), q) / --> FILTER(r, AND(p, q)) / ;");
        let GenOutcome::Case(case) = generate_case(&r, 99) else {
            panic!("expected a case");
        };
        for cand in shrink_candidates(&case) {
            let fewer_rows = cand.rows.iter().map(Vec::len).sum::<usize>()
                < case.rows.iter().map(Vec::len).sum::<usize>();
            // Zeroing a constant keeps the size; every other candidate
            // shrinks the subject or the data.
            let no_larger_subject = cand.subject.size() <= case.subject.size();
            assert!(fewer_rows || no_larger_subject, "{cand}");
            assert!(cand.subject.size() <= case.subject.size(), "{cand}");
        }
    }
}
