//! Bounded 3-valued equivalence prover for pure boolean/comparison rules.
//!
//! The provable fragment is the qualification algebra: `AND`/`OR`/`NOT`,
//! the six comparison operators over scalar expressions built from
//! variables, numeric literals and `+`/`-`/`*`, plus the `TRUE`/`FALSE`
//! literals. For a rule whose LHS and RHS both live in this fragment the
//! prover enumerates **every** valuation of the rule's variables over a
//! small domain — boolean variables range over {TRUE, FALSE, UNKNOWN},
//! scalar variables over {NULL, -1, 0, 1, 2} — and compares both sides under
//! SQL's 3-valued Kleene semantics (a comparison with a NULL operand is
//! UNKNOWN).
//!
//! The verdicts:
//!
//! * every admitted valuation agrees → **proved** (within the bounded
//!   domain; see the false-negative discussion in DESIGN.md);
//! * some valuation with no NULL/UNKNOWN assignment disagrees →
//!   **refuted** ([`super::EDS030`], error) with the witness valuation;
//! * only NULL-involving valuations disagree → **conditional**
//!   ([`super::EDS032`], warning): the rule is sound exactly under a
//!   `NOT NULL` side condition — guard the offending variables with the
//!   built-in `NOTNULL(x)` constraint and the prover will certify it;
//! * anything outside the fragment (methods, collection variables,
//!   relational operators, unknown functors, too many variables) →
//!   **unsupported** ([`super::EDS031`], info): differential fuzzing is
//!   the only semantic coverage.
//!
//! Side conditions (rule constraints) are honored: a valuation is only
//! admitted when every constraint evaluates to true under the bindings
//! it induces, using the same [`eval_constraint`] the rewriter itself
//! runs at match time.

use std::collections::BTreeMap;

use eds_adt::Value;

use crate::analyze::{Diagnostic, CMP_OPS};
use crate::methods::{eval_constraint, MethodRegistry, TermEnv};
use crate::rule::Rule;
use crate::term::{Bindings, Term};
use crate::verify::{refuted, side_condition, unsupported};

/// Kleene three-valued truth value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Definitely false.
    False,
    /// NULL / unknown.
    Unknown,
    /// Definitely true.
    True,
}

impl std::fmt::Display for Tri {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tri::False => f.write_str("FALSE"),
            Tri::Unknown => f.write_str("UNKNOWN"),
            Tri::True => f.write_str("TRUE"),
        }
    }
}

impl Tri {
    fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }

    fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::True, _) | (_, Tri::True) => Tri::True,
            (Tri::False, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        }
    }

    fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }
}

/// Outcome of [`check_rule`] for one rule.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// LHS ≡ RHS at every admitted valuation of the bounded domain.
    Proved {
        /// Number of valuations that satisfied the side conditions.
        valuations: usize,
    },
    /// A NULL-free valuation distinguishes the sides (`EDS030`).
    Refuted(Diagnostic),
    /// Only NULL-involving valuations distinguish the sides, or the side
    /// conditions could not be honored in the bounded domain (`EDS032`).
    Conditional(Diagnostic),
    /// The rule is outside the provable fragment (`EDS031`).
    Unsupported(Diagnostic),
}

/// The position a variable occurs in decides its domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Bool,
    Scalar,
}

/// Scalar domain: NULL plus four small integers — enough to separate
/// `=`/`<>`/`<`/`<=`/`>`/`>=` and to exercise `+`/`-`/`*`. The negative
/// element matters: without it, sign-sensitive non-theorems like
/// `0 <= x --> TRUE` hold at every domain point and the rule-discovery
/// pipeline would emit them as proved.
pub(crate) const SCALAR_DOMAIN: [Option<f64>; 5] =
    [None, Some(-1.0), Some(0.0), Some(1.0), Some(2.0)];
pub(crate) const BOOL_DOMAIN: [Tri; 3] = [Tri::True, Tri::False, Tri::Unknown];

/// Valuation cap: 3^b · 4^s must stay below this for the enumeration to
/// run (8 variables of the worst mix stay well under it).
const MAX_VALUATIONS: usize = 1 << 16;

/// One assignment of domain values to the rule's variables.
#[derive(Debug, Default, Clone)]
pub(crate) struct Valuation {
    pub(crate) bools: BTreeMap<String, Tri>,
    pub(crate) scalars: BTreeMap<String, Option<f64>>,
}

impl Valuation {
    pub(crate) fn has_null(&self) -> bool {
        self.bools.values().any(|t| *t == Tri::Unknown)
            || self.scalars.values().any(Option::is_none)
    }

    fn bindings(&self) -> Bindings {
        let mut binds = Bindings::new();
        for (name, t) in &self.bools {
            let term = match t {
                Tri::True => Term::bool(true),
                Tri::False => Term::bool(false),
                Tri::Unknown => Term::Const(Value::Null),
            };
            binds.bind(name.as_str(), term);
        }
        for (name, v) in &self.scalars {
            let term = match v {
                // The domain only holds small integers; surface them as
                // INT literals so ISA(x, constant)-style conditions see
                // ordinary constants.
                Some(k) => Term::int(*k as i64),
                None => Term::Const(Value::Null),
            };
            binds.bind(name.as_str(), term);
        }
        binds
    }
}

impl std::fmt::Display for Valuation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (name, t) in &self.bools {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{name} = {t}")?;
            first = false;
        }
        for (name, v) in &self.scalars {
            if !first {
                f.write_str(", ")?;
            }
            match v {
                Some(k) => write!(f, "{name} = {k}")?,
                None => write!(f, "{name} = NULL")?,
            }
            first = false;
        }
        if first {
            f.write_str("(no variables)")?;
        }
        Ok(())
    }
}

/// Classify every variable of `t` (a boolean-position term) into
/// [`Kind`]s, rejecting anything outside the provable fragment.
pub(crate) fn classify(
    t: &Term,
    kind: Kind,
    kinds: &mut BTreeMap<String, Kind>,
) -> Result<(), String> {
    match t {
        Term::Var(v) => {
            let name = v.as_str().to_owned();
            if let Some(prev) = kinds.get(&name) {
                if *prev != kind {
                    return Err(format!(
                        "variable '{name}' is used in both boolean and scalar positions"
                    ));
                }
            } else {
                kinds.insert(name, kind);
            }
            Ok(())
        }
        Term::SeqVar(v) => Err(format!("collection variable '{v}*'")),
        Term::Const(v) => match (kind, v) {
            (Kind::Bool, Value::Bool(_) | Value::Null) => Ok(()),
            (Kind::Scalar, Value::Int(_) | Value::Real(_) | Value::Null) => Ok(()),
            _ => Err(format!("literal {t} outside the boolean/numeric fragment")),
        },
        Term::App(head, args) => {
            let (head, args) = (head.as_str(), args.as_slice());
            match kind {
                Kind::Bool => match (head, args.len()) {
                    ("AND" | "OR", 2) => {
                        classify(&args[0], Kind::Bool, kinds)?;
                        classify(&args[1], Kind::Bool, kinds)
                    }
                    ("NOT", 1) => classify(&args[0], Kind::Bool, kinds),
                    ("TRUE" | "FALSE", 0) => Ok(()),
                    (op, 2) if CMP_OPS.contains(&op) => {
                        classify(&args[0], Kind::Scalar, kinds)?;
                        classify(&args[1], Kind::Scalar, kinds)
                    }
                    _ => Err(format!("boolean operator {head}/{}", args.len())),
                },
                Kind::Scalar => match (head, args.len()) {
                    ("+" | "-" | "*", 2) => {
                        classify(&args[0], Kind::Scalar, kinds)?;
                        classify(&args[1], Kind::Scalar, kinds)
                    }
                    ("-", 1) => classify(&args[0], Kind::Scalar, kinds),
                    ("NULL", 0) => Ok(()),
                    _ => Err(format!("scalar operator {head}/{}", args.len())),
                },
            }
        }
    }
}

/// 3-valued evaluation of a boolean-fragment term under a valuation.
/// `classify` has vetted the shape, so unreachable arms are defensive.
pub(crate) fn eval_bool(t: &Term, val: &Valuation) -> Option<Tri> {
    match t {
        Term::Var(v) => val.bools.get(v.as_str()).copied(),
        Term::Const(Value::Bool(b)) => Some(if *b { Tri::True } else { Tri::False }),
        Term::Const(Value::Null) => Some(Tri::Unknown),
        Term::Const(_) | Term::SeqVar(_) => None,
        Term::App(head, args) => {
            let (head, args) = (head.as_str(), args.as_slice());
            match (head, args.len()) {
                ("TRUE", 0) => Some(Tri::True),
                ("FALSE", 0) => Some(Tri::False),
                ("AND", 2) => Some(eval_bool(&args[0], val)?.and(eval_bool(&args[1], val)?)),
                ("OR", 2) => Some(eval_bool(&args[0], val)?.or(eval_bool(&args[1], val)?)),
                ("NOT", 1) => Some(eval_bool(&args[0], val)?.not()),
                (op, 2) if CMP_OPS.contains(&op) => {
                    let (Some(a), Some(b)) =
                        (eval_scalar(&args[0], val)?, eval_scalar(&args[1], val)?)
                    else {
                        return Some(Tri::Unknown);
                    };
                    let ord = a.total_cmp(&b);
                    let holds = match op {
                        "=" => ord.is_eq(),
                        "<>" => ord.is_ne(),
                        "<" => ord.is_lt(),
                        "<=" => ord.is_le(),
                        ">" => ord.is_gt(),
                        _ => ord.is_ge(),
                    };
                    Some(if holds { Tri::True } else { Tri::False })
                }
                _ => None,
            }
        }
    }
}

/// Scalar evaluation; the outer `Option` is "outside the fragment", the
/// inner is NULL.
fn eval_scalar(t: &Term, val: &Valuation) -> Option<Option<f64>> {
    match t {
        Term::Var(v) => val.scalars.get(v.as_str()).copied(),
        Term::Const(Value::Int(n)) => Some(Some(*n as f64)),
        Term::Const(Value::Real(r)) => Some(Some(r.0)),
        Term::Const(Value::Null) => Some(None),
        Term::App(head, args) => {
            let (head, args) = (head.as_str(), args.as_slice());
            match (head, args.len()) {
                ("NULL", 0) => Some(None),
                ("-", 1) => {
                    let a = eval_scalar(&args[0], val)?;
                    Some(a.map(|a| -a))
                }
                ("+" | "-" | "*", 2) => {
                    let (a, b) = (eval_scalar(&args[0], val)?, eval_scalar(&args[1], val)?);
                    let (Some(a), Some(b)) = (a, b) else {
                        return Some(None);
                    };
                    Some(Some(match head {
                        "+" => a + b,
                        "-" => a - b,
                        _ => a * b,
                    }))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// The `idx`-th valuation in the mixed-radix enumeration over the
/// classified variables.
pub(crate) fn nth_valuation(kinds: &BTreeMap<String, Kind>, mut idx: usize) -> Valuation {
    let mut val = Valuation::default();
    for (name, kind) in kinds {
        match kind {
            Kind::Bool => {
                val.bools
                    .insert(name.clone(), BOOL_DOMAIN[idx % BOOL_DOMAIN.len()]);
                idx /= BOOL_DOMAIN.len();
            }
            Kind::Scalar => {
                val.scalars
                    .insert(name.clone(), SCALAR_DOMAIN[idx % SCALAR_DOMAIN.len()]);
                idx /= SCALAR_DOMAIN.len();
            }
        }
    }
    val
}

/// Prove, refute, or decline one rule. See the module docs for the
/// verdict policy; `methods` and `env` are used to evaluate the rule's
/// side conditions exactly as the rewriter would at match time.
pub fn check_rule(rule: &Rule, methods: &MethodRegistry, env: &dyn TermEnv) -> Outcome {
    if !rule.methods.is_empty() {
        return Outcome::Unsupported(unsupported(
            &rule.name,
            "the rule invokes methods, whose semantics the prover cannot model",
        ));
    }
    let mut kinds = BTreeMap::new();
    if let Err(reason) = classify(&rule.lhs, Kind::Bool, &mut kinds) {
        return Outcome::Unsupported(unsupported(&rule.name, &format!("LHS uses {reason}")));
    }
    let lhs_vars: Vec<String> = kinds.keys().cloned().collect();
    if let Err(reason) = classify(&rule.rhs, Kind::Bool, &mut kinds) {
        return Outcome::Unsupported(unsupported(&rule.name, &format!("RHS uses {reason}")));
    }
    if kinds.len() != lhs_vars.len() {
        // A fresh RHS variable has no valuation source; EDS001 already
        // flags it as an error, so just decline here.
        return Outcome::Unsupported(unsupported(
            &rule.name,
            "the RHS introduces variables the LHS does not bind",
        ));
    }
    for c in &rule.constraints {
        if c.variables().iter().any(|v| !kinds.contains_key(*v)) {
            return Outcome::Conditional(side_condition(
                &rule.name,
                &format!(
                    "side condition {c} references variables outside the pattern; \
                     the prover cannot discharge it"
                ),
            ));
        }
    }
    let total: usize = kinds
        .values()
        .map(|k| match k {
            Kind::Bool => BOOL_DOMAIN.len(),
            Kind::Scalar => SCALAR_DOMAIN.len(),
        })
        .product();
    if total > MAX_VALUATIONS {
        return Outcome::Unsupported(unsupported(
            &rule.name,
            "too many variables for exhaustive valuation",
        ));
    }

    let mut admitted = 0usize;
    let mut null_witness: Option<(Valuation, Tri, Tri)> = None;
    for idx in 0..total {
        let val = nth_valuation(&kinds, idx);
        // Side conditions, evaluated with the rewriter's own machinery.
        let mut binds = val.bindings();
        let mut excluded = false;
        for c in &rule.constraints {
            match eval_constraint(c, &mut binds, methods, env) {
                Ok(true) => {}
                Ok(false) => {
                    excluded = true;
                    break;
                }
                Err(e) => {
                    return Outcome::Conditional(side_condition(
                        &rule.name,
                        &format!("side condition {c} is not evaluable in the bounded prover: {e}"),
                    ));
                }
            }
        }
        if excluded {
            continue;
        }
        admitted += 1;
        let (Some(l), Some(r)) = (eval_bool(&rule.lhs, &val), eval_bool(&rule.rhs, &val)) else {
            return Outcome::Unsupported(unsupported(
                &rule.name,
                "evaluation left the boolean fragment",
            ));
        };
        if l != r {
            if val.has_null() {
                null_witness.get_or_insert((val, l, r));
            } else {
                return Outcome::Refuted(refuted(
                    &rule.name,
                    &format!(
                        "bounded equivalence prover: at {val} the left side is {l} \
                         but the right side is {r}"
                    ),
                ));
            }
        }
    }
    if admitted == 0 {
        return Outcome::Conditional(side_condition(
            &rule.name,
            "the side conditions exclude every valuation in the bounded domain; nothing proved",
        ));
    }
    if let Some((val, l, r)) = null_witness {
        return Outcome::Conditional(side_condition(
            &rule.name,
            &format!(
                "equivalence holds for all non-NULL valuations but at {val} the left side \
                 is {l} and the right side is {r}; soundness needs a NOT-NULL side \
                 condition — guard the offending variables with NOTNULL(...)"
            ),
        ));
    }
    Outcome::Proved {
        valuations: admitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_source;
    use crate::methods::BasicEnv;
    use crate::SourceItem;

    fn rule(src: &str) -> Rule {
        match parse_source(src).unwrap().remove(0) {
            SourceItem::Rule(r) => r,
            other => panic!("expected a rule, got {other:?}"),
        }
    }

    fn check(src: &str) -> Outcome {
        check_rule(
            &rule(src),
            &MethodRegistry::with_builtins(),
            &BasicEnv::new(),
        )
    }

    #[test]
    fn demorgan_is_proved() {
        let out = check("DM : NOT(AND(f, g)) / --> OR(NOT(f), NOT(g)) / ;");
        assert!(matches!(out, Outcome::Proved { valuations: 9 }), "{out:?}");
    }

    #[test]
    fn dropped_negation_is_refuted_with_a_null_free_witness() {
        let out = check("Bad : NOT(AND(f, g)) / --> OR(NOT(f), g) / ;");
        let Outcome::Refuted(d) = out else {
            panic!("expected refutation, got {out:?}");
        };
        assert_eq!(d.code, "EDS030");
        assert!(d.message.contains("f = TRUE"), "{}", d.message);
        assert!(!d.message.contains("UNKNOWN"), "{}", d.message);
    }

    #[test]
    fn comparison_folding_is_proved_over_numbers() {
        let out = check("Diff : x - y = 0 / --> x = y / ;");
        assert!(matches!(out, Outcome::Proved { valuations: 25 }), "{out:?}");
    }

    #[test]
    fn contradiction_collapse_needs_a_null_side_condition() {
        let out = check("Contra : AND(x > y, x <= y) / --> FALSE / ;");
        let Outcome::Conditional(d) = out else {
            panic!("expected conditional, got {out:?}");
        };
        assert_eq!(d.code, "EDS032");
        assert!(d.message.contains("NULL"), "{}", d.message);
    }

    #[test]
    fn notnull_guards_discharge_the_null_counterexample() {
        // The side condition EDS032 asks for, expressed with the
        // built-in NOTNULL guard: NULL valuations are excluded and the
        // remaining 4 x 4 scalar grid proves the collapse.
        let out = check("Contra : AND(x > y, x <= y) / NOTNULL(x), NOTNULL(y) --> FALSE / ;");
        assert!(matches!(out, Outcome::Proved { valuations: 16 }), "{out:?}");
    }

    #[test]
    fn relational_rules_are_unsupported() {
        let out = check("Merge : FILTER(FILTER(r, p), q) / --> FILTER(r, AND(p, q)) / ;");
        let Outcome::Unsupported(d) = out else {
            panic!("expected unsupported, got {out:?}");
        };
        assert_eq!(d.code, "EDS031");
    }

    #[test]
    fn side_conditions_restrict_the_domain() {
        // x = 0 is only admitted where the condition binds x to 0; under
        // it the rewrite to TRUE is sound except for NULL.
        let out = check("Cond : x >= 0 / x = 0 --> x <= 0 / ;");
        assert!(matches!(out, Outcome::Proved { .. }), "{out:?}");
    }
}
