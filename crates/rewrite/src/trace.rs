//! Rewrite traces: which rule fired where, for EXPLAIN-style output.

use std::fmt;

/// One rule application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Block the rule ran in.
    pub block: String,
    /// Rule name.
    pub rule: String,
    /// Position (path) of the rewritten subterm.
    pub path: Vec<usize>,
    /// Term size before the application.
    pub before_size: usize,
    /// Term size after the application.
    pub after_size: usize,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at {:?}: {} -> {} nodes",
            self.block, self.rule, self.path, self.before_size, self.after_size
        )
    }
}

/// Ordered list of rule applications.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Append one event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Concatenate another trace.
    pub fn extend(&mut self, other: Trace) {
        self.events.extend(other.events);
    }

    /// All events in application order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Count applications of a given rule.
    pub fn count_rule(&self, rule: &str) -> usize {
        self.events.iter().filter(|e| e.rule == rule).count()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}
