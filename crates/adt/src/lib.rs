//! # eds-adt — the generic ADT value system of the EDS rewriter
//!
//! Substrate crate reproducing Section 2.1 of Finance & Gardarin,
//! *"A Rule-Based Query Rewriter in an Extensible DBMS"* (ICDE 1991):
//!
//! * [`value::Value`] — the runtime data model: scalars, tuples and the
//!   generic collection ADTs (set, bag, list, array) combinable at multiple
//!   levels, plus object references;
//! * [`object::ObjectStore`] — identity-bearing objects with `VALUE`
//!   dereference and referential sharing;
//! * [`types::TypeRegistry`] — user `TYPE` declarations, enumeration
//!   domains, object types, the declared subtype lattice and the `ISA`
//!   predicate over the Figure-1 generic-ADT hierarchy;
//! * [`collection`] — the built-in collection function library of Figure 1;
//! * [`registry::FunctionRegistry`] — the extensible name → native-function
//!   map through which both queries and rewrite-rule constraints call ADT
//!   methods.

//! ```
//! use eds_adt::{Arity, EvalContext, FunctionRegistry, ObjectStore, TypeRegistry, Value};
//!
//! let mut functions = FunctionRegistry::with_builtins();
//! functions.register("DOUBLE", Arity::Exact(1), |args, _| {
//!     Ok(Value::Int(args[0].as_int()? * 2))
//! });
//! let (objects, types) = (ObjectStore::new(), TypeRegistry::new());
//! let ctx = EvalContext { objects: &objects, types: &types };
//! let tags = Value::set(vec!["a".into(), "b".into()]);
//! assert_eq!(
//!     functions.call("MEMBER", &["a".into(), tags], &ctx).unwrap(),
//!     Value::Bool(true)
//! );
//! assert_eq!(functions.call("double", &[21.into()], &ctx).unwrap(), Value::Int(42));
//! ```

#![warn(missing_docs)]

pub mod collection;
pub mod error;
pub mod object;
pub mod registry;
pub mod types;
pub mod value;

pub use error::{AdtError, AdtResult};
pub use object::{ObjectStore, Oid};
pub use registry::{Arity, EvalContext, FunctionDef, FunctionRegistry, NativeFn};
pub use types::{Field, MethodSig, Type, TypeBody, TypeDef, TypeRegistry};
pub use value::{CollKind, OrderedF64, Value};
