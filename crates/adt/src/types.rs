//! Static types and the user-extensible type registry.
//!
//! ESQL generalizes relational domains with a library of *generic ADTs*
//! (tuple, set, bag, list, array) organized along an inheritance hierarchy
//! whose root is `collection` (Figure 1). Users extend the fixed set of
//! system types with `TYPE` declarations, optionally as objects and
//! optionally as subtypes of existing types. The registry resolves names,
//! answers the `ISA` subtype predicate used by rule constraints, and tracks
//! methods declared on types.

use std::collections::HashMap;

use crate::error::{AdtError, AdtResult};
use crate::value::{CollKind, Value};

/// A named attribute of a tuple type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name (applied as a function performs projection).
    pub name: String,
    /// Attribute type.
    pub ty: Type,
}

impl Field {
    /// Build a field.
    pub fn new(name: impl Into<String>, ty: Type) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// A static type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// Boolean.
    Bool,
    /// Integer (`INT`).
    Int,
    /// Floating point (`REAL`).
    Real,
    /// Exact numeric; modeled as 64-bit integer/real hybrid (`NUMERIC`).
    Numeric,
    /// Character string (`CHAR`).
    Char,
    /// Tuple with named attributes.
    Tuple(Vec<Field>),
    /// Generic collection applied to an element type.
    Coll(CollKind, Box<Type>),
    /// Abstract `collection` supertype with an element type; only appears
    /// in `ISA` checks and rule constraints, never as a concrete value type.
    AnyColl(Box<Type>),
    /// A reference to a user-declared named type (resolved via the
    /// registry). Object types always appear this way.
    Named(String),
    /// Unknown / polymorphic (used by the rewriter before typing rules run).
    Any,
}

impl Type {
    /// Collection helper.
    pub fn set_of(t: Type) -> Type {
        Type::Coll(CollKind::Set, Box::new(t))
    }
    /// Collection helper.
    pub fn bag_of(t: Type) -> Type {
        Type::Coll(CollKind::Bag, Box::new(t))
    }
    /// Collection helper.
    pub fn list_of(t: Type) -> Type {
        Type::Coll(CollKind::List, Box::new(t))
    }
    /// Collection helper.
    pub fn array_of(t: Type) -> Type {
        Type::Coll(CollKind::Array, Box::new(t))
    }

    /// Is this a numeric type?
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Real | Type::Numeric)
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Bool => f.write_str("BOOL"),
            Type::Int => f.write_str("INT"),
            Type::Real => f.write_str("REAL"),
            Type::Numeric => f.write_str("NUMERIC"),
            Type::Char => f.write_str("CHAR"),
            Type::Tuple(fields) => {
                f.write_str("TUPLE (")?;
                for (i, fld) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{} : {}", fld.name, fld.ty)?;
                }
                f.write_str(")")
            }
            Type::Coll(k, t) => write!(f, "{} OF {}", k.name(), t),
            Type::AnyColl(t) => write!(f, "COLLECTION OF {t}"),
            Type::Named(n) => f.write_str(n),
            Type::Any => f.write_str("ANY"),
        }
    }
}

/// Body of a user `TYPE` declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeBody {
    /// `ENUMERATION OF ('a', 'b', ...)`.
    Enumeration(Vec<String>),
    /// Alias for / structure of another type (covers `TUPLE(...)`,
    /// `LIST OF CHAR`, etc.).
    Structure(Type),
}

/// A method declared with a `FUNCTION` clause on a type definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSig {
    /// Method name.
    pub name: String,
    /// Parameter types (the receiver is the first parameter, `This`).
    pub params: Vec<Type>,
    /// Result type; `None` for procedures.
    pub result: Option<Type>,
}

/// A registered user type.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDef {
    /// Type name.
    pub name: String,
    /// Definition body.
    pub body: TypeBody,
    /// Whether instances carry object identity (`TYPE ... OBJECT ...`).
    pub is_object: bool,
    /// Declared supertype (`SUBTYPE OF`).
    pub supertype: Option<String>,
    /// Declared methods.
    pub methods: Vec<MethodSig>,
}

/// The registry of user-declared named types.
///
/// System generic ADTs are structural (`Type::Coll`), so they do not live
/// here; the registry handles user names, enumeration domains, the object
/// flag and the declared subtype lattice.
#[derive(Debug, Default, Clone)]
pub struct TypeRegistry {
    defs: HashMap<String, TypeDef>,
}

impl TypeRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a type definition. Fails on duplicates or on an unknown
    /// supertype. Names are case-insensitive (SQL identifier semantics);
    /// the declared spelling is preserved for display.
    pub fn define(&mut self, def: TypeDef) -> AdtResult<()> {
        let key = def.name.to_ascii_uppercase();
        if self.defs.contains_key(&key) {
            return Err(AdtError::DuplicateType(def.name));
        }
        if let Some(sup) = &def.supertype {
            if !self.contains(sup) {
                return Err(AdtError::UnknownType(sup.clone()));
            }
        }
        self.defs.insert(key, def);
        Ok(())
    }

    /// Look up a definition (case-insensitive).
    pub fn get(&self, name: &str) -> AdtResult<&TypeDef> {
        self.defs
            .get(&name.to_ascii_uppercase())
            .ok_or_else(|| AdtError::UnknownType(name.to_owned()))
    }

    /// Whether `name` is registered (case-insensitive).
    pub fn contains(&self, name: &str) -> bool {
        self.defs.contains_key(&name.to_ascii_uppercase())
    }

    /// The enumeration literals of an enumeration type.
    pub fn enum_values(&self, name: &str) -> AdtResult<&[String]> {
        match &self.get(name)?.body {
            TypeBody::Enumeration(vals) => Ok(vals),
            _ => Err(AdtError::TypeMismatch {
                function: "enum_values".into(),
                expected: "enumeration type".into(),
                found: name.to_owned(),
            }),
        }
    }

    /// Structural expansion of a named type, one level (`Named` chains are
    /// followed).
    pub fn resolve(&self, ty: &Type) -> AdtResult<Type> {
        match ty {
            Type::Named(n) => {
                let def = self.get(n)?;
                match &def.body {
                    TypeBody::Enumeration(_) => Ok(Type::Char),
                    TypeBody::Structure(inner) => self.resolve(inner),
                }
            }
            other => Ok(other.clone()),
        }
    }

    /// The tuple fields of a named (possibly object) type, following the
    /// supertype chain so inherited attributes are visible.
    pub fn fields_of(&self, name: &str) -> AdtResult<Vec<Field>> {
        let def = self.get(name)?;
        let mut fields = match &def.supertype {
            Some(sup) => self.fields_of(sup)?,
            None => Vec::new(),
        };
        if let TypeBody::Structure(Type::Tuple(own)) = &def.body {
            fields.extend(own.iter().cloned());
        }
        Ok(fields)
    }

    /// The `ISA` subtype predicate on *named* types (case-insensitive):
    /// true when `sub` equals `sup` or is declared (transitively) as its
    /// subtype.
    pub fn isa_named(&self, sub: &str, sup: &str) -> bool {
        if sub.eq_ignore_ascii_case(sup) {
            return true;
        }
        let mut cur = sub.to_ascii_uppercase();
        while let Some(def) = self.defs.get(&cur) {
            match &def.supertype {
                Some(s) if s.eq_ignore_ascii_case(sup) => return true,
                Some(s) => cur = s.to_ascii_uppercase(),
                None => break,
            }
        }
        false
    }

    /// The full `ISA` predicate over structural types, covering the
    /// generic-ADT hierarchy of Figure 1: every `SET/BAG/LIST/ARRAY OF t`
    /// ISA `COLLECTION OF t`, element types are checked covariantly, and
    /// named types use the declared lattice.
    pub fn isa(&self, sub: &Type, sup: &Type) -> bool {
        match (sub, sup) {
            (_, Type::Any) => true,
            (Type::Named(a), Type::Named(b)) => self.isa_named(a, b),
            (Type::Named(a), _) => {
                // An enumeration ISA CHAR; a structural alias ISA its body.
                match self.resolve(&Type::Named(a.clone())) {
                    Ok(resolved) if &resolved != sub => self.isa(&resolved, sup),
                    _ => false,
                }
            }
            (Type::Coll(k1, e1), Type::Coll(k2, e2)) => k1 == k2 && self.isa(e1, e2),
            (Type::Coll(_, e1), Type::AnyColl(e2)) => self.isa(e1, e2),
            (Type::AnyColl(e1), Type::AnyColl(e2)) => self.isa(e1, e2),
            (Type::Int, Type::Numeric) | (Type::Real, Type::Numeric) => true,
            (Type::Tuple(f1), Type::Tuple(f2)) => {
                // Width-and-depth subtyping on tuples: every attribute of the
                // supertype must be present with a subtype-compatible type.
                f2.iter().all(|sf| {
                    f1.iter()
                        .any(|af| af.name == sf.name && self.isa(&af.ty, &sf.ty))
                })
            }
            (a, b) => a == b,
        }
    }

    /// Runtime `ISA`: does the dynamic shape of `v` conform to `ty`?
    /// Object references check the object's dynamic type name via `type_of`.
    pub fn value_isa(
        &self,
        v: &Value,
        ty: &Type,
        object_type_of: &dyn Fn(u64) -> Option<String>,
    ) -> bool {
        match (v, ty) {
            (_, Type::Any) => true,
            (Value::Null, _) => true,
            (Value::Bool(_), Type::Bool) => true,
            (Value::Int(_), Type::Int | Type::Numeric) => true,
            (Value::Real(_), Type::Real | Type::Numeric) => true,
            (Value::Str(_), Type::Char) => true,
            (Value::Enum(n, _), Type::Named(tn)) => self.isa_named(n, tn),
            (Value::Enum(..), Type::Char) => true,
            (Value::Tuple(vals), Type::Tuple(fields)) => {
                vals.len() == fields.len()
                    && vals
                        .iter()
                        .zip(fields)
                        .all(|(v, f)| self.value_isa(v, &f.ty, object_type_of))
            }
            (Value::Coll(k, elems), Type::Coll(tk, et)) => {
                k == tk && elems.iter().all(|e| self.value_isa(e, et, object_type_of))
            }
            (Value::Coll(_, elems), Type::AnyColl(et)) => {
                elems.iter().all(|e| self.value_isa(e, et, object_type_of))
            }
            (Value::Object(oid), Type::Named(tn)) => match object_type_of(oid.0) {
                Some(dyn_ty) => self.isa_named(&dyn_ty, tn),
                None => false,
            },
            (v, Type::Named(tn)) => match self.get(tn) {
                Ok(def) => match &def.body {
                    TypeBody::Enumeration(vals) => {
                        matches!(v, Value::Str(s) if vals.contains(s))
                            || matches!(v, Value::Enum(n, _) if n == tn)
                    }
                    TypeBody::Structure(inner) => self.value_isa(v, inner, object_type_of),
                },
                Err(_) => false,
            },
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with_paper_types() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        reg.define(TypeDef {
            name: "Category".into(),
            body: TypeBody::Enumeration(vec![
                "Comedy".into(),
                "Adventure".into(),
                "Science Fiction".into(),
                "Western".into(),
            ]),
            is_object: false,
            supertype: None,
            methods: vec![],
        })
        .unwrap();
        reg.define(TypeDef {
            name: "Person".into(),
            body: TypeBody::Structure(Type::Tuple(vec![
                Field::new("Name", Type::Char),
                Field::new("Firstname", Type::set_of(Type::Char)),
            ])),
            is_object: true,
            supertype: None,
            methods: vec![],
        })
        .unwrap();
        reg.define(TypeDef {
            name: "Actor".into(),
            body: TypeBody::Structure(Type::Tuple(vec![Field::new("Salary", Type::Numeric)])),
            is_object: true,
            supertype: Some("Person".into()),
            methods: vec![MethodSig {
                name: "IncreaseSalary".into(),
                params: vec![Type::Named("Actor".into()), Type::Numeric],
                result: None,
            }],
        })
        .unwrap();
        reg
    }

    #[test]
    fn declared_subtype_chain() {
        let reg = registry_with_paper_types();
        assert!(reg.isa_named("Actor", "Person"));
        assert!(reg.isa_named("Actor", "Actor"));
        assert!(!reg.isa_named("Person", "Actor"));
    }

    #[test]
    fn collections_isa_collection() {
        let reg = TypeRegistry::new();
        let set_int = Type::set_of(Type::Int);
        let coll_int = Type::AnyColl(Box::new(Type::Int));
        assert!(reg.isa(&set_int, &coll_int));
        assert!(reg.isa(&Type::list_of(Type::Int), &coll_int));
        assert!(!reg.isa(&set_int, &Type::bag_of(Type::Int)));
    }

    #[test]
    fn inherited_fields_visible() {
        let reg = registry_with_paper_types();
        let fields = reg.fields_of("Actor").unwrap();
        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["Name", "Firstname", "Salary"]);
    }

    #[test]
    fn enum_values_and_membership() {
        let reg = registry_with_paper_types();
        assert!(reg
            .enum_values("Category")
            .unwrap()
            .contains(&"Western".to_owned()));
        assert!(reg.value_isa(
            &Value::str("Comedy"),
            &Type::Named("Category".into()),
            &|_| None
        ));
        assert!(!reg.value_isa(
            &Value::str("Cartoon"),
            &Type::Named("Category".into()),
            &|_| None
        ));
    }

    #[test]
    fn duplicate_definition_rejected() {
        let mut reg = registry_with_paper_types();
        let err = reg
            .define(TypeDef {
                name: "Category".into(),
                body: TypeBody::Enumeration(vec![]),
                is_object: false,
                supertype: None,
                methods: vec![],
            })
            .unwrap_err();
        assert_eq!(err, AdtError::DuplicateType("Category".into()));
    }

    #[test]
    fn unknown_supertype_rejected() {
        let mut reg = TypeRegistry::new();
        let err = reg
            .define(TypeDef {
                name: "X".into(),
                body: TypeBody::Structure(Type::Int),
                is_object: false,
                supertype: Some("Missing".into()),
                methods: vec![],
            })
            .unwrap_err();
        assert_eq!(err, AdtError::UnknownType("Missing".into()));
    }

    #[test]
    fn numeric_widening_isa() {
        let reg = TypeRegistry::new();
        assert!(reg.isa(&Type::Int, &Type::Numeric));
        assert!(reg.isa(&Type::Real, &Type::Numeric));
        assert!(!reg.isa(&Type::Numeric, &Type::Int));
    }

    #[test]
    fn value_isa_object_uses_dynamic_type() {
        let reg = registry_with_paper_types();
        let v = Value::Object(crate::object::Oid(7));
        let actor_ty = Type::Named("Person".into());
        assert!(reg.value_isa(&v, &actor_ty, &|oid| {
            assert_eq!(oid, 7);
            Some("Actor".into())
        }));
        assert!(!reg.value_isa(&v, &Type::Named("Actor".into()), &|_| Some("Person".into())));
    }
}
