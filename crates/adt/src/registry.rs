//! The extensible ADT function registry.
//!
//! The paper's optimizer is extensible because the database implementor can
//! add methods to the DBMS ADT library and refer to them from rewrite rules
//! and queries. The registry maps (case-insensitive) function names to
//! native Rust implementations, replacing the paper's C++ method bodies.
//! All built-in collection functions of Figure 1 plus `VALUE` (object
//! dereference) and arithmetic are pre-registered.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::collection as coll;
use crate::error::{AdtError, AdtResult};
use crate::object::ObjectStore;
use crate::types::TypeRegistry;
use crate::value::{CollKind, Value};

/// Context handed to native functions: read access to the object store and
/// the type registry (for `VALUE`, `ISA`-flavoured functions, enum checks).
pub struct EvalContext<'a> {
    /// Object store for OID dereference.
    pub objects: &'a ObjectStore,
    /// Type registry for subtype checks.
    pub types: &'a TypeRegistry,
}

/// Signature arity of a registered function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// Exactly `n` arguments.
    Exact(usize),
    /// At least `n` arguments.
    AtLeast(usize),
}

impl Arity {
    /// Check an argument count against the declared arity, reporting the
    /// standard arity error on mismatch.
    pub fn check(&self, name: &str, n: usize) -> AdtResult<()> {
        let ok = match self {
            Arity::Exact(k) => n == *k,
            Arity::AtLeast(k) => n >= *k,
        };
        if ok {
            Ok(())
        } else {
            Err(AdtError::Arity {
                function: name.to_owned(),
                expected: match self {
                    Arity::Exact(k) | Arity::AtLeast(k) => *k,
                },
                found: n,
            })
        }
    }
}

/// A native function implementation.
pub type NativeFn = Arc<dyn Fn(&[Value], &EvalContext<'_>) -> AdtResult<Value> + Send + Sync>;

/// A registered function with its declared arity.
#[derive(Clone)]
pub struct FunctionDef {
    /// Canonical (upper-case) name.
    pub name: String,
    /// Declared arity, checked before each call.
    pub arity: Arity,
    /// Implementation.
    pub func: NativeFn,
}

impl fmt::Debug for FunctionDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionDef")
            .field("name", &self.name)
            .field("arity", &self.arity)
            .finish()
    }
}

/// Case-insensitive name → function map, pre-populated with the built-in
/// library and open to user registration.
#[derive(Debug, Clone)]
pub struct FunctionRegistry {
    funcs: HashMap<String, FunctionDef>,
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl FunctionRegistry {
    /// A registry containing only user-registered functions.
    pub fn empty() -> Self {
        FunctionRegistry {
            funcs: HashMap::new(),
        }
    }

    /// A registry pre-populated with every Figure-1 collection function,
    /// `VALUE`, quantifiers and arithmetic.
    pub fn with_builtins() -> Self {
        let mut reg = Self::empty();
        reg.install_builtins();
        reg
    }

    /// Register (or replace) a function under `name`.
    pub fn register(
        &mut self,
        name: &str,
        arity: Arity,
        func: impl Fn(&[Value], &EvalContext<'_>) -> AdtResult<Value> + Send + Sync + 'static,
    ) {
        let canonical = name.to_ascii_uppercase();
        self.funcs.insert(
            canonical.clone(),
            FunctionDef {
                name: canonical,
                arity,
                func: Arc::new(func),
            },
        );
    }

    /// Whether `name` is known.
    pub fn contains(&self, name: &str) -> bool {
        self.funcs.contains_key(&name.to_ascii_uppercase())
    }

    /// Names of all registered functions (sorted, for diagnostics).
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.funcs.values().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Look up a function definition by (case-insensitive) name — used by
    /// callers that resolve a function once and invoke it many times,
    /// such as the engine's compiled predicates.
    pub fn get(&self, name: &str) -> Option<&FunctionDef> {
        self.funcs.get(&name.to_ascii_uppercase())
    }

    /// Invoke a function by name with arity checking.
    pub fn call(&self, name: &str, args: &[Value], ctx: &EvalContext<'_>) -> AdtResult<Value> {
        let canonical = name.to_ascii_uppercase();
        let def = self
            .funcs
            .get(&canonical)
            .ok_or_else(|| AdtError::UnknownFunction(name.to_owned()))?;
        def.arity.check(&def.name, args.len())?;
        (def.func)(args, ctx)
    }

    fn install_builtins(&mut self) {
        fn bin(
            f: impl Fn(&Value, &Value) -> AdtResult<Value> + Send + Sync + 'static,
        ) -> impl Fn(&[Value], &EvalContext<'_>) -> AdtResult<Value> + Send + Sync + 'static
        {
            move |args, _| f(&args[0], &args[1])
        }
        fn una(
            f: impl Fn(&Value) -> AdtResult<Value> + Send + Sync + 'static,
        ) -> impl Fn(&[Value], &EvalContext<'_>) -> AdtResult<Value> + Send + Sync + 'static
        {
            move |args, _| f(&args[0])
        }

        self.register("ISEMPTY", Arity::Exact(1), una(coll::is_empty));
        self.register("COUNT", Arity::Exact(1), una(coll::count));
        self.register("EQUAL", Arity::Exact(2), bin(coll::coll_equal));
        self.register("INSERT", Arity::Exact(2), bin(coll::insert));
        self.register("REMOVE", Arity::Exact(2), bin(coll::remove));
        self.register("MEMBER", Arity::Exact(2), bin(coll::member));
        self.register("UNION", Arity::Exact(2), bin(coll::union));
        self.register("INTERSECTION", Arity::Exact(2), bin(coll::intersection));
        self.register("DIFFERENCE", Arity::Exact(2), bin(coll::difference));
        self.register("INCLUDE", Arity::Exact(2), bin(coll::include));
        self.register("CHOICE", Arity::Exact(1), una(coll::choice));
        self.register("APPEND", Arity::Exact(2), bin(coll::append));
        self.register("NTH", Arity::Exact(2), bin(coll::nth));
        self.register("ALL", Arity::Exact(1), una(coll::quant_all));
        self.register("EXIST", Arity::Exact(1), una(coll::quant_exist));
        self.register("SUM", Arity::Exact(1), una(coll::sum));
        self.register("MIN", Arity::Exact(1), una(coll::min));
        self.register("MAX", Arity::Exact(1), una(coll::max));
        self.register("AVG", Arity::Exact(1), una(coll::avg));

        self.register("MAKESET", Arity::AtLeast(0), |args, _| {
            Ok(coll::make_set(args))
        });
        self.register("MAKEBAG", Arity::AtLeast(0), |args, _| {
            Ok(coll::make_bag(args))
        });
        self.register("MAKELIST", Arity::AtLeast(0), |args, _| {
            Ok(coll::make_list(args))
        });

        self.register("CONVERT", Arity::Exact(2), |args, _| {
            let kind = match args[1].as_str()?.to_ascii_uppercase().as_str() {
                "SET" => CollKind::Set,
                "BAG" => CollKind::Bag,
                "LIST" => CollKind::List,
                "ARRAY" => CollKind::Array,
                other => {
                    return Err(AdtError::TypeMismatch {
                        function: "CONVERT".into(),
                        expected: "SET|BAG|LIST|ARRAY".into(),
                        found: other.to_owned(),
                    })
                }
            };
            coll::convert(&args[0], kind)
        });

        // VALUE: going from an object identifier to its value (Section 3.3).
        self.register("VALUE", Arity::Exact(1), |args, ctx| {
            let oid = args[0].as_object()?;
            ctx.objects.value(oid).cloned()
        });

        // Arithmetic. NULL propagates.
        for (name, op) in [("+", 0usize), ("-", 1), ("*", 2), ("/", 3)] {
            self.register(name, Arity::Exact(2), move |args, _| {
                if args[0].is_null() || args[1].is_null() {
                    return Ok(Value::Null);
                }
                match (&args[0], &args[1]) {
                    (Value::Int(a), Value::Int(b)) => match op {
                        0 => Ok(Value::Int(a.wrapping_add(*b))),
                        1 => Ok(Value::Int(a.wrapping_sub(*b))),
                        2 => Ok(Value::Int(a.wrapping_mul(*b))),
                        _ => {
                            if *b == 0 {
                                Err(AdtError::Arithmetic("division by zero".into()))
                            } else {
                                Ok(Value::Int(a / b))
                            }
                        }
                    },
                    _ => {
                        let a = args[0].as_f64()?;
                        let b = args[1].as_f64()?;
                        let r = match op {
                            0 => a + b,
                            1 => a - b,
                            2 => a * b,
                            _ => {
                                if b == 0.0 {
                                    return Err(AdtError::Arithmetic("division by zero".into()));
                                }
                                a / b
                            }
                        };
                        Ok(Value::real(r))
                    }
                }
            });
        }

        self.register("ABSVAL", Arity::Exact(1), |args, _| match &args[0] {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
            other => Ok(Value::real(other.as_f64()?.abs())),
        });

        // String concatenation, used by example ADT methods.
        self.register("CONCAT", Arity::Exact(2), |args, _| {
            if args[0].is_null() || args[1].is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Str(format!(
                "{}{}",
                args[0].as_str()?,
                args[1].as_str()?
            )))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeRegistry;

    fn ctx_parts() -> (ObjectStore, TypeRegistry) {
        (ObjectStore::new(), TypeRegistry::new())
    }

    #[test]
    fn builtin_member_callable_case_insensitively() {
        let (objects, types) = ctx_parts();
        let ctx = EvalContext {
            objects: &objects,
            types: &types,
        };
        let reg = FunctionRegistry::with_builtins();
        let set = Value::set(vec![1.into(), 2.into()]);
        assert_eq!(
            reg.call("member", &[1.into(), set.clone()], &ctx).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            reg.call("MeMbEr", &[5.into(), set], &ctx).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn arity_checked() {
        let (objects, types) = ctx_parts();
        let ctx = EvalContext {
            objects: &objects,
            types: &types,
        };
        let reg = FunctionRegistry::with_builtins();
        let err = reg.call("CHOICE", &[], &ctx).unwrap_err();
        assert!(matches!(err, AdtError::Arity { .. }));
    }

    #[test]
    fn unknown_function_reported() {
        let (objects, types) = ctx_parts();
        let ctx = EvalContext {
            objects: &objects,
            types: &types,
        };
        let reg = FunctionRegistry::with_builtins();
        assert_eq!(
            reg.call("NOPE", &[], &ctx).unwrap_err(),
            AdtError::UnknownFunction("NOPE".into())
        );
    }

    #[test]
    fn value_dereferences_objects() {
        let (mut objects, types) = ctx_parts();
        let oid = objects.create("Actor", Value::Tuple(vec![Value::str("Quinn")]));
        let ctx = EvalContext {
            objects: &objects,
            types: &types,
        };
        let reg = FunctionRegistry::with_builtins();
        assert_eq!(
            reg.call("VALUE", &[Value::Object(oid)], &ctx).unwrap(),
            Value::Tuple(vec![Value::str("Quinn")])
        );
    }

    #[test]
    fn user_registered_function_overrides_and_extends() {
        let (objects, types) = ctx_parts();
        let ctx = EvalContext {
            objects: &objects,
            types: &types,
        };
        let mut reg = FunctionRegistry::with_builtins();
        reg.register("DOUBLE", Arity::Exact(1), |args, _| {
            Ok(Value::Int(args[0].as_int()? * 2))
        });
        assert_eq!(
            reg.call("double", &[21.into()], &ctx).unwrap(),
            Value::Int(42)
        );
    }

    #[test]
    fn arithmetic_propagates_null_and_rejects_div_zero() {
        let (objects, types) = ctx_parts();
        let ctx = EvalContext {
            objects: &objects,
            types: &types,
        };
        let reg = FunctionRegistry::with_builtins();
        assert_eq!(
            reg.call("+", &[Value::Null, 1.into()], &ctx).unwrap(),
            Value::Null
        );
        assert!(reg.call("/", &[1.into(), 0.into()], &ctx).is_err());
        assert_eq!(
            reg.call("*", &[6.into(), 7.into()], &ctx).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            reg.call("/", &[7.into(), Value::real(2.0)], &ctx).unwrap(),
            Value::real(3.5)
        );
    }

    #[test]
    fn makeset_variadic() {
        let (objects, types) = ctx_parts();
        let ctx = EvalContext {
            objects: &objects,
            types: &types,
        };
        let reg = FunctionRegistry::with_builtins();
        assert_eq!(
            reg.call("MAKESET", &[2.into(), 1.into(), 2.into()], &ctx)
                .unwrap(),
            Value::set(vec![1.into(), 2.into()])
        );
    }
}
