//! Object store: identity-bearing data.
//!
//! ESQL supports both values and objects; an object is a unique identifier
//! with a value bound to it, and only objects may be referentially shared
//! (Section 2.1). The store maps OIDs to `(type name, value)` pairs and is
//! the target of the system `VALUE` built-in that dereferences an OID.

use std::fmt;

use crate::error::{AdtError, AdtResult};
use crate::value::Value;

/// An object identifier. Opaque, allocated sequentially by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One stored object.
#[derive(Debug, Clone, PartialEq)]
struct StoredObject {
    /// Name of the object type (e.g. `Actor`); used by `ISA` dispatch.
    type_name: String,
    /// The bound value (usually a tuple).
    value: Value,
}

/// In-memory object store.
///
/// OIDs are allocated sequentially, so objects live in a slot vector
/// indexed directly by OID — a dereference (the `VALUE` built-in, which
/// query evaluation performs once per object-valued attribute per row)
/// is a bounds check and an index, with no hashing. Deleted objects
/// leave a `None` slot so their OIDs stay dangling forever.
#[derive(Debug, Default, Clone)]
pub struct ObjectStore {
    slots: Vec<Option<StoredObject>>,
    live: usize,
}

impl ObjectStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh object of type `type_name` bound to `value` and
    /// return its identifier.
    pub fn create(&mut self, type_name: impl Into<String>, value: Value) -> Oid {
        let oid = Oid(self.slots.len() as u64);
        self.slots.push(Some(StoredObject {
            type_name: type_name.into(),
            value,
        }));
        self.live += 1;
        oid
    }

    /// Dereference: the `VALUE` system built-in.
    #[inline]
    pub fn value(&self, oid: Oid) -> AdtResult<&Value> {
        match self.slots.get(oid.0 as usize) {
            Some(Some(o)) => Ok(&o.value),
            _ => Err(AdtError::DanglingOid(oid.0)),
        }
    }

    /// Dynamic type name of an object.
    pub fn type_of(&self, oid: Oid) -> AdtResult<&str> {
        match self.slots.get(oid.0 as usize) {
            Some(Some(o)) => Ok(o.type_name.as_str()),
            _ => Err(AdtError::DanglingOid(oid.0)),
        }
    }

    /// Rebind the value of an existing object (object update preserves
    /// identity; all shared references observe the new value).
    pub fn update(&mut self, oid: Oid, value: Value) -> AdtResult<()> {
        match self.slots.get_mut(oid.0 as usize) {
            Some(Some(slot)) => {
                slot.value = value;
                Ok(())
            }
            _ => Err(AdtError::DanglingOid(oid.0)),
        }
    }

    /// Delete an object. Later dereferences of its OID fail; the slot is
    /// never reused, so the OID stays dangling.
    pub fn delete(&mut self, oid: Oid) -> AdtResult<()> {
        match self.slots.get_mut(oid.0 as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.live -= 1;
                Ok(())
            }
            _ => Err(AdtError::DanglingOid(oid.0)),
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate over `(oid, type name, value)` of all live objects, in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, &str, &Value)> {
        self.slots.iter().enumerate().filter_map(|(k, v)| {
            v.as_ref()
                .map(|o| (Oid(k as u64), o.type_name.as_str(), &o.value))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_deref() {
        let mut store = ObjectStore::new();
        let v = Value::Tuple(vec![Value::str("Quinn"), 12000.into()]);
        let oid = store.create("Actor", v.clone());
        assert_eq!(store.value(oid).unwrap(), &v);
        assert_eq!(store.type_of(oid).unwrap(), "Actor");
    }

    #[test]
    fn identity_is_preserved_across_update() {
        let mut store = ObjectStore::new();
        let oid = store.create("Actor", Value::Int(1));
        store.update(oid, Value::Int(2)).unwrap();
        assert_eq!(store.value(oid).unwrap(), &Value::Int(2));
    }

    #[test]
    fn distinct_objects_get_distinct_oids() {
        let mut store = ObjectStore::new();
        let a = store.create("Actor", Value::Int(1));
        let b = store.create("Actor", Value::Int(1));
        assert_ne!(a, b);
    }

    #[test]
    fn dangling_deref_fails() {
        let mut store = ObjectStore::new();
        let oid = store.create("Actor", Value::Int(1));
        store.delete(oid).unwrap();
        assert_eq!(store.value(oid).unwrap_err(), AdtError::DanglingOid(oid.0));
    }
}
