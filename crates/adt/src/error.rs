//! Error type shared by the ADT layer.

use std::fmt;

/// Errors raised while manipulating values, types, or the function registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdtError {
    /// A function was invoked with an argument of the wrong kind.
    TypeMismatch {
        /// Function or operation that rejected the argument.
        function: String,
        /// What the function expected.
        expected: String,
        /// A rendering of what it received.
        found: String,
    },
    /// A function was invoked with the wrong number of arguments.
    Arity {
        /// Function name.
        function: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments received.
        found: usize,
    },
    /// The named function is not registered.
    UnknownFunction(String),
    /// The named type is not registered.
    UnknownType(String),
    /// A type with this name already exists.
    DuplicateType(String),
    /// Dereferencing an object identifier that is not in the store.
    DanglingOid(u64),
    /// `choice` or a similar selector was applied to an empty collection.
    EmptyCollection(String),
    /// An enumeration value outside the declared set.
    InvalidEnumValue {
        /// Enumeration type name.
        ty: String,
        /// Offending literal.
        value: String,
    },
    /// Index out of bounds for a list/array access.
    IndexOutOfBounds {
        /// Requested index (1-based, as in ESQL).
        index: i64,
        /// Collection length.
        len: usize,
    },
    /// Division by zero or other arithmetic failure.
    Arithmetic(String),
    /// Catch-all for user-defined method failures.
    Custom(String),
}

impl fmt::Display for AdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdtError::TypeMismatch {
                function,
                expected,
                found,
            } => write!(f, "{function}: expected {expected}, found {found}"),
            AdtError::Arity {
                function,
                expected,
                found,
            } => write!(
                f,
                "{function}: expected {expected} arguments, found {found}"
            ),
            AdtError::UnknownFunction(name) => write!(f, "unknown function '{name}'"),
            AdtError::UnknownType(name) => write!(f, "unknown type '{name}'"),
            AdtError::DuplicateType(name) => write!(f, "type '{name}' already defined"),
            AdtError::DanglingOid(oid) => write!(f, "dangling object identifier #{oid}"),
            AdtError::EmptyCollection(op) => write!(f, "{op} applied to an empty collection"),
            AdtError::InvalidEnumValue { ty, value } => {
                write!(f, "'{value}' is not a value of enumeration {ty}")
            }
            AdtError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for collection of length {len}"
                )
            }
            AdtError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            AdtError::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for AdtError {}

/// Convenient result alias for the ADT layer.
pub type AdtResult<T> = Result<T, AdtError>;
