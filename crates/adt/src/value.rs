//! Runtime values: the ESQL data model.
//!
//! ESQL data is partitioned into *values* (instances of ADTs, compared
//! structurally) and *objects* (a unique identifier bound to a value, stored
//! in an [`crate::object::ObjectStore`]). Complex values are built by
//! combining the generic ADTs `tuple`, `set`, `bag`, `list` and `array` at
//! multiple levels, exactly as in Section 2.1 of the paper.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{AdtError, AdtResult};
use crate::object::Oid;

/// The collection kinds of the generic ADT hierarchy (Figure 1 of the
/// paper). `Collection` is their common abstract supertype; it never appears
/// as the kind of a concrete runtime value but participates in `ISA` checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CollKind {
    /// Unordered, duplicate-free.
    Set,
    /// Unordered, duplicates allowed. The default result kind of an ESQL
    /// query block.
    Bag,
    /// Ordered, duplicates allowed.
    List,
    /// Ordered, fixed conceptual indexing; behaves as a list at runtime.
    Array,
}

impl CollKind {
    /// Name used by `ISA` and by the rule language (`SET`, `BAG`, ...).
    pub fn name(self) -> &'static str {
        match self {
            CollKind::Set => "SET",
            CollKind::Bag => "BAG",
            CollKind::List => "LIST",
            CollKind::Array => "ARRAY",
        }
    }

    /// Whether element order is observable.
    pub fn ordered(self) -> bool {
        matches!(self, CollKind::List | CollKind::Array)
    }

    /// Whether duplicates are retained.
    pub fn keeps_duplicates(self) -> bool {
        !matches!(self, CollKind::Set)
    }
}

impl fmt::Display for CollKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A runtime value.
///
/// Unordered collections are kept in a canonical (sorted, and for sets
/// deduplicated) representation so that structural equality of `Value` is
/// exactly ESQL value equality.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// SQL NULL / absent.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (covers INT and NUMERIC without fraction).
    Int(i64),
    /// Floating point (REAL).
    Real(OrderedF64),
    /// Character string (CHAR, and the `Text` example type).
    Str(String),
    /// Value of an enumeration type: the type name plus the chosen literal.
    Enum(String, String),
    /// Tuple of positionally-stored attribute values; attribute names live
    /// in the schema/type, not in the value.
    Tuple(Vec<Value>),
    /// A collection. Invariant: `Set` elements sorted + deduplicated,
    /// `Bag` elements sorted; `List`/`Array` keep insertion order.
    Coll(CollKind, Vec<Value>),
    /// Reference to an object in the object store.
    Object(Oid),
}

/// `f64` wrapper with total ordering (via `f64::total_cmp`) so `Value` can
/// be `Ord` and participate in canonical set representations.
#[derive(Debug, Clone, Copy)]
pub struct OrderedF64(pub f64);

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl Value {
    /// Build a real value.
    pub fn real(x: f64) -> Value {
        Value::Real(OrderedF64(x))
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build a set, canonicalizing (sort + dedup).
    pub fn set(mut elems: Vec<Value>) -> Value {
        elems.sort();
        elems.dedup();
        Value::Coll(CollKind::Set, elems)
    }

    /// Build a bag, canonicalizing (sort).
    pub fn bag(mut elems: Vec<Value>) -> Value {
        elems.sort();
        Value::Coll(CollKind::Bag, elems)
    }

    /// Build a list (order preserved).
    pub fn list(elems: Vec<Value>) -> Value {
        Value::Coll(CollKind::List, elems)
    }

    /// Build an array (order preserved).
    pub fn array(elems: Vec<Value>) -> Value {
        Value::Coll(CollKind::Array, elems)
    }

    /// Build a collection of the given kind, canonicalizing as required.
    pub fn coll(kind: CollKind, elems: Vec<Value>) -> Value {
        match kind {
            CollKind::Set => Value::set(elems),
            CollKind::Bag => Value::bag(elems),
            CollKind::List | CollKind::Array => Value::Coll(kind, elems),
        }
    }

    /// Short tag naming the value's shape; used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Bool(_) => "BOOL",
            Value::Int(_) => "INT",
            Value::Real(_) => "REAL",
            Value::Str(_) => "CHAR",
            Value::Enum(..) => "ENUM",
            Value::Tuple(_) => "TUPLE",
            Value::Coll(k, _) => k.name(),
            Value::Object(_) => "OBJECT",
        }
    }

    /// True for the three-valued-logic "unknown" carrier.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a boolean if possible.
    pub fn as_bool(&self) -> AdtResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(AdtError::TypeMismatch {
                function: "as_bool".into(),
                expected: "BOOL".into(),
                found: other.kind_name().into(),
            }),
        }
    }

    /// Interpret as an integer if possible.
    pub fn as_int(&self) -> AdtResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(AdtError::TypeMismatch {
                function: "as_int".into(),
                expected: "INT".into(),
                found: other.kind_name().into(),
            }),
        }
    }

    /// Numeric view: INT and REAL both convert; used by arithmetic and
    /// comparisons.
    pub fn as_f64(&self) -> AdtResult<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Real(r) => Ok(r.0),
            other => Err(AdtError::TypeMismatch {
                function: "as_f64".into(),
                expected: "numeric".into(),
                found: other.kind_name().into(),
            }),
        }
    }

    /// Interpret as a string if possible (enum literals coerce).
    pub fn as_str(&self) -> AdtResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            Value::Enum(_, s) => Ok(s),
            other => Err(AdtError::TypeMismatch {
                function: "as_str".into(),
                expected: "CHAR".into(),
                found: other.kind_name().into(),
            }),
        }
    }

    /// Collection view.
    pub fn as_coll(&self) -> AdtResult<(CollKind, &[Value])> {
        match self {
            Value::Coll(k, v) => Ok((*k, v)),
            other => Err(AdtError::TypeMismatch {
                function: "as_coll".into(),
                expected: "collection".into(),
                found: other.kind_name().into(),
            }),
        }
    }

    /// Tuple view.
    pub fn as_tuple(&self) -> AdtResult<&[Value]> {
        match self {
            Value::Tuple(t) => Ok(t),
            other => Err(AdtError::TypeMismatch {
                function: "as_tuple".into(),
                expected: "TUPLE".into(),
                found: other.kind_name().into(),
            }),
        }
    }

    /// Object-reference view.
    pub fn as_object(&self) -> AdtResult<Oid> {
        match self {
            Value::Object(oid) => Ok(*oid),
            other => Err(AdtError::TypeMismatch {
                function: "as_object".into(),
                expected: "OBJECT".into(),
                found: other.kind_name().into(),
            }),
        }
    }

    /// Is this a collection value?
    pub fn is_coll(&self) -> bool {
        matches!(self, Value::Coll(..))
    }

    /// Numeric comparison that treats INT/REAL uniformly and everything
    /// else structurally; returns `None` when either side is NULL
    /// (three-valued logic).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Int(a), Value::Real(b)) => Some((*a as f64).total_cmp(&b.0)),
            (Value::Real(a), Value::Int(b)) => Some(a.0.total_cmp(&(*b as f64))),
            (a, b) => Some(a.cmp(b)),
        }
    }

    /// SQL equality under three-valued logic: `None` if either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::real(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(f: &mut fmt::Formatter<'_>, items: &[Value]) -> fmt::Result {
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{v}")?;
            }
            Ok(())
        }
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{}", r.0),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Enum(_, lit) => write!(f, "'{}'", lit.replace('\'', "''")),
            Value::Tuple(t) => {
                f.write_str("<")?;
                join(f, t)?;
                f.write_str(">")
            }
            Value::Coll(k, items) => {
                write!(f, "{}{{", k.name())?;
                join(f, items)?;
                f.write_str("}")
            }
            Value::Object(oid) => write!(f, "#{}", oid.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_canonicalizes() {
        let a = Value::set(vec![3.into(), 1.into(), 2.into(), 1.into()]);
        let b = Value::set(vec![1.into(), 2.into(), 3.into()]);
        assert_eq!(a, b);
    }

    #[test]
    fn bag_keeps_duplicates_but_not_order() {
        let a = Value::bag(vec![2.into(), 1.into(), 2.into()]);
        let b = Value::bag(vec![2.into(), 2.into(), 1.into()]);
        let c = Value::bag(vec![1.into(), 2.into()]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn list_keeps_order() {
        let a = Value::list(vec![1.into(), 2.into()]);
        let b = Value::list(vec![2.into(), 1.into()]);
        assert_ne!(a, b);
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::real(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::real(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_compares_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::set(vec![1.into()]).to_string(), "SET{1}");
        assert_eq!(
            Value::Tuple(vec![1.into(), Value::str("a")]).to_string(),
            "<1, 'a'>"
        );
    }

    #[test]
    fn accessor_errors_name_kinds() {
        let err = Value::Int(1).as_coll().unwrap_err();
        match err {
            AdtError::TypeMismatch { found, .. } => assert_eq!(found, "INT"),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
