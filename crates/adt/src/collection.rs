//! The built-in collection function library (Figure 1 of the paper).
//!
//! General functions are supplied at the `collection` level: conversion
//! between collection kinds, emptiness, equality, insertion and removal.
//! Each concrete kind adds its own functions (`union`, `intersection`,
//! `difference`, `include`, `choice`, `member`/`exist`, `append`, `nth`,
//! `make_set`/`make_bag`/`make_list`, and the `all`/`exist` quantifiers).
//!
//! All functions are pure `Value -> Value` transformers; the
//! [`crate::registry::FunctionRegistry`] exposes them by name to the query
//! engine and the rewriter's constraint evaluator.

use crate::error::{AdtError, AdtResult};
use crate::value::{CollKind, Value};

fn expect_coll<'a>(function: &str, v: &'a Value) -> AdtResult<(CollKind, &'a [Value])> {
    v.as_coll().map_err(|_| AdtError::TypeMismatch {
        function: function.into(),
        expected: "collection".into(),
        found: v.kind_name().into(),
    })
}

/// `CONVERT`: re-interpret a collection as another kind. Converting a bag
/// to a set removes duplicates; converting an unordered collection to a
/// list yields its canonical (sorted) order.
pub fn convert(v: &Value, target: CollKind) -> AdtResult<Value> {
    let (_, elems) = expect_coll("CONVERT", v)?;
    Ok(Value::coll(target, elems.to_vec()))
}

/// `ISEMPTY`: true when the collection holds no element.
pub fn is_empty(v: &Value) -> AdtResult<Value> {
    let (_, elems) = expect_coll("ISEMPTY", v)?;
    Ok(Value::Bool(elems.is_empty()))
}

/// `COUNT`: number of elements (duplicates counted in bags/lists).
pub fn count(v: &Value) -> AdtResult<Value> {
    let (_, elems) = expect_coll("COUNT", v)?;
    Ok(Value::Int(elems.len() as i64))
}

/// Collection equality: both operands must be collections of the same
/// kind; canonical representation makes this structural equality.
pub fn coll_equal(a: &Value, b: &Value) -> AdtResult<Value> {
    let (ka, _) = expect_coll("EQUAL", a)?;
    let (kb, _) = expect_coll("EQUAL", b)?;
    if ka != kb {
        return Err(AdtError::TypeMismatch {
            function: "EQUAL".into(),
            expected: format!("two {ka} collections"),
            found: format!("{ka} and {kb}"),
        });
    }
    Ok(Value::Bool(a == b))
}

/// `INSERT`: add an element. Sets ignore duplicates; ordered kinds append.
pub fn insert(coll: &Value, elem: &Value) -> AdtResult<Value> {
    let (k, elems) = expect_coll("INSERT", coll)?;
    let mut out = elems.to_vec();
    out.push(elem.clone());
    Ok(Value::coll(k, out))
}

/// `REMOVE`: remove one occurrence of an element (all occurrences for a
/// set, where there is at most one).
pub fn remove(coll: &Value, elem: &Value) -> AdtResult<Value> {
    let (k, elems) = expect_coll("REMOVE", coll)?;
    let mut out = elems.to_vec();
    if let Some(pos) = out.iter().position(|e| e == elem) {
        out.remove(pos);
    }
    Ok(Value::coll(k, out))
}

/// `MEMBER`: membership test, defined on every collection kind.
pub fn member(elem: &Value, coll: &Value) -> AdtResult<Value> {
    let (_, elems) = expect_coll("MEMBER", coll)?;
    Ok(Value::Bool(elems.contains(elem)))
}

/// `UNION` on sets/bags (bag union is additive) and concatenation for
/// ordered kinds.
pub fn union(a: &Value, b: &Value) -> AdtResult<Value> {
    let (ka, ea) = expect_coll("UNION", a)?;
    let (_, eb) = expect_coll("UNION", b)?;
    let mut out = ea.to_vec();
    out.extend(eb.iter().cloned());
    Ok(Value::coll(ka, out))
}

/// `INTERSECTION`: set intersection; bag intersection takes minimum
/// multiplicities.
pub fn intersection(a: &Value, b: &Value) -> AdtResult<Value> {
    let (ka, ea) = expect_coll("INTERSECTION", a)?;
    let (_, eb) = expect_coll("INTERSECTION", b)?;
    let mut remaining = eb.to_vec();
    let mut out = Vec::new();
    for e in ea {
        if let Some(pos) = remaining.iter().position(|x| x == e) {
            remaining.remove(pos);
            out.push(e.clone());
        }
    }
    Ok(Value::coll(ka, out))
}

/// `DIFFERENCE`: set difference; bag difference subtracts multiplicities.
pub fn difference(a: &Value, b: &Value) -> AdtResult<Value> {
    let (ka, ea) = expect_coll("DIFFERENCE", a)?;
    let (_, eb) = expect_coll("DIFFERENCE", b)?;
    let mut to_remove = eb.to_vec();
    let mut out = Vec::new();
    for e in ea {
        if let Some(pos) = to_remove.iter().position(|x| x == e) {
            to_remove.remove(pos);
        } else {
            out.push(e.clone());
        }
    }
    Ok(Value::coll(ka, out))
}

/// `INCLUDE`: containment (`a ⊆ b`), multiplicity-aware for bags.
pub fn include(a: &Value, b: &Value) -> AdtResult<Value> {
    let diff = difference(a, b)?;
    let (_, rest) = expect_coll("INCLUDE", &diff)?;
    Ok(Value::Bool(rest.is_empty()))
}

/// `CHOICE`: select an arbitrary element of a non-empty collection
/// (deterministically the canonical first, per Manna & Waldinger's
/// `choice`).
pub fn choice(v: &Value) -> AdtResult<Value> {
    let (_, elems) = expect_coll("CHOICE", v)?;
    elems
        .first()
        .cloned()
        .ok_or_else(|| AdtError::EmptyCollection("CHOICE".into()))
}

/// `APPEND`: list/array concatenation.
pub fn append(a: &Value, b: &Value) -> AdtResult<Value> {
    let (ka, ea) = expect_coll("APPEND", a)?;
    let (_, eb) = expect_coll("APPEND", b)?;
    if !ka.ordered() {
        return Err(AdtError::TypeMismatch {
            function: "APPEND".into(),
            expected: "LIST or ARRAY".into(),
            found: ka.name().into(),
        });
    }
    let mut out = ea.to_vec();
    out.extend(eb.iter().cloned());
    Ok(Value::Coll(ka, out))
}

/// `NTH`: 1-based positional access on ordered collections.
pub fn nth(coll: &Value, index: &Value) -> AdtResult<Value> {
    let (k, elems) = expect_coll("NTH", coll)?;
    if !k.ordered() {
        return Err(AdtError::TypeMismatch {
            function: "NTH".into(),
            expected: "LIST or ARRAY".into(),
            found: k.name().into(),
        });
    }
    let i = index.as_int()?;
    if i < 1 || i as usize > elems.len() {
        return Err(AdtError::IndexOutOfBounds {
            index: i,
            len: elems.len(),
        });
    }
    Ok(elems[(i - 1) as usize].clone())
}

/// `MAKESET`: create a set from an enumeration of elements.
pub fn make_set(elems: &[Value]) -> Value {
    Value::set(elems.to_vec())
}

/// `MAKEBAG`: create a bag from an enumeration of elements.
pub fn make_bag(elems: &[Value]) -> Value {
    Value::bag(elems.to_vec())
}

/// `MAKELIST`: create a list from an enumeration of elements.
pub fn make_list(elems: &[Value]) -> Value {
    Value::list(elems.to_vec())
}

/// The `ALL` quantifier: applied to a collection of booleans, true when
/// every element is true (vacuously true on the empty collection).
/// NULL elements make the result NULL unless some element is false.
pub fn quant_all(v: &Value) -> AdtResult<Value> {
    let (_, elems) = expect_coll("ALL", v)?;
    let mut saw_null = false;
    for e in elems {
        match e {
            Value::Bool(false) => return Ok(Value::Bool(false)),
            Value::Bool(true) => {}
            Value::Null => saw_null = true,
            other => {
                return Err(AdtError::TypeMismatch {
                    function: "ALL".into(),
                    expected: "collection of BOOL".into(),
                    found: other.kind_name().into(),
                })
            }
        }
    }
    Ok(if saw_null {
        Value::Null
    } else {
        Value::Bool(true)
    })
}

/// The `EXIST` quantifier: true when some element is true (false on the
/// empty collection). NULL elements make a non-true result NULL.
pub fn quant_exist(v: &Value) -> AdtResult<Value> {
    let (_, elems) = expect_coll("EXIST", v)?;
    let mut saw_null = false;
    for e in elems {
        match e {
            Value::Bool(true) => return Ok(Value::Bool(true)),
            Value::Bool(false) => {}
            Value::Null => saw_null = true,
            other => {
                return Err(AdtError::TypeMismatch {
                    function: "EXIST".into(),
                    expected: "collection of BOOL".into(),
                    found: other.kind_name().into(),
                })
            }
        }
    }
    Ok(if saw_null {
        Value::Null
    } else {
        Value::Bool(false)
    })
}

/// `SUM`: numeric sum of a collection's elements (0 for empty; NULL
/// elements are ignored, SQL-style).
pub fn sum(v: &Value) -> AdtResult<Value> {
    let (_, elems) = expect_coll("SUM", v)?;
    let mut int_sum: i64 = 0;
    let mut real_sum: f64 = 0.0;
    let mut any_real = false;
    for e in elems {
        match e {
            Value::Null => {}
            Value::Int(i) => int_sum = int_sum.wrapping_add(*i),
            other => {
                real_sum += other.as_f64().map_err(|_| AdtError::TypeMismatch {
                    function: "SUM".into(),
                    expected: "collection of numerics".into(),
                    found: other.kind_name().into(),
                })?;
                any_real = true;
            }
        }
    }
    if any_real {
        Ok(Value::real(real_sum + int_sum as f64))
    } else {
        Ok(Value::Int(int_sum))
    }
}

/// `MIN`: least element under SQL ordering (NULL on empty input, NULLs
/// ignored).
pub fn min(v: &Value) -> AdtResult<Value> {
    fold_extreme("MIN", v, std::cmp::Ordering::Less)
}

/// `MAX`: greatest element (NULL on empty input, NULLs ignored).
pub fn max(v: &Value) -> AdtResult<Value> {
    fold_extreme("MAX", v, std::cmp::Ordering::Greater)
}

fn fold_extreme(name: &str, v: &Value, keep: std::cmp::Ordering) -> AdtResult<Value> {
    let (_, elems) = expect_coll(name, v)?;
    let mut best: Option<&Value> = None;
    for e in elems {
        if e.is_null() {
            continue;
        }
        match best {
            None => best = Some(e),
            Some(b) => {
                if e.sql_cmp(b) == Some(keep) {
                    best = Some(e);
                }
            }
        }
    }
    Ok(best.cloned().unwrap_or(Value::Null))
}

/// `AVG`: numeric mean (NULL on empty input; NULL elements ignored).
pub fn avg(v: &Value) -> AdtResult<Value> {
    let (_, elems) = expect_coll("AVG", v)?;
    let usable: Vec<&Value> = elems.iter().filter(|e| !e.is_null()).collect();
    if usable.is_empty() {
        return Ok(Value::Null);
    }
    let total = sum(v)?;
    Ok(Value::real(total.as_f64()? / usable.len() as f64))
}

/// Positional tuple projection (0-based); the engine maps attribute names
/// to positions via the schema before calling this.
pub fn tuple_get(tuple: &Value, index: usize) -> AdtResult<Value> {
    let fields = tuple.as_tuple()?;
    fields
        .get(index)
        .cloned()
        .ok_or(AdtError::IndexOutOfBounds {
            index: index as i64,
            len: fields.len(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: Vec<i64>) -> Value {
        Value::set(v.into_iter().map(Value::Int).collect())
    }
    fn b(v: Vec<i64>) -> Value {
        Value::bag(v.into_iter().map(Value::Int).collect())
    }
    fn l(v: Vec<i64>) -> Value {
        Value::list(v.into_iter().map(Value::Int).collect())
    }

    #[test]
    fn convert_bag_to_set_removes_duplicates() {
        let bag = b(vec![1, 1, 2]);
        assert_eq!(convert(&bag, CollKind::Set).unwrap(), s(vec![1, 2]));
    }

    #[test]
    fn set_union_dedups_bag_union_adds() {
        assert_eq!(
            union(&s(vec![1, 2]), &s(vec![2, 3])).unwrap(),
            s(vec![1, 2, 3])
        );
        assert_eq!(
            union(&b(vec![1, 2]), &b(vec![2, 3])).unwrap(),
            b(vec![1, 2, 2, 3])
        );
    }

    #[test]
    fn bag_intersection_uses_min_multiplicity() {
        assert_eq!(
            intersection(&b(vec![1, 1, 2]), &b(vec![1, 2, 2])).unwrap(),
            b(vec![1, 2])
        );
    }

    #[test]
    fn bag_difference_subtracts_multiplicity() {
        assert_eq!(
            difference(&b(vec![1, 1, 2]), &b(vec![1])).unwrap(),
            b(vec![1, 2])
        );
    }

    #[test]
    fn include_is_multiplicity_aware() {
        assert_eq!(
            include(&b(vec![1, 1]), &b(vec![1])).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            include(&b(vec![1]), &b(vec![1, 1])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            include(&s(vec![1, 2]), &s(vec![1, 2, 3])).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn insert_into_set_is_idempotent() {
        let v = insert(&s(vec![1]), &Value::Int(1)).unwrap();
        assert_eq!(v, s(vec![1]));
        let v = insert(&l(vec![1]), &Value::Int(1)).unwrap();
        assert_eq!(v, l(vec![1, 1]));
    }

    #[test]
    fn remove_takes_one_occurrence() {
        assert_eq!(remove(&b(vec![1, 1]), &Value::Int(1)).unwrap(), b(vec![1]));
        assert_eq!(remove(&s(vec![1]), &Value::Int(2)).unwrap(), s(vec![1]));
    }

    #[test]
    fn member_works_on_all_kinds() {
        assert_eq!(
            member(&Value::Int(2), &l(vec![1, 2])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            member(&Value::Int(5), &s(vec![1, 2])).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn choice_on_empty_fails() {
        assert_eq!(
            choice(&s(vec![])).unwrap_err(),
            AdtError::EmptyCollection("CHOICE".into())
        );
        assert_eq!(choice(&s(vec![3, 1])).unwrap(), Value::Int(1));
    }

    #[test]
    fn append_rejects_sets() {
        assert!(append(&s(vec![1]), &s(vec![2])).is_err());
        assert_eq!(append(&l(vec![1]), &l(vec![2])).unwrap(), l(vec![1, 2]));
    }

    #[test]
    fn nth_is_one_based() {
        assert_eq!(
            nth(&l(vec![10, 20]), &Value::Int(1)).unwrap(),
            Value::Int(10)
        );
        assert!(nth(&l(vec![10]), &Value::Int(0)).is_err());
        assert!(nth(&l(vec![10]), &Value::Int(2)).is_err());
    }

    #[test]
    fn quantifiers() {
        let all_true = Value::list(vec![true.into(), true.into()]);
        let mixed = Value::list(vec![true.into(), false.into()]);
        let empty = Value::list(vec![]);
        assert_eq!(quant_all(&all_true).unwrap(), Value::Bool(true));
        assert_eq!(quant_all(&mixed).unwrap(), Value::Bool(false));
        assert_eq!(quant_all(&empty).unwrap(), Value::Bool(true));
        assert_eq!(quant_exist(&mixed).unwrap(), Value::Bool(true));
        assert_eq!(quant_exist(&empty).unwrap(), Value::Bool(false));
    }

    #[test]
    fn quantifiers_three_valued() {
        let with_null = Value::list(vec![true.into(), Value::Null]);
        assert_eq!(quant_all(&with_null).unwrap(), Value::Null);
        // EXIST short-circuits on a true element even with NULLs present.
        assert_eq!(quant_exist(&with_null).unwrap(), Value::Bool(true));
        let null_and_false = Value::list(vec![Value::Null, false.into()]);
        assert_eq!(quant_all(&null_and_false).unwrap(), Value::Bool(false));
        assert_eq!(quant_exist(&null_and_false).unwrap(), Value::Null);
    }

    #[test]
    fn aggregates() {
        let b = Value::bag(vec![3.into(), 1.into(), 2.into(), Value::Null]);
        assert_eq!(sum(&b).unwrap(), Value::Int(6));
        assert_eq!(min(&b).unwrap(), Value::Int(1));
        assert_eq!(max(&b).unwrap(), Value::Int(3));
        assert_eq!(avg(&b).unwrap(), Value::real(2.0));
        let empty = Value::set(vec![]);
        assert_eq!(sum(&empty).unwrap(), Value::Int(0));
        assert_eq!(min(&empty).unwrap(), Value::Null);
        assert_eq!(avg(&empty).unwrap(), Value::Null);
        let mixed = Value::list(vec![1.into(), Value::real(0.5)]);
        assert_eq!(sum(&mixed).unwrap(), Value::real(1.5));
    }

    #[test]
    fn equal_requires_same_kind() {
        assert!(coll_equal(&s(vec![1]), &b(vec![1])).is_err());
        assert_eq!(
            coll_equal(&s(vec![1, 2]), &s(vec![2, 1])).unwrap(),
            Value::Bool(true)
        );
    }
}
