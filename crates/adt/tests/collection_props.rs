//! Algebraic laws of the Figure-1 collection functions, checked by
//! property-based testing.

use eds_adt::{collection as c, CollKind, Value};
use proptest::prelude::*;

fn set(xs: &[i64]) -> Value {
    Value::set(xs.iter().copied().map(Value::Int).collect())
}

fn bag(xs: &[i64]) -> Value {
    Value::bag(xs.iter().copied().map(Value::Int).collect())
}

fn count_of(v: &Value) -> usize {
    v.as_coll().unwrap().1.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn set_union_is_commutative_associative_idempotent(
        a in prop::collection::vec(0i64..40, 0..20),
        b in prop::collection::vec(0i64..40, 0..20),
        d in prop::collection::vec(0i64..40, 0..20),
    ) {
        let (a, b, d) = (set(&a), set(&b), set(&d));
        prop_assert_eq!(c::union(&a, &b).unwrap(), c::union(&b, &a).unwrap());
        prop_assert_eq!(
            c::union(&c::union(&a, &b).unwrap(), &d).unwrap(),
            c::union(&a, &c::union(&b, &d).unwrap()).unwrap()
        );
        prop_assert_eq!(c::union(&a, &a).unwrap(), a);
    }

    #[test]
    fn inclusion_exclusion_on_sets(
        a in prop::collection::vec(0i64..40, 0..20),
        b in prop::collection::vec(0i64..40, 0..20),
    ) {
        let (a, b) = (set(&a), set(&b));
        let inter = count_of(&c::intersection(&a, &b).unwrap());
        let diff = count_of(&c::difference(&a, &b).unwrap());
        prop_assert_eq!(inter + diff, count_of(&a));
        let uni = count_of(&c::union(&a, &b).unwrap());
        prop_assert_eq!(uni + inter, count_of(&a) + count_of(&b));
    }

    #[test]
    fn bag_multiplicities_conserved(
        a in prop::collection::vec(0i64..10, 0..25),
        b in prop::collection::vec(0i64..10, 0..25),
    ) {
        let (a, b) = (bag(&a), bag(&b));
        // |A ∪ B| = |A| + |B| (additive bag union)
        prop_assert_eq!(
            count_of(&c::union(&a, &b).unwrap()),
            count_of(&a) + count_of(&b)
        );
        // |A \ B| + |A ∩ B| = |A| (min-multiplicity laws)
        prop_assert_eq!(
            count_of(&c::difference(&a, &b).unwrap())
                + count_of(&c::intersection(&a, &b).unwrap()),
            count_of(&a)
        );
    }

    #[test]
    fn include_is_a_partial_order(
        a in prop::collection::vec(0i64..15, 0..12),
        b in prop::collection::vec(0i64..15, 0..12),
        d in prop::collection::vec(0i64..15, 0..12),
    ) {
        let (a, b, d) = (set(&a), set(&b), set(&d));
        // Reflexive.
        prop_assert_eq!(c::include(&a, &a).unwrap(), Value::Bool(true));
        // Transitive.
        if c::include(&a, &b).unwrap() == Value::Bool(true)
            && c::include(&b, &d).unwrap() == Value::Bool(true)
        {
            prop_assert_eq!(c::include(&a, &d).unwrap(), Value::Bool(true));
        }
        // Antisymmetric.
        if c::include(&a, &b).unwrap() == Value::Bool(true)
            && c::include(&b, &a).unwrap() == Value::Bool(true)
        {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn insert_remove_roundtrip(
        xs in prop::collection::vec(0i64..30, 0..15),
        x in 0i64..30,
    ) {
        let s = set(&xs);
        let inserted = c::insert(&s, &Value::Int(x)).unwrap();
        prop_assert_eq!(c::member(&Value::Int(x), &inserted).unwrap(), Value::Bool(true));
        let removed = c::remove(&inserted, &Value::Int(x)).unwrap();
        prop_assert_eq!(c::member(&Value::Int(x), &removed).unwrap(), Value::Bool(false));
        // For bags, insert then remove is the identity.
        let bq = bag(&xs);
        let round = c::remove(&c::insert(&bq, &Value::Int(x)).unwrap(), &Value::Int(x)).unwrap();
        prop_assert_eq!(round, bq);
    }

    #[test]
    fn convert_respects_kinds(xs in prop::collection::vec(0i64..10, 0..20)) {
        let b = bag(&xs);
        // bag -> set drops duplicates; set size <= bag size.
        let s = c::convert(&b, CollKind::Set).unwrap();
        prop_assert!(count_of(&s) <= count_of(&b));
        // bag -> list -> bag is the identity (canonical order).
        let l = c::convert(&b, CollKind::List).unwrap();
        prop_assert_eq!(c::convert(&l, CollKind::Bag).unwrap(), b);
        // set -> set is the identity.
        prop_assert_eq!(c::convert(&s, CollKind::Set).unwrap(), s);
    }

    #[test]
    fn quantifiers_match_iterator_semantics(bools in prop::collection::vec(any::<bool>(), 0..12)) {
        let coll = Value::list(bools.iter().map(|b| Value::Bool(*b)).collect());
        prop_assert_eq!(
            c::quant_all(&coll).unwrap(),
            Value::Bool(bools.iter().all(|b| *b))
        );
        prop_assert_eq!(
            c::quant_exist(&coll).unwrap(),
            Value::Bool(bools.iter().any(|b| *b))
        );
    }

    #[test]
    fn append_concatenates(
        a in prop::collection::vec(0i64..30, 0..10),
        b in prop::collection::vec(0i64..30, 0..10),
    ) {
        let la = Value::list(a.iter().copied().map(Value::Int).collect());
        let lb = Value::list(b.iter().copied().map(Value::Int).collect());
        let joined = c::append(&la, &lb).unwrap();
        let expected: Vec<Value> = a.iter().chain(b.iter()).copied().map(Value::Int).collect();
        prop_assert_eq!(joined, Value::list(expected));
    }
}
