//! Algebraic laws of the Figure-1 collection functions, checked by
//! randomized testing over 256 seeded cases per property.

use eds_adt::{collection as c, CollKind, Value};
use eds_testkit::StdRng;

const CASES: u64 = 256;

fn set(xs: &[i64]) -> Value {
    Value::set(xs.iter().copied().map(Value::Int).collect())
}

fn bag(xs: &[i64]) -> Value {
    Value::bag(xs.iter().copied().map(Value::Int).collect())
}

fn count_of(v: &Value) -> usize {
    v.as_coll().unwrap().1.len()
}

fn ints(rng: &mut StdRng, bound: i64, max_len: usize) -> Vec<i64> {
    let len = rng.gen_range(0..max_len + 1);
    (0..len).map(|_| rng.gen_range(0..bound)).collect()
}

#[test]
fn set_union_is_commutative_associative_idempotent() {
    let mut rng = StdRng::seed_from_u64(0xC011_0001);
    for _ in 0..CASES {
        let a = set(&ints(&mut rng, 40, 19));
        let b = set(&ints(&mut rng, 40, 19));
        let d = set(&ints(&mut rng, 40, 19));
        assert_eq!(c::union(&a, &b).unwrap(), c::union(&b, &a).unwrap());
        assert_eq!(
            c::union(&c::union(&a, &b).unwrap(), &d).unwrap(),
            c::union(&a, &c::union(&b, &d).unwrap()).unwrap()
        );
        assert_eq!(c::union(&a, &a).unwrap(), a);
    }
}

#[test]
fn inclusion_exclusion_on_sets() {
    let mut rng = StdRng::seed_from_u64(0xC011_0002);
    for _ in 0..CASES {
        let a = set(&ints(&mut rng, 40, 19));
        let b = set(&ints(&mut rng, 40, 19));
        let inter = count_of(&c::intersection(&a, &b).unwrap());
        let diff = count_of(&c::difference(&a, &b).unwrap());
        assert_eq!(inter + diff, count_of(&a));
        let uni = count_of(&c::union(&a, &b).unwrap());
        assert_eq!(uni + inter, count_of(&a) + count_of(&b));
    }
}

#[test]
fn bag_multiplicities_conserved() {
    let mut rng = StdRng::seed_from_u64(0xC011_0003);
    for _ in 0..CASES {
        let a = bag(&ints(&mut rng, 10, 24));
        let b = bag(&ints(&mut rng, 10, 24));
        // |A ∪ B| = |A| + |B| (additive bag union)
        assert_eq!(
            count_of(&c::union(&a, &b).unwrap()),
            count_of(&a) + count_of(&b)
        );
        // |A \ B| + |A ∩ B| = |A| (min-multiplicity laws)
        assert_eq!(
            count_of(&c::difference(&a, &b).unwrap()) + count_of(&c::intersection(&a, &b).unwrap()),
            count_of(&a)
        );
    }
}

#[test]
fn include_is_a_partial_order() {
    let mut rng = StdRng::seed_from_u64(0xC011_0004);
    for _ in 0..CASES {
        let a = set(&ints(&mut rng, 15, 11));
        let b = set(&ints(&mut rng, 15, 11));
        let d = set(&ints(&mut rng, 15, 11));
        // Reflexive.
        assert_eq!(c::include(&a, &a).unwrap(), Value::Bool(true));
        // Transitive.
        if c::include(&a, &b).unwrap() == Value::Bool(true)
            && c::include(&b, &d).unwrap() == Value::Bool(true)
        {
            assert_eq!(c::include(&a, &d).unwrap(), Value::Bool(true));
        }
        // Antisymmetric.
        if c::include(&a, &b).unwrap() == Value::Bool(true)
            && c::include(&b, &a).unwrap() == Value::Bool(true)
        {
            assert_eq!(a, b);
        }
    }
}

#[test]
fn insert_remove_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xC011_0005);
    for _ in 0..CASES {
        let xs = ints(&mut rng, 30, 14);
        let x = rng.gen_range(0i64..30);
        let s = set(&xs);
        let inserted = c::insert(&s, &Value::Int(x)).unwrap();
        assert_eq!(
            c::member(&Value::Int(x), &inserted).unwrap(),
            Value::Bool(true)
        );
        let removed = c::remove(&inserted, &Value::Int(x)).unwrap();
        assert_eq!(
            c::member(&Value::Int(x), &removed).unwrap(),
            Value::Bool(false)
        );
        // For bags, insert then remove is the identity.
        let bq = bag(&xs);
        let round = c::remove(&c::insert(&bq, &Value::Int(x)).unwrap(), &Value::Int(x)).unwrap();
        assert_eq!(round, bq);
    }
}

#[test]
fn convert_respects_kinds() {
    let mut rng = StdRng::seed_from_u64(0xC011_0006);
    for _ in 0..CASES {
        let b = bag(&ints(&mut rng, 10, 19));
        // bag -> set drops duplicates; set size <= bag size.
        let s = c::convert(&b, CollKind::Set).unwrap();
        assert!(count_of(&s) <= count_of(&b));
        // bag -> list -> bag is the identity (canonical order).
        let l = c::convert(&b, CollKind::List).unwrap();
        assert_eq!(c::convert(&l, CollKind::Bag).unwrap(), b);
        // set -> set is the identity.
        assert_eq!(c::convert(&s, CollKind::Set).unwrap(), s);
    }
}

#[test]
fn quantifiers_match_iterator_semantics() {
    let mut rng = StdRng::seed_from_u64(0xC011_0007);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..12);
        let bools: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();
        let coll = Value::list(bools.iter().map(|b| Value::Bool(*b)).collect());
        assert_eq!(
            c::quant_all(&coll).unwrap(),
            Value::Bool(bools.iter().all(|b| *b))
        );
        assert_eq!(
            c::quant_exist(&coll).unwrap(),
            Value::Bool(bools.iter().any(|b| *b))
        );
    }
}

#[test]
fn append_concatenates() {
    let mut rng = StdRng::seed_from_u64(0xC011_0008);
    for _ in 0..CASES {
        let a = ints(&mut rng, 30, 9);
        let b = ints(&mut rng, 30, 9);
        let la = Value::list(a.iter().copied().map(Value::Int).collect());
        let lb = Value::list(b.iter().copied().map(Value::Int).collect());
        let joined = c::append(&la, &lb).unwrap();
        let expected: Vec<Value> = a.iter().chain(b.iter()).copied().map(Value::Int).collect();
        assert_eq!(joined, Value::list(expected));
    }
}
