//! Translation corpus: canonical-form snapshots for a battery of ESQL
//! shapes, locking down the exact LERA the rewriter receives.

use eds_esql::{install_source, parse_query, Catalog};
use eds_lera::{translate_query, SchemaCtx};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    install_source(
        &mut c,
        "TYPE Tag ENUMERATION OF ('a', 'b') ;
         TYPE Tags SET OF Tag ;
         TABLE R (K : INT, V : INT, Tags : Tags) ;
         TABLE S (K : INT, W : INT) ;
         CREATE VIEW RV (K, V) AS SELECT K, V FROM R WHERE V > 0 ;",
    )
    .unwrap();
    c
}

fn canonical(sql: &str) -> String {
    let c = catalog();
    let ctx = SchemaCtx::new(&c);
    let q = parse_query(sql).unwrap();
    let (expr, _) = translate_query(&q, &ctx).unwrap();
    expr.to_string()
}

#[test]
fn snapshot_corpus() {
    let cases = [
        (
            "SELECT V FROM R WHERE K = 1 ;",
            "search((R), [1.1 = 1], (1.2))",
        ),
        (
            "SELECT R.V, S.W FROM R, S WHERE R.K = S.K ;",
            "search((R, S), [1.1 = 2.1], (1.2, 2.2))",
        ),
        (
            "SELECT V FROM RV WHERE K <> 2 ;",
            "search((search((R), [1.2 > 0], (1.1, 1.2))), [1.1 <> 2], (1.2))",
        ),
        (
            "SELECT K FROM R UNION SELECT K FROM S ;",
            "union({search((R), [TRUE], (1.1)), search((S), [TRUE], (1.1))})",
        ),
        (
            "SELECT DISTINCT V FROM R ;",
            "dedup(search((R), [TRUE], (1.2)))",
        ),
        (
            "SELECT K, MakeSet(V) FROM R GROUP BY K ;",
            "nest(search((R), [TRUE], (1.1, 1.2)), (2), (1), SET)",
        ),
        (
            "SELECT K, COUNT(MakeSet(V)) FROM R GROUP BY K ;",
            "project(nest(search((R), [TRUE], (1.1, 1.2)), (2), (1), SET), (1.1, COUNT(1.2)))",
        ),
        (
            "SELECT K FROM R WHERE V IN (1, 2) ;",
            "search((R), [MEMBER(1.2, MAKESET(1, 2))], (1.1))",
        ),
        (
            "SELECT K FROM R WHERE K IN (SELECT K FROM S) ;",
            "search((R, dedup(search((S), [TRUE], (1.1)))), [1.1 = 2.1], (1.1))",
        ),
        (
            "SELECT K FROM R WHERE MEMBER('a', Tags) AND NOT (V > 3) ;",
            "search((R), [MEMBER('a', 1.3) ∧ ¬(1.2 > 3)], (1.1))",
        ),
    ];
    for (sql, expected) in cases {
        assert_eq!(canonical(sql), expected, "for {sql}");
    }
}

#[test]
fn recursive_view_canonical_form() {
    let mut c = catalog();
    install_source(
        &mut c,
        "CREATE VIEW CLOSURE (K, W) AS
         ( SELECT K, W FROM S
           UNION SELECT A.K, B.W FROM CLOSURE A, CLOSURE B WHERE A.W = B.K ) ;",
    )
    .unwrap();
    let ctx = SchemaCtx::new(&c);
    let q = parse_query("SELECT W FROM CLOSURE WHERE K = 0 ;").unwrap();
    let (expr, _) = translate_query(&q, &ctx).unwrap();
    assert_eq!(
        expr.to_string(),
        "search((fix(CLOSURE, union({search((S), [TRUE], (1.1, 1.2)), \
         search((CLOSURE, CLOSURE), [1.2 = 2.1], (1.1, 2.2))}))), [1.1 = 0], (1.2))"
    );
}
