//! A logical cost model for LERA plans.
//!
//! The paper's rewriter is a *logical* optimizer: "permutation rules are
//! heuristic and do not guarantee a better processing plan". To quantify
//! the heuristics — and, since the cost-guided tier, to *arbitrate*
//! between candidate rewrites — we estimate, for each plan, the number
//! of tuples every operator touches under naive (nested-loop,
//! naive-fixpoint) evaluation. Lower cost ⇒ less work for any plausible
//! physical engine.
//!
//! The model is catalog-backed: the engine feeds it per-relation
//! [`RelationStats`] (row counts plus per-column distinct-count/min-max
//! sketches, see `eds-engine`'s `stats` module), and selectivities are
//! derived from them where the predicate shape allows:
//!
//! * `attr = const` → `(1 − null_frac) / distinct`;
//! * `attr₁ = attr₂` across inputs (join) → `1 / max(d₁, d₂)`;
//! * `attr <> const` → `(1 − null_frac) · (1 − 1/distinct)`;
//! * range conjuncts on one attribute are combined into an interval and
//!   interpolated against `[min, max]` — so `x BETWEEN a AND b`
//!   (translated as `x >= a AND x <= b`) estimates `(b − a)/(max − min)`
//!   rather than the product of two one-sided guesses;
//! * `x IN (c₁..cₖ)` (translated as `MEMBER(x, MAKESET(..))`) →
//!   `min(k/distinct, 1)`.
//!
//! Attribute references only resolve to sketches when the operator input
//! is a stored base relation; everywhere else the original constant
//! heuristics apply unchanged, so plans over derived inputs degrade
//! gracefully instead of erroring.

use std::collections::HashMap;

use crate::expr::Expr;
use crate::scalar::{CmpOp, Scalar};

/// Per-column statistics, mirrored from the engine's sketches (`lera`
/// cannot depend on `eds-engine`; the `Dbms` facade converts).
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Estimated distinct non-NULL values (0 = unknown).
    pub distinct: f64,
    /// Smallest numeric value, when the column holds numbers.
    pub min: Option<f64>,
    /// Largest numeric value.
    pub max: Option<f64>,
    /// Fraction of NULLs.
    pub null_frac: f64,
}

/// Per-relation statistics: cardinality plus column sketches.
#[derive(Debug, Clone, Default)]
pub struct RelationStats {
    /// Row count.
    pub card: f64,
    /// Column sketches in schema order; may be empty (cardinality-only).
    pub columns: Vec<ColumnStats>,
}

impl RelationStats {
    /// Cardinality-only stats (no column sketches).
    pub fn with_card(card: f64) -> Self {
        RelationStats {
            card,
            columns: Vec::new(),
        }
    }

    /// Column stats at a 1-based attribute position.
    pub fn column(&self, attr1: usize) -> Option<&ColumnStats> {
        self.columns.get(attr1.checked_sub(1)?)
    }
}

/// Cardinality estimates for base relations plus selectivity formulas.
#[derive(Debug, Clone)]
pub struct CostModel {
    stats: HashMap<String, RelationStats>,
    /// Cardinality assumed for relations without an estimate.
    pub default_card: f64,
    /// Assumed number of iterations of a fixpoint.
    pub fix_rounds: f64,
    /// Assumed growth of a fixpoint relative to its seed.
    pub fix_growth: f64,
    /// Per-tuple surcharge for each operator node of a qualification
    /// (comparisons, connectives, arithmetic). The classic formulas
    /// charge a flat unit per tuple regardless of predicate complexity;
    /// a positive weight makes structurally cheaper qualifications win,
    /// which the rule-discovery cost oracle relies on to rank candidate
    /// rewrites. The default `0.0` keeps every classic estimate
    /// unchanged.
    pub pred_op_weight: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            stats: HashMap::new(),
            default_card: 1000.0,
            fix_rounds: 4.0,
            fix_growth: 3.0,
            pred_op_weight: 0.0,
        }
    }
}

/// A cost estimate: total work and final output cardinality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Total tuples touched across all operators.
    pub cost: f64,
    /// Estimated output cardinality.
    pub card: f64,
}

/// Attribute-resolution context for a predicate: one entry per input of
/// the enclosing operator (1-based `rel` indexes into it), `None` when
/// the input is not a stored relation with sketches.
type StatsCtx<'a> = [Option<&'a RelationStats>];

/// Accumulated constraints on one attribute within a conjunct list.
#[derive(Debug, Clone, Copy, Default)]
struct AttrInterval {
    lo: Option<f64>,
    hi: Option<f64>,
    eq: Option<f64>,
}

impl CostModel {
    /// Empty model with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the cardinality of a base relation (keeps any column
    /// sketches already registered for it).
    pub fn set_card(&mut self, relation: &str, card: f64) {
        self.stats
            .entry(relation.to_ascii_uppercase())
            .or_default()
            .card = card;
    }

    /// Register full statistics for a base relation.
    pub fn set_stats(&mut self, relation: &str, stats: RelationStats) {
        self.stats.insert(relation.to_ascii_uppercase(), stats);
    }

    /// Registered statistics for a relation, if any.
    pub fn stats(&self, relation: &str) -> Option<&RelationStats> {
        self.stats.get(&relation.to_ascii_uppercase())
    }

    fn resolve<'a>(&'a self, e: &Expr, locals: &HashMap<String, f64>) -> Option<&'a RelationStats> {
        match e {
            // A local (fixpoint recursion variable) shadows any stored
            // relation of the same name.
            Expr::Base(name) if !locals.contains_key(&name.to_ascii_uppercase()) => {
                self.stats(name).filter(|s| !s.columns.is_empty())
            }
            _ => None,
        }
    }

    /// Estimated selectivity of a qualification without attribute
    /// context (constant heuristics only).
    pub fn selectivity(&self, pred: &Scalar) -> f64 {
        self.selectivity_with(pred, &[])
    }

    /// Estimated selectivity of a qualification against the enclosing
    /// operator's inputs. Range conjuncts on the same sketched attribute
    /// are combined into an interval before interpolation; everything
    /// else multiplies independently.
    pub fn selectivity_with(&self, pred: &Scalar, ctx: &StatsCtx) -> f64 {
        let mut intervals: HashMap<(usize, usize), AttrInterval> = HashMap::new();
        let mut sel = 1.0;
        for c in pred.conjuncts() {
            match range_constraint(c) {
                Some((rel, attr, op, v)) if self.sketch(ctx, rel, attr).is_some() => {
                    let iv = intervals.entry((rel, attr)).or_default();
                    match op {
                        CmpOp::Eq => iv.eq = Some(v),
                        CmpOp::Lt | CmpOp::Le => {
                            iv.hi = Some(iv.hi.map_or(v, |h| h.min(v)));
                        }
                        CmpOp::Gt | CmpOp::Ge => {
                            iv.lo = Some(iv.lo.map_or(v, |l| l.max(v)));
                        }
                        CmpOp::Ne => unreachable!("filtered by range_constraint"),
                    }
                }
                _ => sel *= self.conjunct_selectivity(c, ctx),
            }
        }
        for ((rel, attr), iv) in intervals {
            let col = self.sketch(ctx, rel, attr).expect("inserted above");
            sel *= interval_selectivity(col, iv);
        }
        sel.clamp(0.0, 1.0)
    }

    /// Column sketch behind `rel.attr`, when that input is a stored
    /// relation with statistics.
    fn sketch<'a>(&self, ctx: &'a StatsCtx, rel: usize, attr: usize) -> Option<&'a ColumnStats> {
        ctx.get(rel.checked_sub(1)?)?.and_then(|s| s.column(attr))
    }

    fn conjunct_selectivity(&self, c: &Scalar, ctx: &StatsCtx) -> f64 {
        match c {
            Scalar::Const(eds_adt::Value::Bool(true)) => 1.0,
            Scalar::Const(eds_adt::Value::Bool(false)) => 0.0,
            Scalar::Cmp { op, left, right } => {
                let attrs = (as_attr(left), as_attr(right));
                match (op, attrs) {
                    // Join predicate: 1/max(d₁, d₂) under the usual
                    // containment assumption, constant fallback.
                    (CmpOp::Eq, (Some((r1, a1)), Some((r2, a2)))) => {
                        match (self.sketch(ctx, r1, a1), self.sketch(ctx, r2, a2)) {
                            (Some(c1), Some(c2)) if c1.distinct > 0.0 && c2.distinct > 0.0 => {
                                (1.0 / c1.distinct.max(c2.distinct)).min(1.0)
                            }
                            _ => 0.05,
                        }
                    }
                    // Constant (or parameter) selection on a sketched
                    // attribute: uniform 1/distinct over non-NULLs.
                    (CmpOp::Eq, (Some((r, a)), None)) | (CmpOp::Eq, (None, Some((r, a)))) => {
                        match self.sketch(ctx, r, a) {
                            Some(col) if col.distinct > 0.0 => {
                                ((1.0 - col.null_frac) / col.distinct).min(1.0)
                            }
                            _ => 0.10,
                        }
                    }
                    (CmpOp::Eq, _) => 0.10,
                    (CmpOp::Ne, (Some((r, a)), None)) | (CmpOp::Ne, (None, Some((r, a)))) => {
                        match self.sketch(ctx, r, a) {
                            Some(col) if col.distinct > 0.0 => {
                                ((1.0 - col.null_frac) * (1.0 - 1.0 / col.distinct)).clamp(0.0, 1.0)
                            }
                            _ => 0.90,
                        }
                    }
                    (CmpOp::Ne, _) => 0.90,
                    _ => 0.33,
                }
            }
            // `x IN (c₁..cₖ)` translates to MEMBER(x, MAKESET(c₁..cₖ)):
            // k/distinct when x is a sketched attribute and the list is
            // enumerable, the old constant otherwise.
            Scalar::Call { func, args } if func == "MEMBER" => {
                let sketched = args
                    .first()
                    .and_then(as_attr)
                    .and_then(|(r, a)| self.sketch(ctx, r, a));
                match (sketched, args.get(1).and_then(in_list_len)) {
                    (Some(col), Some(k)) if col.distinct > 0.0 => {
                        ((1.0 - col.null_frac) * k as f64 / col.distinct).min(1.0)
                    }
                    _ => 0.25,
                }
            }
            Scalar::Or(a, b) => {
                let sa = self.conjunct_selectivity(a, ctx);
                let sb = self.conjunct_selectivity(b, ctx);
                (sa + sb - sa * sb).min(1.0)
            }
            Scalar::Not(a) => 1.0 - self.conjunct_selectivity(a, ctx),
            _ => 0.50,
        }
    }

    /// Estimate a plan. Fixpoint recursion variables are tracked in
    /// `locals` while descending.
    pub fn estimate(&self, e: &Expr) -> Estimate {
        self.estimate_with(e, &HashMap::new())
    }

    /// Per-tuple predicate surcharge: `pred_op_weight` units per
    /// operator node of the qualification. Zero-cost when the weight is
    /// zero (the default), so the classic formulas are untouched.
    fn pred_weight(&self, pred: &Scalar) -> f64 {
        if self.pred_op_weight == 0.0 {
            return 0.0;
        }
        self.pred_op_weight * op_count(pred) as f64
    }

    fn estimate_with(&self, e: &Expr, locals: &HashMap<String, f64>) -> Estimate {
        match e {
            Expr::Base(name) => {
                let key = name.to_ascii_uppercase();
                let card = locals
                    .get(&key)
                    .copied()
                    .or_else(|| self.stats.get(&key).map(|s| s.card))
                    .unwrap_or(self.default_card);
                Estimate { cost: card, card }
            }
            Expr::Filter { input, pred } => {
                let i = self.estimate_with(input, locals);
                let ctx = [self.resolve(input, locals)];
                Estimate {
                    cost: i.cost + i.card + i.card * self.pred_weight(pred),
                    card: i.card * self.selectivity_with(pred, &ctx),
                }
            }
            Expr::Project { input, .. } | Expr::Dedup(input) => {
                let i = self.estimate_with(input, locals);
                Estimate {
                    cost: i.cost + i.card,
                    card: i.card,
                }
            }
            Expr::Join { left, right, pred } => {
                let l = self.estimate_with(left, locals);
                let r = self.estimate_with(right, locals);
                let ctx = [self.resolve(left, locals), self.resolve(right, locals)];
                let work = l.card * r.card;
                Estimate {
                    cost: l.cost + r.cost + work + work * self.pred_weight(pred),
                    card: work * self.selectivity_with(pred, &ctx),
                }
            }
            Expr::Union(items) => {
                let mut cost = 0.0;
                let mut card = 0.0;
                for item in items {
                    let e = self.estimate_with(item, locals);
                    cost += e.cost;
                    card += e.card;
                }
                Estimate { cost, card }
            }
            Expr::Difference(a, b) => {
                let ea = self.estimate_with(a, locals);
                let eb = self.estimate_with(b, locals);
                // Half of the smaller side is assumed to overlap.
                let overlap = 0.5 * ea.card.min(eb.card);
                Estimate {
                    cost: ea.cost + eb.cost + ea.card + eb.card,
                    card: (ea.card - overlap).max(0.0),
                }
            }
            Expr::Intersect(a, b) => {
                let ea = self.estimate_with(a, locals);
                let eb = self.estimate_with(b, locals);
                Estimate {
                    cost: ea.cost + eb.cost + ea.card + eb.card,
                    card: 0.5 * ea.card.min(eb.card),
                }
            }
            Expr::Search { inputs, pred, .. } => {
                let ests: Vec<Estimate> = inputs
                    .iter()
                    .map(|i| self.estimate_with(i, locals))
                    .collect();
                let children: f64 = ests.iter().map(|e| e.cost).sum();
                // The engine short-circuits a FALSE qualification before
                // touching the cross product; mirror that.
                if pred.is_false() {
                    return Estimate {
                        cost: children,
                        card: 0.0,
                    };
                }
                let ctx: Vec<Option<&RelationStats>> =
                    inputs.iter().map(|i| self.resolve(i, locals)).collect();
                let work: f64 = ests.iter().map(|e| e.card.max(1.0)).product();
                Estimate {
                    cost: children + work + work * self.pred_weight(pred),
                    card: work * self.selectivity_with(pred, &ctx),
                }
            }
            Expr::Fix { name, body } => {
                // Seed estimate: body with the variable empty-ish.
                let mut locals2 = locals.clone();
                locals2.insert(name.to_ascii_uppercase(), 1.0);
                let seed = self.estimate_with(body, &locals2);
                // Steady-state round: variable at its grown size.
                let grown = seed.card * self.fix_growth;
                locals2.insert(name.to_ascii_uppercase(), grown.max(1.0));
                let round = self.estimate_with(body, &locals2);
                Estimate {
                    cost: seed.cost + self.fix_rounds * round.cost,
                    card: grown,
                }
            }
            Expr::Nest { input, group, .. } => {
                let i = self.estimate_with(input, locals);
                // One output tuple per distinct grouping combination:
                // bounded by the product of the group columns' distinct
                // counts when the input is sketched.
                let groups = self
                    .resolve(input, locals)
                    .map_or(i.card * 0.5, |s| {
                        group
                            .iter()
                            .map(|&a| s.column(a).map_or(i.card.max(1.0), |c| c.distinct.max(1.0)))
                            .product::<f64>()
                    })
                    .min(i.card);
                Estimate {
                    cost: i.cost + i.card,
                    card: groups.max(1.0),
                }
            }
            Expr::Unnest { input, .. } => {
                let i = self.estimate_with(input, locals);
                Estimate {
                    cost: i.cost + i.card,
                    card: i.card * 4.0,
                }
            }
        }
    }
}

/// `Some((rel, attr))` when the scalar is a plain attribute reference.
fn as_attr(s: &Scalar) -> Option<(usize, usize)> {
    match s {
        Scalar::Attr { rel, attr } => Some((*rel, *attr)),
        _ => None,
    }
}

/// Decompose `attr ⋈ const` (either orientation, numeric constant) into
/// `(rel, attr, op-with-attr-on-the-left, value)` for interval
/// accumulation. `Ne` and non-numeric constants are left to the
/// per-conjunct path.
fn range_constraint(c: &Scalar) -> Option<(usize, usize, CmpOp, f64)> {
    let Scalar::Cmp { op, left, right } = c else {
        return None;
    };
    if *op == CmpOp::Ne {
        return None;
    }
    let (rel, attr, v, op) = match (as_attr(left), as_attr(right)) {
        (Some((r, a)), None) => (r, a, numeric_const(right)?, *op),
        (None, Some((r, a))) => (r, a, numeric_const(left)?, flip(*op)),
        _ => return None,
    };
    Some((rel, attr, op, v))
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

/// Operator nodes of a qualification: connectives, comparisons, field
/// accesses and calls count one each; attribute references, literals and
/// parameters are free.
fn op_count(s: &Scalar) -> usize {
    match s {
        Scalar::Attr { .. } | Scalar::Const(_) | Scalar::Param(_) => 0,
        Scalar::Field { input, .. } => 1 + op_count(input),
        Scalar::Call { args, .. } => 1 + args.iter().map(op_count).sum::<usize>(),
        Scalar::Cmp { left, right, .. } => 1 + op_count(left) + op_count(right),
        Scalar::And(a, b) | Scalar::Or(a, b) => 1 + op_count(a) + op_count(b),
        Scalar::Not(a) => 1 + op_count(a),
    }
}

fn numeric_const(s: &Scalar) -> Option<f64> {
    match s {
        Scalar::Const(eds_adt::Value::Int(i)) => Some(*i as f64),
        Scalar::Const(eds_adt::Value::Real(r)) => Some(r.0),
        _ => None,
    }
}

/// Element count of an enumerable IN-list (`MAKESET(c₁..cₖ)` call or a
/// set/list literal).
fn in_list_len(s: &Scalar) -> Option<usize> {
    match s {
        Scalar::Call { func, args } if func == "MAKESET" || func == "MAKELIST" => Some(args.len()),
        Scalar::Const(eds_adt::Value::Coll(_, items)) => Some(items.len()),
        _ => None,
    }
}

/// Selectivity of the combined constraints on one sketched attribute.
fn interval_selectivity(col: &ColumnStats, iv: AttrInterval) -> f64 {
    let non_null = 1.0 - col.null_frac;
    if let Some(v) = iv.eq {
        // Equality dominates; a contradictory range empties the result.
        let in_range = iv.lo.is_none_or(|l| v >= l) && iv.hi.is_none_or(|h| v <= h);
        if !in_range {
            return 0.0;
        }
        return if col.distinct > 0.0 {
            (non_null / col.distinct).min(1.0)
        } else {
            0.10
        };
    }
    let (Some(min), Some(max)) = (col.min, col.max) else {
        // Non-numeric column: one constant guess per bound present.
        let bounds = usize::from(iv.lo.is_some()) + usize::from(iv.hi.is_some());
        return 0.33f64.powi(bounds as i32);
    };
    let width = (max - min).max(f64::EPSILON);
    let lo = iv.lo.map_or(min, |l| l.clamp(min, max));
    let hi = iv.hi.map_or(max, |h| h.clamp(min, max));
    (non_null * ((hi - lo) / width)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        let mut m = CostModel::new();
        m.set_card("R", 1000.0);
        m.set_card("S", 100.0);
        m
    }

    fn col(distinct: f64, min: f64, max: f64) -> ColumnStats {
        ColumnStats {
            distinct,
            min: Some(min),
            max: Some(max),
            null_frac: 0.0,
        }
    }

    /// R(K, V): 1000 rows, K unique in [0, 999], V 20-valued in [0, 19].
    fn sketched() -> CostModel {
        let mut m = CostModel::new();
        m.set_stats(
            "R",
            RelationStats {
                card: 1000.0,
                columns: vec![col(1000.0, 0.0, 999.0), col(20.0, 0.0, 19.0)],
            },
        );
        m.set_stats(
            "S",
            RelationStats {
                card: 100.0,
                columns: vec![col(100.0, 0.0, 99.0)],
            },
        );
        m
    }

    fn filter(pred: Scalar) -> Expr {
        Expr::Filter {
            input: Box::new(Expr::base("R")),
            pred,
        }
    }

    #[test]
    fn pred_op_weight_charges_per_operator_node() {
        let eq = || Scalar::eq(Scalar::attr(1, 1), Scalar::lit(0));
        let simple = filter(eq());
        let wrapped = filter(Scalar::Not(Box::new(Scalar::Not(Box::new(eq())))));
        // Default weight: predicate complexity is invisible (classic
        // formulas, every pinned estimate in this file unchanged).
        let m = model();
        assert_eq!(m.estimate(&simple).cost, m.estimate(&wrapped).cost);
        // Positive weight: one unit per operator node per tuple, so the
        // double negation costs two extra ops x 1000 tuples.
        let mut w = model();
        w.pred_op_weight = 1.0;
        let s = w.estimate(&simple);
        let x = w.estimate(&wrapped);
        assert_eq!(s.cost, 3000.0);
        assert_eq!(x.cost, 5000.0);
        // Cardinality estimates are selectivity-only and stay put
        // (modulo the NOT-complement float rounding).
        assert!((s.card - x.card).abs() < 1e-9, "{} vs {}", s.card, x.card);
    }

    #[test]
    fn filter_pushdown_is_cheaper() {
        let m = model();
        // search((R, S), [R.1 = S.1 AND S.2 = c], ...) vs pushing the
        // selection onto S first.
        let join_pred = Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1));
        let sel_pred = Scalar::eq(Scalar::attr(2, 2), Scalar::lit(5));
        let unpushed = Expr::search(
            vec![Expr::base("R"), Expr::base("S")],
            Scalar::and(join_pred.clone(), sel_pred.clone()),
            vec![Scalar::attr(1, 1)],
        );
        let pushed = Expr::search(
            vec![
                Expr::base("R"),
                Expr::search(
                    vec![Expr::base("S")],
                    sel_pred.map_attrs(&|_, a| Scalar::attr(1, a)),
                    vec![Scalar::attr(1, 1), Scalar::attr(1, 2)],
                ),
            ],
            join_pred,
            vec![Scalar::attr(1, 1)],
        );
        let u = m.estimate(&unpushed);
        let p = m.estimate(&pushed);
        assert!(p.cost < u.cost, "pushed {} !< unpushed {}", p.cost, u.cost);
        // Both produce (roughly) the same cardinality.
        assert!((u.card - p.card).abs() / u.card < 0.01);
    }

    #[test]
    fn false_qualification_zeroes_cardinality() {
        let m = model();
        let e = Expr::search(
            vec![Expr::base("R")],
            Scalar::false_(),
            vec![Scalar::attr(1, 1)],
        );
        assert_eq!(m.estimate(&e).card, 0.0);
    }

    #[test]
    fn fix_costs_scale_with_rounds() {
        let m = model();
        let body = Expr::Union(vec![
            Expr::base("S"),
            Expr::search(
                vec![Expr::base("T"), Expr::base("S")],
                Scalar::eq(Scalar::attr(1, 2), Scalar::attr(2, 1)),
                vec![Scalar::attr(1, 1), Scalar::attr(2, 2)],
            ),
        ]);
        let fix = Expr::Fix {
            name: "T".into(),
            body: Box::new(body),
        };
        let est = m.estimate(&fix);
        assert!(est.cost > 0.0);
        assert!(est.card > 100.0); // grows beyond the seed
    }

    #[test]
    fn selectivity_heuristics_ordered() {
        let m = model();
        let join = Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1));
        let eq_const = Scalar::eq(Scalar::attr(1, 1), Scalar::lit(1));
        let range = Scalar::cmp(CmpOp::Lt, Scalar::attr(1, 1), Scalar::lit(1));
        assert!(m.selectivity(&join) < m.selectivity(&eq_const));
        assert!(m.selectivity(&eq_const) < m.selectivity(&range));
        assert_eq!(m.selectivity(&Scalar::true_()), 1.0);
    }

    #[test]
    fn eq_const_uses_distinct_count() {
        let m = sketched();
        // V has 20 distinct values → 1/20 of the rows.
        let e = filter(Scalar::eq(Scalar::attr(1, 2), Scalar::lit(3)));
        assert!((m.estimate(&e).card - 50.0).abs() < 1e-9);
        // K is unique → a point lookup.
        let k = filter(Scalar::eq(Scalar::attr(1, 1), Scalar::lit(3)));
        assert!((m.estimate(&k).card - 1.0).abs() < 1e-9);
    }

    #[test]
    fn join_selectivity_is_one_over_max_distinct() {
        let m = sketched();
        let join = Expr::search(
            vec![Expr::base("R"), Expr::base("S")],
            Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1)),
            vec![Scalar::attr(1, 1)],
        );
        // 1000 × 100 combinations × 1/max(1000, 100) = 100.
        assert!((m.estimate(&join).card - 100.0).abs() < 1e-9);
    }

    #[test]
    fn between_combines_bounds_into_one_interval() {
        let m = sketched();
        // K BETWEEN 100 AND 299 over [0, 999] → exactly 20% of the
        // domain, not 0.33².
        let pred = Scalar::and(
            Scalar::cmp(CmpOp::Ge, Scalar::attr(1, 1), Scalar::lit(100)),
            Scalar::cmp(CmpOp::Le, Scalar::attr(1, 1), Scalar::lit(299)),
        );
        let sel = m.estimate(&filter(pred)).card / 1000.0;
        assert!((sel - 0.1992).abs() < 0.01, "interval sel {sel}");
        // One-sided range interpolates against the matching extremum.
        let upper = Scalar::cmp(CmpOp::Lt, Scalar::attr(1, 1), Scalar::lit(500));
        let sel = m.estimate(&filter(upper)).card / 1000.0;
        assert!((sel - 0.5).abs() < 0.01, "one-sided sel {sel}");
        // Contradictory bounds empty the interval.
        let empty = Scalar::and(
            Scalar::cmp(CmpOp::Ge, Scalar::attr(1, 1), Scalar::lit(800)),
            Scalar::cmp(CmpOp::Le, Scalar::attr(1, 1), Scalar::lit(100)),
        );
        assert_eq!(m.estimate(&filter(empty)).card, 0.0);
    }

    #[test]
    fn in_list_uses_list_length_over_distinct() {
        let m = sketched();
        // V IN (1, 2, 3, 4) over 20 distinct values → 4/20.
        let pred = Scalar::call(
            "MEMBER",
            vec![
                Scalar::attr(1, 2),
                Scalar::call(
                    "MAKESET",
                    vec![
                        Scalar::lit(1),
                        Scalar::lit(2),
                        Scalar::lit(3),
                        Scalar::lit(4),
                    ],
                ),
            ],
        );
        let sel = m.estimate(&filter(pred.clone())).card / 1000.0;
        assert!((sel - 0.2).abs() < 1e-9, "IN-list sel {sel}");
        // Without sketches the old constant survives.
        assert_eq!(model().selectivity(&pred), 0.25);
    }

    #[test]
    fn ne_and_nulls_shrink_selectivity() {
        let mut m = sketched();
        // 25% NULLs in V: both Eq and Ne scale by the non-NULL fraction.
        m.set_stats(
            "N",
            RelationStats {
                card: 400.0,
                columns: vec![ColumnStats {
                    distinct: 10.0,
                    min: Some(0.0),
                    max: Some(9.0),
                    null_frac: 0.25,
                }],
            },
        );
        let base = Expr::base("N");
        let eq = Expr::Filter {
            input: Box::new(base.clone()),
            pred: Scalar::eq(Scalar::attr(1, 1), Scalar::lit(3)),
        };
        assert!((m.estimate(&eq).card - 400.0 * 0.075).abs() < 1e-9);
        let ne = Expr::Filter {
            input: Box::new(base),
            pred: Scalar::cmp(CmpOp::Ne, Scalar::attr(1, 1), Scalar::lit(3)),
        };
        assert!((m.estimate(&ne).card - 400.0 * 0.675).abs() < 1e-9);
    }

    #[test]
    fn nest_groups_bounded_by_distinct_product() {
        let m = sketched();
        let nest = Expr::Nest {
            input: Box::new(Expr::base("R")),
            group: vec![2],
            nested: vec![1],
            kind: eds_adt::CollKind::Set,
        };
        // V has 20 distinct values → 20 groups, not card/2.
        assert!((m.estimate(&nest).card - 20.0).abs() < 1e-9);
    }
}
