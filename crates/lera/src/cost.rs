//! A logical cost model for LERA plans.
//!
//! The paper's rewriter is a *logical* optimizer: "permutation rules are
//! heuristic and do not guarantee a better processing plan". To quantify
//! the heuristics in the benchmark harness we estimate, for each plan, the
//! number of tuples every operator touches under naive (nested-loop,
//! naive-fixpoint) evaluation. Lower cost ⇒ less work for any plausible
//! physical engine.

use std::collections::HashMap;

use crate::expr::Expr;
use crate::scalar::{CmpOp, Scalar};

/// Cardinality estimates for base relations plus selectivity heuristics.
#[derive(Debug, Clone)]
pub struct CostModel {
    cards: HashMap<String, f64>,
    /// Cardinality assumed for relations without an estimate.
    pub default_card: f64,
    /// Assumed number of iterations of a fixpoint.
    pub fix_rounds: f64,
    /// Assumed growth of a fixpoint relative to its seed.
    pub fix_growth: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cards: HashMap::new(),
            default_card: 1000.0,
            fix_rounds: 4.0,
            fix_growth: 3.0,
        }
    }
}

/// A cost estimate: total work and final output cardinality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Total tuples touched across all operators.
    pub cost: f64,
    /// Estimated output cardinality.
    pub card: f64,
}

impl CostModel {
    /// Empty model with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the cardinality of a base relation.
    pub fn set_card(&mut self, relation: &str, card: f64) {
        self.cards.insert(relation.to_ascii_uppercase(), card);
    }

    /// Estimated selectivity of a qualification (product over conjuncts).
    pub fn selectivity(&self, pred: &Scalar) -> f64 {
        pred.conjuncts()
            .iter()
            .map(|c| self.conjunct_selectivity(c))
            .product()
    }

    fn conjunct_selectivity(&self, c: &Scalar) -> f64 {
        match c {
            Scalar::Const(eds_adt::Value::Bool(true)) => 1.0,
            Scalar::Const(eds_adt::Value::Bool(false)) => 0.0,
            Scalar::Cmp { op, left, right } => {
                let both_attrs = matches!(left.as_ref(), Scalar::Attr { .. })
                    && matches!(right.as_ref(), Scalar::Attr { .. });
                match (op, both_attrs) {
                    (CmpOp::Eq, true) => 0.05,  // join predicate
                    (CmpOp::Eq, false) => 0.10, // constant selection
                    (CmpOp::Ne, _) => 0.90,
                    _ => 0.33,
                }
            }
            Scalar::Call { func, .. } if func == "MEMBER" => 0.25,
            Scalar::Or(a, b) => {
                let sa = self.conjunct_selectivity(a);
                let sb = self.conjunct_selectivity(b);
                (sa + sb - sa * sb).min(1.0)
            }
            Scalar::Not(a) => 1.0 - self.conjunct_selectivity(a),
            _ => 0.50,
        }
    }

    /// Estimate a plan. Fixpoint recursion variables are tracked in
    /// `locals` while descending.
    pub fn estimate(&self, e: &Expr) -> Estimate {
        self.estimate_with(e, &HashMap::new())
    }

    fn estimate_with(&self, e: &Expr, locals: &HashMap<String, f64>) -> Estimate {
        match e {
            Expr::Base(name) => {
                let key = name.to_ascii_uppercase();
                let card = locals
                    .get(&key)
                    .or_else(|| self.cards.get(&key))
                    .copied()
                    .unwrap_or(self.default_card);
                Estimate { cost: card, card }
            }
            Expr::Filter { input, pred } => {
                let i = self.estimate_with(input, locals);
                Estimate {
                    cost: i.cost + i.card,
                    card: i.card * self.selectivity(pred),
                }
            }
            Expr::Project { input, .. } | Expr::Dedup(input) => {
                let i = self.estimate_with(input, locals);
                Estimate {
                    cost: i.cost + i.card,
                    card: i.card,
                }
            }
            Expr::Join { left, right, pred } => {
                let l = self.estimate_with(left, locals);
                let r = self.estimate_with(right, locals);
                let work = l.card * r.card;
                Estimate {
                    cost: l.cost + r.cost + work,
                    card: work * self.selectivity(pred),
                }
            }
            Expr::Union(items) => {
                let mut cost = 0.0;
                let mut card = 0.0;
                for item in items {
                    let e = self.estimate_with(item, locals);
                    cost += e.cost;
                    card += e.card;
                }
                Estimate { cost, card }
            }
            Expr::Difference(a, b) | Expr::Intersect(a, b) => {
                let ea = self.estimate_with(a, locals);
                let eb = self.estimate_with(b, locals);
                Estimate {
                    cost: ea.cost + eb.cost + ea.card + eb.card,
                    card: ea.card * 0.5,
                }
            }
            Expr::Search { inputs, pred, .. } => {
                let ests: Vec<Estimate> = inputs
                    .iter()
                    .map(|i| self.estimate_with(i, locals))
                    .collect();
                let children: f64 = ests.iter().map(|e| e.cost).sum();
                // The engine short-circuits a FALSE qualification before
                // touching the cross product; mirror that.
                if pred.is_false() {
                    return Estimate {
                        cost: children,
                        card: 0.0,
                    };
                }
                let work: f64 = ests.iter().map(|e| e.card.max(1.0)).product();
                Estimate {
                    cost: children + work,
                    card: work * self.selectivity(pred),
                }
            }
            Expr::Fix { name, body } => {
                // Seed estimate: body with the variable empty-ish.
                let mut locals2 = locals.clone();
                locals2.insert(name.to_ascii_uppercase(), 1.0);
                let seed = self.estimate_with(body, &locals2);
                // Steady-state round: variable at its grown size.
                let grown = seed.card * self.fix_growth;
                locals2.insert(name.to_ascii_uppercase(), grown.max(1.0));
                let round = self.estimate_with(body, &locals2);
                Estimate {
                    cost: seed.cost + self.fix_rounds * round.cost,
                    card: grown,
                }
            }
            Expr::Nest { input, .. } => {
                let i = self.estimate_with(input, locals);
                Estimate {
                    cost: i.cost + i.card,
                    card: (i.card * 0.5).max(1.0),
                }
            }
            Expr::Unnest { input, .. } => {
                let i = self.estimate_with(input, locals);
                Estimate {
                    cost: i.cost + i.card,
                    card: i.card * 4.0,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        let mut m = CostModel::new();
        m.set_card("R", 1000.0);
        m.set_card("S", 100.0);
        m
    }

    #[test]
    fn filter_pushdown_is_cheaper() {
        let m = model();
        // search((R, S), [R.1 = S.1 AND S.2 = c], ...) vs pushing the
        // selection onto S first.
        let join_pred = Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1));
        let sel_pred = Scalar::eq(Scalar::attr(2, 2), Scalar::lit(5));
        let unpushed = Expr::search(
            vec![Expr::base("R"), Expr::base("S")],
            Scalar::and(join_pred.clone(), sel_pred.clone()),
            vec![Scalar::attr(1, 1)],
        );
        let pushed = Expr::search(
            vec![
                Expr::base("R"),
                Expr::search(
                    vec![Expr::base("S")],
                    sel_pred.map_attrs(&|_, a| Scalar::attr(1, a)),
                    vec![Scalar::attr(1, 1), Scalar::attr(1, 2)],
                ),
            ],
            join_pred,
            vec![Scalar::attr(1, 1)],
        );
        let u = m.estimate(&unpushed);
        let p = m.estimate(&pushed);
        assert!(p.cost < u.cost, "pushed {} !< unpushed {}", p.cost, u.cost);
        // Both produce (roughly) the same cardinality.
        assert!((u.card - p.card).abs() / u.card < 0.01);
    }

    #[test]
    fn false_qualification_zeroes_cardinality() {
        let m = model();
        let e = Expr::search(
            vec![Expr::base("R")],
            Scalar::false_(),
            vec![Scalar::attr(1, 1)],
        );
        assert_eq!(m.estimate(&e).card, 0.0);
    }

    #[test]
    fn fix_costs_scale_with_rounds() {
        let m = model();
        let body = Expr::Union(vec![
            Expr::base("S"),
            Expr::search(
                vec![Expr::base("T"), Expr::base("S")],
                Scalar::eq(Scalar::attr(1, 2), Scalar::attr(2, 1)),
                vec![Scalar::attr(1, 1), Scalar::attr(2, 2)],
            ),
        ]);
        let fix = Expr::Fix {
            name: "T".into(),
            body: Box::new(body),
        };
        let est = m.estimate(&fix);
        assert!(est.cost > 0.0);
        assert!(est.card > 100.0); // grows beyond the seed
    }

    #[test]
    fn selectivity_heuristics_ordered() {
        let m = model();
        let join = Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1));
        let eq_const = Scalar::eq(Scalar::attr(1, 1), Scalar::lit(1));
        let range = Scalar::cmp(CmpOp::Lt, Scalar::attr(1, 1), Scalar::lit(1));
        assert!(m.selectivity(&join) < m.selectivity(&eq_const));
        assert!(m.selectivity(&eq_const) < m.selectivity(&range));
        assert_eq!(m.selectivity(&Scalar::true_()), 1.0);
    }
}
