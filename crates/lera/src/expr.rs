//! The LERA operator tree.
//!
//! LERA extends Codd's algebra (Section 3) with: n-ary `union*`, n-ary
//! `join*` and the compound `search` (projection + restriction + n-ary
//! join, close to tuple calculus — "optimization opportunities may become
//! hidden in a particular sequence of algebra operators"); the `fix`point
//! operator for recursive views; and `nest`/`unnest` for nested relations.

use eds_adt::CollKind;

use crate::scalar::Scalar;

/// A LERA expression (relation-valued).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A stored relation, view placeholder, or — inside a `fix` body —
    /// the recursion variable.
    Base(String),
    /// `filter`: same scheme as the input, tuples satisfying a possibly
    /// complex condition. Attribute references use `rel = 1`.
    Filter {
        /// Input relation.
        input: Box<Expr>,
        /// Qualification.
        pred: Scalar,
    },
    /// `project`: computes expressions of source attributes as target
    /// attributes.
    Project {
        /// Input relation.
        input: Box<Expr>,
        /// Target attribute expressions.
        exprs: Vec<Scalar>,
    },
    /// Binary join: Cartesian product followed by a filter. Attribute
    /// references use `rel = 1` (left) and `rel = 2` (right).
    Join {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
        /// Join condition.
        pred: Scalar,
    },
    /// n-ary `union*`.
    Union(Vec<Expr>),
    /// Set difference.
    Difference(Box<Expr>, Box<Expr>),
    /// Set intersection.
    Intersect(Box<Expr>, Box<Expr>),
    /// The compound `search` operator: n-ary join of `inputs`, filtered
    /// by `pred`, projected onto `proj`. Attribute references `i.j` index
    /// `inputs` (1-based).
    Search {
        /// Input relations.
        inputs: Vec<Expr>,
        /// Complex condition.
        pred: Scalar,
        /// Projected expressions.
        proj: Vec<Scalar>,
    },
    /// `fix(R, E(R))`: the saturation of `R` under `body`, where
    /// `Base(name)` occurrences inside `body` denote the recursion
    /// variable.
    Fix {
        /// Recursion variable name.
        name: String,
        /// Recursive expression `E(R)`.
        body: Box<Expr>,
    },
    /// `nest`: group by `group` attributes and collect the `nested`
    /// attributes (as tuples when several) into a collection of `kind`.
    /// Output scheme: group attributes then the collection attribute.
    Nest {
        /// Input relation.
        input: Box<Expr>,
        /// 1-based indices of grouping attributes.
        group: Vec<usize>,
        /// 1-based indices of collected attributes.
        nested: Vec<usize>,
        /// Result collection kind.
        kind: CollKind,
    },
    /// `unnest`: flatten the collection stored in attribute `attr`
    /// (1-based), producing one tuple per element.
    Unnest {
        /// Input relation.
        input: Box<Expr>,
        /// 1-based index of the collection attribute.
        attr: usize,
    },
    /// Duplicate elimination (bag → set); the translation of
    /// `SELECT DISTINCT`.
    Dedup(Box<Expr>),
}

impl Expr {
    /// Base-relation helper.
    pub fn base(name: impl Into<String>) -> Expr {
        Expr::Base(name.into())
    }

    /// Search helper.
    pub fn search(inputs: Vec<Expr>, pred: Scalar, proj: Vec<Scalar>) -> Expr {
        Expr::Search { inputs, pred, proj }
    }

    /// Children of this operator, in order.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Base(_) => vec![],
            Expr::Filter { input, .. }
            | Expr::Project { input, .. }
            | Expr::Nest { input, .. }
            | Expr::Unnest { input, .. } => vec![input],
            Expr::Dedup(input) => vec![input],
            Expr::Join { left, right, .. } => vec![left, right],
            Expr::Difference(a, b) | Expr::Intersect(a, b) => vec![a, b],
            Expr::Union(items) => items.iter().collect(),
            Expr::Search { inputs, .. } => inputs.iter().collect(),
            Expr::Fix { body, .. } => vec![body],
        }
    }

    /// Number of operator nodes (base relations count as one).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Scalar expressions attached directly to this operator (its
    /// children's scalars are not included).
    pub fn own_scalars(&self) -> Vec<&Scalar> {
        match self {
            Expr::Filter { pred, .. } | Expr::Join { pred, .. } => vec![pred],
            Expr::Project { exprs, .. } => exprs.iter().collect(),
            Expr::Search { pred, proj, .. } => std::iter::once(pred).chain(proj.iter()).collect(),
            Expr::Base(_)
            | Expr::Union(_)
            | Expr::Difference(..)
            | Expr::Intersect(..)
            | Expr::Fix { .. }
            | Expr::Nest { .. }
            | Expr::Unnest { .. }
            | Expr::Dedup(_) => vec![],
        }
    }

    /// Highest `?` statement-parameter index appearing anywhere in the
    /// plan, if any — `Some(n)` means the plan needs a bind array of at
    /// least `n + 1` values.
    pub fn max_param(&self) -> Option<u16> {
        let mut max: Option<u16> = None;
        fn walk(e: &Expr, max: &mut Option<u16>) {
            for s in e.own_scalars() {
                if let Some(i) = s.max_param() {
                    *max = Some(max.map_or(i, |m| m.max(i)));
                }
            }
            for c in e.children() {
                walk(c, max);
            }
        }
        walk(self, &mut max);
        max
    }

    /// Names of all base relations referenced (with duplicates).
    pub fn base_relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
            if let Expr::Base(n) = e {
                out.push(n);
            }
            for c in e.children() {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Does the expression reference `name` as a base relation? Used to
    /// detect recursion variables inside `fix` bodies.
    pub fn references(&self, name: &str) -> bool {
        self.base_relations()
            .iter()
            .any(|n| n.eq_ignore_ascii_case(name))
    }

    /// Is this a *trivial statement* — a point scan over one stored
    /// relation with no derived inputs? Such plans are what
    /// `OptLevel::None` may hand to the executor unrewritten: a chain of
    /// row-preserving operators (`filter`/`project`/`dedup`/single-input
    /// `search`) over exactly one `Base` leaf. Any set operator, join,
    /// `fix`, or nesting means rewriting can restructure the plan, so
    /// the statement is not trivial.
    pub fn is_trivial_scan(&self) -> bool {
        match self {
            Expr::Base(_) => true,
            Expr::Filter { input, .. } | Expr::Project { input, .. } | Expr::Dedup(input) => {
                input.is_trivial_scan()
            }
            Expr::Search { inputs, .. } => inputs.len() == 1 && inputs[0].is_trivial_scan(),
            _ => false,
        }
    }

    /// Operator name for diagnostics.
    pub fn op_name(&self) -> &'static str {
        match self {
            Expr::Base(_) => "base",
            Expr::Filter { .. } => "filter",
            Expr::Project { .. } => "project",
            Expr::Join { .. } => "join",
            Expr::Union(_) => "union",
            Expr::Difference(..) => "difference",
            Expr::Intersect(..) => "intersect",
            Expr::Search { .. } => "search",
            Expr::Fix { .. } => "fix",
            Expr::Nest { .. } => "nest",
            Expr::Unnest { .. } => "unnest",
            Expr::Dedup(_) => "dedup",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_and_bases() {
        let e = Expr::search(
            vec![Expr::base("APPEARS_IN"), Expr::base("FILM")],
            Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1)),
            vec![Scalar::attr(2, 2)],
        );
        assert_eq!(e.node_count(), 3);
        assert_eq!(e.base_relations(), vec!["APPEARS_IN", "FILM"]);
    }

    #[test]
    fn trivial_scans_are_single_base_chains() {
        let scan = Expr::search(
            vec![Expr::base("T")],
            Scalar::eq(Scalar::attr(1, 1), Scalar::lit(5)),
            vec![Scalar::attr(1, 2)],
        );
        assert!(scan.is_trivial_scan());
        assert!(Expr::Dedup(Box::new(scan.clone())).is_trivial_scan());
        let join = Expr::search(
            vec![Expr::base("T"), Expr::base("U")],
            Scalar::true_(),
            vec![Scalar::attr(1, 1)],
        );
        assert!(!join.is_trivial_scan());
        assert!(!Expr::Union(vec![Expr::base("T")]).is_trivial_scan());
        let nested_join = Expr::search(vec![join], Scalar::true_(), vec![Scalar::attr(1, 1)]);
        assert!(!nested_join.is_trivial_scan());
    }

    #[test]
    fn fix_references_recursion_variable() {
        let body = Expr::Union(vec![
            Expr::base("DOMINATE"),
            Expr::search(
                vec![Expr::base("BETTER_THAN"), Expr::base("BETTER_THAN")],
                Scalar::eq(Scalar::attr(1, 2), Scalar::attr(2, 1)),
                vec![Scalar::attr(1, 1), Scalar::attr(2, 2)],
            ),
        ]);
        assert!(body.references("better_than"));
        let fix = Expr::Fix {
            name: "BETTER_THAN".into(),
            body: Box::new(body),
        };
        assert_eq!(fix.op_name(), "fix");
        // fix + union + DOMINATE + search + 2 × BETTER_THAN
        assert_eq!(fix.node_count(), 6);
    }
}
