//! ESQL → LERA translation.
//!
//! This is the "straightforward translation of an ESQL query into a LERA
//! functional expression" performed after parsing (Section 5), together
//! with the *type-checking function rules* activity: attribute names
//! applied as functions become the generic `PROJECT`, object receivers
//! get `VALUE` dereferences inserted, and every column reference is
//! resolved to a positional `i.j`.
//!
//! Views are inlined naively — a view reference becomes the view's own
//! LERA expression as a sub-relation — which deliberately leaves the
//! merging rules (Figure 7) something to normalize. Recursive views
//! translate to `fix` (Section 3.2).

use eds_adt::{CollKind, Type};
use eds_esql::ast::{BinOp, Expr as Ast, Query, SelectCore, SelectItem, ViewDecl};

use crate::error::{LeraError, LeraResult};
use crate::expr::Expr;
use crate::scalar::{CmpOp, Scalar};
use crate::schema::{infer_scalar_type, Schema, SchemaCtx};

/// One relation visible in a query block's scope.
struct ScopeEntry {
    /// The name the relation is referenced by (alias or relation name).
    binding: String,
    /// Its schema.
    schema: Schema,
}

struct Scope {
    entries: Vec<ScopeEntry>,
}

impl Scope {
    fn schemas(&self) -> Vec<Schema> {
        self.entries.iter().map(|e| e.schema.clone()).collect()
    }

    /// Resolve `[qualifier.]name` to a 1-based `(rel, attr)` pair.
    fn resolve_column(
        &self,
        qualifier: Option<&str>,
        name: &str,
    ) -> LeraResult<(usize, usize, Type)> {
        let mut hits = Vec::new();
        for (rel_idx, entry) in self.entries.iter().enumerate() {
            if let Some(q) = qualifier {
                if !entry.binding.eq_ignore_ascii_case(q) {
                    continue;
                }
            }
            if let Some((attr_idx, field)) = entry
                .schema
                .fields
                .iter()
                .enumerate()
                .find(|(_, f)| f.name.eq_ignore_ascii_case(name))
            {
                hits.push((rel_idx + 1, attr_idx + 1, field.ty.clone()));
            }
        }
        match hits.len() {
            1 => Ok(hits.remove(0)),
            0 => Err(LeraError::Esql(eds_esql::EsqlError::UnknownColumn {
                qualifier: qualifier.map(str::to_owned),
                name: name.to_owned(),
            })),
            _ => Err(LeraError::Esql(eds_esql::EsqlError::AmbiguousColumn(
                name.to_owned(),
            ))),
        }
    }
}

/// Translate a query to a LERA expression and its schema.
pub fn translate_query(q: &Query, ctx: &SchemaCtx<'_>) -> LeraResult<(Expr, Schema)> {
    match q {
        Query::Select(core) => translate_select(core, ctx),
        Query::Union(a, b) => {
            let (ea, sa) = translate_query(a, ctx)?;
            let (eb, sb) = translate_query(b, ctx)?;
            if sa.arity() != sb.arity() {
                return Err(LeraError::Type(format!(
                    "union arity mismatch: {} vs {}",
                    sa.arity(),
                    sb.arity()
                )));
            }
            // Flatten nested unions into the n-ary union*.
            let mut items = Vec::new();
            for e in [ea, eb] {
                match e {
                    Expr::Union(inner) => items.extend(inner),
                    other => items.push(other),
                }
            }
            Ok((Expr::Union(items), sa))
        }
    }
}

/// Translate a view declaration. Recursive views produce `fix`; declared
/// column names override inferred names in the resulting schema.
pub fn translate_view(decl: &ViewDecl, ctx: &SchemaCtx<'_>) -> LeraResult<(Expr, Schema)> {
    let (expr, schema) = if decl.is_recursive() {
        translate_recursive_view(decl, ctx)?
    } else {
        translate_query(&decl.query, ctx)?
    };
    let schema = apply_view_columns(schema, &decl.columns)?;
    Ok((expr, schema))
}

fn apply_view_columns(mut schema: Schema, columns: &[String]) -> LeraResult<Schema> {
    if columns.is_empty() {
        return Ok(schema);
    }
    if columns.len() != schema.arity() {
        return Err(LeraError::Type(format!(
            "view declares {} columns but its query produces {}",
            columns.len(),
            schema.arity()
        )));
    }
    for (f, name) in schema.fields.iter_mut().zip(columns) {
        f.name = name.clone();
    }
    Ok(schema)
}

fn translate_recursive_view(decl: &ViewDecl, ctx: &SchemaCtx<'_>) -> LeraResult<(Expr, Schema)> {
    // Collect the union branches of the defining query.
    fn branches(q: &Query, out: &mut Vec<SelectCore>) {
        match q {
            Query::Select(c) => out.push(c.clone()),
            Query::Union(a, b) => {
                branches(a, out);
                branches(b, out);
            }
        }
    }
    let mut all = Vec::new();
    branches(&decl.query, &mut all);

    let is_recursive_branch = |c: &SelectCore| {
        c.from
            .iter()
            .any(|t| t.name.eq_ignore_ascii_case(&decl.name))
    };

    // 1. Infer the schema from the seed (non-recursive) branches.
    let seed = all
        .iter()
        .find(|c| !is_recursive_branch(c))
        .ok_or_else(|| {
            LeraError::Type(format!(
                "recursive view {} has no non-recursive branch",
                decl.name
            ))
        })?;
    let (_, seed_schema) = translate_select(seed, ctx)?;
    let local_schema = apply_view_columns(seed_schema, &decl.columns)?;

    // 2. Translate every branch with the recursion variable in scope.
    let rec_ctx = ctx.with_local(&decl.name, local_schema.clone());
    let mut items = Vec::with_capacity(all.len());
    for branch in &all {
        let (e, s) = translate_select(branch, &rec_ctx)?;
        if s.arity() != local_schema.arity() {
            return Err(LeraError::Type(format!(
                "recursive view {}: branch arity {} differs from seed arity {}",
                decl.name,
                s.arity(),
                local_schema.arity()
            )));
        }
        items.push(e);
    }

    let body = if items.len() == 1 {
        items.remove(0)
    } else {
        Expr::Union(items)
    };
    Ok((
        Expr::Fix {
            name: decl.name.clone(),
            body: Box::new(body),
        },
        local_schema,
    ))
}

/// Resolve one `FROM` item to a LERA input expression and its schema.
fn translate_from_item(name: &str, ctx: &SchemaCtx<'_>) -> LeraResult<(Expr, Schema)> {
    // A recursion variable of an enclosing fix (or the view currently
    // being defined) shadows catalog relations of the same name.
    if let Some(schema) = ctx.local_schema(name) {
        return Ok((Expr::base(name), schema));
    }
    if ctx.catalog.table(name).is_some() {
        let schema = ctx.relation_schema(name)?;
        return Ok((Expr::base(name), schema));
    }
    if let Some(view) = ctx.catalog.view(name) {
        let view = view.clone();
        return translate_view(&view, ctx);
    }
    Err(LeraError::UnknownRelation(name.to_owned()))
}

fn translate_select(core: &SelectCore, ctx: &SchemaCtx<'_>) -> LeraResult<(Expr, Schema)> {
    // FROM clause: inputs and scope.
    let mut inputs = Vec::with_capacity(core.from.len());
    let mut entries = Vec::with_capacity(core.from.len());
    for t in &core.from {
        let (e, s) = translate_from_item(&t.name, ctx)?;
        inputs.push(e);
        entries.push(ScopeEntry {
            binding: t.binding_name().to_owned(),
            schema: s,
        });
    }
    let scope = Scope { entries };

    // `e IN (SELECT ...)` at a top-level conjunct position becomes a join
    // against the (deduplicated) subquery — "sub-query elimination": the
    // merging rules then collapse the subquery like any other view.
    let mut where_conjuncts: Vec<Ast> = Vec::new();
    if let Some(w) = &core.where_clause {
        fn split_ands(e: &Ast, out: &mut Vec<Ast>) {
            match e {
                Ast::Binary {
                    op: BinOp::And,
                    left,
                    right,
                } => {
                    split_ands(left, out);
                    split_ands(right, out);
                }
                other => out.push(other.clone()),
            }
        }
        split_ands(w, &mut where_conjuncts);
    }
    let mut extra_eqs: Vec<Scalar> = Vec::new();
    let mut kept_conjuncts: Vec<Ast> = Vec::new();
    for c in where_conjuncts {
        if let Ast::InQuery { expr, query } = &c {
            let (sub_expr, sub_schema) = translate_query(query, ctx)?;
            if sub_schema.arity() != 1 {
                return Err(LeraError::Type(format!(
                    "IN subquery must produce exactly one column, got {}",
                    sub_schema.arity()
                )));
            }
            // The tested expression resolves in the FROM scope only; the
            // subquery input is invisible to name resolution (so
            // unqualified columns stay unambiguous).
            let tested = resolve_expr(expr, &scope, ctx)?;
            let _ = sub_schema; // arity checked above; names not exposed
            inputs.push(Expr::Dedup(Box::new(sub_expr)));
            extra_eqs.push(Scalar::eq(tested, Scalar::attr(inputs.len(), 1)));
        } else {
            kept_conjuncts.push(c);
        }
    }

    // WHERE clause.
    let schemas = scope.schemas();
    let mut pred_parts: Vec<Scalar> = kept_conjuncts
        .iter()
        .map(|c| resolve_expr(c, &scope, ctx))
        .collect::<LeraResult<Vec<_>>>()?;
    pred_parts.extend(extra_eqs);
    let pred = Scalar::conjoin(pred_parts);

    // Projections.
    let mut proj = Vec::new();
    for item in &core.projections {
        match item {
            SelectItem::Wildcard => {
                for (rel, schema) in schemas.iter().enumerate() {
                    for attr in 1..=schema.arity() {
                        proj.push((Scalar::attr(rel + 1, attr), None));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                proj.push((resolve_expr(expr, &scope, ctx)?, alias.clone()));
            }
        }
    }

    let (expr, schema) = if core.group_by.is_empty() {
        let exprs: Vec<Scalar> = proj.iter().map(|(e, _)| e.clone()).collect();
        let e = Expr::search(inputs, pred, exprs.clone());
        let mut schema = crate::schema::infer_schema(&e, ctx)?;
        rename_aliased(&mut schema, &proj);
        (e, schema)
    } else {
        translate_group_by(core, inputs, pred, proj.clone(), &scope, ctx)?
    };

    // HAVING applies after grouping.
    let (expr, schema) = match &core.having {
        Some(h) => {
            let having_scope = Scope {
                entries: vec![ScopeEntry {
                    binding: String::new(),
                    schema: schema.clone(),
                }],
            };
            let pred = resolve_expr(h, &having_scope, ctx)?;
            (
                Expr::Filter {
                    input: Box::new(expr),
                    pred,
                },
                schema,
            )
        }
        None => (expr, schema),
    };

    if core.distinct {
        Ok((Expr::Dedup(Box::new(expr)), schema))
    } else {
        Ok((expr, schema))
    }
}

fn rename_aliased(schema: &mut Schema, proj: &[(Scalar, Option<String>)]) {
    for (f, (_, alias)) in schema.fields.iter_mut().zip(proj) {
        if let Some(a) = alias {
            f.name = a.clone();
        }
    }
}

/// How one `GROUP BY` projection item maps onto the nest output.
enum GroupItem {
    /// A grouping expression (position in the group list, 0-based).
    Group(usize),
    /// The collection itself (`MakeSet(x)`).
    Collection,
    /// A function of the collection (`COUNT(MakeSet(x))`,
    /// `SUM(MakeBag(x))`, ...) — evaluated by a projection above the nest.
    Aggregated(String),
}

/// `GROUP BY` becomes `nest`: the select block's collection-constructor
/// projections (`MakeSet`, `MakeBag`, `MakeList`) supply the collected
/// attribute (Figure 4's `FilmActors` view). Projections may also apply
/// ADT functions to the constructed collection (`COUNT(MakeSet(x))`),
/// which become a `project` above the nest — in the ESQL model,
/// aggregation is just collection-function application.
fn translate_group_by(
    core: &SelectCore,
    inputs: Vec<Expr>,
    pred: Scalar,
    proj: Vec<(Scalar, Option<String>)>,
    scope: &Scope,
    ctx: &SchemaCtx<'_>,
) -> LeraResult<(Expr, Schema)> {
    let group_exprs: Vec<Scalar> = core
        .group_by
        .iter()
        .map(|g| resolve_expr(g, scope, ctx))
        .collect::<LeraResult<Vec<_>>>()?;

    // Classify projection items; all constructors must collect the same
    // detail expression with the same kind.
    let mut detail: Option<(Scalar, CollKind)> = None;
    let mut groups_used: Vec<Scalar> = Vec::new();
    let mut items: Vec<(GroupItem, Option<String>)> = Vec::new();

    fn note_detail(
        detail: &mut Option<(Scalar, CollKind)>,
        e: &Scalar,
        kind: CollKind,
    ) -> LeraResult<()> {
        match detail {
            None => {
                *detail = Some((e.clone(), kind));
                Ok(())
            }
            Some((prev, prev_kind)) if prev == e && *prev_kind == kind => Ok(()),
            Some(_) => Err(LeraError::Type(
                "all collection constructors in a GROUP BY block must collect the same expression"
                    .into(),
            )),
        }
    }

    for (e, alias) in proj {
        match &e {
            Scalar::Call { func, args } if args.len() == 1 && coll_ctor(func).is_some() => {
                note_detail(&mut detail, &args[0], coll_ctor(func).unwrap())?;
                items.push((GroupItem::Collection, alias));
            }
            Scalar::Call { func, args }
                if args.len() == 1
                    && matches!(&args[0], Scalar::Call { func: inner, args: ia }
                        if ia.len() == 1 && coll_ctor(inner).is_some()) =>
            {
                let Scalar::Call {
                    func: inner,
                    args: ia,
                } = &args[0]
                else {
                    unreachable!()
                };
                note_detail(&mut detail, &ia[0], coll_ctor(inner).unwrap())?;
                items.push((GroupItem::Aggregated(func.clone()), alias));
            }
            _ if group_exprs.contains(&e) => {
                let pos = match groups_used.iter().position(|g| g == &e) {
                    Some(p) => p,
                    None => {
                        groups_used.push(e.clone());
                        groups_used.len() - 1
                    }
                };
                items.push((GroupItem::Group(pos), alias));
            }
            _ => {
                return Err(LeraError::Type(format!(
                    "projection '{e}' is neither a GROUP BY expression nor a collection constructor"
                )))
            }
        }
    }
    let (nested_expr, kind) = detail.ok_or_else(|| {
        LeraError::Type(
            "GROUP BY without a collection constructor (MakeSet/MakeBag/MakeList)".into(),
        )
    })?;

    // Unprojected GROUP BY expressions still determine the partition.
    for gexpr in &group_exprs {
        if !groups_used.contains(gexpr) {
            groups_used.push(gexpr.clone());
        }
    }

    // Inner search computes group attributes then the detail attribute.
    let mut search_proj: Vec<Scalar> = groups_used.clone();
    search_proj.push(nested_expr);
    let search = Expr::search(inputs, pred, search_proj);

    let g = groups_used.len();
    let nest = Expr::Nest {
        input: Box::new(search),
        group: (1..=g).collect(),
        nested: vec![g + 1],
        kind,
    };

    // A projection above the nest reorders outputs and applies aggregate
    // functions; omitted when the nest output already matches.
    let matches_nest_layout = items.len() == g + 1
        && items.iter().enumerate().all(|(i, (item, _))| match item {
            GroupItem::Group(p) => *p == i,
            GroupItem::Collection => i == g,
            GroupItem::Aggregated(_) => false,
        });

    let (expr, aliases): (Expr, Vec<Option<String>>) = if matches_nest_layout {
        (nest, items.into_iter().map(|(_, a)| a).collect())
    } else {
        let exprs: Vec<Scalar> = items
            .iter()
            .map(|(item, _)| match item {
                GroupItem::Group(i) => Scalar::attr(1, i + 1),
                GroupItem::Collection => Scalar::attr(1, g + 1),
                GroupItem::Aggregated(f) => Scalar::call(f, vec![Scalar::attr(1, g + 1)]),
            })
            .collect();
        (
            Expr::Project {
                input: Box::new(nest),
                exprs,
            },
            items.into_iter().map(|(_, a)| a).collect(),
        )
    };

    let mut schema = crate::schema::infer_schema(&expr, ctx)?;
    for (f, alias) in schema.fields.iter_mut().zip(aliases) {
        if let Some(a) = alias {
            f.name = a;
        }
    }
    Ok((expr, schema))
}

fn coll_ctor(func: &str) -> Option<CollKind> {
    match func.to_ascii_uppercase().as_str() {
        "MAKESET" => Some(CollKind::Set),
        "MAKEBAG" => Some(CollKind::Bag),
        "MAKELIST" => Some(CollKind::List),
        _ => None,
    }
}

/// Translate a constant ESQL expression (no column references) — the
/// value expressions of `INSERT ... VALUES`.
pub fn translate_const_expr(e: &Ast, ctx: &SchemaCtx<'_>) -> LeraResult<Scalar> {
    let scope = Scope { entries: vec![] };
    resolve_expr(e, &scope, ctx)
}

/// Resolve an ESQL expression to a LERA scalar, inserting `VALUE` and
/// `PROJECT` conversions ("one role of the LERA rewriter is to correctly
/// infer types and add the necessary conversion functions", Section 3.3).
fn resolve_expr(e: &Ast, scope: &Scope, ctx: &SchemaCtx<'_>) -> LeraResult<Scalar> {
    let schemas = scope.schemas();
    match e {
        Ast::Column { qualifier, name } => {
            let (rel, attr, _) = scope.resolve_column(qualifier.as_deref(), name)?;
            Ok(Scalar::attr(rel, attr))
        }
        Ast::Int(i) => Ok(Scalar::lit(*i)),
        Ast::Real(r) => Ok(Scalar::lit(*r)),
        Ast::Str(s) => Ok(Scalar::lit(s.as_str())),
        Ast::Bool(b) => Ok(Scalar::lit(*b)),
        Ast::Null => Ok(Scalar::Const(eds_adt::Value::Null)),
        Ast::Param(i) => Ok(Scalar::Param(*i)),
        Ast::Not(inner) => Ok(Scalar::Not(Box::new(resolve_expr(inner, scope, ctx)?))),
        Ast::All(inner) => Ok(Scalar::call("ALL", vec![resolve_expr(inner, scope, ctx)?])),
        Ast::Exist(inner) => Ok(Scalar::call(
            "EXIST",
            vec![resolve_expr(inner, scope, ctx)?],
        )),
        Ast::InQuery { .. } => Err(LeraError::Type(
            "IN (SELECT ...) is only supported as a top-level WHERE conjunct".into(),
        )),
        Ast::InList { expr, list } => {
            let e = resolve_expr(expr, scope, ctx)?;
            let items = list
                .iter()
                .map(|i| resolve_expr(i, scope, ctx))
                .collect::<LeraResult<Vec<_>>>()?;
            Ok(Scalar::call(
                "MEMBER",
                vec![e, Scalar::call("MAKESET", items)],
            ))
        }
        Ast::Binary { op, left, right } => {
            let l = resolve_expr(left, scope, ctx)?;
            let r = resolve_expr(right, scope, ctx)?;
            Ok(match op {
                BinOp::And => Scalar::And(Box::new(l), Box::new(r)),
                BinOp::Or => Scalar::Or(Box::new(l), Box::new(r)),
                BinOp::Eq => Scalar::cmp(CmpOp::Eq, l, r),
                BinOp::Ne => Scalar::cmp(CmpOp::Ne, l, r),
                BinOp::Lt => Scalar::cmp(CmpOp::Lt, l, r),
                BinOp::Gt => Scalar::cmp(CmpOp::Gt, l, r),
                BinOp::Le => Scalar::cmp(CmpOp::Le, l, r),
                BinOp::Ge => Scalar::cmp(CmpOp::Ge, l, r),
                BinOp::Add => Scalar::call("+", vec![l, r]),
                BinOp::Sub => Scalar::call("-", vec![l, r]),
                BinOp::Mul => Scalar::call("*", vec![l, r]),
                BinOp::Div => Scalar::call("/", vec![l, r]),
            })
        }
        Ast::Call { name, args } => {
            let resolved = args
                .iter()
                .map(|a| resolve_expr(a, scope, ctx))
                .collect::<LeraResult<Vec<_>>>()?;
            // Attribute applied as a function: Salary(Refactor).
            if resolved.len() == 1 {
                if let Ok(arg_ty) = infer_scalar_type(&resolved[0], &schemas, ctx) {
                    if let Some((needs_deref, _, _)) = ctx.catalog.attribute_of(&arg_ty, name) {
                        let receiver = if needs_deref {
                            Scalar::call("VALUE", vec![resolved[0].clone()])
                        } else {
                            resolved[0].clone()
                        };
                        return Ok(Scalar::field(receiver, name));
                    }
                }
            }
            Ok(Scalar::call(name, resolved))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eds_esql::{install_source, parse_query, parse_statement, Catalog, Stmt};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        install_source(
            &mut c,
            "TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;\n\
             TYPE Person OBJECT TUPLE ( Name : CHAR, Firstname : SET OF CHAR) ;\n\
             TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC) ;\n\
             TYPE Text LIST OF CHAR ;\n\
             TYPE SetCategory SET OF Category ;\n\
             TABLE FILM ( Numf : NUMERIC, Title : Text, Categories : SetCategory) ;\n\
             TABLE APPEARS_IN ( Numf : NUMERIC, Refactor : Actor) ;\n\
             TABLE DOMINATE ( Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor) ;",
        )
        .unwrap();
        c
    }

    #[test]
    fn figure3_translates_to_single_search() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let q = parse_query(
            "SELECT Title, Categories, Salary(Refactor) \
             FROM FILM, APPEARS_IN \
             WHERE FILM.Numf = APPEARS_IN.Numf \
             AND Name(Refactor) = 'Quinn' \
             AND MEMBER('Adventure', Categories) ;",
        )
        .unwrap();
        let (e, s) = translate_query(&q, &ctx).unwrap();
        let Expr::Search { inputs, pred, proj } = &e else {
            panic!("expected search, got {}", e.op_name())
        };
        assert_eq!(inputs.len(), 2);
        assert_eq!(proj.len(), 3);
        // Salary(Refactor) resolved through VALUE: PROJECT(VALUE(2.2), Salary).
        assert_eq!(proj[2].to_string(), "PROJECT(VALUE(2.2), Salary)");
        // Qualification is a conjunction of three predicates.
        assert_eq!(pred.conjuncts().len(), 3);
        assert_eq!(s.names(), vec!["Title", "Categories", "Salary"]);
    }

    #[test]
    fn figure4_group_by_becomes_nest() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let Stmt::ViewDecl(view) = parse_statement(
            "CREATE VIEW FilmActors (Title, Categories, Actors) AS \
             SELECT Title, Categories, MakeSet(Refactor) \
             FROM FILM, APPEARS_IN \
             WHERE FILM.Numf = APPEARS_IN.Numf \
             GROUP BY Title, Categories ;",
        )
        .unwrap() else {
            panic!("expected view")
        };
        let (e, s) = translate_view(&view, &ctx).unwrap();
        let Expr::Nest {
            input,
            group,
            nested,
            kind,
        } = &e
        else {
            panic!("expected nest, got {}", e.op_name())
        };
        assert_eq!(group, &[1, 2]);
        assert_eq!(nested, &[3]);
        assert_eq!(*kind, CollKind::Set);
        assert!(matches!(input.as_ref(), Expr::Search { .. }));
        assert_eq!(s.names(), vec!["Title", "Categories", "Actors"]);
        assert_eq!(s.fields[2].ty, Type::set_of(Type::Named("Actor".into())));
    }

    #[test]
    fn figure5_recursive_view_becomes_fix() {
        let mut c = catalog();
        install_source(
            &mut c,
            "CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS \
             ( SELECT Refactor1, Refactor2 FROM DOMINATE \
               UNION \
               SELECT B1.Refactor1, B2.Refactor2 \
               FROM BETTER_THAN B1, BETTER_THAN B2 \
               WHERE B1.Refactor2 = B2.Refactor1 ) ;",
        )
        .unwrap();
        let ctx = SchemaCtx::new(&c);
        let q = parse_query(
            "SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn' ;",
        )
        .unwrap();
        let (e, s) = translate_query(&q, &ctx).unwrap();
        let Expr::Search { inputs, .. } = &e else {
            panic!("expected search")
        };
        let Expr::Fix { name, body } = &inputs[0] else {
            panic!("expected fix input, got {}", inputs[0].op_name())
        };
        assert_eq!(name, "BETTER_THAN");
        let Expr::Union(branches) = body.as_ref() else {
            panic!("expected union body")
        };
        assert_eq!(branches.len(), 2);
        // The recursive branch references the recursion variable.
        assert!(branches[1].references("BETTER_THAN"));
        assert_eq!(s.names(), vec!["Name"]);
    }

    #[test]
    fn view_inlining_produces_nested_search() {
        let mut c = catalog();
        install_source(
            &mut c,
            "CREATE VIEW Adventure (Numf, Title) AS \
             SELECT Numf, Title FROM FILM WHERE MEMBER('Adventure', Categories) ;",
        )
        .unwrap();
        let ctx = SchemaCtx::new(&c);
        let q = parse_query("SELECT Title FROM Adventure WHERE Numf = 3 ;").unwrap();
        let (e, _) = translate_query(&q, &ctx).unwrap();
        let Expr::Search { inputs, .. } = &e else {
            panic!("expected search")
        };
        // Naive composition: the view sits unmerged inside the outer
        // search; the Figure-7 merging rule collapses it later.
        assert!(matches!(&inputs[0], Expr::Search { .. }));
    }

    #[test]
    fn wildcard_expands_in_order() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let q = parse_query("SELECT * FROM FILM, APPEARS_IN ;").unwrap();
        let (e, s) = translate_query(&q, &ctx).unwrap();
        let Expr::Search { proj, .. } = &e else {
            panic!()
        };
        assert_eq!(proj.len(), 5);
        assert_eq!(
            s.names(),
            vec!["Numf", "Title", "Categories", "Numf", "Refactor"]
        );
    }

    #[test]
    fn ambiguous_column_rejected() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let q = parse_query("SELECT Numf FROM FILM, APPEARS_IN ;").unwrap();
        assert!(matches!(
            translate_query(&q, &ctx),
            Err(LeraError::Esql(eds_esql::EsqlError::AmbiguousColumn(_)))
        ));
    }

    #[test]
    fn in_list_becomes_member_of_makeset() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let q = parse_query("SELECT Title FROM FILM WHERE Numf IN (1, 2, 3) ;").unwrap();
        let (e, _) = translate_query(&q, &ctx).unwrap();
        let Expr::Search { pred, .. } = &e else {
            panic!()
        };
        assert_eq!(pred.to_string(), "MEMBER(1.1, MAKESET(1, 2, 3))");
    }

    #[test]
    fn distinct_becomes_dedup() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let q = parse_query("SELECT DISTINCT Title FROM FILM ;").unwrap();
        let (e, _) = translate_query(&q, &ctx).unwrap();
        assert!(matches!(e, Expr::Dedup(_)));
    }

    #[test]
    fn union_flattens_to_nary() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let q = parse_query(
            "SELECT Numf FROM FILM UNION SELECT Numf FROM APPEARS_IN UNION SELECT Numf FROM DOMINATE ;",
        )
        .unwrap();
        let (e, _) = translate_query(&q, &ctx).unwrap();
        let Expr::Union(items) = &e else { panic!() };
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn quantifier_over_nested_set() {
        let mut c = catalog();
        install_source(
            &mut c,
            "CREATE VIEW FilmActors (Title, Categories, Actors) AS \
             SELECT Title, Categories, MakeSet(Refactor) \
             FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf \
             GROUP BY Title, Categories ;",
        )
        .unwrap();
        let ctx = SchemaCtx::new(&c);
        let q = parse_query(
            "SELECT Title FROM FilmActors \
             WHERE MEMBER('Adventure', Categories) AND ALL (Salary(Actors) > 10_000) ;",
        )
        .unwrap();
        let (e, _) = translate_query(&q, &ctx).unwrap();
        let Expr::Search { pred, .. } = &e else {
            panic!()
        };
        let rendered = pred.to_string();
        assert!(
            rendered.contains("ALL(PROJECT(VALUE(1.3), Salary) > 10000)"),
            "{rendered}"
        );
    }
}
