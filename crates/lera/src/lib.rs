//! # eds-lera — the extended relational algebra (LERA)
//!
//! Reproduces Section 3 of Finance & Gardarin, *"A Rule-Based Query
//! Rewriter in an Extensible DBMS"* (ICDE 1991): the target language of
//! the extensible rewriter.
//!
//! * [`expr::Expr`] — `filter`/`project`/`join`, set operations, the
//!   compound `search`, `fix`point, `nest`/`unnest`;
//! * [`scalar::Scalar`] — complex conditions and projection expressions
//!   with ADT function calls, positional `i.j` attribute references, and
//!   the generic `PROJECT`/`VALUE` conversions;
//! * [`translate`] — ESQL → LERA with view inlining and recursion;
//! * [`schema`] — schema/type inference;
//! * [`term_bridge`] — lossless conversion to/from rewrite terms;
//! * [`cost`] — the logical cost model used by the benchmark harness.

//! ```
//! use eds_esql::{install_source, parse_query, Catalog};
//! use eds_lera::{translate_query, SchemaCtx};
//!
//! let mut catalog = Catalog::new();
//! install_source(&mut catalog, "TABLE T (X : INT, Y : INT);").unwrap();
//! let q = parse_query("SELECT Y FROM T WHERE X = 7 ;").unwrap();
//! let (expr, schema) = translate_query(&q, &SchemaCtx::new(&catalog)).unwrap();
//! assert_eq!(expr.to_string(), "search((T), [1.1 = 7], (1.2))");
//! assert_eq!(schema.names(), vec!["Y"]);
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod display;
pub mod error;
pub mod expr;
pub mod scalar;
pub mod schema;
pub mod term_bridge;
pub mod translate;

pub use cost::{ColumnStats, CostModel, Estimate, RelationStats};
pub use display::pretty;
pub use error::{LeraError, LeraResult};
pub use expr::Expr;
pub use scalar::{CmpOp, Scalar};
pub use schema::{infer_scalar_type, infer_schema, type_of_value, Schema, SchemaCtx};
pub use term_bridge::{
    expr_from_term, expr_to_term, is_operator_term, scalar_from_term, scalar_to_term,
};
pub use translate::{translate_const_expr, translate_query, translate_view};
