//! Schema and type inference for LERA expressions.
//!
//! "Contrary to ESQL where certain syntactic abbreviations are permitted,
//! all function arguments must be correctly typed in LERA" (Section 3.3):
//! inference here is what lets the typing phase insert `VALUE` and
//! `PROJECT` conversions, and what the engine uses to resolve named field
//! accesses to positions.

use std::collections::HashMap;

use eds_adt::{Field, Type, Value};
use eds_esql::Catalog;

use crate::error::{LeraError, LeraResult};
use crate::expr::Expr;
use crate::scalar::Scalar;

/// An inferred relation schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// Fields in order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Build from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Field at a 1-based position.
    pub fn field(&self, attr1: usize) -> LeraResult<&Field> {
        self.fields
            .get(attr1.checked_sub(1).unwrap_or(usize::MAX))
            .ok_or(LeraError::BadAttrRef {
                rel: 1,
                attr: attr1,
                context: format!("schema has {} attributes", self.fields.len()),
            })
    }

    /// Attribute names.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

/// Inference context: the catalog plus locally-bound relation schemas
/// (recursion variables of enclosing `fix` operators).
pub struct SchemaCtx<'a> {
    /// The installed catalog.
    pub catalog: &'a Catalog,
    locals: HashMap<String, Schema>,
}

impl<'a> SchemaCtx<'a> {
    /// Context over a catalog with no local bindings.
    pub fn new(catalog: &'a Catalog) -> Self {
        SchemaCtx {
            catalog,
            locals: HashMap::new(),
        }
    }

    /// Extend with a local binding (used when descending into `fix`).
    pub fn with_local(&self, name: &str, schema: Schema) -> SchemaCtx<'a> {
        let mut locals = self.locals.clone();
        locals.insert(name.to_ascii_uppercase(), schema);
        SchemaCtx {
            catalog: self.catalog,
            locals,
        }
    }

    /// Schema of a locally-bound name (a recursion variable), if any.
    pub fn local_schema(&self, name: &str) -> Option<Schema> {
        self.locals.get(&name.to_ascii_uppercase()).cloned()
    }

    /// Schema of a named relation: local binding, base table, or view
    /// with a registered schema.
    pub fn relation_schema(&self, name: &str) -> LeraResult<Schema> {
        if let Some(s) = self.locals.get(&name.to_ascii_uppercase()) {
            return Ok(s.clone());
        }
        self.catalog
            .relation(name)
            .map(|t| Schema::new(t.columns.clone()))
            .ok_or_else(|| LeraError::UnknownRelation(name.to_owned()))
    }
}

/// Infer the output schema of a LERA expression.
pub fn infer_schema(expr: &Expr, ctx: &SchemaCtx<'_>) -> LeraResult<Schema> {
    match expr {
        Expr::Base(name) => ctx.relation_schema(name),
        Expr::Filter { input, .. } | Expr::Dedup(input) => infer_schema(input, ctx),
        Expr::Project { input, exprs } => {
            let in_schema = infer_schema(input, ctx)?;
            project_schema(exprs, &[in_schema], ctx)
        }
        Expr::Join { left, right, .. } => {
            let mut fields = infer_schema(left, ctx)?.fields;
            fields.extend(infer_schema(right, ctx)?.fields);
            Ok(Schema::new(fields))
        }
        Expr::Union(items) => {
            let first = infer_schema(
                items
                    .first()
                    .ok_or_else(|| LeraError::Type("union of zero relations".into()))?,
                ctx,
            )?;
            for item in &items[1..] {
                let s = infer_schema(item, ctx)?;
                if s.arity() != first.arity() {
                    return Err(LeraError::Type(format!(
                        "union arity mismatch: {} vs {}",
                        first.arity(),
                        s.arity()
                    )));
                }
            }
            Ok(first)
        }
        Expr::Difference(a, b) | Expr::Intersect(a, b) => {
            let sa = infer_schema(a, ctx)?;
            let sb = infer_schema(b, ctx)?;
            if sa.arity() != sb.arity() {
                return Err(LeraError::Type(format!(
                    "{} arity mismatch: {} vs {}",
                    expr.op_name(),
                    sa.arity(),
                    sb.arity()
                )));
            }
            Ok(sa)
        }
        Expr::Search { inputs, proj, .. } => {
            let schemas = inputs
                .iter()
                .map(|i| infer_schema(i, ctx))
                .collect::<LeraResult<Vec<_>>>()?;
            project_schema(proj, &schemas, ctx)
        }
        Expr::Fix { name, body } => {
            // The fixpoint's schema comes from a body branch that does not
            // mention the recursion variable (the initialization branch).
            let seed = match body.as_ref() {
                Expr::Union(items) => items.iter().find(|i| !i.references(name)),
                other if !other.references(name) => Some(other),
                _ => None,
            };
            match seed {
                Some(seed) => infer_schema(seed, ctx),
                None => ctx.relation_schema(name).map_err(|_| {
                    LeraError::Type(format!(
                        "cannot infer schema of fix({name}, ...): every branch is recursive"
                    ))
                }),
            }
        }
        Expr::Nest {
            input,
            group,
            nested,
            kind,
        } => {
            let in_schema = infer_schema(input, ctx)?;
            let mut fields = Vec::with_capacity(group.len() + 1);
            for &g in group {
                fields.push(in_schema.field(g)?.clone());
            }
            let elem_ty = if nested.len() == 1 {
                in_schema.field(nested[0])?.ty.clone()
            } else {
                Type::Tuple(
                    nested
                        .iter()
                        .map(|&n| in_schema.field(n).cloned())
                        .collect::<LeraResult<Vec<_>>>()?,
                )
            };
            let name = if nested.len() == 1 {
                in_schema.field(nested[0])?.name.clone()
            } else {
                "Nested".to_owned()
            };
            fields.push(Field::new(name, Type::Coll(*kind, Box::new(elem_ty))));
            Ok(Schema::new(fields))
        }
        Expr::Unnest { input, attr } => {
            let in_schema = infer_schema(input, ctx)?;
            let coll_field = in_schema.field(*attr)?;
            let elem_ty = match ctx.catalog.types.resolve(&coll_field.ty)? {
                Type::Coll(_, elem) | Type::AnyColl(elem) => *elem,
                other => {
                    return Err(LeraError::Type(format!(
                        "unnest on non-collection attribute of type {other}"
                    )))
                }
            };
            let mut fields = in_schema.fields.clone();
            fields[*attr - 1] = Field::new(coll_field.name.clone(), elem_ty);
            Ok(Schema::new(fields))
        }
    }
}

fn project_schema(exprs: &[Scalar], inputs: &[Schema], ctx: &SchemaCtx<'_>) -> LeraResult<Schema> {
    let mut fields = Vec::with_capacity(exprs.len());
    for (i, e) in exprs.iter().enumerate() {
        let ty = infer_scalar_type(e, inputs, ctx)?;
        let name = synth_name(e, inputs).unwrap_or_else(|| format!("expr{}", i + 1));
        fields.push(Field::new(name, ty));
    }
    Ok(Schema::new(fields))
}

fn synth_name(e: &Scalar, inputs: &[Schema]) -> Option<String> {
    match e {
        Scalar::Attr { rel, attr } => inputs
            .get(rel - 1)
            .and_then(|s| s.fields.get(attr - 1))
            .map(|f| f.name.clone()),
        Scalar::Field { name, .. } => Some(name.clone()),
        Scalar::Call { func, args } => {
            // MAKESET(x) keeps the source attribute name when obvious.
            if args.len() == 1 {
                synth_name(&args[0], inputs).or_else(|| Some(func.clone()))
            } else {
                Some(func.clone())
            }
        }
        _ => None,
    }
}

/// The static type of a value.
pub fn type_of_value(v: &Value) -> Type {
    match v {
        Value::Null => Type::Any,
        Value::Bool(_) => Type::Bool,
        Value::Int(_) => Type::Int,
        Value::Real(_) => Type::Real,
        Value::Str(_) => Type::Char,
        Value::Enum(n, _) => Type::Named(n.clone()),
        Value::Tuple(items) => Type::Tuple(
            items
                .iter()
                .enumerate()
                .map(|(i, v)| Field::new(format!("f{}", i + 1), type_of_value(v)))
                .collect(),
        ),
        Value::Coll(k, items) => {
            let elem = items.first().map_or(Type::Any, type_of_value);
            Type::Coll(*k, Box::new(elem))
        }
        Value::Object(_) => Type::Any,
    }
}

/// Infer the type of a scalar expression against the schemas of the
/// enclosing operator's inputs.
pub fn infer_scalar_type(e: &Scalar, inputs: &[Schema], ctx: &SchemaCtx<'_>) -> LeraResult<Type> {
    match e {
        Scalar::Attr { rel, attr } => {
            let schema = inputs.get(rel - 1).ok_or(LeraError::BadAttrRef {
                rel: *rel,
                attr: *attr,
                context: format!("{} input relations", inputs.len()),
            })?;
            Ok(schema.field(*attr)?.ty.clone())
        }
        Scalar::Const(v) => Ok(type_of_value(v)),
        // A parameter's type is unknown until bind time.
        Scalar::Param(_) => Ok(Type::Any),
        Scalar::Field { input, name } => {
            let input_ty = infer_scalar_type(input, inputs, ctx)?;
            if input_ty == Type::Any {
                return Ok(Type::Any);
            }
            ctx.catalog
                .attribute_of(&input_ty, name)
                .map(|(_, _, ty)| ty)
                .ok_or_else(|| LeraError::UnknownAttribute {
                    name: name.clone(),
                    receiver: input_ty.to_string(),
                })
        }
        Scalar::Cmp { .. } | Scalar::And(..) | Scalar::Or(..) | Scalar::Not(_) => Ok(Type::Bool),
        Scalar::Call { func, args } => {
            let arg_tys = args
                .iter()
                .map(|a| infer_scalar_type(a, inputs, ctx))
                .collect::<LeraResult<Vec<_>>>()?;
            infer_call_type(func, &arg_tys, ctx)
        }
    }
}

fn elem_of(ty: &Type) -> Type {
    match ty {
        Type::Coll(_, e) | Type::AnyColl(e) => (**e).clone(),
        _ => Type::Any,
    }
}

fn infer_call_type(func: &str, args: &[Type], ctx: &SchemaCtx<'_>) -> LeraResult<Type> {
    let first = args.first().cloned().unwrap_or(Type::Any);
    Ok(match func {
        "VALUE" => deref_type(&first, ctx)?,
        "ALL" | "EXIST" | "MEMBER" | "ISEMPTY" | "INCLUDE" | "EQUAL" => Type::Bool,
        "COUNT" => Type::Int,
        "SUM" => match ctx
            .catalog
            .types
            .resolve(&elem_of(&ctx.catalog.types.resolve(&first)?))?
        {
            Type::Int => Type::Int,
            t if t.is_numeric() => Type::Real,
            _ => Type::Numeric,
        },
        "MIN" | "MAX" => elem_of(&ctx.catalog.types.resolve(&first)?),
        "AVG" => Type::Real,
        "MAKESET" => Type::set_of(first),
        "MAKEBAG" => Type::bag_of(first),
        "MAKELIST" => Type::list_of(first),
        "UNION" | "INTERSECTION" | "DIFFERENCE" | "INSERT" | "REMOVE" | "APPEND" | "CONVERT" => {
            first
        }
        "CHOICE" => elem_of(&ctx.catalog.types.resolve(&first)?),
        "NTH" => elem_of(&ctx.catalog.types.resolve(&first)?),
        "+" | "-" | "*" | "/" => {
            let widened = args.iter().try_fold(Type::Int, |acc, t| {
                let t = ctx.catalog.types.resolve(t)?;
                Ok::<Type, LeraError>(match (acc, t) {
                    (Type::Int, Type::Int) => Type::Int,
                    (a, b) if a.is_numeric() && b.is_numeric() => Type::Real,
                    (_, Type::Any) | (Type::Any, _) => Type::Any,
                    (a, b) => {
                        return Err(LeraError::Type(format!(
                            "arithmetic on non-numeric types {a} and {b}"
                        )))
                    }
                })
            })?;
            widened
        }
        "ABSVAL" => first,
        "CONCAT" => Type::Char,
        _ => Type::Any,
    })
}

/// Type of `VALUE(x)`: dereference an object type to its tuple structure;
/// maps over collections.
fn deref_type(ty: &Type, ctx: &SchemaCtx<'_>) -> LeraResult<Type> {
    match ty {
        Type::Named(n) => {
            let def = ctx.catalog.types.get(n)?;
            if def.is_object {
                Ok(Type::Tuple(ctx.catalog.types.fields_of(n)?))
            } else {
                Ok(ty.clone())
            }
        }
        Type::Coll(k, e) => Ok(Type::Coll(*k, Box::new(deref_type(e, ctx)?))),
        other => Ok(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eds_adt::CollKind;
    use eds_esql::install_source;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        install_source(
            &mut c,
            "TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;\n\
             TYPE Person OBJECT TUPLE ( Name : CHAR, Firstname : SET OF CHAR) ;\n\
             TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC) ;\n\
             TYPE Text LIST OF CHAR ;\n\
             TYPE SetCategory SET OF Category ;\n\
             TABLE FILM ( Numf : NUMERIC, Title : Text, Categories : SetCategory) ;\n\
             TABLE APPEARS_IN ( Numf : NUMERIC, Refactor : Actor) ;\n\
             TABLE DOMINATE ( Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor) ;",
        )
        .unwrap();
        c
    }

    #[test]
    fn base_and_search_schema() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let e = Expr::search(
            vec![Expr::base("APPEARS_IN"), Expr::base("FILM")],
            Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1)),
            vec![
                Scalar::attr(2, 2),
                Scalar::attr(2, 3),
                Scalar::field(Scalar::call("VALUE", vec![Scalar::attr(1, 2)]), "Salary"),
            ],
        );
        let s = infer_schema(&e, &ctx).unwrap();
        assert_eq!(s.names(), vec!["Title", "Categories", "Salary"]);
        assert_eq!(s.fields[2].ty, Type::Numeric);
    }

    #[test]
    fn value_dereferences_object_type() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let inputs = [Schema::new(vec![Field::new(
            "Refactor",
            Type::Named("Actor".into()),
        )])];
        let ty = infer_scalar_type(
            &Scalar::call("VALUE", vec![Scalar::attr(1, 1)]),
            &inputs,
            &ctx,
        )
        .unwrap();
        let Type::Tuple(fields) = ty else {
            panic!("expected tuple, got {ty}")
        };
        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["Name", "Firstname", "Salary"]);
    }

    #[test]
    fn fix_schema_from_seed_branch() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let body = Expr::Union(vec![
            Expr::search(
                vec![Expr::base("DOMINATE")],
                Scalar::true_(),
                vec![Scalar::attr(1, 2), Scalar::attr(1, 3)],
            ),
            Expr::search(
                vec![Expr::base("BT"), Expr::base("BT")],
                Scalar::eq(Scalar::attr(1, 2), Scalar::attr(2, 1)),
                vec![Scalar::attr(1, 1), Scalar::attr(2, 2)],
            ),
        ]);
        let fix = Expr::Fix {
            name: "BT".into(),
            body: Box::new(body),
        };
        let s = infer_schema(&fix, &ctx).unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.fields[0].ty, Type::Named("Actor".into()));
    }

    #[test]
    fn nest_schema() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let e = Expr::Nest {
            input: Box::new(Expr::base("APPEARS_IN")),
            group: vec![1],
            nested: vec![2],
            kind: CollKind::Set,
        };
        let s = infer_schema(&e, &ctx).unwrap();
        assert_eq!(s.names(), vec!["Numf", "Refactor"]);
        assert_eq!(s.fields[1].ty, Type::set_of(Type::Named("Actor".into())));
    }

    #[test]
    fn unnest_schema() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let e = Expr::Unnest {
            input: Box::new(Expr::base("FILM")),
            attr: 3,
        };
        let s = infer_schema(&e, &ctx).unwrap();
        assert_eq!(s.fields[2].ty, Type::Named("Category".into()));
    }

    #[test]
    fn union_arity_mismatch_rejected() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let e = Expr::Union(vec![Expr::base("FILM"), Expr::base("APPEARS_IN")]);
        assert!(matches!(infer_schema(&e, &ctx), Err(LeraError::Type(_))));
    }

    #[test]
    fn bad_attr_ref_reported() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let e = Expr::search(
            vec![Expr::base("FILM")],
            Scalar::true_(),
            vec![Scalar::attr(1, 9)],
        );
        assert!(matches!(
            infer_schema(&e, &ctx),
            Err(LeraError::BadAttrRef { .. })
        ));
    }

    #[test]
    fn quantifier_and_membership_types() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let film = ctx.relation_schema("FILM").unwrap();
        let member = Scalar::call("MEMBER", vec![Scalar::lit("Adventure"), Scalar::attr(1, 3)]);
        assert_eq!(
            infer_scalar_type(&member, std::slice::from_ref(&film), &ctx).unwrap(),
            Type::Bool
        );
    }

    #[test]
    fn field_maps_over_collection_of_objects() {
        let c = catalog();
        let ctx = SchemaCtx::new(&c);
        let inputs = [Schema::new(vec![Field::new(
            "Actors",
            Type::set_of(Type::Named("Actor".into())),
        )])];
        // Salary(Actors): set of actors -> set of salaries.
        let ty =
            infer_scalar_type(&Scalar::field(Scalar::attr(1, 1), "Salary"), &inputs, &ctx).unwrap();
        assert_eq!(ty, Type::set_of(Type::Numeric));
    }
}
