//! LERA-layer errors.

use std::fmt;

use eds_adt::AdtError;
use eds_esql::EsqlError;

/// Errors raised while translating, inferring schemas, or bridging terms.
#[derive(Debug, Clone, PartialEq)]
pub enum LeraError {
    /// Relation name not found when inferring a schema.
    UnknownRelation(String),
    /// Attribute reference out of range for its relation.
    BadAttrRef {
        /// 1-based relation index.
        rel: usize,
        /// 1-based attribute index.
        attr: usize,
        /// What was available.
        context: String,
    },
    /// Attribute-as-function resolution failed.
    UnknownAttribute {
        /// Attribute name.
        name: String,
        /// Rendering of the receiver type.
        receiver: String,
    },
    /// The expression is not well typed.
    Type(String),
    /// A term could not be interpreted as a LERA expression.
    BadTerm(String),
    /// Front-end failure.
    Esql(EsqlError),
    /// ADT failure.
    Adt(AdtError),
}

impl fmt::Display for LeraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeraError::UnknownRelation(n) => write!(f, "unknown relation '{n}'"),
            LeraError::BadAttrRef { rel, attr, context } => {
                write!(
                    f,
                    "attribute reference {rel}.{attr} out of range ({context})"
                )
            }
            LeraError::UnknownAttribute { name, receiver } => {
                write!(f, "type {receiver} has no attribute '{name}'")
            }
            LeraError::Type(msg) => write!(f, "type error: {msg}"),
            LeraError::BadTerm(msg) => write!(f, "malformed LERA term: {msg}"),
            LeraError::Esql(e) => write!(f, "{e}"),
            LeraError::Adt(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LeraError {}

impl From<EsqlError> for LeraError {
    fn from(e: EsqlError) -> Self {
        LeraError::Esql(e)
    }
}

impl From<AdtError> for LeraError {
    fn from(e: AdtError) -> Self {
        LeraError::Adt(e)
    }
}

/// Result alias for the LERA layer.
pub type LeraResult<T> = Result<T, LeraError>;
