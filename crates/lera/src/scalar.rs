//! Scalar (qualification and projection) expressions of LERA.
//!
//! Built-in and user-defined function symbols may appear in conditions and
//! attribute lists (Section 3.3); attribute references are positional
//! (`1.2` = second attribute of the first input relation), and tuple-field
//! access is the generic `PROJECT` function the typing phase inserts
//! (e.g. `PROJECT(VALUE(Refactor), Salary)`).

use std::fmt;

use eds_adt::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Symbol used in terms and display.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
        }
    }

    /// Parse a symbol.
    pub fn from_symbol(s: &str) -> Option<CmpOp> {
        Some(match s {
            "=" => CmpOp::Eq,
            "<>" => CmpOp::Ne,
            "<" => CmpOp::Lt,
            ">" => CmpOp::Gt,
            "<=" => CmpOp::Le,
            ">=" => CmpOp::Ge,
            _ => return None,
        })
    }

    /// The mirrored operator (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// Positional attribute reference: `rel.attr`, both 1-based, `rel`
    /// indexing the enclosing operator's input list.
    Attr {
        /// 1-based input relation index.
        rel: usize,
        /// 1-based attribute index.
        attr: usize,
    },
    /// Literal.
    Const(Value),
    /// Named field access on a tuple-valued (or object/collection-valued)
    /// expression — the generic `PROJECT` function of Section 3.3. The
    /// engine resolves the name to a position using inferred types;
    /// object inputs are `VALUE`-dereferenced by the typing phase, and
    /// collection inputs map the projection over their elements.
    Field {
        /// Receiver expression.
        input: Box<Scalar>,
        /// Attribute name.
        name: String,
    },
    /// Function application (ADT library or user function): `MEMBER`,
    /// `VALUE`, `MAKESET`, arithmetic, quantifiers `ALL`/`EXIST`, ...
    Call {
        /// Function name (canonical upper-case).
        func: String,
        /// Arguments.
        args: Vec<Scalar>,
    },
    /// Positional statement parameter (`?` in ESQL), 0-based. Bound to a
    /// concrete [`Value`] at execute time from the statement's bind
    /// array; rewrite rules whose conditions would inspect the value see
    /// a non-constant leaf and defer to bind time.
    Param(u16),
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Scalar>,
        /// Right operand.
        right: Box<Scalar>,
    },
    /// Conjunction.
    And(Box<Scalar>, Box<Scalar>),
    /// Disjunction.
    Or(Box<Scalar>, Box<Scalar>),
    /// Negation.
    Not(Box<Scalar>),
}

impl Scalar {
    /// Attribute-reference helper (1-based).
    pub fn attr(rel: usize, attr: usize) -> Scalar {
        Scalar::Attr { rel, attr }
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Scalar {
        Scalar::Const(v.into())
    }

    /// Call helper (name canonicalized to upper-case).
    pub fn call(func: &str, args: Vec<Scalar>) -> Scalar {
        Scalar::Call {
            func: func.to_ascii_uppercase(),
            args,
        }
    }

    /// Comparison helper.
    pub fn cmp(op: CmpOp, left: Scalar, right: Scalar) -> Scalar {
        Scalar::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Equality helper.
    pub fn eq(left: Scalar, right: Scalar) -> Scalar {
        Scalar::cmp(CmpOp::Eq, left, right)
    }

    /// Conjunction helper.
    pub fn and(left: Scalar, right: Scalar) -> Scalar {
        Scalar::And(Box::new(left), Box::new(right))
    }

    /// Positional-parameter helper (0-based).
    pub fn param(idx: u16) -> Scalar {
        Scalar::Param(idx)
    }

    /// Field-access helper.
    pub fn field(input: Scalar, name: &str) -> Scalar {
        Scalar::Field {
            input: Box::new(input),
            name: name.to_owned(),
        }
    }

    /// The `TRUE` constant.
    pub fn true_() -> Scalar {
        Scalar::Const(Value::Bool(true))
    }

    /// The `FALSE` constant.
    pub fn false_() -> Scalar {
        Scalar::Const(Value::Bool(false))
    }

    /// Is this the literal TRUE?
    pub fn is_true(&self) -> bool {
        matches!(self, Scalar::Const(Value::Bool(true)))
    }

    /// Is this the literal FALSE?
    pub fn is_false(&self) -> bool {
        matches!(self, Scalar::Const(Value::Bool(false)))
    }

    /// Split a conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Scalar> {
        match self {
            Scalar::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Rebuild a conjunction from conjuncts (`TRUE` for none).
    pub fn conjoin(mut parts: Vec<Scalar>) -> Scalar {
        match parts.len() {
            0 => Scalar::true_(),
            1 => parts.remove(0),
            _ => {
                let first = parts.remove(0);
                parts.into_iter().fold(first, Scalar::and)
            }
        }
    }

    /// All attribute references appearing in the expression.
    pub fn attr_refs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.visit(&mut |s| {
            if let Scalar::Attr { rel, attr } = s {
                out.push((*rel, *attr));
            }
        });
        out
    }

    /// Visit all nodes pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Scalar)) {
        f(self);
        match self {
            Scalar::Field { input, .. } => input.visit(f),
            Scalar::Call { args, .. } => args.iter().for_each(|a| a.visit(f)),
            Scalar::Cmp { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Scalar::And(a, b) | Scalar::Or(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Scalar::Not(a) => a.visit(f),
            Scalar::Attr { .. } | Scalar::Const(_) | Scalar::Param(_) => {}
        }
    }

    /// Highest parameter index appearing in the expression, if any.
    pub fn max_param(&self) -> Option<u16> {
        let mut max = None;
        self.visit(&mut |s| {
            if let Scalar::Param(i) = s {
                max = Some(max.map_or(*i, |m: u16| m.max(*i)));
            }
        });
        max
    }

    /// Structurally transform attribute references.
    pub fn map_attrs(&self, f: &impl Fn(usize, usize) -> Scalar) -> Scalar {
        match self {
            Scalar::Attr { rel, attr } => f(*rel, *attr),
            Scalar::Const(_) | Scalar::Param(_) => self.clone(),
            Scalar::Field { input, name } => Scalar::Field {
                input: Box::new(input.map_attrs(f)),
                name: name.clone(),
            },
            Scalar::Call { func, args } => Scalar::Call {
                func: func.clone(),
                args: args.iter().map(|a| a.map_attrs(f)).collect(),
            },
            Scalar::Cmp { op, left, right } => Scalar::Cmp {
                op: *op,
                left: Box::new(left.map_attrs(f)),
                right: Box::new(right.map_attrs(f)),
            },
            Scalar::And(a, b) => Scalar::And(Box::new(a.map_attrs(f)), Box::new(b.map_attrs(f))),
            Scalar::Or(a, b) => Scalar::Or(Box::new(a.map_attrs(f)), Box::new(b.map_attrs(f))),
            Scalar::Not(a) => Scalar::Not(Box::new(a.map_attrs(f))),
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Attr { rel, attr } => write!(f, "{rel}.{attr}"),
            Scalar::Const(v) => write!(f, "{v}"),
            Scalar::Param(i) => write!(f, "?{i}"),
            Scalar::Field { input, name } => write!(f, "PROJECT({input}, {name})"),
            Scalar::Call { func, args } => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Scalar::Cmp { op, left, right } => write!(f, "{left} {} {right}", op.symbol()),
            Scalar::And(a, b) => write!(f, "{a} ∧ {b}"),
            Scalar::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Scalar::Not(a) => write!(f, "¬({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_roundtrip() {
        let c = Scalar::conjoin(vec![
            Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1)),
            Scalar::cmp(CmpOp::Gt, Scalar::attr(1, 2), Scalar::lit(5)),
            Scalar::call("MEMBER", vec![Scalar::lit("x"), Scalar::attr(2, 3)]),
        ]);
        assert_eq!(c.conjuncts().len(), 3);
        assert!(Scalar::conjoin(vec![]).is_true());
    }

    #[test]
    fn display_matches_paper_style() {
        let s = Scalar::and(
            Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1)),
            Scalar::eq(
                Scalar::field(Scalar::call("VALUE", vec![Scalar::attr(1, 2)]), "Salary"),
                Scalar::lit(1000),
            ),
        );
        assert_eq!(
            s.to_string(),
            "1.1 = 2.1 ∧ PROJECT(VALUE(1.2), Salary) = 1000"
        );
    }

    #[test]
    fn attr_refs_collected() {
        let s = Scalar::and(
            Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1)),
            Scalar::cmp(CmpOp::Lt, Scalar::attr(2, 2), Scalar::lit(3)),
        );
        assert_eq!(s.attr_refs(), vec![(1, 1), (2, 1), (2, 2)]);
    }

    #[test]
    fn map_attrs_renumbers() {
        let s = Scalar::eq(Scalar::attr(2, 1), Scalar::lit(1));
        let shifted = s.map_attrs(&|rel, attr| Scalar::attr(rel + 10, attr));
        assert_eq!(shifted.attr_refs(), vec![(12, 1)]);
    }

    #[test]
    fn cmp_flip() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
        assert_eq!(CmpOp::from_symbol("<="), Some(CmpOp::Le));
    }
}
