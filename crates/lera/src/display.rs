//! Rendering LERA expressions in the paper's concrete syntax, e.g.
//!
//! ```text
//! search((APPEARS_IN, FILM), [1.1 = 2.1 ∧ PROJECT(VALUE(1.2), Name) = 'Quinn'], (2.2, 2.3))
//! ```

use std::fmt;

use crate::expr::Expr;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Base(name) => f.write_str(name),
            Expr::Filter { input, pred } => write!(f, "filter({input}, [{pred}])"),
            Expr::Project { input, exprs } => {
                write!(f, "project({input}, (")?;
                join(f, exprs.iter())?;
                f.write_str("))")
            }
            Expr::Join { left, right, pred } => write!(f, "join({left}, {right}, [{pred}])"),
            Expr::Union(items) => {
                f.write_str("union({")?;
                join(f, items.iter())?;
                f.write_str("})")
            }
            Expr::Difference(a, b) => write!(f, "difference({a}, {b})"),
            Expr::Intersect(a, b) => write!(f, "intersect({a}, {b})"),
            Expr::Search { inputs, pred, proj } => {
                f.write_str("search((")?;
                join(f, inputs.iter())?;
                write!(f, "), [{pred}], (")?;
                join(f, proj.iter())?;
                f.write_str("))")
            }
            Expr::Fix { name, body } => write!(f, "fix({name}, {body})"),
            Expr::Nest {
                input,
                group,
                nested,
                kind,
            } => {
                write!(f, "nest({input}, (")?;
                join(f, nested.iter())?;
                f.write_str("), (")?;
                join(f, group.iter())?;
                write!(f, "), {kind})")
            }
            Expr::Unnest { input, attr } => write!(f, "unnest({input}, {attr})"),
            Expr::Dedup(input) => write!(f, "dedup({input})"),
        }
    }
}

fn join<T: fmt::Display>(
    f: &mut fmt::Formatter<'_>,
    items: impl Iterator<Item = T>,
) -> fmt::Result {
    for (i, item) in items.enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}

/// Multi-line, indented rendering for examples and EXPLAIN output.
pub fn pretty(e: &Expr) -> String {
    let mut out = String::new();
    fn walk(e: &Expr, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match e {
            Expr::Base(name) => {
                out.push_str(&pad);
                out.push_str(name);
                out.push('\n');
            }
            Expr::Search { inputs, pred, proj } => {
                out.push_str(&pad);
                out.push_str("search\n");
                out.push_str(&format!("{pad}  [{pred}]\n"));
                out.push_str(&format!(
                    "{pad}  ({})\n",
                    proj.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
                for i in inputs {
                    walk(i, depth + 1, out);
                }
            }
            Expr::Fix { name, body } => {
                out.push_str(&format!("{pad}fix {name}\n"));
                walk(body, depth + 1, out);
            }
            Expr::Union(items) => {
                out.push_str(&pad);
                out.push_str("union\n");
                for i in items {
                    walk(i, depth + 1, out);
                }
            }
            Expr::Nest {
                input,
                group,
                nested,
                kind,
            } => {
                out.push_str(&format!(
                    "{pad}nest nested={nested:?} group={group:?} kind={kind}\n"
                ));
                walk(input, depth + 1, out);
            }
            other => {
                out.push_str(&pad);
                out.push_str(other.op_name());
                match other {
                    Expr::Filter { pred, .. } | Expr::Join { pred, .. } => {
                        out.push_str(&format!(" [{pred}]"));
                    }
                    _ => {}
                }
                out.push('\n');
                for c in other.children() {
                    walk(c, depth + 1, out);
                }
            }
        }
    }
    walk(e, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Scalar;

    #[test]
    fn search_display_matches_paper_shape() {
        let e = Expr::search(
            vec![Expr::base("APPEARS_IN"), Expr::base("FILM")],
            Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1)),
            vec![Scalar::attr(2, 2), Scalar::attr(2, 3)],
        );
        assert_eq!(
            e.to_string(),
            "search((APPEARS_IN, FILM), [1.1 = 2.1], (2.2, 2.3))"
        );
    }

    #[test]
    fn fix_display() {
        let e = Expr::Fix {
            name: "BT".into(),
            body: Box::new(Expr::Union(vec![Expr::base("DOMINATE"), Expr::base("BT")])),
        };
        assert_eq!(e.to_string(), "fix(BT, union({DOMINATE, BT}))");
    }

    #[test]
    fn pretty_indents() {
        let e = Expr::search(
            vec![Expr::base("FILM")],
            Scalar::true_(),
            vec![Scalar::attr(1, 1)],
        );
        let p = pretty(&e);
        assert!(p.starts_with("search\n"));
        assert!(p.contains("\n  FILM"));
    }
}
