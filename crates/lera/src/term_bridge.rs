//! Lossless conversion between LERA expressions and rewrite terms.
//!
//! The rewriter operates on the uniform term representation ("LERA
//! operators interpreted as functions", Section 4.1); the typed IR is for
//! translation, schema inference and execution. Operators map to functors:
//!
//! ```text
//! search(...)    SEARCH(LIST(inputs), qual, LIST(proj))
//! union*         UNION(SET(items))
//! fix(R, E)      FIX(R, E)
//! nest           NEST(input, LIST(nested), LIST(group), KIND)
//! unnest         UNNEST(input, attr)
//! filter/project FILTER(input, qual) / PROJECTION(input, LIST(exprs))
//! join           JOIN(left, right, qual)
//! attribute ref  ATTR(i, j)      (displayed i.j)
//! field access   PROJECT(receiver, Name)
//! ```

use eds_adt::CollKind;
use eds_rewrite::Term;

use crate::error::{LeraError, LeraResult};
use crate::expr::Expr;
use crate::scalar::{CmpOp, Scalar};

/// Convert a LERA expression to a term.
pub fn expr_to_term(e: &Expr) -> Term {
    match e {
        Expr::Base(name) => Term::atom(name.to_ascii_uppercase()),
        Expr::Filter { input, pred } => {
            Term::app("FILTER", vec![expr_to_term(input), scalar_to_term(pred)])
        }
        Expr::Project { input, exprs } => Term::app(
            "PROJECTION",
            vec![
                expr_to_term(input),
                Term::list(exprs.iter().map(scalar_to_term).collect()),
            ],
        ),
        Expr::Join { left, right, pred } => Term::app(
            "JOIN",
            vec![
                expr_to_term(left),
                expr_to_term(right),
                scalar_to_term(pred),
            ],
        ),
        Expr::Union(items) => Term::app(
            "UNION",
            vec![Term::set(items.iter().map(expr_to_term).collect())],
        ),
        Expr::Difference(a, b) => Term::app("DIFFERENCE", vec![expr_to_term(a), expr_to_term(b)]),
        Expr::Intersect(a, b) => Term::app("INTERSECT", vec![expr_to_term(a), expr_to_term(b)]),
        Expr::Search { inputs, pred, proj } => Term::app(
            "SEARCH",
            vec![
                Term::list(inputs.iter().map(expr_to_term).collect()),
                scalar_to_term(pred),
                Term::list(proj.iter().map(scalar_to_term).collect()),
            ],
        ),
        Expr::Fix { name, body } => Term::app(
            "FIX",
            vec![Term::atom(name.to_ascii_uppercase()), expr_to_term(body)],
        ),
        Expr::Nest {
            input,
            group,
            nested,
            kind,
        } => Term::app(
            "NEST",
            vec![
                expr_to_term(input),
                Term::list(nested.iter().map(|&i| Term::int(i as i64)).collect()),
                Term::list(group.iter().map(|&i| Term::int(i as i64)).collect()),
                Term::atom(kind.name()),
            ],
        ),
        Expr::Unnest { input, attr } => {
            Term::app("UNNEST", vec![expr_to_term(input), Term::int(*attr as i64)])
        }
        Expr::Dedup(input) => Term::app("DEDUP", vec![expr_to_term(input)]),
    }
}

/// Convert a scalar to a term.
pub fn scalar_to_term(s: &Scalar) -> Term {
    match s {
        Scalar::Attr { rel, attr } => Term::attr(*rel as i64, *attr as i64),
        Scalar::Const(v) => Term::Const(v.clone()),
        Scalar::Param(i) => Term::app("PARAM", vec![Term::int(*i as i64)]),
        Scalar::Field { input, name } => Term::app(
            "PROJECT",
            vec![scalar_to_term(input), Term::atom(name.to_ascii_uppercase())],
        ),
        Scalar::Call { func, args } => {
            Term::app(func.clone(), args.iter().map(scalar_to_term).collect())
        }
        Scalar::Cmp { op, left, right } => Term::app(
            op.symbol(),
            vec![scalar_to_term(left), scalar_to_term(right)],
        ),
        Scalar::And(a, b) => Term::app("AND", vec![scalar_to_term(a), scalar_to_term(b)]),
        Scalar::Or(a, b) => Term::app("OR", vec![scalar_to_term(a), scalar_to_term(b)]),
        Scalar::Not(a) => Term::app("NOT", vec![scalar_to_term(a)]),
    }
}

const OPERATOR_HEADS: [&str; 11] = [
    "FILTER",
    "PROJECTION",
    "JOIN",
    "UNION",
    "DIFFERENCE",
    "INTERSECT",
    "SEARCH",
    "FIX",
    "NEST",
    "UNNEST",
    "DEDUP",
];

/// Is this term a relation-valued (operator) term?
pub fn is_operator_term(t: &Term) -> bool {
    match t.as_app() {
        Some((h, args)) => {
            (args.is_empty() && !matches!(h, "TRUE" | "FALSE" | "NULL"))
                || OPERATOR_HEADS.contains(&h)
        }
        None => false,
    }
}

fn bad(msg: impl Into<String>) -> LeraError {
    LeraError::BadTerm(msg.into())
}

fn list_args<'a>(t: &'a Term, what: &str) -> LeraResult<&'a [Term]> {
    match t.as_app() {
        Some(("LIST", args)) => Ok(args),
        _ => Err(bad(format!("expected LIST for {what}, found {t}"))),
    }
}

fn usize_arg(t: &Term, what: &str) -> LeraResult<usize> {
    match t.as_const() {
        Some(eds_adt::Value::Int(i)) if *i >= 1 => Ok(*i as usize),
        _ => Err(bad(format!(
            "expected positive integer for {what}, found {t}"
        ))),
    }
}

/// Convert a term back into a LERA expression.
pub fn expr_from_term(t: &Term) -> LeraResult<Expr> {
    let (head, args) = t
        .as_app()
        .ok_or_else(|| bad(format!("not a relation term: {t}")))?;
    match (head, args) {
        (_, []) => Ok(Expr::base(head)),
        ("FILTER", [input, pred]) => Ok(Expr::Filter {
            input: Box::new(expr_from_term(input)?),
            pred: scalar_from_term(pred)?,
        }),
        ("PROJECTION", [input, exprs]) => Ok(Expr::Project {
            input: Box::new(expr_from_term(input)?),
            exprs: list_args(exprs, "projection list")?
                .iter()
                .map(scalar_from_term)
                .collect::<LeraResult<_>>()?,
        }),
        ("JOIN", [l, r, pred]) => Ok(Expr::Join {
            left: Box::new(expr_from_term(l)?),
            right: Box::new(expr_from_term(r)?),
            pred: scalar_from_term(pred)?,
        }),
        ("UNION", [set]) => match set.as_app() {
            Some(("SET" | "BAG" | "LIST", items)) => Ok(Expr::Union(
                items
                    .iter()
                    .map(expr_from_term)
                    .collect::<LeraResult<_>>()?,
            )),
            _ => Err(bad(format!("UNION expects a collection of relations: {t}"))),
        },
        ("DIFFERENCE", [a, b]) => Ok(Expr::Difference(
            Box::new(expr_from_term(a)?),
            Box::new(expr_from_term(b)?),
        )),
        ("INTERSECT", [a, b]) => Ok(Expr::Intersect(
            Box::new(expr_from_term(a)?),
            Box::new(expr_from_term(b)?),
        )),
        ("SEARCH", [inputs, pred, proj]) => Ok(Expr::Search {
            inputs: list_args(inputs, "search inputs")?
                .iter()
                .map(expr_from_term)
                .collect::<LeraResult<_>>()?,
            pred: scalar_from_term(pred)?,
            proj: list_args(proj, "search projection")?
                .iter()
                .map(scalar_from_term)
                .collect::<LeraResult<_>>()?,
        }),
        ("FIX", [name, body]) => {
            let name = match name.as_app() {
                Some((n, [])) => n.to_owned(),
                _ => return Err(bad(format!("FIX expects a relation name: {t}"))),
            };
            Ok(Expr::Fix {
                name,
                body: Box::new(expr_from_term(body)?),
            })
        }
        ("NEST", [input, nested, group, kind]) => {
            let kind = match kind.as_app() {
                Some(("SET", [])) => CollKind::Set,
                Some(("BAG", [])) => CollKind::Bag,
                Some(("LIST", [])) => CollKind::List,
                Some(("ARRAY", [])) => CollKind::Array,
                _ => return Err(bad(format!("NEST expects a collection kind: {t}"))),
            };
            Ok(Expr::Nest {
                input: Box::new(expr_from_term(input)?),
                nested: list_args(nested, "nested attributes")?
                    .iter()
                    .map(|a| usize_arg(a, "nested attribute"))
                    .collect::<LeraResult<_>>()?,
                group: list_args(group, "group attributes")?
                    .iter()
                    .map(|a| usize_arg(a, "group attribute"))
                    .collect::<LeraResult<_>>()?,
                kind,
            })
        }
        ("UNNEST", [input, attr]) => Ok(Expr::Unnest {
            input: Box::new(expr_from_term(input)?),
            attr: usize_arg(attr, "unnest attribute")?,
        }),
        ("DEDUP", [input]) => Ok(Expr::Dedup(Box::new(expr_from_term(input)?))),
        _ => Err(bad(format!("unknown operator term: {t}"))),
    }
}

/// Convert a term back into a scalar expression.
pub fn scalar_from_term(t: &Term) -> LeraResult<Scalar> {
    if let Some((rel, attr)) = t.as_attr() {
        if rel >= 1 && attr >= 1 {
            return Ok(Scalar::attr(rel as usize, attr as usize));
        }
        return Err(bad(format!("non-positive attribute reference {t}")));
    }
    match t {
        Term::Const(v) => Ok(Scalar::Const(v.clone())),
        Term::Var(v) => Err(bad(format!("free variable '{v}' in scalar term"))),
        Term::SeqVar(v) => Err(bad(format!(
            "free collection variable '{v}*' in scalar term"
        ))),
        Term::App(head, args) => match (head.as_str(), args.as_slice()) {
            ("TRUE", []) => Ok(Scalar::true_()),
            ("FALSE", []) => Ok(Scalar::false_()),
            ("NULL", []) => Ok(Scalar::Const(eds_adt::Value::Null)),
            ("AND", [a, b]) => Ok(Scalar::And(
                Box::new(scalar_from_term(a)?),
                Box::new(scalar_from_term(b)?),
            )),
            ("OR", [a, b]) => Ok(Scalar::Or(
                Box::new(scalar_from_term(a)?),
                Box::new(scalar_from_term(b)?),
            )),
            ("NOT", [a]) => Ok(Scalar::Not(Box::new(scalar_from_term(a)?))),
            // Positional statement parameter — must be matched before the
            // generic-call fallback, or it would round-trip as a call.
            ("PARAM", [idx]) => match idx.as_const() {
                Some(eds_adt::Value::Int(i)) if (0..=i64::from(u16::MAX)).contains(i) => {
                    Ok(Scalar::Param(*i as u16))
                }
                _ => Err(bad(format!("PARAM expects a small integer index: {t}"))),
            },
            ("PROJECT", [input, name]) => {
                let name = match name.as_app() {
                    Some((n, [])) => n.to_owned(),
                    _ => return Err(bad(format!("PROJECT expects an attribute name: {t}"))),
                };
                Ok(Scalar::Field {
                    input: Box::new(scalar_from_term(input)?),
                    name,
                })
            }
            (op, [a, b]) if CmpOp::from_symbol(op).is_some() => Ok(Scalar::Cmp {
                op: CmpOp::from_symbol(op).expect("checked"),
                left: Box::new(scalar_from_term(a)?),
                right: Box::new(scalar_from_term(b)?),
            }),
            // Collection literals in qualifications ({'a','b'}) become
            // MAKESET-style constructor calls.
            ("SET", elems) => Ok(Scalar::call(
                "MAKESET",
                elems
                    .iter()
                    .map(scalar_from_term)
                    .collect::<LeraResult<_>>()?,
            )),
            ("BAG", elems) => Ok(Scalar::call(
                "MAKEBAG",
                elems
                    .iter()
                    .map(scalar_from_term)
                    .collect::<LeraResult<_>>()?,
            )),
            (func, args) => Ok(Scalar::Call {
                func: func.to_owned(),
                args: args
                    .iter()
                    .map(scalar_from_term)
                    .collect::<LeraResult<_>>()?,
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_like() -> Expr {
        Expr::search(
            vec![Expr::base("APPEARS_IN"), Expr::base("FILM")],
            Scalar::conjoin(vec![
                Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1)),
                Scalar::eq(
                    Scalar::field(Scalar::call("VALUE", vec![Scalar::attr(1, 2)]), "Name"),
                    Scalar::lit("Quinn"),
                ),
                Scalar::call("MEMBER", vec![Scalar::lit("Adventure"), Scalar::attr(2, 3)]),
            ]),
            vec![
                Scalar::attr(2, 2),
                Scalar::attr(2, 3),
                Scalar::field(Scalar::call("VALUE", vec![Scalar::attr(1, 2)]), "Salary"),
            ],
        )
    }

    #[test]
    fn search_roundtrip() {
        let e = fig3_like();
        let t = expr_to_term(&e);
        assert!(t.to_string().starts_with("SEARCH(LIST(APPEARS_IN, FILM),"));
        let back = expr_from_term(&t).unwrap();
        // Field names canonicalize to upper-case through the bridge.
        let renamed = expr_to_term(&back);
        assert_eq!(t, renamed);
    }

    #[test]
    fn fix_roundtrip() {
        let e = Expr::Fix {
            name: "BETTER_THAN".into(),
            body: Box::new(Expr::Union(vec![
                Expr::base("DOMINATE"),
                Expr::search(
                    vec![Expr::base("BETTER_THAN"), Expr::base("BETTER_THAN")],
                    Scalar::eq(Scalar::attr(1, 2), Scalar::attr(2, 1)),
                    vec![Scalar::attr(1, 1), Scalar::attr(2, 2)],
                ),
            ])),
        };
        let t = expr_to_term(&e);
        let back = expr_from_term(&t).unwrap();
        assert_eq!(expr_to_term(&back), t);
        // Fixpoint union goes through the SET constructor.
        assert!(t.to_string().contains("UNION(SET("));
    }

    #[test]
    fn nest_roundtrip() {
        let e = Expr::Nest {
            input: Box::new(Expr::base("R")),
            group: vec![1, 2],
            nested: vec![3],
            kind: CollKind::Set,
        };
        let t = expr_to_term(&e);
        assert_eq!(t.to_string(), "NEST(R, LIST(3), LIST(1, 2), SET)");
        assert_eq!(expr_from_term(&t).unwrap(), e);
    }

    #[test]
    fn scalar_operators_roundtrip() {
        let s = Scalar::Or(
            Box::new(Scalar::Not(Box::new(Scalar::cmp(
                CmpOp::Le,
                Scalar::attr(1, 1),
                Scalar::lit(5),
            )))),
            Box::new(Scalar::call("ISEMPTY", vec![Scalar::attr(1, 2)])),
        );
        let t = scalar_to_term(&s);
        assert_eq!(scalar_from_term(&t).unwrap(), s);
    }

    #[test]
    fn malformed_terms_rejected() {
        assert!(expr_from_term(&Term::app("SEARCH", vec![Term::atom("R")])).is_err());
        assert!(expr_from_term(&Term::app(
            "UNION",
            vec![Term::atom("R")] // not a SET
        ))
        .is_err());
        assert!(scalar_from_term(&Term::var("x")).is_err());
        assert!(expr_from_term(&Term::app(
            "NEST",
            vec![
                Term::atom("R"),
                Term::list(vec![Term::int(0)]), // attr < 1
                Term::list(vec![]),
                Term::atom("SET"),
            ]
        ))
        .is_err());
    }

    #[test]
    fn operator_term_classifier() {
        assert!(is_operator_term(&Term::atom("FILM")));
        assert!(is_operator_term(&expr_to_term(&fig3_like())));
        assert!(!is_operator_term(&Term::attr(1, 1)));
        assert!(!is_operator_term(&Term::atom("TRUE")));
    }

    #[test]
    fn param_roundtrips_through_terms() {
        let s = Scalar::eq(Scalar::attr(1, 1), Scalar::param(3));
        let t = scalar_to_term(&s);
        assert_eq!(t.to_string(), "(1.1 = PARAM(3))");
        assert_eq!(scalar_from_term(&t).unwrap(), s);
    }

    #[test]
    fn set_literal_in_qualification_becomes_makeset() {
        let t = Term::app(
            "MEMBER",
            vec![
                Term::str("Cartoon"),
                Term::set(vec![Term::str("Comedy"), Term::str("Western")]),
            ],
        );
        let s = scalar_from_term(&t).unwrap();
        assert_eq!(
            s.to_string(),
            "MEMBER('Cartoon', MAKESET('Comedy', 'Western'))"
        );
    }
}
