//! Scalar-evaluator semantics: collection broadcasting, NULL handling,
//! object dereference edge cases.

use eds_adt::Value;
use eds_engine::{eval, Database};
use eds_esql::parse_query;
use eds_lera::{translate_query, SchemaCtx};

fn run(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let q = parse_query(sql).unwrap();
    let ctx = SchemaCtx::new(&db.catalog);
    let (expr, _) = translate_query(&q, &ctx).unwrap();
    eval(&expr, db).unwrap().sorted_rows()
}

#[test]
fn ordered_comparison_broadcasts_over_collections() {
    let mut db = Database::new();
    db.execute_ddl(
        "TYPE Scores SET OF INT;
         TABLE T (Id : INT, Scores : Scores);
         INSERT INTO T VALUES (1, MakeSet(5, 9)), (2, MakeSet(1, 2)), (3, MakeSet());",
    )
    .unwrap();
    // ALL(Scores > 3): row 1 yes, row 2 no, row 3 vacuously yes.
    let rows = run(&db, "SELECT Id FROM T WHERE ALL (Scores > 3) ;");
    assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    // EXIST(Scores > 3): row 1 only.
    let rows = run(&db, "SELECT Id FROM T WHERE EXIST (Scores > 3) ;");
    assert_eq!(rows, vec![vec![Value::Int(1)]]);
}

#[test]
fn equality_on_collections_is_structural_not_broadcast() {
    let mut db = Database::new();
    db.execute_ddl(
        "TYPE Tags SET OF CHAR;
         TABLE T (Id : INT, Tags : Tags);
         INSERT INTO T VALUES (1, MakeSet('a')), (2, MakeSet('a', 'b'));",
    )
    .unwrap();
    let rows = run(&db, "SELECT Id FROM T WHERE Tags = MakeSet('a', 'b') ;");
    assert_eq!(rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn null_collections_and_members() {
    let mut db = Database::new();
    db.execute_ddl("TABLE T (Id : INT, X : INT);").unwrap();
    db.insert("T", vec![1.into(), Value::Null]).unwrap();
    db.insert("T", vec![2.into(), 5.into()]).unwrap();
    // NULL arithmetic propagates; the filter drops unknowns.
    let rows = run(&db, "SELECT Id FROM T WHERE X + 1 = 6 ;");
    assert_eq!(rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn collection_functions_compose_in_projections() {
    let mut db = Database::new();
    db.execute_ddl(
        "TYPE Tags SET OF CHAR;
         TABLE T (Id : INT, A : Tags, B : Tags);
         INSERT INTO T VALUES (1, MakeSet('x', 'y'), MakeSet('y', 'z'));",
    )
    .unwrap();
    let rows = run(
        &db,
        "SELECT COUNT(UNION(A, B)), COUNT(INTERSECTION(A, B)), \
                ISEMPTY(DIFFERENCE(A, A)) FROM T ;",
    );
    assert_eq!(
        rows,
        vec![vec![Value::Int(3), Value::Int(1), Value::Bool(true)]]
    );
}

#[test]
fn nested_field_access_through_tuple_types() {
    let mut db = Database::new();
    db.execute_ddl(
        "TYPE Point TUPLE (ABS : REAL, ORD : REAL);
         TABLE SHAPES (Id : INT, Center : Point);",
    )
    .unwrap();
    db.insert(
        "SHAPES",
        vec![
            1.into(),
            Value::Tuple(vec![Value::real(3.5), Value::real(-1.0)]),
        ],
    )
    .unwrap();
    db.insert(
        "SHAPES",
        vec![
            2.into(),
            Value::Tuple(vec![Value::real(-3.5), Value::real(2.0)]),
        ],
    )
    .unwrap();
    // ABS(Center) is tuple-field access through a value (no object).
    let rows = run(&db, "SELECT Id FROM SHAPES WHERE ABS(Center) > 0 ;");
    assert_eq!(rows, vec![vec![Value::Int(1)]]);
}

#[test]
fn choice_and_nth_in_queries() {
    let mut db = Database::new();
    db.execute_ddl(
        "TYPE Ls LIST OF INT;
         TABLE T (Id : INT, L : Ls);
         INSERT INTO T VALUES (1, MakeList(30, 10, 20));",
    )
    .unwrap();
    let rows = run(&db, "SELECT NTH(L, 2), CHOICE(L) FROM T ;");
    assert_eq!(rows, vec![vec![Value::Int(10), Value::Int(30)]]);
}
