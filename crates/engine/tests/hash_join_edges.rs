//! Hash-join key edge cases: NULL join keys, mixed-type keys, and
//! qualifications the key extractor cannot hash (non-equality conjuncts).
//! Every query must return exactly the same rows — values and order — under
//! `JoinMode::NestedLoop` and `JoinMode::Hash`, at parallelism 1 and 4, and
//! must match the reference executor.

use eds_adt::Value;
use eds_engine::{eval_reference, eval_with, Database, EvalOptions, JoinMode};
use eds_lera::{CmpOp, Expr, Scalar};

/// Two tables whose keys exercise the awkward cases: NULLs on both sides,
/// and keys of mixed runtime type (integers, strings, bools).
fn edge_db() -> Database {
    let mut db = Database::new();
    db.execute_ddl(
        "TABLE L ( K : NUMERIC, A : NUMERIC ) ;
         TABLE R ( K : NUMERIC, B : NUMERIC ) ;",
    )
    .unwrap();
    db.insert_all(
        "L",
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Null, Value::Int(30)],
            vec![Value::str("2"), Value::Int(40)], // string "2", not int 2
            vec![Value::Bool(true), Value::Int(50)],
            vec![Value::Int(2), Value::Int(60)], // duplicate key
        ],
    )
    .unwrap();
    db.insert_all(
        "R",
        vec![
            vec![Value::Int(2), Value::Int(200)],
            vec![Value::Null, Value::Int(300)],
            vec![Value::str("2"), Value::Int(400)],
            vec![Value::Bool(true), Value::Int(500)],
            vec![Value::Int(9), Value::Int(900)],
        ],
    )
    .unwrap();
    db
}

/// Evaluate under every JoinMode × parallelism combination; assert all
/// agree with each other and with the reference interpreter, then return
/// the (shared) result rows.
fn all_modes_agree(db: &Database, expr: &Expr) -> Vec<Vec<Value>> {
    let mut witness: Option<(Vec<Vec<Value>>, EvalOptions)> = None;
    for join in [JoinMode::NestedLoop, JoinMode::Hash] {
        for parallelism in [1usize, 4] {
            let opts = EvalOptions {
                join,
                parallelism,
                ..Default::default()
            };
            let rel = eval_with(expr, db, opts).expect("evaluates").0;
            let reference = eval_reference(expr, db, opts).expect("reference evaluates");
            assert_eq!(
                rel.rows, reference.rows,
                "diverges from reference under {opts:?}"
            );
            let rows = rel.sorted_rows();
            match &witness {
                None => witness = Some((rows, opts)),
                Some((expected, first_opts)) => {
                    assert_eq!(&rows, expected, "{opts:?} disagrees with {first_opts:?}");
                }
            }
        }
    }
    witness.expect("at least one configuration ran").0
}

fn equi_join(extra: Option<Scalar>) -> Expr {
    // SEARCH(L, R | L.K = R.K [AND extra] | L.A, R.B)
    let key_eq = Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1));
    let pred = match extra {
        Some(e) => Scalar::and(key_eq, e),
        None => key_eq,
    };
    Expr::search(
        vec![Expr::base("L"), Expr::base("R")],
        pred,
        vec![Scalar::attr(1, 2), Scalar::attr(2, 2)],
    )
}

#[test]
fn null_keys_never_match() {
    let db = edge_db();
    let rows = all_modes_agree(&db, &equi_join(None));
    // NULL = NULL is NULL under 3-valued logic: the Null-keyed rows on
    // both sides must not pair with anything — including each other.
    for row in &rows {
        assert_ne!(row[0], Value::Int(30), "L's Null-keyed row leaked");
        assert_ne!(row[1], Value::Int(300), "R's Null-keyed row leaked");
    }
    // Int 2 matches both duplicate L rows; "2" and true match their own
    // kind only — no cross-type coercion.
    let mut expected = vec![
        vec![Value::Int(20), Value::Int(200)],
        vec![Value::Int(60), Value::Int(200)],
        vec![Value::Int(40), Value::Int(400)],
        vec![Value::Int(50), Value::Int(500)],
    ];
    expected.sort();
    assert_eq!(rows, expected);
}

#[test]
fn mixed_type_keys_do_not_coerce() {
    let db = edge_db();
    // Join on L.K = R.K restricted by a payload filter (A >= 40): the
    // surviving matches are "2"="2", true=true, and the high-A int row —
    // each key pairs with its own runtime type only, no coercion.
    let extra = Scalar::cmp(CmpOp::Ge, Scalar::attr(1, 2), Scalar::lit(Value::Int(40)));
    let rows = all_modes_agree(&db, &equi_join(Some(extra)));
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(40), Value::Int(400)],
            vec![Value::Int(50), Value::Int(500)],
            vec![Value::Int(60), Value::Int(200)],
        ]
    );
}

#[test]
fn non_equality_conjuncts_fall_back_and_agree() {
    let db = edge_db();
    // No hashable equi-conjunct at all: pure theta-join (L.A < R.B). The
    // hash path must fall back to cross-product + recheck and still
    // reject NULL comparisons (Null < x is Null, not TRUE).
    let theta = Expr::search(
        vec![Expr::base("L"), Expr::base("R")],
        Scalar::cmp(CmpOp::Lt, Scalar::attr(1, 2), Scalar::attr(2, 2)),
        vec![Scalar::attr(1, 2), Scalar::attr(2, 2)],
    );
    let rows = all_modes_agree(&db, &theta);
    // Every L.A in {10..60} pairs with every strictly greater R.B.
    let l_vals = [10i64, 20, 30, 40, 50, 60];
    let r_vals = [200i64, 300, 400, 500, 900];
    let mut expected: Vec<Vec<Value>> = l_vals
        .iter()
        .flat_map(|&a| {
            r_vals
                .iter()
                .filter(move |&&b| a < b)
                .map(move |&b| vec![Value::Int(a), Value::Int(b)])
        })
        .collect();
    expected.sort();
    assert_eq!(rows, expected);

    // Equality on one pair of attrs plus an arithmetic inequality: the
    // equality is hashed, the inequality is rechecked.
    let extra = Scalar::cmp(CmpOp::Lt, Scalar::attr(1, 2), Scalar::attr(2, 2));
    let rows = all_modes_agree(&db, &equi_join(Some(extra)));
    let mut expected = vec![
        vec![Value::Int(20), Value::Int(200)],
        vec![Value::Int(60), Value::Int(200)],
        vec![Value::Int(40), Value::Int(400)],
        vec![Value::Int(50), Value::Int(500)],
    ];
    expected.retain(|r| r[0] < r[1]);
    expected.sort();
    assert_eq!(rows, expected);
}

#[test]
fn three_way_join_with_partial_keys() {
    let mut db = edge_db();
    db.execute_ddl("TABLE M ( K : NUMERIC ) ;").unwrap();
    db.insert_all(
        "M",
        vec![vec![Value::Int(2)], vec![Value::Null], vec![Value::Int(9)]],
    )
    .unwrap();
    // L joins R on K, M is linked to R only (M.K = R.K): the hash path
    // builds keys per step; the middle step's key set differs from the
    // last step's.
    let pred = Scalar::and(
        Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1)),
        Scalar::eq(Scalar::attr(3, 1), Scalar::attr(2, 1)),
    );
    let expr = Expr::search(
        vec![Expr::base("L"), Expr::base("R"), Expr::base("M")],
        pred,
        vec![Scalar::attr(1, 2), Scalar::attr(2, 2), Scalar::attr(3, 1)],
    );
    let rows = all_modes_agree(&db, &expr);
    let mut expected = vec![
        vec![Value::Int(20), Value::Int(200), Value::Int(2)],
        vec![Value::Int(60), Value::Int(200), Value::Int(2)],
    ];
    expected.sort();
    assert_eq!(rows, expected);
}
