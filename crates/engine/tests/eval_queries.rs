//! End-to-end engine tests: parse ESQL, translate to LERA, evaluate.

use eds_adt::Value;
use eds_engine::{eval, eval_with, Database, EvalOptions, FixMode, FixOptions};
use eds_esql::parse_query;
use eds_lera::{translate_query, SchemaCtx};

/// The paper's Figure-2 film database with a small population.
fn film_db() -> Database {
    let mut db = Database::new();
    db.execute_ddl(
        "TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;
         TYPE Person OBJECT TUPLE ( Name : CHAR, Firstname : SET OF CHAR) ;
         TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC) ;
         TYPE Text LIST OF CHAR ;
         TYPE SetCategory SET OF Category ;
         TABLE FILM ( Numf : NUMERIC, Title : CHAR, Categories : SetCategory) ;
         TABLE APPEARS_IN ( Numf : NUMERIC, Refactor : Actor) ;
         TABLE DOMINATE ( Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor) ;",
    )
    .unwrap();

    let actor = |db: &mut Database, name: &str, salary: i64| {
        db.create_object(
            "Actor",
            Value::Tuple(vec![
                Value::str(name),
                Value::set(vec![]),
                Value::Int(salary),
            ]),
        )
    };
    let quinn = actor(&mut db, "Quinn", 12_000);
    let marla = actor(&mut db, "Marla", 20_000);
    let pedro = actor(&mut db, "Pedro", 8_000);

    db.insert_all(
        "FILM",
        vec![
            vec![
                Value::Int(1),
                Value::str("Desert Run"),
                Value::set(vec![Value::str("Adventure"), Value::str("Western")]),
            ],
            vec![
                Value::Int(2),
                Value::str("Laugh Lines"),
                Value::set(vec![Value::str("Comedy")]),
            ],
            vec![
                Value::Int(3),
                Value::str("Star Cargo"),
                Value::set(vec![Value::str("Science Fiction"), Value::str("Adventure")]),
            ],
        ],
    )
    .unwrap();
    db.insert_all(
        "APPEARS_IN",
        vec![
            vec![Value::Int(1), quinn.clone()],
            vec![Value::Int(1), marla.clone()],
            vec![Value::Int(2), quinn.clone()],
            vec![Value::Int(3), marla.clone()],
            vec![Value::Int(3), pedro.clone()],
        ],
    )
    .unwrap();
    // Tennis results: Marla beats Quinn, Quinn beats Pedro.
    db.insert_all(
        "DOMINATE",
        vec![
            vec![Value::Int(1), marla.clone(), quinn.clone()],
            vec![Value::Int(1), quinn.clone(), pedro.clone()],
        ],
    )
    .unwrap();
    db
}

fn run(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let q = parse_query(sql).unwrap();
    let ctx = SchemaCtx::new(&db.catalog);
    let (expr, _) = translate_query(&q, &ctx).unwrap();
    eval(&expr, db).unwrap().sorted_rows()
}

#[test]
fn figure3_query_results() {
    let db = film_db();
    let rows = run(
        &db,
        "SELECT Title, Categories, Salary(Refactor) \
         FROM FILM, APPEARS_IN \
         WHERE FILM.Numf = APPEARS_IN.Numf \
         AND Name(Refactor) = 'Quinn' \
         AND MEMBER('Adventure', Categories) ;",
    );
    // Quinn appears in films 1 and 2; only film 1 is Adventure.
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::str("Desert Run"));
    assert_eq!(rows[0][2], Value::Int(12_000));
}

#[test]
fn figure4_nested_view_and_all_quantifier() {
    let mut db = film_db();
    db.execute_ddl(
        "CREATE VIEW FilmActors (Title, Categories, Actors) AS \
         SELECT Title, Categories, MakeSet(Refactor) \
         FROM FILM, APPEARS_IN \
         WHERE FILM.Numf = APPEARS_IN.Numf \
         GROUP BY Title, Categories ;",
    )
    .unwrap();
    let rows = run(
        &db,
        "SELECT Title FROM FilmActors \
         WHERE MEMBER('Adventure', Categories) AND ALL (Salary(Actors) > 10_000) ;",
    );
    // Desert Run (Quinn 12k, Marla 20k) qualifies; Star Cargo has Pedro
    // at 8k; Laugh Lines is not Adventure.
    assert_eq!(rows, vec![vec![Value::str("Desert Run")]]);
}

#[test]
fn figure5_recursive_view_transitive_closure() {
    let mut db = film_db();
    db.execute_ddl(
        "CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS \
         ( SELECT Refactor1, Refactor2 FROM DOMINATE \
           UNION \
           SELECT B1.Refactor1, B2.Refactor2 \
           FROM BETTER_THAN B1, BETTER_THAN B2 \
           WHERE B1.Refactor2 = B2.Refactor1 ) ;",
    )
    .unwrap();
    // Who dominates Quinn? Directly: Marla. (Marla > Quinn > Pedro.)
    let rows = run(
        &db,
        "SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn' ;",
    );
    assert_eq!(rows, vec![vec![Value::str("Marla")]]);
    // Who does Marla dominate? Quinn directly, Pedro transitively.
    let rows = run(
        &db,
        "SELECT Name(Refactor2) FROM BETTER_THAN WHERE Name(Refactor1) = 'Marla' ;",
    );
    assert_eq!(
        rows,
        vec![vec![Value::str("Pedro")], vec![Value::str("Quinn")]]
    );
}

#[test]
fn naive_and_seminaive_fixpoints_agree() {
    let mut db = Database::new();
    db.execute_ddl(
        "TABLE EDGE (Src : INT, Dst : INT);\n\
         CREATE VIEW TC (Src, Dst) AS \
         ( SELECT Src, Dst FROM EDGE \
           UNION \
           SELECT T1.Src, T2.Dst FROM TC T1, TC T2 WHERE T1.Dst = T2.Src ) ;",
    )
    .unwrap();
    // A chain 0 -> 1 -> ... -> 8 plus a branch.
    for i in 0..8i64 {
        db.insert("EDGE", vec![i.into(), (i + 1).into()]).unwrap();
    }
    db.insert("EDGE", vec![2.into(), 7.into()]).unwrap();

    let q = parse_query("SELECT Src, Dst FROM TC ;").unwrap();
    let ctx = SchemaCtx::new(&db.catalog);
    let (expr, _) = translate_query(&q, &ctx).unwrap();

    let naive = eval_with(
        &expr,
        &db,
        EvalOptions {
            fix: FixOptions {
                mode: FixMode::Naive,
                max_iterations: 1000,
            },
            ..Default::default()
        },
    )
    .unwrap();
    let semi = eval_with(
        &expr,
        &db,
        EvalOptions {
            fix: FixOptions {
                mode: FixMode::SemiNaive,
                max_iterations: 1000,
            },
            ..Default::default()
        },
    )
    .unwrap();
    assert!(naive.0.set_eq(&semi.0));
    // Chain closure: 8*9/2 = 36 pairs plus those added by the 2->7 edge
    // (2->7 itself already counted via path? no: direct edge adds pairs
    // (0..=2) x {7,8} already reachable). Just sanity-check count > 30.
    assert!(naive.0.deduped().len() >= 36);
    // Semi-naive does strictly less combination work than naive.
    assert!(
        semi.1.combinations_tried < naive.1.combinations_tried,
        "semi {} !< naive {}",
        semi.1.combinations_tried,
        naive.1.combinations_tried
    );
}

#[test]
fn union_difference_intersection() {
    let mut db = Database::new();
    db.execute_ddl("TABLE A (X : INT); TABLE B (X : INT);")
        .unwrap();
    db.insert_all("A", vec![vec![1.into()], vec![2.into()], vec![2.into()]])
        .unwrap();
    db.insert_all("B", vec![vec![2.into()], vec![3.into()]])
        .unwrap();

    let rows = run(&db, "SELECT X FROM A UNION SELECT X FROM B ;");
    assert_eq!(rows.len(), 3); // sorted_rows dedups: 1, 2, 3

    use eds_lera::Expr;
    let diff = Expr::Difference(Box::new(Expr::base("A")), Box::new(Expr::base("B")));
    assert_eq!(
        eval(&diff, &db).unwrap().sorted_rows(),
        vec![vec![Value::Int(1)]]
    );
    let inter = Expr::Intersect(Box::new(Expr::base("A")), Box::new(Expr::base("B")));
    assert_eq!(
        eval(&inter, &db).unwrap().sorted_rows(),
        vec![vec![Value::Int(2)]]
    );
}

#[test]
fn three_valued_logic_filters_nulls() {
    let mut db = Database::new();
    db.execute_ddl("TABLE T (X : INT);").unwrap();
    db.insert_all("T", vec![vec![1.into()], vec![Value::Null], vec![5.into()]])
        .unwrap();
    // NULL > 2 is unknown -> filtered out.
    let rows = run(&db, "SELECT X FROM T WHERE X > 2 ;");
    assert_eq!(rows, vec![vec![Value::Int(5)]]);
    // NOT (NULL > 2) is also unknown.
    let rows = run(&db, "SELECT X FROM T WHERE NOT (X > 2) ;");
    assert_eq!(rows, vec![vec![Value::Int(1)]]);
}

#[test]
fn distinct_dedups() {
    let mut db = Database::new();
    db.execute_ddl("TABLE T (X : INT);").unwrap();
    db.insert_all("T", vec![vec![1.into()], vec![1.into()], vec![2.into()]])
        .unwrap();
    let q = parse_query("SELECT DISTINCT X FROM T ;").unwrap();
    let ctx = SchemaCtx::new(&db.catalog);
    let (expr, _) = translate_query(&q, &ctx).unwrap();
    let rel = eval(&expr, &db).unwrap();
    assert_eq!(rel.len(), 2); // physically deduplicated, not just sorted view
}

#[test]
fn in_list_membership() {
    let mut db = Database::new();
    db.execute_ddl("TABLE T (X : INT);").unwrap();
    db.insert_all(
        "T",
        (0..10i64).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
    )
    .unwrap();
    let rows = run(&db, "SELECT X FROM T WHERE X IN (2, 4, 6) ;");
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(2)],
            vec![Value::Int(4)],
            vec![Value::Int(6)]
        ]
    );
}

#[test]
fn arithmetic_in_projection() {
    let mut db = Database::new();
    db.execute_ddl("TABLE T (X : INT, Y : INT);").unwrap();
    db.insert("T", vec![3.into(), 4.into()]).unwrap();
    let rows = run(&db, "SELECT X + Y * 2 FROM T ;");
    assert_eq!(rows, vec![vec![Value::Int(11)]]);
}

#[test]
fn empty_input_shortcuts() {
    let mut db = Database::new();
    db.execute_ddl("TABLE T (X : INT); TABLE U (Y : INT);")
        .unwrap();
    db.insert("T", vec![1.into()]).unwrap();
    // U is empty: the cross product is empty.
    let rows = run(&db, "SELECT X FROM T, U ;");
    assert!(rows.is_empty());
}

#[test]
fn aggregates_over_group_by_collections() {
    let mut db = Database::new();
    db.execute_ddl(
        "TABLE SALES (Region : CHAR, Amount : INT);
         INSERT INTO SALES VALUES
           ('north', 10), ('north', 30), ('south', 5), ('south', 7), ('south', 9);",
    )
    .unwrap();
    // Aggregation = function over a constructed collection.
    let rows = run(
        &db,
        "SELECT Region, COUNT(MakeBag(Amount)), SUM(MakeBag(Amount)), \
                MAX(MakeBag(Amount)) \
         FROM SALES GROUP BY Region ;",
    );
    assert_eq!(
        rows,
        vec![
            vec![
                Value::str("north"),
                Value::Int(2),
                Value::Int(40),
                Value::Int(30)
            ],
            vec![
                Value::str("south"),
                Value::Int(3),
                Value::Int(21),
                Value::Int(9)
            ],
        ]
    );
}

#[test]
fn aggregate_having_and_reordered_projection() {
    let mut db = Database::new();
    db.execute_ddl(
        "TABLE SALES (Region : CHAR, Amount : INT);
         INSERT INTO SALES VALUES ('a', 1), ('a', 2), ('b', 10);",
    )
    .unwrap();
    // Collection first, group expression second: needs the reordering
    // projection above the nest.
    let rows = run(
        &db,
        "SELECT SUM(MakeBag(Amount)), Region FROM SALES GROUP BY Region ;",
    );
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(3), Value::str("a")],
            vec![Value::Int(10), Value::str("b")],
        ]
    );
    // HAVING over the aggregate output schema.
    let rows = run(
        &db,
        "SELECT Region, SUM(MakeBag(Amount)) AS Total FROM SALES \
         GROUP BY Region HAVING Total > 5 ;",
    );
    assert_eq!(rows, vec![vec![Value::str("b"), Value::Int(10)]]);
}

#[test]
fn unnest_operator_flattens_collections() {
    use eds_lera::Expr;
    let mut db = Database::new();
    db.execute_ddl(
        "TYPE Tags SET OF CHAR;
         TABLE DOC (Id : INT, Tags : Tags);
         INSERT INTO DOC VALUES (1, MakeSet('x', 'y')), (2, MakeSet('y'));",
    )
    .unwrap();
    let unnest = Expr::Unnest {
        input: Box::new(Expr::base("DOC")),
        attr: 2,
    };
    let rows = eval(&unnest, &db).unwrap().sorted_rows();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::str("x")],
            vec![Value::Int(1), Value::str("y")],
            vec![Value::Int(2), Value::str("y")],
        ]
    );
}

#[test]
fn in_subquery_membership() {
    let mut db = Database::new();
    db.execute_ddl(
        "TABLE EMP (Id : INT, Dept : CHAR);
         TABLE BIG (Dept : CHAR, Size : INT);
         INSERT INTO EMP VALUES (1, 'r'), (2, 's'), (3, 'r'), (3, 'r');
         INSERT INTO BIG VALUES ('r', 10), ('r', 20), ('t', 5);",
    )
    .unwrap();
    // Duplicates in the subquery must not multiply outer rows; EMP's own
    // duplicate row survives (bag semantics on the outer side).
    let q = parse_query("SELECT Id FROM EMP WHERE Dept IN (SELECT Dept FROM BIG) ;").unwrap();
    let ctx = SchemaCtx::new(&db.catalog);
    let (expr, _) = translate_query(&q, &ctx).unwrap();
    let rel = eval(&expr, &db).unwrap();
    let mut ids: Vec<i64> = rel.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    ids.sort();
    assert_eq!(ids, vec![1, 3, 3]);
}

#[test]
fn in_subquery_combines_with_other_predicates() {
    let mut db = Database::new();
    db.execute_ddl(
        "TABLE EMP (Id : INT, Dept : CHAR);
         TABLE BIG (Dept : CHAR);
         INSERT INTO EMP VALUES (1, 'r'), (2, 'r'), (3, 's');
         INSERT INTO BIG VALUES ('r'), ('s');",
    )
    .unwrap();
    let rows = run(
        &db,
        "SELECT Id FROM EMP WHERE Id > 1 AND Dept IN (SELECT Dept FROM BIG) AND Id < 3 ;",
    );
    assert_eq!(rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn in_subquery_arity_and_position_checks() {
    let mut db = Database::new();
    db.execute_ddl("TABLE T (X : INT, Y : INT);").unwrap();
    let ctx = SchemaCtx::new(&db.catalog);
    // Two-column subquery rejected.
    let q = parse_query("SELECT X FROM T WHERE X IN (SELECT X, Y FROM T) ;").unwrap();
    assert!(translate_query(&q, &ctx).is_err());
    // Subquery under OR rejected with a clear error.
    let q = parse_query("SELECT X FROM T WHERE X = 1 OR X IN (SELECT Y FROM T) ;").unwrap();
    assert!(translate_query(&q, &ctx).is_err());
}

#[test]
fn hash_join_mode_agrees_with_nested_loop() {
    use eds_engine::JoinMode;
    let mut db = Database::new();
    db.execute_ddl(
        "TABLE R (A : INT, B : INT);
         TABLE S (B : INT, C : INT);
         TABLE T (C : INT);",
    )
    .unwrap();
    for i in 0..30i64 {
        db.insert("R", vec![i.into(), (i % 7).into()]).unwrap();
        db.insert("S", vec![(i % 7).into(), (i % 5).into()])
            .unwrap();
        db.insert("T", vec![(i % 5).into()]).unwrap();
    }
    let q = parse_query(
        "SELECT R.A FROM R, S, T \
         WHERE R.B = S.B AND S.C = T.C AND R.A > 3 ;",
    )
    .unwrap();
    let ctx = SchemaCtx::new(&db.catalog);
    let (expr, _) = translate_query(&q, &ctx).unwrap();

    let nested = eval_with(&expr, &db, EvalOptions::default()).unwrap();
    let hashed = eval_with(
        &expr,
        &db,
        EvalOptions {
            join: JoinMode::Hash,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(nested.0.bag_eq(&hashed.0), "join modes disagree");
    assert!(
        hashed.1.combinations_tried < nested.1.combinations_tried,
        "hash {} !< nested {}",
        hashed.1.combinations_tried,
        nested.1.combinations_tried
    );
}

#[test]
fn hash_join_cross_product_fallback() {
    use eds_engine::JoinMode;
    let mut db = Database::new();
    db.execute_ddl(
        "TABLE A (X : INT); TABLE B (Y : INT);
         INSERT INTO A VALUES (1), (2);
         INSERT INTO B VALUES (10), (20);",
    )
    .unwrap();
    let q = parse_query("SELECT X, Y FROM A, B WHERE X + Y > 11 ;").unwrap();
    let ctx = SchemaCtx::new(&db.catalog);
    let (expr, _) = translate_query(&q, &ctx).unwrap();
    let nested = eval_with(&expr, &db, EvalOptions::default()).unwrap();
    let hashed = eval_with(
        &expr,
        &db,
        EvalOptions {
            join: JoinMode::Hash,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(nested.0.bag_eq(&hashed.0));
    assert_eq!(hashed.0.len(), 3); // (1,20), (2,10)? 12>11 yes, (2,20)
}
