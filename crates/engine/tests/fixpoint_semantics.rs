//! Fixpoint corner cases: cycles, self-loops, mutual reachability,
//! multiple recursive branches, and nested recursion scopes.

use eds_adt::Value;
use eds_engine::{eval, eval_with, Database, EvalOptions, FixMode, FixOptions};
use eds_esql::parse_query;
use eds_lera::{translate_query, SchemaCtx};

fn tc_db(edges: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.execute_ddl(
        "TABLE EDGE (S : INT, D : INT);
         CREATE VIEW TC (S, D) AS
         ( SELECT S, D FROM EDGE
           UNION SELECT A.S, B.D FROM TC A, TC B WHERE A.D = B.S ) ;",
    )
    .unwrap();
    for &(s, d) in edges {
        db.insert("EDGE", vec![s.into(), d.into()]).unwrap();
    }
    db
}

fn closure(db: &Database, mode: FixMode) -> Vec<Vec<Value>> {
    let q = parse_query("SELECT S, D FROM TC ;").unwrap();
    let ctx = SchemaCtx::new(&db.catalog);
    let (expr, _) = translate_query(&q, &ctx).unwrap();
    eval_with(
        &expr,
        db,
        EvalOptions {
            fix: FixOptions {
                mode,
                max_iterations: 10_000,
            },
            ..Default::default()
        },
    )
    .unwrap()
    .0
    .sorted_rows()
}

#[test]
fn self_loop_terminates() {
    let db = tc_db(&[(1, 1)]);
    for mode in [FixMode::Naive, FixMode::SemiNaive] {
        assert_eq!(closure(&db, mode), vec![vec![Value::Int(1), Value::Int(1)]]);
    }
}

#[test]
fn two_cycle_reaches_everything_within_it() {
    let db = tc_db(&[(1, 2), (2, 1)]);
    let expected: Vec<Vec<Value>> = vec![
        vec![1.into(), 1.into()],
        vec![1.into(), 2.into()],
        vec![2.into(), 1.into()],
        vec![2.into(), 2.into()],
    ];
    for mode in [FixMode::Naive, FixMode::SemiNaive] {
        assert_eq!(closure(&db, mode), expected);
    }
}

#[test]
fn disconnected_components_stay_disconnected() {
    let db = tc_db(&[(1, 2), (10, 11), (11, 12)]);
    let rows = closure(&db, FixMode::SemiNaive);
    assert!(rows.contains(&vec![10.into(), 12.into()]));
    assert!(!rows
        .iter()
        .any(|r| r[0] == Value::Int(1) && r[1] == Value::Int(10)));
    assert!(!rows
        .iter()
        .any(|r| r[0] == Value::Int(1) && r[1] == Value::Int(12)));
}

#[test]
fn multiple_recursive_branches() {
    // Reachability over two edge relations, both recursive branches.
    let mut db = Database::new();
    db.execute_ddl(
        "TABLE ROAD (S : INT, D : INT);
         TABLE RAIL (S : INT, D : INT);
         INSERT INTO ROAD VALUES (1, 2);
         INSERT INTO RAIL VALUES (2, 3);
         CREATE VIEW GO (S, D) AS
         ( SELECT S, D FROM ROAD
           UNION SELECT S, D FROM RAIL
           UNION SELECT G.S, R.D FROM GO G, ROAD R WHERE G.D = R.S
           UNION SELECT G.S, R.D FROM GO G, RAIL R WHERE G.D = R.S ) ;",
    )
    .unwrap();
    let q = parse_query("SELECT D FROM GO WHERE S = 1 ;").unwrap();
    let ctx = SchemaCtx::new(&db.catalog);
    let (expr, _) = translate_query(&q, &ctx).unwrap();
    let rows = eval(&expr, &db).unwrap().sorted_rows();
    assert_eq!(rows, vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
}

#[test]
fn view_over_recursive_view() {
    let mut db = tc_db(&[(1, 2), (2, 3), (3, 4)]);
    db.execute_ddl("CREATE VIEW FAR (S, D) AS SELECT S, D FROM TC WHERE D - S >= 2 ;")
        .unwrap();
    let q = parse_query("SELECT S, D FROM FAR WHERE S = 1 ;").unwrap();
    let ctx = SchemaCtx::new(&db.catalog);
    let (expr, _) = translate_query(&q, &ctx).unwrap();
    let rows = eval(&expr, &db).unwrap().sorted_rows();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::Int(3)],
            vec![Value::Int(1), Value::Int(4)],
        ]
    );
}

#[test]
fn empty_seed_yields_empty_fixpoint() {
    let db = tc_db(&[]);
    for mode in [FixMode::Naive, FixMode::SemiNaive] {
        assert!(closure(&db, mode).is_empty());
    }
}
