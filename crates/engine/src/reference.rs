//! The reference executor: the original per-tuple tree-walking
//! interpreter, preserved verbatim for differential testing.
//!
//! [`eval_reference`] evaluates every operator with the pre-overhaul
//! physical strategies — interpreted [`eval_scalar`] per row, quadratic
//! set operations, sequential nested-loop/hash `search`, sorted-vector
//! fixpoints — and therefore produces byte-identical rows *in the same
//! order* as the seed executor did. The `exec_equivalence` integration
//! suite asserts the production executor ([`crate::eval::eval_with`])
//! agrees exactly, across join modes, fixpoint modes and parallelism
//! settings.
//!
//! Keep this module dumb: any "optimization" added here erodes its value
//! as an independent oracle.

use std::collections::BTreeMap;
use std::collections::HashMap;

use eds_adt::Value;
use eds_lera::{infer_schema, Expr, LeraError, Scalar, Schema};

use crate::database::Database;
use crate::error::{EngineError, EngineResult};
use crate::eval::{bind_fields, eval_scalar, Ctx, EvalOptions, JoinMode};
use crate::fixpoint::{count_occurrences, replace_nth_base, FixMode};
use crate::relation::{Relation, Row, SharedRow};

/// Evaluate a plan with the reference (seed) strategies.
pub fn eval_reference(expr: &Expr, db: &Database, opts: EvalOptions) -> EngineResult<Relation> {
    let mut ctx = Ctx::new(db, opts);
    ref_expr(expr, &mut ctx)
}

fn is_true(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

fn ref_expr(expr: &Expr, ctx: &mut Ctx<'_>) -> EngineResult<Relation> {
    match expr {
        Expr::Base(name) => {
            let key = name.to_ascii_uppercase();
            if let Some(rel) = ctx.locals.get(&key) {
                return Ok(rel.clone());
            }
            if let Some(rel) = ctx.db.relation(name) {
                return Ok(rel.clone());
            }
            Err(EngineError::UnknownRelation(name.to_owned()))
        }
        Expr::Filter { input, pred } => {
            let rel = ref_expr(input, ctx)?;
            let pred = bind_fields(pred, std::slice::from_ref(&*rel.schema), ctx)?;
            let mut out = Relation::empty(rel.schema.clone());
            for row in &rel.rows {
                if is_true(&eval_scalar(&pred, &[row], ctx)?) {
                    out.push_shared(row.clone());
                }
            }
            Ok(out)
        }
        Expr::Project { input, exprs } => {
            let rel = ref_expr(input, ctx)?;
            let schema = infer_schema(expr, &ctx.schema_ctx_for_fix())?;
            let exprs = exprs
                .iter()
                .map(|e| bind_fields(e, std::slice::from_ref(&*rel.schema), ctx))
                .collect::<EngineResult<Vec<_>>>()?;
            let mut out = Relation::empty(schema);
            for row in &rel.rows {
                let new_row = exprs
                    .iter()
                    .map(|e| eval_scalar(e, &[row], ctx))
                    .collect::<EngineResult<Row>>()?;
                out.push(new_row);
            }
            Ok(out)
        }
        Expr::Join { left, right, pred } => {
            let l_arity = infer_schema(left, &ctx.schema_ctx_for_fix())?.arity();
            let r_arity = infer_schema(right, &ctx.schema_ctx_for_fix())?.arity();
            let mut proj = Vec::new();
            for a in 1..=l_arity {
                proj.push(Scalar::attr(1, a));
            }
            for a in 1..=r_arity {
                proj.push(Scalar::attr(2, a));
            }
            let as_search = Expr::Search {
                inputs: vec![(**left).clone(), (**right).clone()],
                pred: pred.clone(),
                proj,
            };
            ref_expr(&as_search, ctx)
        }
        Expr::Union(items) => {
            let mut out: Option<Relation> = None;
            for item in items {
                let rel = ref_expr(item, ctx)?;
                match &mut out {
                    None => out = Some(rel),
                    Some(acc) => {
                        if acc.schema.arity() != rel.schema.arity() {
                            return Err(EngineError::Lera(LeraError::Type(
                                "union arity mismatch".into(),
                            )));
                        }
                        acc.rows.extend(rel.rows);
                    }
                }
            }
            out.ok_or_else(|| EngineError::Lera(LeraError::Type("empty union".into())))
        }
        Expr::Difference(a, b) => {
            let ra = ref_expr(a, ctx)?.deduped();
            let rb = ref_expr(b, ctx)?;
            let forbidden: Vec<&SharedRow> = rb.rows.iter().collect();
            let rows: Vec<SharedRow> = ra
                .rows
                .into_iter()
                .filter(|r| !forbidden.contains(&r))
                .collect();
            Ok(Relation::from_shared(ra.schema, rows))
        }
        Expr::Intersect(a, b) => {
            let ra = ref_expr(a, ctx)?.deduped();
            let rb = ref_expr(b, ctx)?;
            let allowed: Vec<&SharedRow> = rb.rows.iter().collect();
            let rows: Vec<SharedRow> = ra
                .rows
                .into_iter()
                .filter(|r| allowed.contains(&r))
                .collect();
            Ok(Relation::from_shared(ra.schema, rows))
        }
        Expr::Search { inputs, pred, proj } => {
            let rels = inputs
                .iter()
                .map(|i| ref_expr(i, ctx))
                .collect::<EngineResult<Vec<_>>>()?;
            let schemas: Vec<Schema> = rels.iter().map(|r| (*r.schema).clone()).collect();
            let pred = bind_fields(pred, &schemas, ctx)?;
            let proj = proj
                .iter()
                .map(|e| bind_fields(e, &schemas, ctx))
                .collect::<EngineResult<Vec<_>>>()?;
            let out_schema = infer_schema(expr, &ctx.schema_ctx_for_fix())?;
            let mut out = Relation::empty(out_schema);

            if pred.is_false() || rels.iter().any(Relation::is_empty) {
                return Ok(out);
            }
            match ctx.opts.join {
                JoinMode::NestedLoop => {
                    let mut idx = vec![0usize; rels.len()];
                    'outer: loop {
                        let tuple_refs: Vec<&[Value]> =
                            rels.iter().zip(&idx).map(|(r, &i)| &*r.rows[i]).collect();
                        if is_true(&eval_scalar(&pred, &tuple_refs, ctx)?) {
                            let row = proj
                                .iter()
                                .map(|e| eval_scalar(e, &tuple_refs, ctx))
                                .collect::<EngineResult<Row>>()?;
                            out.push(row);
                        }
                        for k in (0..idx.len()).rev() {
                            idx[k] += 1;
                            if idx[k] < rels[k].len() {
                                continue 'outer;
                            }
                            idx[k] = 0;
                            if k == 0 {
                                break 'outer;
                            }
                        }
                    }
                }
                JoinMode::Hash => {
                    let combos = ref_hash_search(&rels, &pred);
                    for combo in combos {
                        if is_true(&eval_scalar(&pred, &combo, ctx)?) {
                            let row = proj
                                .iter()
                                .map(|e| eval_scalar(e, &combo, ctx))
                                .collect::<EngineResult<Row>>()?;
                            out.push(row);
                        }
                    }
                }
            }
            Ok(out)
        }
        Expr::Fix { name, body } => ref_fix(name, body, ctx),
        Expr::Nest {
            input,
            group,
            nested,
            kind,
        } => {
            let rel = ref_expr(input, ctx)?;
            let out_schema = infer_schema(expr, &ctx.schema_ctx_for_fix())?;
            let mut groups: BTreeMap<Row, Vec<Value>> = BTreeMap::new();
            for row in &rel.rows {
                let key: Row = group.iter().map(|&g| row[g - 1].clone()).collect();
                let item = if nested.len() == 1 {
                    row[nested[0] - 1].clone()
                } else {
                    Value::Tuple(nested.iter().map(|&n| row[n - 1].clone()).collect())
                };
                groups.entry(key).or_default().push(item);
            }
            let mut out = Relation::empty(out_schema);
            for (key, items) in groups {
                let mut row = key;
                row.push(Value::coll(*kind, items));
                out.push(row);
            }
            Ok(out)
        }
        Expr::Unnest { input, attr } => {
            let rel = ref_expr(input, ctx)?;
            let out_schema = infer_schema(expr, &ctx.schema_ctx_for_fix())?;
            let mut out = Relation::empty(out_schema);
            for row in &rel.rows {
                let (_, elems) = row[attr - 1].as_coll().map_err(EngineError::Adt)?;
                for elem in elems {
                    let mut new_row = row.to_vec();
                    new_row[attr - 1] = elem.clone();
                    out.push(new_row);
                }
            }
            Ok(out)
        }
        Expr::Dedup(input) => Ok(ref_expr(input, ctx)?.deduped()),
    }
}

/// The seed's left-deep hash enumeration (an over-approximation re-checked
/// by the caller).
fn ref_hash_search<'a>(rels: &'a [Relation], pred: &Scalar) -> Vec<Vec<&'a [Value]>> {
    let mut equi: Vec<(usize, usize, usize, usize)> = Vec::new();
    for c in pred.conjuncts() {
        if let Scalar::Cmp {
            op: eds_lera::CmpOp::Eq,
            left,
            right,
        } = c
        {
            if let (Scalar::Attr { rel: r1, attr: a1 }, Scalar::Attr { rel: r2, attr: a2 }) =
                (left.as_ref(), right.as_ref())
            {
                equi.push((*r1, *a1, *r2, *a2));
            }
        }
    }

    let mut acc: Vec<Vec<&[Value]>> = rels[0].rows.iter().map(|r| vec![&**r]).collect();
    for (next_idx, next_rel) in rels.iter().enumerate().skip(1) {
        let next_rel_no = next_idx + 1;
        let keys: Vec<((usize, usize), usize)> = equi
            .iter()
            .filter_map(|&(r1, a1, r2, a2)| {
                if r1 <= next_idx && r2 == next_rel_no {
                    Some(((r1, a1), a2))
                } else if r2 <= next_idx && r1 == next_rel_no {
                    Some(((r2, a2), a1))
                } else {
                    None
                }
            })
            .collect();

        let mut new_acc: Vec<Vec<&[Value]>> = Vec::new();
        if keys.is_empty() {
            for combo in &acc {
                for row in &next_rel.rows {
                    let mut extended = combo.clone();
                    extended.push(&**row);
                    new_acc.push(extended);
                }
            }
        } else {
            let mut table: HashMap<Vec<&Value>, Vec<&[Value]>> = HashMap::new();
            for row in &next_rel.rows {
                let key: Vec<&Value> = keys.iter().map(|&(_, a)| &row[a - 1]).collect();
                table.entry(key).or_default().push(&**row);
            }
            for combo in &acc {
                let key: Vec<&Value> = keys
                    .iter()
                    .map(|&((r, a), _)| &combo[r - 1][a - 1])
                    .collect();
                if let Some(matches) = table.get(&key) {
                    for row in matches {
                        let mut extended = combo.clone();
                        extended.push(row);
                        new_acc.push(extended);
                    }
                }
            }
        }
        acc = new_acc;
        if acc.is_empty() {
            break;
        }
    }
    acc
}

fn sorted_dedup(mut rows: Vec<SharedRow>) -> Vec<SharedRow> {
    rows.sort();
    rows.dedup();
    rows
}

/// The seed fixpoint: naive or semi-naive with sorted-vector membership.
fn ref_fix(name: &str, body: &Expr, ctx: &mut Ctx<'_>) -> EngineResult<Relation> {
    match ctx.opts.fix.mode {
        FixMode::Naive => ref_fix_naive(name, body, ctx),
        FixMode::SemiNaive => ref_fix_seminaive(name, body, ctx),
    }
}

fn ref_fix_naive(name: &str, body: &Expr, ctx: &mut Ctx<'_>) -> EngineResult<Relation> {
    let key = name.to_ascii_uppercase();
    let schema = {
        let sc = ctx.schema_ctx_for_fix();
        infer_schema(
            &Expr::Fix {
                name: name.to_owned(),
                body: Box::new(body.clone()),
            },
            &sc,
        )?
    };
    let mut known = Relation::empty(schema);
    let saved = ctx.locals.insert(key.clone(), known.clone());

    let result = (|| {
        for _round in 0..ctx.opts.fix.max_iterations {
            ctx.locals.insert(key.clone(), known.clone());
            let new = ref_expr(body, ctx)?;
            let merged = sorted_dedup(known.rows.iter().cloned().chain(new.rows).collect());
            if merged == known.rows {
                return Ok(known);
            }
            known = Relation::from_shared(known.schema.clone(), merged);
        }
        Err(EngineError::FixpointDiverged {
            name: name.to_owned(),
            limit: ctx.opts.fix.max_iterations,
        })
    })();

    restore_local(ctx, &key, saved);
    result
}

fn ref_fix_seminaive(name: &str, body: &Expr, ctx: &mut Ctx<'_>) -> EngineResult<Relation> {
    let key = name.to_ascii_uppercase();
    let delta_key = format!("{key}#DELTA");

    let branches: Vec<&Expr> = match body {
        Expr::Union(items) => items.iter().collect(),
        other => vec![other],
    };
    let seed_branches: Vec<&Expr> = branches
        .iter()
        .copied()
        .filter(|b| !b.references(name))
        .collect();
    let rec_branches: Vec<&Expr> = branches
        .iter()
        .copied()
        .filter(|b| b.references(name))
        .collect();
    if seed_branches.is_empty() {
        let sc = ctx.schema_ctx_for_fix();
        let schema = infer_schema(
            &Expr::Fix {
                name: name.to_owned(),
                body: Box::new(body.clone()),
            },
            &sc,
        )?;
        return Ok(Relation::empty(schema));
    }

    let mut known: Option<Relation> = None;
    for b in &seed_branches {
        let r = ref_expr(b, ctx)?;
        match &mut known {
            None => known = Some(r),
            Some(acc) => acc.rows.extend(r.rows),
        }
    }
    let mut known = known.expect("non-empty seed branches");
    known.rows = sorted_dedup(std::mem::take(&mut known.rows));
    let mut delta = known.clone();

    let variants: Vec<Expr> = rec_branches
        .iter()
        .flat_map(|b| {
            let occurrences = count_occurrences(b, name);
            (0..occurrences).map(|i| replace_nth_base(b, name, i, &delta_key))
        })
        .collect();

    let saved_known = ctx.locals.insert(key.clone(), known.clone());
    let saved_delta = ctx.locals.insert(delta_key.clone(), delta.clone());

    let result = (|| {
        for _round in 0..ctx.opts.fix.max_iterations {
            ctx.locals.insert(key.clone(), known.clone());
            ctx.locals.insert(delta_key.clone(), delta.clone());

            let mut fresh: Vec<SharedRow> = Vec::new();
            for variant in &variants {
                let r = ref_expr(variant, ctx)?;
                fresh.extend(r.rows);
            }
            let fresh = sorted_dedup(fresh);
            let new_delta: Vec<SharedRow> = fresh
                .into_iter()
                .filter(|r| known.rows.binary_search(r).is_err())
                .collect();
            if new_delta.is_empty() {
                return Ok(known);
            }
            let merged = sorted_dedup(
                known
                    .rows
                    .iter()
                    .cloned()
                    .chain(new_delta.iter().cloned())
                    .collect(),
            );
            known = Relation::from_shared(known.schema.clone(), merged);
            delta = Relation::from_shared(known.schema.clone(), new_delta);
        }
        Err(EngineError::FixpointDiverged {
            name: name.to_owned(),
            limit: ctx.opts.fix.max_iterations,
        })
    })();

    restore_local(ctx, &key, saved_known);
    restore_local(ctx, &delta_key, saved_delta);
    result
}

fn restore_local(ctx: &mut Ctx<'_>, key: &str, saved: Option<Relation>) {
    match saved {
        Some(rel) => {
            ctx.locals.insert(key.to_owned(), rel);
        }
        None => {
            ctx.locals.remove(key);
        }
    }
}
