//! Engine errors.

use std::fmt;

use eds_adt::AdtError;
use eds_esql::EsqlError;
use eds_lera::LeraError;

/// Errors raised while loading data or evaluating plans.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Relation not found at evaluation time.
    UnknownRelation(String),
    /// Row arity does not match the table schema.
    ArityMismatch {
        /// Table name.
        table: String,
        /// Declared arity.
        expected: usize,
        /// Row arity.
        found: usize,
    },
    /// A fixpoint failed to converge within the iteration bound.
    FixpointDiverged {
        /// Recursion variable.
        name: String,
        /// The bound that was hit.
        limit: usize,
    },
    /// A qualification evaluated to a non-boolean.
    NonBooleanPredicate(String),
    /// A `?` statement parameter had no bound value at evaluation time
    /// (bind array too short, or a parameterized plan run without one).
    UnboundParam(u16),
    /// LERA-level failure (schema inference, field resolution).
    Lera(LeraError),
    /// ADT-level failure (function evaluation).
    Adt(AdtError),
    /// Front-end failure.
    Esql(EsqlError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownRelation(n) => write!(f, "unknown relation '{n}'"),
            EngineError::ArityMismatch {
                table,
                expected,
                found,
            } => write!(f, "{table}: expected {expected} columns, found {found}"),
            EngineError::FixpointDiverged { name, limit } => {
                write!(
                    f,
                    "fix({name}, ...) did not converge within {limit} iterations"
                )
            }
            EngineError::NonBooleanPredicate(p) => {
                write!(f, "qualification evaluated to a non-boolean: {p}")
            }
            EngineError::UnboundParam(i) => {
                write!(f, "statement parameter ?{i} has no bound value")
            }
            EngineError::Lera(e) => write!(f, "{e}"),
            EngineError::Adt(e) => write!(f, "{e}"),
            EngineError::Esql(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<LeraError> for EngineError {
    fn from(e: LeraError) -> Self {
        EngineError::Lera(e)
    }
}

impl From<AdtError> for EngineError {
    fn from(e: AdtError) -> Self {
        EngineError::Adt(e)
    }
}

impl From<EsqlError> for EngineError {
    fn from(e: EsqlError) -> Self {
        EngineError::Esql(e)
    }
}

/// Result alias for the engine.
pub type EngineResult<T> = Result<T, EngineError>;
