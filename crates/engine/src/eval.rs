//! Evaluation of LERA plans.
//!
//! Deliberately naive physical strategies (nested-loop `search`, full
//! rescans) so that *logical* plan quality — what the rewriter improves —
//! is directly visible in the work counters and wall-clock time.

use std::collections::BTreeMap;
use std::collections::HashMap;

use eds_adt::{EvalContext, Value};
use eds_lera::{infer_scalar_type, infer_schema, Expr, LeraError, Scalar, Schema, SchemaCtx};

use crate::database::Database;
use crate::error::{EngineError, EngineResult};
use crate::fixpoint::{eval_fix, FixOptions};
use crate::relation::{Relation, Row};

/// Physical strategy for the n-ary `search` operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinMode {
    /// Full cross-product enumeration with a post-filter. The baseline
    /// the paper's logical optimizer is measured against.
    #[default]
    NestedLoop,
    /// Left-deep hash joins on equality conjuncts (cross product only
    /// when no equi-conjunct links the next input). Demonstrates that the
    /// logical rewrites pay off under a smarter physical strategy too.
    Hash,
}

/// Evaluation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalOptions {
    /// Fixpoint strategy.
    pub fix: FixOptions,
    /// Search/join strategy.
    pub join: JoinMode,
}

/// Work counters, for the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Rows produced by all operators (intermediate + final).
    pub rows_emitted: u64,
    /// Tuple combinations considered by `search`/`join` loops.
    pub combinations_tried: u64,
    /// Fixpoint iterations executed.
    pub fix_iterations: u64,
}

/// Evaluate a plan against a database.
pub fn eval(expr: &Expr, db: &Database) -> EngineResult<Relation> {
    eval_with(expr, db, EvalOptions::default()).map(|(r, _)| r)
}

/// Evaluate with options, returning work counters.
pub fn eval_with(
    expr: &Expr,
    db: &Database,
    opts: EvalOptions,
) -> EngineResult<(Relation, EvalStats)> {
    let mut ctx = Ctx {
        db,
        opts,
        locals: HashMap::new(),
        stats: EvalStats::default(),
    };
    let rel = eval_expr(expr, &mut ctx)?;
    Ok((rel, ctx.stats))
}

/// Evaluate a constant scalar (no attribute references) against a
/// database — used for `INSERT ... VALUES` expressions.
pub fn eval_const_scalar(s: &Scalar, db: &Database) -> EngineResult<Value> {
    let ctx = Ctx {
        db,
        opts: EvalOptions::default(),
        locals: HashMap::new(),
        stats: EvalStats::default(),
    };
    let bound = bind_fields(s, &[], &ctx)?;
    eval_scalar(&bound, &[], &ctx)
}

/// Evaluation context: database, options, fixpoint locals, counters.
pub struct Ctx<'a> {
    /// The database.
    pub db: &'a Database,
    /// Options.
    pub opts: EvalOptions,
    /// Relations bound to recursion variables.
    pub locals: HashMap<String, Relation>,
    /// Work counters.
    pub stats: EvalStats,
}

impl Ctx<'_> {
    fn schema_ctx(&self) -> SchemaCtx<'_> {
        let mut sc = SchemaCtx::new(&self.db.catalog);
        for (name, rel) in &self.locals {
            sc = sc.with_local(name, rel.schema.clone());
        }
        sc
    }
}

/// Evaluate an expression in a context (public for the fixpoint module).
pub fn eval_expr(expr: &Expr, ctx: &mut Ctx<'_>) -> EngineResult<Relation> {
    match expr {
        Expr::Base(name) => {
            let key = name.to_ascii_uppercase();
            if let Some(rel) = ctx.locals.get(&key) {
                return Ok(rel.clone());
            }
            if let Some(rel) = ctx.db.relation(name) {
                return Ok(rel.clone());
            }
            Err(EngineError::UnknownRelation(name.to_owned()))
        }
        Expr::Filter { input, pred } => {
            let rel = eval_expr(input, ctx)?;
            let pred = bind_fields(pred, std::slice::from_ref(&rel.schema), ctx)?;
            let mut out = Relation::empty(rel.schema.clone());
            for row in &rel.rows {
                if is_true(&eval_scalar(&pred, &[row], ctx)?) {
                    out.push(row.clone());
                    ctx.stats.rows_emitted += 1;
                }
            }
            Ok(out)
        }
        Expr::Project { input, exprs } => {
            let rel = eval_expr(input, ctx)?;
            let schema = infer_schema(expr, &ctx.schema_ctx())?;
            let exprs = exprs
                .iter()
                .map(|e| bind_fields(e, std::slice::from_ref(&rel.schema), ctx))
                .collect::<EngineResult<Vec<_>>>()?;
            let mut out = Relation::empty(schema);
            for row in &rel.rows {
                let new_row = exprs
                    .iter()
                    .map(|e| eval_scalar(e, &[row], ctx))
                    .collect::<EngineResult<Row>>()?;
                out.push(new_row);
                ctx.stats.rows_emitted += 1;
            }
            Ok(out)
        }
        Expr::Join { left, right, pred } => {
            // join = search over two inputs projecting all attributes.
            let l_arity = infer_schema(left, &ctx.schema_ctx())?.arity();
            let r_arity = infer_schema(right, &ctx.schema_ctx())?.arity();
            let mut proj = Vec::new();
            for a in 1..=l_arity {
                proj.push(Scalar::attr(1, a));
            }
            for a in 1..=r_arity {
                proj.push(Scalar::attr(2, a));
            }
            let as_search = Expr::Search {
                inputs: vec![(**left).clone(), (**right).clone()],
                pred: pred.clone(),
                proj,
            };
            eval_expr(&as_search, ctx)
        }
        Expr::Union(items) => {
            let mut out: Option<Relation> = None;
            for item in items {
                let rel = eval_expr(item, ctx)?;
                match &mut out {
                    None => out = Some(rel),
                    Some(acc) => {
                        if acc.schema.arity() != rel.schema.arity() {
                            return Err(EngineError::Lera(LeraError::Type(
                                "union arity mismatch".into(),
                            )));
                        }
                        acc.rows.extend(rel.rows);
                    }
                }
            }
            out.ok_or_else(|| EngineError::Lera(LeraError::Type("empty union".into())))
        }
        Expr::Difference(a, b) => {
            let ra = eval_expr(a, ctx)?.deduped();
            let rb = eval_expr(b, ctx)?;
            let forbidden: Vec<&Row> = rb.rows.iter().collect();
            let rows = ra
                .rows
                .into_iter()
                .filter(|r| !forbidden.contains(&r))
                .collect();
            Ok(Relation::new(ra.schema, rows))
        }
        Expr::Intersect(a, b) => {
            let ra = eval_expr(a, ctx)?.deduped();
            let rb = eval_expr(b, ctx)?;
            let allowed: Vec<&Row> = rb.rows.iter().collect();
            let rows = ra
                .rows
                .into_iter()
                .filter(|r| allowed.contains(&r))
                .collect();
            Ok(Relation::new(ra.schema, rows))
        }
        Expr::Search { inputs, pred, proj } => {
            let rels = inputs
                .iter()
                .map(|i| eval_expr(i, ctx))
                .collect::<EngineResult<Vec<_>>>()?;
            let schemas: Vec<Schema> = rels.iter().map(|r| r.schema.clone()).collect();
            let pred = bind_fields(pred, &schemas, ctx)?;
            let proj = proj
                .iter()
                .map(|e| bind_fields(e, &schemas, ctx))
                .collect::<EngineResult<Vec<_>>>()?;
            let out_schema = infer_schema(expr, &ctx.schema_ctx())?;
            let mut out = Relation::empty(out_schema);

            // Short-circuit: a FALSE qualification or an empty input
            // produces no tuples without touching the cross product.
            if pred.is_false() || rels.iter().any(|r| r.is_empty()) {
                return Ok(out);
            }
            match ctx.opts.join {
                JoinMode::NestedLoop => {
                    // Nested-loop over the cross product.
                    let mut idx = vec![0usize; rels.len()];
                    'outer: loop {
                        let tuple_refs: Vec<&Row> =
                            rels.iter().zip(&idx).map(|(r, &i)| &r.rows[i]).collect();
                        ctx.stats.combinations_tried += 1;
                        if is_true(&eval_scalar(&pred, &tuple_refs, ctx)?) {
                            let row = proj
                                .iter()
                                .map(|e| eval_scalar(e, &tuple_refs, ctx))
                                .collect::<EngineResult<Row>>()?;
                            out.push(row);
                            ctx.stats.rows_emitted += 1;
                        }
                        // Advance the odometer.
                        for k in (0..idx.len()).rev() {
                            idx[k] += 1;
                            if idx[k] < rels[k].len() {
                                continue 'outer;
                            }
                            idx[k] = 0;
                            if k == 0 {
                                break 'outer;
                            }
                        }
                    }
                }
                JoinMode::Hash => {
                    let combos = hash_search(&rels, &pred, ctx)?;
                    for combo in combos {
                        let tuple_refs: Vec<&Row> = combo.clone();
                        if is_true(&eval_scalar(&pred, &tuple_refs, ctx)?) {
                            let row = proj
                                .iter()
                                .map(|e| eval_scalar(e, &tuple_refs, ctx))
                                .collect::<EngineResult<Row>>()?;
                            out.push(row);
                            ctx.stats.rows_emitted += 1;
                        }
                    }
                }
            }
            Ok(out)
        }
        Expr::Fix { name, body } => eval_fix(name, body, ctx),
        Expr::Nest {
            input,
            group,
            nested,
            kind,
        } => {
            let rel = eval_expr(input, ctx)?;
            let out_schema = infer_schema(expr, &ctx.schema_ctx())?;
            let mut groups: BTreeMap<Row, Vec<Value>> = BTreeMap::new();
            for row in &rel.rows {
                let key: Row = group.iter().map(|&g| row[g - 1].clone()).collect();
                let item = if nested.len() == 1 {
                    row[nested[0] - 1].clone()
                } else {
                    Value::Tuple(nested.iter().map(|&n| row[n - 1].clone()).collect())
                };
                groups.entry(key).or_default().push(item);
            }
            let mut out = Relation::empty(out_schema);
            for (key, items) in groups {
                let mut row = key;
                row.push(Value::coll(*kind, items));
                out.push(row);
                ctx.stats.rows_emitted += 1;
            }
            Ok(out)
        }
        Expr::Unnest { input, attr } => {
            let rel = eval_expr(input, ctx)?;
            let out_schema = infer_schema(expr, &ctx.schema_ctx())?;
            let mut out = Relation::empty(out_schema);
            for row in &rel.rows {
                let (_, elems) = row[attr - 1].as_coll().map_err(EngineError::Adt)?;
                for elem in elems {
                    let mut new_row = row.clone();
                    new_row[attr - 1] = elem.clone();
                    out.push(new_row);
                    ctx.stats.rows_emitted += 1;
                }
            }
            Ok(out)
        }
        Expr::Dedup(input) => Ok(eval_expr(input, ctx)?.deduped()),
    }
}

fn is_true(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Left-deep hash-join enumeration of candidate input combinations. Each
/// equality conjunct `i.a = j.b` between an already-joined input and the
/// next one becomes a hash key; inputs with no linking equi-conjunct fall
/// back to a cross product against the accumulator. The caller re-checks
/// the full qualification, so this only has to be an over-approximation
/// of the satisfying combinations.
fn hash_search<'a>(
    rels: &'a [Relation],
    pred: &Scalar,
    ctx: &mut Ctx<'_>,
) -> EngineResult<Vec<Vec<&'a Row>>> {
    // Equality conjuncts between plain attribute references.
    let mut equi: Vec<(usize, usize, usize, usize)> = Vec::new(); // (rel_a, attr_a, rel_b, attr_b)
    for c in pred.conjuncts() {
        if let Scalar::Cmp {
            op: eds_lera::CmpOp::Eq,
            left,
            right,
        } = c
        {
            if let (Scalar::Attr { rel: r1, attr: a1 }, Scalar::Attr { rel: r2, attr: a2 }) =
                (left.as_ref(), right.as_ref())
            {
                equi.push((*r1, *a1, *r2, *a2));
            }
        }
    }

    let mut acc: Vec<Vec<&Row>> = rels[0].rows.iter().map(|r| vec![r]).collect();
    ctx.stats.combinations_tried += acc.len() as u64;

    for (next_idx, next_rel) in rels.iter().enumerate().skip(1) {
        let next_rel_no = next_idx + 1; // 1-based
                                        // Keys linking the accumulated prefix (rel <= next_idx) to the
                                        // next input.
        let keys: Vec<((usize, usize), usize)> = equi
            .iter()
            .filter_map(|&(r1, a1, r2, a2)| {
                if r1 <= next_idx && r2 == next_rel_no {
                    Some(((r1, a1), a2))
                } else if r2 <= next_idx && r1 == next_rel_no {
                    Some(((r2, a2), a1))
                } else {
                    None
                }
            })
            .collect();

        let mut new_acc: Vec<Vec<&Row>> = Vec::new();
        if keys.is_empty() {
            // Cross product against the accumulator.
            for combo in &acc {
                for row in &next_rel.rows {
                    let mut extended = combo.clone();
                    extended.push(row);
                    ctx.stats.combinations_tried += 1;
                    new_acc.push(extended);
                }
            }
        } else {
            // Build: hash the next input on its key attributes.
            let mut table: HashMap<Vec<&Value>, Vec<&Row>> = HashMap::new();
            for row in &next_rel.rows {
                let key: Vec<&Value> = keys.iter().map(|&(_, a)| &row[a - 1]).collect();
                table.entry(key).or_default().push(row);
            }
            // Probe with the accumulator.
            for combo in &acc {
                let key: Vec<&Value> = keys
                    .iter()
                    .map(|&((r, a), _)| &combo[r - 1][a - 1])
                    .collect();
                if let Some(matches) = table.get(&key) {
                    for row in matches {
                        let mut extended = combo.clone();
                        extended.push(row);
                        ctx.stats.combinations_tried += 1;
                        new_acc.push(extended);
                    }
                }
            }
        }
        acc = new_acc;
        if acc.is_empty() {
            break;
        }
    }
    Ok(acc)
}

/// Resolve named field accesses (`PROJECT(e, Name)`) to positional
/// `GETFIELD(e, idx)` using static types — done once per operator, not
/// per row.
fn bind_fields(s: &Scalar, inputs: &[Schema], ctx: &Ctx<'_>) -> EngineResult<Scalar> {
    let sc = ctx.schema_ctx();
    bind_fields_inner(s, inputs, &sc).map_err(EngineError::Lera)
}

fn bind_fields_inner(
    s: &Scalar,
    inputs: &[Schema],
    sc: &SchemaCtx<'_>,
) -> Result<Scalar, LeraError> {
    Ok(match s {
        Scalar::Field { input, name } => {
            let bound_input = bind_fields_inner(input, inputs, sc)?;
            let input_ty = infer_scalar_type(&bound_input, inputs, sc)?;
            let (needs_deref, idx, _) =
                sc.catalog.attribute_of(&input_ty, name).ok_or_else(|| {
                    LeraError::UnknownAttribute {
                        name: name.clone(),
                        receiver: input_ty.to_string(),
                    }
                })?;
            let receiver = if needs_deref {
                Scalar::call("VALUE", vec![bound_input])
            } else {
                bound_input
            };
            Scalar::call("GETFIELD", vec![receiver, Scalar::lit((idx + 1) as i64)])
        }
        Scalar::Call { func, args } => Scalar::Call {
            func: func.clone(),
            args: args
                .iter()
                .map(|a| bind_fields_inner(a, inputs, sc))
                .collect::<Result<_, _>>()?,
        },
        Scalar::Cmp { op, left, right } => Scalar::Cmp {
            op: *op,
            left: Box::new(bind_fields_inner(left, inputs, sc)?),
            right: Box::new(bind_fields_inner(right, inputs, sc)?),
        },
        Scalar::And(a, b) => Scalar::And(
            Box::new(bind_fields_inner(a, inputs, sc)?),
            Box::new(bind_fields_inner(b, inputs, sc)?),
        ),
        Scalar::Or(a, b) => Scalar::Or(
            Box::new(bind_fields_inner(a, inputs, sc)?),
            Box::new(bind_fields_inner(b, inputs, sc)?),
        ),
        Scalar::Not(a) => Scalar::Not(Box::new(bind_fields_inner(a, inputs, sc)?)),
        Scalar::Attr { .. } | Scalar::Const(_) => s.clone(),
    })
}

/// Evaluate a bound scalar against one tuple per input relation.
pub fn eval_scalar(s: &Scalar, tuples: &[&Row], ctx: &Ctx<'_>) -> EngineResult<Value> {
    match s {
        Scalar::Attr { rel, attr } => {
            let row = tuples.get(rel - 1).ok_or_else(|| {
                EngineError::Lera(LeraError::BadAttrRef {
                    rel: *rel,
                    attr: *attr,
                    context: format!("{} input tuples", tuples.len()),
                })
            })?;
            row.get(attr - 1).cloned().ok_or_else(|| {
                EngineError::Lera(LeraError::BadAttrRef {
                    rel: *rel,
                    attr: *attr,
                    context: format!("tuple of arity {}", row.len()),
                })
            })
        }
        Scalar::Const(v) => Ok(v.clone()),
        Scalar::Field { name, .. } => Err(EngineError::Lera(LeraError::UnknownAttribute {
            name: name.clone(),
            receiver: "unbound field access at runtime".into(),
        })),
        Scalar::Call { func, args } => {
            let vals = args
                .iter()
                .map(|a| eval_scalar(a, tuples, ctx))
                .collect::<EngineResult<Vec<Value>>>()?;
            match func.as_str() {
                "GETFIELD" => {
                    let idx = vals[1].as_int().map_err(EngineError::Adt)? as usize;
                    getfield(&vals[0], idx, ctx)
                }
                "VALUE" => deref_value(&vals[0], ctx),
                _ => {
                    let ec = EvalContext {
                        objects: &ctx.db.objects,
                        types: &ctx.db.catalog.types,
                    };
                    ctx.db
                        .functions
                        .call(func, &vals, &ec)
                        .map_err(EngineError::Adt)
                }
            }
        }
        Scalar::Cmp { op, left, right } => {
            let l = eval_scalar(left, tuples, ctx)?;
            let r = eval_scalar(right, tuples, ctx)?;
            Ok(eval_cmp_broadcast(op, &l, &r))
        }
        Scalar::And(a, b) => {
            let va = eval_scalar(a, tuples, ctx)?;
            // Short-circuit FALSE without evaluating the right side.
            if matches!(va, Value::Bool(false)) {
                return Ok(Value::Bool(false));
            }
            let vb = eval_scalar(b, tuples, ctx)?;
            Ok(match (va, vb) {
                (_, Value::Bool(false)) => Value::Bool(false),
                (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                _ => Value::Null,
            })
        }
        Scalar::Or(a, b) => {
            let va = eval_scalar(a, tuples, ctx)?;
            if matches!(va, Value::Bool(true)) {
                return Ok(Value::Bool(true));
            }
            let vb = eval_scalar(b, tuples, ctx)?;
            Ok(match (va, vb) {
                (_, Value::Bool(true)) => Value::Bool(true),
                (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                _ => Value::Null,
            })
        }
        Scalar::Not(a) => Ok(match eval_scalar(a, tuples, ctx)? {
            Value::Bool(b) => Value::Bool(!b),
            Value::Null => Value::Null,
            other => {
                return Err(EngineError::NonBooleanPredicate(other.to_string()));
            }
        }),
    }
}

/// Field access with automatic mapping: tuples index directly, object
/// references dereference first, collections map the access over their
/// elements ("the system will automatically apply the appropriate type
/// conversion", Section 2.1).
fn getfield(v: &Value, idx1: usize, ctx: &Ctx<'_>) -> EngineResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Tuple(items) => items.get(idx1 - 1).cloned().ok_or({
            EngineError::Adt(eds_adt::AdtError::IndexOutOfBounds {
                index: idx1 as i64,
                len: items.len(),
            })
        }),
        Value::Object(oid) => {
            let inner = ctx
                .db
                .objects
                .value(*oid)
                .map_err(EngineError::Adt)?
                .clone();
            getfield(&inner, idx1, ctx)
        }
        Value::Coll(kind, items) => {
            let mapped = items
                .iter()
                .map(|e| getfield(e, idx1, ctx))
                .collect::<EngineResult<Vec<_>>>()?;
            Ok(Value::coll(*kind, mapped))
        }
        other => Err(EngineError::Adt(eds_adt::AdtError::TypeMismatch {
            function: "GETFIELD".into(),
            expected: "TUPLE, OBJECT or collection".into(),
            found: other.kind_name().into(),
        })),
    }
}

/// `VALUE` with collection mapping.
fn deref_value(v: &Value, ctx: &Ctx<'_>) -> EngineResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Object(oid) => ctx
            .db
            .objects
            .value(*oid)
            .cloned()
            .map_err(EngineError::Adt),
        Value::Coll(kind, items) => {
            let mapped = items
                .iter()
                .map(|e| deref_value(e, ctx))
                .collect::<EngineResult<Vec<_>>>()?;
            Ok(Value::coll(*kind, mapped))
        }
        other => Ok(other.clone()),
    }
}

/// Comparison with broadcasting: ordered comparisons where exactly one
/// side is a collection map over its elements (supporting
/// `ALL(Salary(Actors) > 10000)`); equality stays structural.
fn eval_cmp_broadcast(op: &eds_lera::CmpOp, l: &Value, r: &Value) -> Value {
    use eds_lera::CmpOp;
    let ordered = !matches!(op, CmpOp::Eq | CmpOp::Ne);
    if ordered {
        match (l, r) {
            (Value::Coll(kind, items), scalar) if !scalar.is_coll() => {
                let mapped: Vec<Value> = items
                    .iter()
                    .map(|e| eval_cmp_broadcast(op, e, scalar))
                    .collect();
                return Value::coll(*kind, mapped);
            }
            (scalar, Value::Coll(kind, items)) if !scalar.is_coll() => {
                let mapped: Vec<Value> = items
                    .iter()
                    .map(|e| eval_cmp_broadcast(op, scalar, e))
                    .collect();
                return Value::coll(*kind, mapped);
            }
            _ => {}
        }
    }
    match l.sql_cmp(r) {
        None => Value::Null,
        Some(ord) => Value::Bool(match op {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Ge => ord.is_ge(),
        }),
    }
}
