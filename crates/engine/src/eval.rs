//! Evaluation of LERA plans.
//!
//! Physical strategies are deliberately simple in *shape* (nested-loop
//! or left-deep hash `search`, full rescans) so that logical plan
//! quality — what the rewriter improves — stays directly visible in the
//! work counters. Within that shape the operators are engineered for
//! throughput:
//!
//! * qualifications and projection targets are lowered once per operator
//!   into [`CompiledScalar`](crate::compile::CompiledScalar) programs
//!   that borrow from input rows and the object store instead of
//!   re-walking the `Scalar` AST and cloning per tuple;
//! * rows are shared ([`Arc`]-counted), so row-preserving operators pass
//!   allocations along instead of deep-copying values;
//! * set operations use hash membership instead of quadratic scans;
//! * scans, nested-loop enumeration and hash-join probe output are
//!   morsel-partitioned across a persistent worker pool when
//!   [`EvalOptions::parallelism`] > 1 and the input spans more than one
//!   morsel (see [`crate::parallel`]). Morsels are contiguous runs
//!   merged in input order, so results (and result *order*) are
//!   identical to the sequential plan.
//!
//! The original per-tuple tree-walking interpreter is preserved verbatim
//! in [`crate::reference`] for differential testing.

use std::borrow::Cow;
use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::Arc;

use eds_adt::{EvalContext, Value};
use eds_lera::{infer_scalar_type, infer_schema, Expr, LeraError, Scalar, Schema, SchemaCtx};

use crate::columnar::{Column, ColumnarRelation, NullBitmap};
use crate::compile::{ColumnarPred, CompiledPred, CompiledProj, EvalEnv};
use crate::database::Database;
use crate::error::{EngineError, EngineResult};
use crate::fixpoint::{eval_fix, FixOptions};
use crate::relation::{shared_row, Relation, Row, SharedRow};

/// Physical strategy for the n-ary `search` operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinMode {
    /// Full cross-product enumeration with a post-filter. The baseline
    /// the paper's logical optimizer is measured against.
    #[default]
    NestedLoop,
    /// Left-deep hash joins on equality conjuncts (cross product only
    /// when no equi-conjunct links the next input). Demonstrates that the
    /// logical rewrites pay off under a smarter physical strategy too.
    Hash,
}

/// How hard the rewriter works before a statement reaches the executor.
///
/// The engine itself does not consult this — it evaluates whatever plan
/// it is handed — but the option rides in [`EvalOptions`] because that
/// is the session's option bag: the `Dbms` facade in `eds-core` reads it
/// to decide between skipping rewrite (`None`, trivial statements only),
/// the paper's syntactic saturation (`Simple`), and cost-guided
/// candidate exploration (`Full`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// Skip rewriting for trivial statements (single stored-table scans
    /// with no derived relations); everything else falls back to
    /// `Simple` — correctness must not depend on the level.
    None,
    /// Syntactic saturation: run every rule block to its fixpoint and
    /// keep whatever falls out (the paper's behavior, today's default).
    #[default]
    Simple,
    /// `Simple` plus cost-guided exploration: keep candidate rewrites at
    /// choice-point blocks, score them with the statistics-backed cost
    /// model, emit the cheapest.
    Full,
}

impl OptLevel {
    /// Parse `none`/`simple`/`full` (case-insensitive).
    pub fn parse(s: &str) -> Option<OptLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" | "0" => Some(OptLevel::None),
            "simple" | "1" => Some(OptLevel::Simple),
            "full" | "2" => Some(OptLevel::Full),
            _ => None,
        }
    }

    /// Level name as accepted by [`OptLevel::parse`].
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::None => "none",
            OptLevel::Simple => "simple",
            OptLevel::Full => "full",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Evaluation options.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Fixpoint strategy.
    pub fix: FixOptions,
    /// Search/join strategy.
    pub join: JoinMode,
    /// Worker threads for partitioned operators. `1` (the default) is
    /// fully sequential; higher values let large scans, nested-loop
    /// enumerations and hash-probe output be drained morsel-by-morsel
    /// by the persistent worker pool (see [`crate::parallel`]) and
    /// merged in input order, preserving both results and result order
    /// exactly.
    pub parallelism: usize,
    /// Use columnar mirrors of stored base tables where the operator
    /// and predicate shapes allow it: Filter/Search qualifications whose
    /// conjuncts all lower to typed kernels run over contiguous columns
    /// and gather surviving rows from the shared row store, and
    /// single-attribute hash-join keys on integer columns build typed
    /// hash tables. Results, result order, work counters and errors are
    /// identical to the row path (differential-tested); defaults to on,
    /// `EDS_COLUMNAR=0` turns it off process-wide.
    pub columnar: bool,
    /// Minimum rows before a **derived** relation — a fixpoint
    /// local/delta binding or any non-base operator input — gets a
    /// columnar mirror of its own. Mirror construction is `O(rows)`, so
    /// the gate keeps small intermediates on the row path where the
    /// build could never pay for itself; `0` mirrors every eligible
    /// derived input (what the differential suites use), `usize::MAX`
    /// restricts columnar evaluation to stored base tables. Only
    /// consulted when [`EvalOptions::columnar`] is on.
    pub derived_mirror_min: usize,
    /// Rewriter effort for statements evaluated through this option bag
    /// (see [`OptLevel`]); read by the `Dbms` facade, not the executor.
    pub opt_level: OptLevel,
}

/// Process-wide default for [`EvalOptions::columnar`], read once from
/// `EDS_COLUMNAR` (anything but `0` — including unset — enables it).
fn env_columnar_default() -> bool {
    static CACHE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| std::env::var("EDS_COLUMNAR").map_or(true, |v| v.trim() != "0"))
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            fix: FixOptions::default(),
            join: JoinMode::default(),
            parallelism: 1,
            columnar: env_columnar_default(),
            derived_mirror_min: 4096,
            opt_level: OptLevel::default(),
        }
    }
}

impl EvalOptions {
    /// Defaults, with `parallelism` taken from the `EDS_PARALLELISM`
    /// environment variable when it parses to a positive integer,
    /// `opt_level` from `EDS_OPT_LEVEL` (`none`/`simple`/`full`; unset
    /// or unparsable means `Simple`), and `columnar` from
    /// `EDS_COLUMNAR`, as in `Default`.
    pub fn from_env() -> Self {
        let parallelism = std::env::var("EDS_PARALLELISM")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&p| p >= 1)
            .unwrap_or(1);
        let opt_level = std::env::var("EDS_OPT_LEVEL")
            .ok()
            .and_then(|v| OptLevel::parse(&v))
            .unwrap_or_default();
        EvalOptions {
            parallelism,
            opt_level,
            ..Default::default()
        }
    }
}

/// Work counters, for the benchmark harness. Parallel partitions count
/// locally and are summed in partition order, so totals are identical to
/// a sequential run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Rows produced by all operators (intermediate + final).
    pub rows_emitted: u64,
    /// Tuple combinations considered by `search`/`join` loops.
    pub combinations_tried: u64,
    /// Fixpoint iterations executed.
    pub fix_iterations: u64,
}

/// Evaluate a plan against a database.
pub fn eval(expr: &Expr, db: &Database) -> EngineResult<Relation> {
    eval_with(expr, db, EvalOptions::default()).map(|(r, _)| r)
}

/// Evaluate with options, returning work counters.
pub fn eval_with(
    expr: &Expr,
    db: &Database,
    opts: EvalOptions,
) -> EngineResult<(Relation, EvalStats)> {
    eval_with_params(expr, db, opts, &[])
}

/// Evaluate a plan containing `?` statement parameters against a bind
/// array: `Scalar::Param(i)` resolves to `params[i]`. The plan itself is
/// bind-independent — prepared statements evaluate the same cached plan
/// with a different array each execution.
pub fn eval_with_params(
    expr: &Expr,
    db: &Database,
    opts: EvalOptions,
    params: &[Value],
) -> EngineResult<(Relation, EvalStats)> {
    let mut ctx = Ctx::new(db, opts);
    ctx.params = params;
    let rel = eval_expr(expr, &mut ctx)?;
    Ok((rel, ctx.stats))
}

/// Evaluate a constant scalar (no attribute references) against a
/// database — used for `INSERT ... VALUES` expressions.
pub fn eval_const_scalar(s: &Scalar, db: &Database) -> EngineResult<Value> {
    let ctx = Ctx::new(db, EvalOptions::default());
    let bound = bind_fields(s, &[], &ctx)?;
    eval_scalar(&bound, &[], &ctx)
}

/// Evaluation context: database, options, fixpoint locals, counters.
pub struct Ctx<'a> {
    /// The database.
    pub db: &'a Database,
    /// Options.
    pub opts: EvalOptions,
    /// Relations bound to recursion variables.
    pub locals: HashMap<String, Relation>,
    /// Work counters.
    pub stats: EvalStats,
    /// Columnar mirrors of fixpoint-local bindings, built lazily per
    /// binding (`None` caches "not column-friendly") and dropped on
    /// rebind via [`Ctx::bind_local`], so a stale mirror can never be
    /// consulted.
    pub local_mirrors: HashMap<String, Option<Arc<ColumnarRelation>>>,
    /// Bind array for `?` statement parameters (empty for ad-hoc
    /// queries).
    pub params: &'a [Value],
}

impl Ctx<'_> {
    /// A context over a database with no locals bound.
    pub fn new(db: &Database, opts: EvalOptions) -> Ctx<'_> {
        Ctx {
            db,
            opts,
            locals: HashMap::new(),
            stats: EvalStats::default(),
            local_mirrors: HashMap::new(),
            params: &[],
        }
    }

    /// Bind (or rebind) a fixpoint local, invalidating any columnar
    /// mirror of the previous binding. Returns the previous binding.
    pub(crate) fn bind_local(&mut self, key: String, rel: Relation) -> Option<Relation> {
        self.local_mirrors.remove(&key);
        self.locals.insert(key, rel)
    }

    /// Remove a fixpoint local together with its mirror.
    pub(crate) fn unbind_local(&mut self, key: &str) {
        self.local_mirrors.remove(key);
        self.locals.remove(key);
    }

    fn schema_ctx(&self) -> SchemaCtx<'_> {
        let mut sc = SchemaCtx::new(&self.db.catalog);
        for (name, rel) in &self.locals {
            sc = sc.with_local(name, (*rel.schema).clone());
        }
        sc
    }
}

/// Run `f` over morsel-sized contiguous sub-slices of `items` on the
/// persistent worker pool, returning per-morsel results in input order.
/// Errors surface in morsel order, matching what a sequential
/// left-to-right evaluation would report first. See [`crate::parallel`].
fn run_partitioned<T, R, F>(items: &[T], parallelism: usize, f: F) -> EngineResult<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> EngineResult<R> + Sync,
{
    let workers = crate::parallel::effective_workers(parallelism, items.len());
    crate::parallel::run_morsels(items, workers, f)
}

/// Columnar mirror backing `input`, when the columnar path may be used:
/// the option is on, the input is a stored base table scan (fixpoint
/// locals shadow stored tables and never columnarize — their rows change
/// every iteration), the table is column-friendly, and the mirror's row
/// count matches the relation the caller just evaluated (defense in
/// depth: a stale mirror must never be consulted).
fn base_columnar(input: &Expr, ctx: &Ctx<'_>, expect_len: usize) -> Option<Arc<ColumnarRelation>> {
    if !ctx.opts.columnar {
        return None;
    }
    let Expr::Base(name) = input else { return None };
    if ctx.locals.contains_key(&name.to_ascii_uppercase()) {
        return None;
    }
    let cols = ctx.db.columnar(name)?;
    (cols.len() == expect_len).then_some(cols)
}

/// Whether a derived relation of `len` rows is large enough to be worth
/// mirroring under the options' [`EvalOptions::derived_mirror_min`]
/// gate (empty relations never are — there is nothing to scan).
fn derived_mirror_worthwhile(ctx: &Ctx<'_>, len: usize) -> bool {
    len >= ctx.opts.derived_mirror_min.max(1)
}

/// Columnar mirror for a `Base` input that may be a fixpoint local:
/// stored tables use the database's cached mirror ([`base_columnar`]);
/// locals — the recursion variable and its semi-naive `#DELTA` — build
/// a mirror of the *current* binding, cached in the context and
/// invalidated on every rebind ([`Ctx::bind_local`]), so chained
/// operators inside a fixpoint round stay on the typed path.
fn local_or_base_mirror(
    input: &Expr,
    ctx: &mut Ctx<'_>,
    rel: &Relation,
) -> Option<Arc<ColumnarRelation>> {
    if !ctx.opts.columnar {
        return None;
    }
    let Expr::Base(name) = input else { return None };
    let key = name.to_ascii_uppercase();
    if !ctx.locals.contains_key(&key) {
        return base_columnar(input, ctx, rel.len());
    }
    if !derived_mirror_worthwhile(ctx, rel.len()) {
        return None;
    }
    let mirror = ctx
        .local_mirrors
        .entry(key)
        .or_insert_with(|| ColumnarRelation::build(rel).map(Arc::new))
        .clone()?;
    // Defense in depth, as for stored tables: a mirror that does not
    // match the relation just evaluated must never be consulted.
    (mirror.len() == rel.len()).then_some(mirror)
}

/// Columnar mirror backing `input` for qualification `pred`, covering
/// all three input classes: stored base tables (database-cached),
/// fixpoint locals (context-cached per binding), and arbitrary derived
/// relations — view outputs and other operator results — which get a
/// **transient** mirror built on the spot. Transient builds are gated
/// on [`EvalOptions::derived_mirror_min`] *and* on the predicate shape
/// being columnar-eligible, so the `O(rows)` build is only paid when
/// the kernel scan it enables can actually run.
fn input_mirror(
    input: &Expr,
    ctx: &mut Ctx<'_>,
    rel: &Relation,
    pred: &CompiledPred,
) -> Option<Arc<ColumnarRelation>> {
    if !ctx.opts.columnar {
        return None;
    }
    if matches!(input, Expr::Base(_)) {
        return local_or_base_mirror(input, ctx, rel);
    }
    if !derived_mirror_worthwhile(ctx, rel.len()) || !pred.columnar_eligible() {
        return None;
    }
    ColumnarRelation::build(rel).map(Arc::new)
}

/// Run a lowered predicate over `[0, len)`, morsel-partitioned into
/// contiguous index ranges like the row operators partition their rows;
/// morsels merge in order, so the selection vector is ascending — the
/// exact sequential scan order.
fn select_partitioned(
    pred: &ColumnarPred<'_>,
    len: usize,
    parallelism: usize,
) -> EngineResult<Vec<u32>> {
    let workers = crate::parallel::effective_workers(parallelism, len);
    let parts =
        crate::parallel::run_morsel_ranges(len, workers, |lo, hi| Ok(pred.select_range(lo, hi)))?;
    Ok(parts.into_iter().flatten().collect())
}

/// Evaluate an operator input, borrowing stored base relations instead
/// of cloning their row vectors — a scan over a large table would
/// otherwise pay one `Arc` refcount round-trip per row before reading
/// anything. Fixpoint locals stay owned (their bindings change between
/// rounds); every other shape evaluates through [`eval_expr`] as usual.
fn eval_input<'db>(input: &Expr, ctx: &mut Ctx<'db>) -> EngineResult<Cow<'db, Relation>> {
    if let Expr::Base(name) = input {
        if !ctx.locals.contains_key(&name.to_ascii_uppercase()) {
            if let Some(rel) = ctx.db.relation(name) {
                return Ok(Cow::Borrowed(rel));
            }
        }
    }
    eval_expr(input, ctx).map(Cow::Owned)
}

/// Evaluate an expression in a context (public for the fixpoint module).
pub fn eval_expr(expr: &Expr, ctx: &mut Ctx<'_>) -> EngineResult<Relation> {
    match expr {
        Expr::Base(name) => {
            let key = name.to_ascii_uppercase();
            if let Some(rel) = ctx.locals.get(&key) {
                return Ok(rel.clone());
            }
            if let Some(rel) = ctx.db.relation(name) {
                return Ok(rel.clone());
            }
            Err(EngineError::UnknownRelation(name.to_owned()))
        }
        Expr::Filter { input, pred } => {
            let rel = eval_input(input, ctx)?;
            let bound = bind_fields(pred, std::slice::from_ref(&*rel.schema), ctx)?;
            let env = EvalEnv::with_params(ctx.db, ctx.params);
            let prog = CompiledPred::compile(&bound, &env);
            // Columnar path: a scan — of a stored table, a fixpoint
            // local, or a derived input worth a transient mirror —
            // whose qualification lowers fully to typed kernels. The
            // kernels compute a selection vector over the columns;
            // surviving rows are gathered from the shared row store, so
            // output rows are the *same* allocations the row path would
            // keep.
            if let Some(cols) = input_mirror(input, ctx, &rel, &prog) {
                if let Some(cpred) = prog.columnar(&cols, ctx.params) {
                    let sel = select_partitioned(&cpred, cols.len(), ctx.opts.parallelism)?;
                    let mut out = Relation::empty(rel.schema.clone());
                    out.rows.reserve(sel.len());
                    for &i in &sel {
                        out.rows.push(rel.rows[i as usize].clone());
                    }
                    ctx.stats.rows_emitted += sel.len() as u64;
                    return Ok(out);
                }
            }
            let parts = run_partitioned(&rel.rows, ctx.opts.parallelism, |rows| {
                let mut kept: Vec<SharedRow> = Vec::new();
                for row in rows {
                    if prog.eval_bool(&[&row[..]], &env)? {
                        kept.push(row.clone());
                    }
                }
                Ok(kept)
            })?;
            let mut out = Relation::empty(rel.schema.clone());
            for mut part in parts {
                ctx.stats.rows_emitted += part.len() as u64;
                out.rows.append(&mut part);
            }
            Ok(out)
        }
        Expr::Project { input, exprs } => {
            let rel = eval_input(input, ctx)?;
            let schema = infer_schema(expr, &ctx.schema_ctx())?;
            let env = EvalEnv::with_params(ctx.db, ctx.params);
            let progs = exprs
                .iter()
                .map(|e| {
                    bind_fields(e, std::slice::from_ref(&*rel.schema), ctx)
                        .map(|b| CompiledProj::compile(&b, &env))
                })
                .collect::<EngineResult<Vec<_>>>()?;
            // Identity short-circuit: every target copies the input row's
            // attributes in order, so the output rows *are* the input
            // rows — forward the shared allocations by refcount. (The
            // per-row arity check is a fat-pointer read and guarantees
            // slot copies cannot have fallen back to the general
            // program.)
            let in_arity = rel.schema.arity();
            if progs.len() == in_arity
                && progs.iter().enumerate().all(|(i, p)| p.slot0() == Some(i))
                && rel.rows.iter().all(|r| r.len() == in_arity)
            {
                ctx.stats.rows_emitted += rel.rows.len() as u64;
                return Ok(Relation::from_shared(schema, rel.into_owned().rows));
            }
            // Columnar gather: a base-table scan where every target is a
            // first-input slot reference builds output rows straight from
            // the columns (no per-row Arc chase through the row store).
            if let Some(cols) = base_columnar(input, ctx, rel.len()) {
                let slots: Option<Vec<usize>> = progs
                    .iter()
                    .map(|p| p.slot0().filter(|&a| a < cols.arity()))
                    .collect();
                if let Some(slots) = slots {
                    let indices: Vec<u32> = (0..cols.len() as u32).collect();
                    let parts = run_partitioned(&indices, ctx.opts.parallelism, |idxs| {
                        let mut built: Vec<SharedRow> = Vec::with_capacity(idxs.len());
                        let mut scratch: Row = Vec::with_capacity(slots.len());
                        for &i in idxs {
                            for &a in &slots {
                                scratch.push(cols.value_at(i as usize, a));
                            }
                            built.push(shared_row(&mut scratch));
                        }
                        Ok(built)
                    })?;
                    let mut out = Relation::empty(schema);
                    for mut part in parts {
                        ctx.stats.rows_emitted += part.len() as u64;
                        out.rows.append(&mut part);
                    }
                    return Ok(out);
                }
            }
            let parts = run_partitioned(&rel.rows, ctx.opts.parallelism, |rows| {
                let mut built: Vec<SharedRow> = Vec::with_capacity(rows.len());
                let mut scratch: Row = Vec::with_capacity(progs.len());
                for row in rows {
                    let tuple = [&row[..]];
                    scratch.clear();
                    for p in &progs {
                        scratch.push(p.eval_owned(&tuple, &env)?);
                    }
                    built.push(shared_row(&mut scratch));
                }
                Ok(built)
            })?;
            let mut out = Relation::empty(schema);
            for mut part in parts {
                ctx.stats.rows_emitted += part.len() as u64;
                out.rows.append(&mut part);
            }
            Ok(out)
        }
        Expr::Join { left, right, pred } => {
            // join = search over two inputs projecting all attributes.
            let l_arity = infer_schema(left, &ctx.schema_ctx())?.arity();
            let r_arity = infer_schema(right, &ctx.schema_ctx())?.arity();
            let mut proj = Vec::new();
            for a in 1..=l_arity {
                proj.push(Scalar::attr(1, a));
            }
            for a in 1..=r_arity {
                proj.push(Scalar::attr(2, a));
            }
            let as_search = Expr::Search {
                inputs: vec![(**left).clone(), (**right).clone()],
                pred: pred.clone(),
                proj,
            };
            eval_expr(&as_search, ctx)
        }
        Expr::Union(items) => {
            let mut out: Option<Relation> = None;
            for item in items {
                let rel = eval_expr(item, ctx)?;
                match &mut out {
                    None => out = Some(rel),
                    Some(acc) => {
                        if acc.schema.arity() != rel.schema.arity() {
                            return Err(EngineError::Lera(LeraError::Type(
                                "union arity mismatch".into(),
                            )));
                        }
                        acc.rows.extend(rel.rows);
                    }
                }
            }
            out.ok_or_else(|| EngineError::Lera(LeraError::Type("empty union".into())))
        }
        Expr::Difference(a, b) => {
            let ra = eval_expr(a, ctx)?.deduped();
            let rb = eval_input(b, ctx)?;
            let forbidden: HashSet<&[Value]> = rb.rows.iter().map(|r| &**r).collect();
            let rows: Vec<SharedRow> = ra
                .rows
                .into_iter()
                .filter(|r| !forbidden.contains(&**r))
                .collect();
            Ok(Relation::from_shared(ra.schema, rows))
        }
        Expr::Intersect(a, b) => {
            let ra = eval_expr(a, ctx)?.deduped();
            let rb = eval_input(b, ctx)?;
            let allowed: HashSet<&[Value]> = rb.rows.iter().map(|r| &**r).collect();
            let rows: Vec<SharedRow> = ra
                .rows
                .into_iter()
                .filter(|r| allowed.contains(&**r))
                .collect();
            Ok(Relation::from_shared(ra.schema, rows))
        }
        Expr::Search { inputs, pred, proj } => {
            let rels = inputs
                .iter()
                .map(|i| eval_input(i, ctx))
                .collect::<EngineResult<Vec<_>>>()?;
            let schemas: Vec<Schema> = rels.iter().map(|r| (*r.schema).clone()).collect();
            let bound_pred = bind_fields(pred, &schemas, ctx)?;
            let env = EvalEnv::with_params(ctx.db, ctx.params);
            let cpred = CompiledPred::compile(&bound_pred, &env);
            let cproj = proj
                .iter()
                .map(|e| bind_fields(e, &schemas, ctx).map(|b| CompiledProj::compile(&b, &env)))
                .collect::<EngineResult<Vec<_>>>()?;
            let out_schema = infer_schema(expr, &ctx.schema_ctx())?;
            let mut out = Relation::empty(out_schema);

            // Short-circuit: a FALSE qualification or an empty input
            // produces no tuples without touching the cross product.
            if bound_pred.is_false() || rels.iter().any(|r| r.is_empty()) {
                return Ok(out);
            }
            // Columnar path for the single-input select-project shape
            // (what filter pushdown + projection merging produce): the
            // lowered qualification scans the columns; projection runs
            // only over the selected rows. Both join modes enumerate a
            // single input in identical row order, so one path serves
            // nested-loop and hash alike.
            if rels.len() == 1 {
                if let Some(cols) = input_mirror(&inputs[0], ctx, &rels[0], &cpred) {
                    if let Some(colpred) = cpred.columnar(&cols, ctx.params) {
                        let sel = select_partitioned(&colpred, cols.len(), ctx.opts.parallelism)?;
                        ctx.stats.combinations_tried += rels[0].len() as u64;
                        let rows = &rels[0].rows;
                        // Slot-only projections gather straight from the
                        // columns (contiguous reads, no per-row compiled-
                        // program dispatch); anything fancier evaluates
                        // the compiled projection over the selected rows.
                        let slots: Option<Vec<usize>> = cproj
                            .iter()
                            .map(|p| p.slot0().filter(|&a| a < cols.arity()))
                            .collect();
                        let parts = run_partitioned(&sel, ctx.opts.parallelism, |idxs| {
                            let mut built: Vec<SharedRow> = Vec::with_capacity(idxs.len());
                            let mut scratch: Row = Vec::with_capacity(cproj.len());
                            if let Some(slots) = &slots {
                                for &i in idxs {
                                    for &a in slots {
                                        scratch.push(cols.value_at(i as usize, a));
                                    }
                                    built.push(shared_row(&mut scratch));
                                }
                            } else {
                                for &i in idxs {
                                    let tuple = [&rows[i as usize][..]];
                                    for p in &cproj {
                                        scratch.push(p.eval_owned(&tuple, &env)?);
                                    }
                                    built.push(shared_row(&mut scratch));
                                }
                            }
                            Ok(built)
                        })?;
                        for mut part in parts {
                            ctx.stats.rows_emitted += part.len() as u64;
                            out.rows.append(&mut part);
                        }
                        return Ok(out);
                    }
                }
            }
            match ctx.opts.join {
                JoinMode::NestedLoop => {
                    // Nested-loop over the cross product, partitioned on
                    // the first input: each chunk enumerates
                    // chunk × rels[1..], and chunks merge in order —
                    // the exact sequential enumeration order.
                    let parts = run_partitioned(&rels[0].rows, ctx.opts.parallelism, |first| {
                        let mut kept: Vec<SharedRow> = Vec::new();
                        let mut tried = 0u64;
                        let mut scratch: Row = Vec::with_capacity(cproj.len());
                        let mut emit =
                            |tuple: &[&[Value]], kept: &mut Vec<SharedRow>| -> EngineResult<()> {
                                for p in &cproj {
                                    scratch.push(p.eval_owned(tuple, &env)?);
                                }
                                kept.push(shared_row(&mut scratch));
                                Ok(())
                            };
                        // Dedicated loops for the dominant one- and
                        // two-input shapes; a generic odometer for
                        // wider products. Enumeration order is the
                        // same row-major order in every case.
                        match rels.len() {
                            1 => {
                                for row in first {
                                    tried += 1;
                                    let tuple = [&row[..]];
                                    if cpred.eval_bool(&tuple, &env)? {
                                        emit(&tuple, &mut kept)?;
                                    }
                                }
                            }
                            2 => {
                                let inner = &rels[1].rows;
                                for l in first {
                                    let mut tuple = [&l[..], &l[..]];
                                    for r in inner {
                                        tried += 1;
                                        tuple[1] = &r[..];
                                        if cpred.eval_bool(&tuple, &env)? {
                                            emit(&tuple, &mut kept)?;
                                        }
                                    }
                                }
                            }
                            _ => {
                                let mut idx = vec![0usize; rels.len()];
                                // Tuple buffer maintained incrementally:
                                // only odometer positions that change
                                // are rewritten.
                                let mut tuple: Vec<&[Value]> = Vec::with_capacity(rels.len());
                                tuple.push(&first[0][..]);
                                for rel in rels.iter().skip(1) {
                                    tuple.push(&rel.rows[0][..]);
                                }
                                'outer: loop {
                                    tried += 1;
                                    if cpred.eval_bool(&tuple, &env)? {
                                        emit(&tuple, &mut kept)?;
                                    }
                                    // Advance the odometer.
                                    for k in (0..idx.len()).rev() {
                                        let rows: &[SharedRow] =
                                            if k == 0 { first } else { &rels[k].rows };
                                        idx[k] += 1;
                                        if idx[k] < rows.len() {
                                            tuple[k] = &rows[idx[k]][..];
                                            continue 'outer;
                                        }
                                        idx[k] = 0;
                                        tuple[k] = &rows[0][..];
                                        if k == 0 {
                                            break 'outer;
                                        }
                                    }
                                }
                            }
                        }
                        Ok((kept, tried))
                    })?;
                    for (mut part, tried) in parts {
                        ctx.stats.combinations_tried += tried;
                        ctx.stats.rows_emitted += part.len() as u64;
                        out.rows.append(&mut part);
                    }
                }
                JoinMode::Hash => {
                    // Candidate enumeration is sequential (it builds
                    // per-input hash tables); the per-combination
                    // re-check and projection are partitioned. Columnar
                    // mirrors of base inputs — stored tables and
                    // fixpoint locals/deltas alike — let
                    // single-attribute integer join keys build typed
                    // `i64` hash tables.
                    let mirrors: Vec<Option<Arc<ColumnarRelation>>> = inputs
                        .iter()
                        .zip(&rels)
                        .map(|(i, r)| local_or_base_mirror(i, ctx, r))
                        .collect();
                    let combos = hash_search(&rels, &bound_pred, &mirrors, ctx)?;
                    let parts = run_partitioned(&combos, ctx.opts.parallelism, |part| {
                        let mut kept: Vec<SharedRow> = Vec::new();
                        let mut tuple: Vec<&[Value]> = Vec::with_capacity(rels.len());
                        let mut scratch: Row = Vec::with_capacity(cproj.len());
                        for combo in part {
                            tuple.clear();
                            tuple.extend(combo.iter().copied());
                            if cpred.eval_bool(&tuple, &env)? {
                                for p in &cproj {
                                    scratch.push(p.eval_owned(&tuple, &env)?);
                                }
                                kept.push(shared_row(&mut scratch));
                            }
                        }
                        Ok(kept)
                    })?;
                    for mut part in parts {
                        ctx.stats.rows_emitted += part.len() as u64;
                        out.rows.append(&mut part);
                    }
                }
            }
            Ok(out)
        }
        Expr::Fix { name, body } => eval_fix(name, body, ctx),
        Expr::Nest {
            input,
            group,
            nested,
            kind,
        } => {
            if let Some(out) = fused_scan_nest(expr, ctx)? {
                return Ok(out);
            }
            let rel = eval_input(input, ctx)?;
            let out_schema = infer_schema(expr, &ctx.schema_ctx())?;
            let item_of = |row: &SharedRow| {
                if nested.len() == 1 {
                    row[nested[0] - 1].clone()
                } else {
                    Value::Tuple(nested.iter().map(|&n| row[n - 1].clone()).collect())
                }
            };
            // Group in one hash pass over *borrowed* keys (no per-row
            // key allocation or deep clone), then sort the groups once —
            // `OrderedF64`'s Eq/Hash agree with its total order, so this
            // emits the exact lexicographic key order the previous
            // BTreeMap produced. The dominant single-attribute GROUP BY
            // hashes the bare value.
            let mut out = Relation::empty(out_schema);
            if let [g] = group[..] {
                let mut groups: HashMap<&Value, Vec<Value>> = HashMap::new();
                for row in &rel.rows {
                    groups.entry(&row[g - 1]).or_default().push(item_of(row));
                }
                let mut entries: Vec<(&Value, Vec<Value>)> = groups.into_iter().collect();
                entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
                for (key, items) in entries {
                    out.push(vec![key.clone(), Value::coll(*kind, items)]);
                    ctx.stats.rows_emitted += 1;
                }
            } else {
                let mut groups: HashMap<Vec<&Value>, Vec<Value>> = HashMap::new();
                for row in &rel.rows {
                    let key: Vec<&Value> = group.iter().map(|&g| &row[g - 1]).collect();
                    groups.entry(key).or_default().push(item_of(row));
                }
                let mut entries: Vec<(Vec<&Value>, Vec<Value>)> = groups.into_iter().collect();
                entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                for (key, items) in entries {
                    let mut row: Row = key.into_iter().cloned().collect();
                    row.push(Value::coll(*kind, items));
                    out.push(row);
                    ctx.stats.rows_emitted += 1;
                }
            }
            Ok(out)
        }
        Expr::Unnest { input, attr } => {
            let rel = eval_input(input, ctx)?;
            let out_schema = infer_schema(expr, &ctx.schema_ctx())?;
            let mut out = Relation::empty(out_schema);
            for row in &rel.rows {
                let (_, elems) = row[attr - 1].as_coll().map_err(EngineError::Adt)?;
                for elem in elems {
                    let mut new_row = row.to_vec();
                    new_row[attr - 1] = elem.clone();
                    out.push(new_row);
                    ctx.stats.rows_emitted += 1;
                }
            }
            Ok(out)
        }
        Expr::Dedup(input) => Ok(eval_expr(input, ctx)?.deduped()),
    }
}

/// Fused scan+nest: when `Nest` consumes a single-base select-project
/// (`Search` with one `Base` input, or `Filter` over `Base`) whose
/// qualification lowers fully to columnar kernels and whose projected
/// columns are plain slot references, group straight from the columns
/// over the selection vector — the intermediate filtered/projected rows
/// are never materialized. Results, result order and work counters are
/// identical to the unfused pipeline: the skipped intermediate still
/// counts its `rows_emitted` (and `combinations_tried` for `Search`),
/// groups sort by key exactly as the row-path `Nest` sorts them, and
/// any shape the fusion does not cover returns `None` to fall back
/// untouched — re-evaluating the inner `Base` on fallback is a borrow,
/// so a failed attempt costs nothing and cannot double-count work.
fn fused_scan_nest(expr: &Expr, ctx: &mut Ctx<'_>) -> EngineResult<Option<Relation>> {
    let Expr::Nest {
        input,
        group,
        nested,
        kind,
    } = expr
    else {
        return Ok(None);
    };
    if !ctx.opts.columnar {
        return Ok(None);
    }
    let (base, pred, proj) = match &**input {
        Expr::Search { inputs, pred, proj }
            if inputs.len() == 1 && matches!(inputs[0], Expr::Base(_)) =>
        {
            (&inputs[0], pred, Some(&proj[..]))
        }
        Expr::Filter { input: fi, pred } if matches!(&**fi, Expr::Base(_)) => (&**fi, pred, None),
        _ => return Ok(None),
    };
    let rel = eval_input(base, ctx)?;
    let out_schema = infer_schema(expr, &ctx.schema_ctx())?;
    let is_search = proj.is_some();
    let bound = bind_fields(pred, std::slice::from_ref(&*rel.schema), ctx)?;
    // `Search` short-circuits FALSE/empty before counting any work; an
    // empty `Filter` input reaches the same empty output with zero
    // counters through either pipeline.
    if rel.is_empty() || (is_search && bound.is_false()) {
        return Ok(Some(Relation::empty(out_schema)));
    }
    let env = EvalEnv::with_params(ctx.db, ctx.params);
    let cpred = CompiledPred::compile(&bound, &env);
    let Some(cols) = input_mirror(base, ctx, &rel, &cpred) else {
        return Ok(None);
    };
    let Some(colpred) = cpred.columnar(&cols, ctx.params) else {
        return Ok(None);
    };
    // Map `Nest` attributes (1-based into the intermediate schema) to
    // base columns: through the projection for `Search` — every target
    // must be an infallible in-bounds slot copy — or identity for
    // `Filter`.
    let col_of: Vec<usize> = match proj {
        Some(proj) => {
            let mut slots = Vec::with_capacity(proj.len());
            for e in proj {
                let b = bind_fields(e, std::slice::from_ref(&*rel.schema), ctx)?;
                match CompiledProj::compile(&b, &env)
                    .slot0()
                    .filter(|&a| a < cols.arity())
                {
                    Some(a) => slots.push(a),
                    None => return Ok(None),
                }
            }
            slots
        }
        None => (0..cols.arity()).collect(),
    };
    let width = col_of.len();
    if group.iter().chain(nested).any(|&a| a == 0 || a > width) {
        return Ok(None);
    }

    let sel = select_partitioned(&colpred, cols.len(), ctx.opts.parallelism)?;
    if is_search {
        ctx.stats.combinations_tried += rel.len() as u64;
    }
    // The intermediate select-project rows are never built, but the
    // unfused pipeline would have emitted them.
    ctx.stats.rows_emitted += sel.len() as u64;

    let item_cols: Vec<usize> = nested.iter().map(|&n| col_of[n - 1]).collect();
    let item_of = |i: usize| {
        if let [c] = item_cols[..] {
            cols.value_at(i, c)
        } else {
            Value::Tuple(item_cols.iter().map(|&c| cols.value_at(i, c)).collect())
        }
    };
    let mut out = Relation::empty(out_schema);
    if let [g] = group[..] {
        let gcol = col_of[g - 1];
        let mut groups: HashMap<Value, Vec<Value>> = HashMap::new();
        for &i in &sel {
            let i = i as usize;
            groups
                .entry(cols.value_at(i, gcol))
                .or_default()
                .push(item_of(i));
        }
        let mut entries: Vec<(Value, Vec<Value>)> = groups.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (key, items) in entries {
            out.push(vec![key, Value::coll(*kind, items)]);
            ctx.stats.rows_emitted += 1;
        }
    } else {
        let mut groups: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
        for &i in &sel {
            let i = i as usize;
            let key: Vec<Value> = group
                .iter()
                .map(|&g| cols.value_at(i, col_of[g - 1]))
                .collect();
            groups.entry(key).or_default().push(item_of(i));
        }
        let mut entries: Vec<(Vec<Value>, Vec<Value>)> = groups.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (key, items) in entries {
            let mut row: Row = key;
            row.push(Value::coll(*kind, items));
            out.push(row);
            ctx.stats.rows_emitted += 1;
        }
    }
    Ok(Some(out))
}

/// Left-deep hash-join enumeration of candidate input combinations. Each
/// equality conjunct `i.a = j.b` between an already-joined input and the
/// next one becomes a hash key; inputs with no linking equi-conjunct fall
/// back to a cross product against the accumulator. The caller re-checks
/// the full qualification (hash equality is stricter than SQL equality:
/// NULL keys never probe-match, which the re-check also rejects), so
/// this only has to be an over-approximation of the satisfying
/// combinations.
fn hash_search<'a>(
    rels: &'a [Cow<'_, Relation>],
    pred: &Scalar,
    mirrors: &[Option<Arc<ColumnarRelation>>],
    ctx: &mut Ctx<'_>,
) -> EngineResult<Vec<Vec<&'a [Value]>>> {
    // Equality conjuncts between plain attribute references.
    let mut equi: Vec<(usize, usize, usize, usize)> = Vec::new(); // (rel_a, attr_a, rel_b, attr_b)
    for c in pred.conjuncts() {
        if let Scalar::Cmp {
            op: eds_lera::CmpOp::Eq,
            left,
            right,
        } = c
        {
            if let (Scalar::Attr { rel: r1, attr: a1 }, Scalar::Attr { rel: r2, attr: a2 }) =
                (left.as_ref(), right.as_ref())
            {
                equi.push((*r1, *a1, *r2, *a2));
            }
        }
    }

    let mut acc: Vec<Vec<&[Value]>> = rels[0].rows.iter().map(|r| vec![&**r]).collect();
    ctx.stats.combinations_tried += acc.len() as u64;

    for (next_idx, next_rel) in rels.iter().enumerate().skip(1) {
        let next_rel_no = next_idx + 1; // 1-based
                                        // Keys linking the accumulated prefix (rel <= next_idx) to the
                                        // next input.
        let keys: Vec<((usize, usize), usize)> = equi
            .iter()
            .filter_map(|&(r1, a1, r2, a2)| {
                if r1 <= next_idx && r2 == next_rel_no {
                    Some(((r1, a1), a2))
                } else if r2 <= next_idx && r1 == next_rel_no {
                    Some(((r2, a2), a1))
                } else {
                    None
                }
            })
            .collect();

        let mut new_acc: Vec<Vec<&[Value]>> = Vec::new();
        if keys.is_empty() {
            // Cross product against the accumulator.
            for combo in &acc {
                for row in &next_rel.rows {
                    let mut extended = combo.clone();
                    extended.push(&**row);
                    ctx.stats.combinations_tried += 1;
                    new_acc.push(extended);
                }
            }
        } else if let Some((values, nulls)) = single_int_key(&keys, mirrors.get(next_idx), next_rel)
        {
            // Typed build + probe: the single linking key lands on an
            // integer column of the next input's mirror, so the hash
            // table keys are plain `i64`s instead of `Value` slices.
            // NULL build rows are bucketed separately: structural `Value`
            // hashing matches NULL probes against NULL build keys (the
            // caller's re-check rejects them), and the typed path must
            // enumerate the *same* candidate combinations in the same
            // order. A column typed `Int` holds no other kinds, so any
            // non-integer, non-NULL probe misses — exactly like the
            // structural table.
            let mut table: HashMap<i64, Vec<u32>> = HashMap::with_capacity(values.len());
            let mut null_rows: Vec<u32> = Vec::new();
            for (i, v) in values.iter().enumerate() {
                if nulls.is_null(i) {
                    null_rows.push(i as u32);
                } else {
                    table.entry(*v).or_default().push(i as u32);
                }
            }
            let ((kr, ka), _) = keys[0];
            for combo in &acc {
                let matches: Option<&[u32]> = match &combo[kr - 1][ka - 1] {
                    Value::Int(v) => table.get(v).map(|m| &m[..]),
                    Value::Null => (!null_rows.is_empty()).then_some(&null_rows[..]),
                    _ => None,
                };
                if let Some(matches) = matches {
                    for &i in matches {
                        let mut extended = combo.clone();
                        extended.push(&*next_rel.rows[i as usize]);
                        ctx.stats.combinations_tried += 1;
                        new_acc.push(extended);
                    }
                }
            }
        } else {
            // Build: hash the next input on its key attributes.
            let mut table: HashMap<Vec<&Value>, Vec<&[Value]>> = HashMap::new();
            for row in &next_rel.rows {
                let key: Vec<&Value> = keys.iter().map(|&(_, a)| &row[a - 1]).collect();
                table.entry(key).or_default().push(&**row);
            }
            // Probe with the accumulator.
            for combo in &acc {
                let key: Vec<&Value> = keys
                    .iter()
                    .map(|&((r, a), _)| &combo[r - 1][a - 1])
                    .collect();
                if let Some(matches) = table.get(&key) {
                    for row in matches {
                        let mut extended = combo.clone();
                        extended.push(row);
                        ctx.stats.combinations_tried += 1;
                        new_acc.push(extended);
                    }
                }
            }
        }
        acc = new_acc;
        if acc.is_empty() {
            break;
        }
    }
    Ok(acc)
}

/// The `(values, nulls)` of the next input's join-key column, when the
/// typed hash path applies: exactly one linking key, a mirror present
/// and aligned with the evaluated input, and the key attribute stored
/// as an integer column.
fn single_int_key<'m>(
    keys: &[((usize, usize), usize)],
    mirror: Option<&'m Option<Arc<ColumnarRelation>>>,
    next_rel: &Relation,
) -> Option<(&'m [i64], &'m NullBitmap)> {
    if keys.len() != 1 {
        return None;
    }
    let cols = mirror?.as_deref()?;
    if cols.len() != next_rel.rows.len() {
        return None;
    }
    match cols.column(keys[0].1.checked_sub(1)?)? {
        Column::Int { values, nulls } => Some((values, nulls)),
        _ => None,
    }
}

/// Resolve named field accesses (`PROJECT(e, Name)`) to positional
/// `GETFIELD(e, idx)` using static types — done once per operator, not
/// per row.
pub(crate) fn bind_fields(s: &Scalar, inputs: &[Schema], ctx: &Ctx<'_>) -> EngineResult<Scalar> {
    let sc = ctx.schema_ctx();
    bind_fields_inner(s, inputs, &sc).map_err(EngineError::Lera)
}

fn bind_fields_inner(
    s: &Scalar,
    inputs: &[Schema],
    sc: &SchemaCtx<'_>,
) -> Result<Scalar, LeraError> {
    Ok(match s {
        Scalar::Field { input, name } => {
            let bound_input = bind_fields_inner(input, inputs, sc)?;
            let input_ty = infer_scalar_type(&bound_input, inputs, sc)?;
            let (needs_deref, idx, _) =
                sc.catalog.attribute_of(&input_ty, name).ok_or_else(|| {
                    LeraError::UnknownAttribute {
                        name: name.clone(),
                        receiver: input_ty.to_string(),
                    }
                })?;
            let receiver = if needs_deref {
                Scalar::call("VALUE", vec![bound_input])
            } else {
                bound_input
            };
            Scalar::call("GETFIELD", vec![receiver, Scalar::lit((idx + 1) as i64)])
        }
        Scalar::Call { func, args } => Scalar::Call {
            func: func.clone(),
            args: args
                .iter()
                .map(|a| bind_fields_inner(a, inputs, sc))
                .collect::<Result<_, _>>()?,
        },
        Scalar::Cmp { op, left, right } => Scalar::Cmp {
            op: *op,
            left: Box::new(bind_fields_inner(left, inputs, sc)?),
            right: Box::new(bind_fields_inner(right, inputs, sc)?),
        },
        Scalar::And(a, b) => Scalar::And(
            Box::new(bind_fields_inner(a, inputs, sc)?),
            Box::new(bind_fields_inner(b, inputs, sc)?),
        ),
        Scalar::Or(a, b) => Scalar::Or(
            Box::new(bind_fields_inner(a, inputs, sc)?),
            Box::new(bind_fields_inner(b, inputs, sc)?),
        ),
        Scalar::Not(a) => Scalar::Not(Box::new(bind_fields_inner(a, inputs, sc)?)),
        Scalar::Attr { .. } | Scalar::Const(_) | Scalar::Param(_) => s.clone(),
    })
}

/// Evaluate a bound scalar against one tuple per input relation — the
/// interpreted (per-row tree-walking) evaluator. Operators use compiled
/// programs instead; this remains for constant evaluation, the reference
/// executor, and as the semantic specification the compiler must match.
pub fn eval_scalar(s: &Scalar, tuples: &[&[Value]], ctx: &Ctx<'_>) -> EngineResult<Value> {
    match s {
        Scalar::Attr { rel, attr } => {
            let row = tuples.get(rel - 1).ok_or_else(|| {
                EngineError::Lera(LeraError::BadAttrRef {
                    rel: *rel,
                    attr: *attr,
                    context: format!("{} input tuples", tuples.len()),
                })
            })?;
            row.get(attr - 1).cloned().ok_or_else(|| {
                EngineError::Lera(LeraError::BadAttrRef {
                    rel: *rel,
                    attr: *attr,
                    context: format!("tuple of arity {}", row.len()),
                })
            })
        }
        Scalar::Const(v) => Ok(v.clone()),
        Scalar::Param(i) => ctx
            .params
            .get(*i as usize)
            .cloned()
            .ok_or(EngineError::UnboundParam(*i)),
        Scalar::Field { name, .. } => Err(EngineError::Lera(LeraError::UnknownAttribute {
            name: name.clone(),
            receiver: "unbound field access at runtime".into(),
        })),
        Scalar::Call { func, args } => {
            let vals = args
                .iter()
                .map(|a| eval_scalar(a, tuples, ctx))
                .collect::<EngineResult<Vec<Value>>>()?;
            match func.as_str() {
                "GETFIELD" => {
                    let idx = vals[1].as_int().map_err(EngineError::Adt)? as usize;
                    getfield(&vals[0], idx, ctx)
                }
                "VALUE" => deref_value(&vals[0], ctx),
                _ => {
                    let ec = EvalContext {
                        objects: &ctx.db.objects,
                        types: &ctx.db.catalog.types,
                    };
                    ctx.db
                        .functions
                        .call(func, &vals, &ec)
                        .map_err(EngineError::Adt)
                }
            }
        }
        Scalar::Cmp { op, left, right } => {
            let l = eval_scalar(left, tuples, ctx)?;
            let r = eval_scalar(right, tuples, ctx)?;
            Ok(eval_cmp_broadcast(op, &l, &r))
        }
        Scalar::And(a, b) => {
            let va = eval_scalar(a, tuples, ctx)?;
            // Short-circuit FALSE without evaluating the right side.
            if matches!(va, Value::Bool(false)) {
                return Ok(Value::Bool(false));
            }
            let vb = eval_scalar(b, tuples, ctx)?;
            Ok(match (va, vb) {
                (_, Value::Bool(false)) => Value::Bool(false),
                (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                _ => Value::Null,
            })
        }
        Scalar::Or(a, b) => {
            let va = eval_scalar(a, tuples, ctx)?;
            if matches!(va, Value::Bool(true)) {
                return Ok(Value::Bool(true));
            }
            let vb = eval_scalar(b, tuples, ctx)?;
            Ok(match (va, vb) {
                (_, Value::Bool(true)) => Value::Bool(true),
                (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                _ => Value::Null,
            })
        }
        Scalar::Not(a) => Ok(match eval_scalar(a, tuples, ctx)? {
            Value::Bool(b) => Value::Bool(!b),
            Value::Null => Value::Null,
            other => {
                return Err(EngineError::NonBooleanPredicate(other.to_string()));
            }
        }),
    }
}

/// Field access with automatic mapping: tuples index directly, object
/// references dereference first, collections map the access over their
/// elements ("the system will automatically apply the appropriate type
/// conversion", Section 2.1).
fn getfield(v: &Value, idx1: usize, ctx: &Ctx<'_>) -> EngineResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Tuple(items) => items.get(idx1 - 1).cloned().ok_or({
            EngineError::Adt(eds_adt::AdtError::IndexOutOfBounds {
                index: idx1 as i64,
                len: items.len(),
            })
        }),
        Value::Object(oid) => {
            let inner = ctx
                .db
                .objects
                .value(*oid)
                .map_err(EngineError::Adt)?
                .clone();
            getfield(&inner, idx1, ctx)
        }
        Value::Coll(kind, items) => {
            let mapped = items
                .iter()
                .map(|e| getfield(e, idx1, ctx))
                .collect::<EngineResult<Vec<_>>>()?;
            Ok(Value::coll(*kind, mapped))
        }
        other => Err(EngineError::Adt(eds_adt::AdtError::TypeMismatch {
            function: "GETFIELD".into(),
            expected: "TUPLE, OBJECT or collection".into(),
            found: other.kind_name().into(),
        })),
    }
}

/// `VALUE` with collection mapping.
fn deref_value(v: &Value, ctx: &Ctx<'_>) -> EngineResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Object(oid) => ctx
            .db
            .objects
            .value(*oid)
            .cloned()
            .map_err(EngineError::Adt),
        Value::Coll(kind, items) => {
            let mapped = items
                .iter()
                .map(|e| deref_value(e, ctx))
                .collect::<EngineResult<Vec<_>>>()?;
            Ok(Value::coll(*kind, mapped))
        }
        other => Ok(other.clone()),
    }
}

/// Comparison with broadcasting: ordered comparisons where exactly one
/// side is a collection map over its elements (supporting
/// `ALL(Salary(Actors) > 10000)`); equality stays structural.
pub(crate) fn eval_cmp_broadcast(op: &eds_lera::CmpOp, l: &Value, r: &Value) -> Value {
    use eds_lera::CmpOp;
    let ordered = !matches!(op, CmpOp::Eq | CmpOp::Ne);
    if ordered {
        match (l, r) {
            (Value::Coll(kind, items), scalar) if !scalar.is_coll() => {
                let mapped: Vec<Value> = items
                    .iter()
                    .map(|e| eval_cmp_broadcast(op, e, scalar))
                    .collect();
                return Value::coll(*kind, mapped);
            }
            (scalar, Value::Coll(kind, items)) if !scalar.is_coll() => {
                let mapped: Vec<Value> = items
                    .iter()
                    .map(|e| eval_cmp_broadcast(op, scalar, e))
                    .collect();
                return Value::coll(*kind, mapped);
            }
            _ => {}
        }
    }
    match l.sql_cmp(r) {
        None => Value::Null,
        Some(ord) => Value::Bool(match op {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Ge => ord.is_ge(),
        }),
    }
}
