//! Per-table statistics for the cost-guided rewriter.
//!
//! The paper's rewriter picks plans structurally; the cost-guided tier
//! needs numbers. [`TableStats`] summarizes a stored relation with the
//! three inputs the selectivity formulas in `lera::cost` consume:
//!
//! * the exact row count (`card`) and per-column NULL counts;
//! * per-column numeric `min`/`max` for range interpolation;
//! * a per-column distinct-count estimate from a KMV (k-minimum-values)
//!   sketch — the k smallest 64-bit value hashes. Below `k` distinct
//!   values the sketch is exact; above, the classic `(k-1)/R_k`
//!   estimator applies. `k = 256` keeps the sketch a few KiB per column
//!   while staying within ~10% relative error.
//!
//! Sketches are cached per table by [`crate::Database`] exactly like the
//! columnar mirrors: built lazily on first request, maintained
//! incrementally on [`crate::Database::insert`] (every column sketch
//! observes the appended row), and dropped by bulk/unstructured
//! mutations (`relation_mut`, `truncate`, re-`CREATE`) so the next
//! request rebuilds from the rows.

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use eds_adt::Value;

use crate::relation::Relation;

/// Sketch capacity: distinct counts are exact up to this many values.
pub const KMV_K: usize = 256;

/// A k-minimum-values distinct-count sketch over 64-bit value hashes.
#[derive(Debug, Clone, Default)]
struct Kmv {
    /// The `KMV_K` smallest hashes seen, deduplicated.
    smallest: BTreeSet<u64>,
    /// Whether any hash has been evicted (sketch is estimating).
    saturated: bool,
}

impl Kmv {
    fn observe(&mut self, h: u64) {
        if self.smallest.len() < KMV_K {
            self.smallest.insert(h);
            return;
        }
        let max = *self.smallest.iter().next_back().expect("non-empty");
        if h < max && self.smallest.insert(h) {
            self.smallest.pop_last();
            self.saturated = true;
        } else if h > max {
            self.saturated = true;
        }
    }

    fn estimate(&self) -> f64 {
        if !self.saturated {
            return self.smallest.len() as f64;
        }
        // (k-1)/R_k with hashes normalized into (0, 1].
        let kth = *self.smallest.iter().next_back().expect("saturated") as f64;
        let r = (kth + 1.0) / (u64::MAX as f64 + 1.0);
        (self.smallest.len() as f64 - 1.0) / r
    }
}

/// Deterministic value hash for the sketch (`DefaultHasher` uses fixed
/// keys, so estimates are reproducible across runs and hosts).
fn value_hash(v: &Value) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Statistics for one column of a stored relation.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// NULLs seen in this column.
    pub nulls: u64,
    /// Smallest numeric value (Int widened to f64), if any numeric seen.
    pub min: Option<f64>,
    /// Largest numeric value.
    pub max: Option<f64>,
    kmv: Kmv,
}

impl ColumnStats {
    /// Estimated number of distinct non-NULL values.
    pub fn distinct(&self) -> f64 {
        self.kmv.estimate()
    }

    fn observe(&mut self, v: &Value) {
        if matches!(v, Value::Null) {
            self.nulls += 1;
            return;
        }
        if let Some(x) = numeric(v) {
            self.min = Some(self.min.map_or(x, |m| m.min(x)));
            self.max = Some(self.max.map_or(x, |m| m.max(x)));
        }
        self.kmv.observe(value_hash(v));
    }
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Real(r) => Some(r.0),
        _ => None,
    }
}

/// Statistics for one stored relation.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Exact row count at build time (maintained on insert).
    pub card: u64,
    /// Per-column sketches, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Build from the stored rows.
    pub fn build(rel: &Relation) -> TableStats {
        let mut stats = TableStats {
            card: 0,
            columns: vec![ColumnStats::default(); rel.schema.arity()],
        };
        for row in &rel.rows {
            stats.observe_row(row);
        }
        stats
    }

    /// Fold one appended row into the sketches.
    pub fn observe_row(&mut self, row: &[Value]) {
        self.card += 1;
        for (col, v) in self.columns.iter_mut().zip(row.iter()) {
            col.observe(v);
        }
    }

    /// Fraction of NULLs in column `i` (0-based), 0.0 when empty.
    pub fn null_frac(&self, i: usize) -> f64 {
        if self.card == 0 {
            return 0.0;
        }
        self.columns
            .get(i)
            .map_or(0.0, |c| c.nulls as f64 / self.card as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eds_adt::{Field, Type};
    use eds_lera::Schema;

    fn relation(values: Vec<Vec<Value>>) -> Relation {
        let arity = values.first().map_or(1, Vec::len);
        let fields = (0..arity)
            .map(|i| Field::new(format!("C{i}"), Type::Int))
            .collect();
        let mut rel = Relation::empty(Schema::new(fields));
        for row in values {
            rel.push(row);
        }
        rel
    }

    #[test]
    fn small_tables_count_exactly() {
        let rel = relation((0..100).map(|i| vec![Value::Int(i % 10)]).collect());
        let s = TableStats::build(&rel);
        assert_eq!(s.card, 100);
        assert_eq!(s.columns[0].distinct(), 10.0);
        assert_eq!(s.columns[0].min, Some(0.0));
        assert_eq!(s.columns[0].max, Some(9.0));
        assert_eq!(s.null_frac(0), 0.0);
    }

    #[test]
    fn kmv_estimates_large_domains_within_tolerance() {
        // 20_000 distinct values is far past the sketch capacity; the
        // estimator must land within ~10%.
        let rel = relation((0..20_000).map(|i| vec![Value::Int(i)]).collect());
        let s = TableStats::build(&rel);
        let d = s.columns[0].distinct();
        let err = (d - 20_000.0).abs() / 20_000.0;
        assert!(err < 0.10, "distinct estimate {d} off by {err:.3}");
    }

    #[test]
    fn nulls_tracked_separately_from_distincts() {
        let rows = (0..40)
            .map(|i| {
                vec![if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 5)
                }]
            })
            .collect();
        let s = TableStats::build(&relation(rows));
        assert_eq!(s.columns[0].nulls, 10);
        assert_eq!(s.null_frac(0), 0.25);
        // NULL contributes to neither distinct count nor min/max.
        assert!(s.columns[0].distinct() <= 5.0);
    }

    #[test]
    fn incremental_observe_matches_rebuild() {
        let rows: Vec<Vec<Value>> = (0..500).map(|i| vec![Value::Int(i * 3 % 97)]).collect();
        let rel = relation(rows.clone());
        let built = TableStats::build(&rel);
        let mut inc = TableStats {
            card: 0,
            columns: vec![ColumnStats::default()],
        };
        for row in &rows {
            inc.observe_row(row);
        }
        assert_eq!(inc.card, built.card);
        assert_eq!(inc.columns[0].distinct(), built.columns[0].distinct());
        assert_eq!(inc.columns[0].min, built.columns[0].min);
        assert_eq!(inc.columns[0].max, built.columns[0].max);
    }

    #[test]
    fn strings_count_distinct_without_minmax() {
        let rel = relation(
            (0..30)
                .map(|i| vec![Value::str(format!("tag{}", i % 7))])
                .collect(),
        );
        let s = TableStats::build(&rel);
        assert_eq!(s.columns[0].distinct(), 7.0);
        assert_eq!(s.columns[0].min, None);
        assert_eq!(s.columns[0].max, None);
    }
}
