//! Compiled scalar programs.
//!
//! [`bind_fields`](crate::eval) resolves named field accesses once per
//! operator; this module goes one step further and lowers the bound
//! [`Scalar`] tree into a [`CompiledScalar`] — a pre-dispatched program
//! whose per-row evaluation
//!
//! * never re-walks `Scalar` enum structure (GETFIELD/VALUE calls are
//!   lowered to dedicated nodes, function symbols are resolved in the
//!   [`FunctionRegistry`] at compile time, not per row);
//! * borrows instead of clones: attribute references, tuple-field
//!   accesses and object dereferences yield [`Cow::Borrowed`] values
//!   pointing into the input rows or the object store, so a comparison
//!   such as `Salary(Refactor) > 20000` copies nothing.
//!
//! Semantics (three-valued logic, broadcast comparisons, collection
//! mapping, and every error message) are identical to the interpreted
//! [`eval_scalar`](crate::eval::eval_scalar) path, which remains as the
//! reference implementation; `exec_equivalence` tests assert the two
//! agree on the full workload suite.

use std::borrow::Cow;
use std::sync::Arc;

use eds_adt::{
    AdtError, EvalContext, FunctionRegistry, NativeFn, ObjectStore, TypeRegistry, Value,
};
use eds_lera::{CmpOp, LeraError, Scalar};

use crate::columnar::{Column, ColumnarRelation, NullBitmap};
use crate::database::Database;
use crate::error::{EngineError, EngineResult};
use crate::eval::eval_cmp_broadcast;

/// The immutable evaluation environment a compiled program runs against:
/// the slices of a [`Database`] that scalar evaluation can touch. `Sync`,
/// so partitioned operators can evaluate one program from many threads.
#[derive(Clone, Copy)]
pub struct EvalEnv<'a> {
    /// Object store for `VALUE`/field dereferences.
    pub objects: &'a ObjectStore,
    /// Type registry (for `ISA` and friends).
    pub types: &'a TypeRegistry,
    /// ADT function registry.
    pub functions: &'a FunctionRegistry,
    /// Bind array for positional statement parameters: `?i` resolves to
    /// `params[i]`. Empty for ad-hoc queries; a `?` evaluated against an
    /// empty (or too-short) array is an [`EngineError::UnboundParam`].
    pub params: &'a [Value],
}

impl<'a> EvalEnv<'a> {
    /// Environment view of a database (no statement parameters bound).
    pub fn of(db: &'a Database) -> Self {
        Self::with_params(db, &[])
    }

    /// Environment view of a database with a bind array for `?`
    /// parameters.
    pub fn with_params(db: &'a Database, params: &'a [Value]) -> Self {
        EvalEnv {
            objects: &db.objects,
            types: &db.catalog.types,
            functions: &db.functions,
            params,
        }
    }

    fn adt_ctx(&self) -> EvalContext<'a> {
        EvalContext {
            objects: self.objects,
            types: self.types,
        }
    }
}

/// A compiled scalar program. Build once per operator with
/// [`CompiledScalar::compile`], evaluate per row with
/// [`CompiledScalar::eval`].
pub enum CompiledScalar {
    /// Positional attribute reference (1-based, like `Scalar::Attr`).
    Attr {
        /// 1-based input relation index.
        rel: usize,
        /// 1-based attribute index.
        attr: usize,
    },
    /// Literal.
    Const(Value),
    /// Positional statement parameter: a slot into the bind array the
    /// evaluation environment carries. The program itself stays
    /// bind-independent — the same compiled plan serves every execution
    /// of a prepared statement; only the array changes.
    Param(u16),
    /// `GETFIELD(input, idx)` with a constant index — the shape
    /// `bind_fields` always produces.
    GetField {
        /// Receiver program.
        input: Box<CompiledScalar>,
        /// 1-based field index.
        idx1: usize,
    },
    /// `GETFIELD` with a computed index (kept for rule-generated plans).
    DynGetField(Vec<CompiledScalar>),
    /// `VALUE(input)`: object dereference with collection mapping.
    ValueOf(Box<CompiledScalar>),
    /// `VALUE` with an unexpected argument list (degenerate, kept for
    /// exact interpreter parity).
    DynValue(Vec<CompiledScalar>),
    /// Resolved function call: the registry lookup happened at compile
    /// time.
    Call {
        /// Canonical function name (for arity-check errors).
        name: String,
        /// Resolved implementation.
        func: NativeFn,
        /// Declared arity.
        arity: eds_adt::Arity,
        /// Argument programs.
        args: Vec<CompiledScalar>,
    },
    /// Unresolved function call — evaluation produces the registry's
    /// `UnknownFunction` error, exactly like the interpreter (and only
    /// when a row is actually evaluated).
    UnknownCall {
        /// Function name as written.
        name: String,
        /// Argument programs.
        args: Vec<CompiledScalar>,
    },
    /// Comparison with broadcast semantics.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<CompiledScalar>,
        /// Right operand.
        right: Box<CompiledScalar>,
    },
    /// Flattened three-valued conjunction: nested `AND` chains compile
    /// to one operand list, evaluated left to right with the same
    /// short-circuit on FALSE (3VL `AND` is associative, so flattening
    /// preserves both results and the evaluation/error order).
    Conj(Vec<CompiledScalar>),
    /// Flattened three-valued disjunction (short-circuits on TRUE).
    Disj(Vec<CompiledScalar>),
    /// Three-valued negation.
    Not(Box<CompiledScalar>),
    /// A `Scalar::Field` that survived binding — evaluation errors like
    /// the interpreter does.
    UnboundField {
        /// Attribute name, for the error message.
        name: String,
    },
}

impl CompiledScalar {
    /// Lower a bound scalar into a compiled program, resolving function
    /// symbols against `env`.
    pub fn compile(s: &Scalar, env: &EvalEnv<'_>) -> CompiledScalar {
        match s {
            Scalar::Attr { rel, attr } => CompiledScalar::Attr {
                rel: *rel,
                attr: *attr,
            },
            Scalar::Const(v) => CompiledScalar::Const(v.clone()),
            Scalar::Param(i) => CompiledScalar::Param(*i),
            Scalar::Field { name, .. } => CompiledScalar::UnboundField { name: name.clone() },
            Scalar::Call { func, args } => {
                let compiled: Vec<CompiledScalar> =
                    args.iter().map(|a| Self::compile(a, env)).collect();
                match (func.as_str(), compiled.len()) {
                    ("GETFIELD", 2) => {
                        // Constant index: the canonical bind_fields shape.
                        if let Scalar::Const(Value::Int(i)) = &args[1] {
                            CompiledScalar::GetField {
                                input: Box::new(compiled.into_iter().next().expect("two args")),
                                idx1: *i as usize,
                            }
                        } else {
                            CompiledScalar::DynGetField(compiled)
                        }
                    }
                    ("GETFIELD", _) => CompiledScalar::DynGetField(compiled),
                    ("VALUE", 1) => CompiledScalar::ValueOf(Box::new(
                        compiled.into_iter().next().expect("one arg"),
                    )),
                    ("VALUE", _) => CompiledScalar::DynValue(compiled),
                    _ => match env.functions.get(func) {
                        Some(def) => CompiledScalar::Call {
                            name: def.name.clone(),
                            func: Arc::clone(&def.func),
                            arity: def.arity,
                            args: compiled,
                        },
                        None => CompiledScalar::UnknownCall {
                            name: func.clone(),
                            args: compiled,
                        },
                    },
                }
            }
            Scalar::Cmp { op, left, right } => CompiledScalar::Cmp {
                op: *op,
                left: Box::new(Self::compile(left, env)),
                right: Box::new(Self::compile(right, env)),
            },
            Scalar::And(_, _) => {
                let mut operands = Vec::new();
                flatten_and(s, env, &mut operands);
                CompiledScalar::Conj(operands)
            }
            Scalar::Or(_, _) => {
                let mut operands = Vec::new();
                flatten_or(s, env, &mut operands);
                CompiledScalar::Disj(operands)
            }
            Scalar::Not(a) => CompiledScalar::Not(Box::new(Self::compile(a, env))),
        }
    }

    /// Evaluate against one tuple per input relation. Borrowed results
    /// point into `tuples`, the object store, or the program's own
    /// constants.
    pub fn eval<'v>(
        &'v self,
        tuples: &[&'v [Value]],
        env: &EvalEnv<'v>,
    ) -> EngineResult<Cow<'v, Value>> {
        match self {
            CompiledScalar::Attr { rel, attr } => {
                let row = tuples.get(rel - 1).ok_or_else(|| {
                    EngineError::Lera(LeraError::BadAttrRef {
                        rel: *rel,
                        attr: *attr,
                        context: format!("{} input tuples", tuples.len()),
                    })
                })?;
                row.get(attr - 1).map(Cow::Borrowed).ok_or_else(|| {
                    EngineError::Lera(LeraError::BadAttrRef {
                        rel: *rel,
                        attr: *attr,
                        context: format!("tuple of arity {}", row.len()),
                    })
                })
            }
            CompiledScalar::Const(v) => Ok(Cow::Borrowed(v)),
            CompiledScalar::Param(i) => env
                .params
                .get(*i as usize)
                .map(Cow::Borrowed)
                .ok_or(EngineError::UnboundParam(*i)),
            CompiledScalar::GetField { input, idx1 } => {
                let v = input.eval(tuples, env)?;
                getfield_cow(v, *idx1, env)
            }
            CompiledScalar::DynGetField(args) => {
                let vals = args
                    .iter()
                    .map(|a| a.eval(tuples, env).map(Cow::into_owned))
                    .collect::<EngineResult<Vec<Value>>>()?;
                let idx = vals[1].as_int().map_err(EngineError::Adt)? as usize;
                getfield_cow(Cow::Owned(vals.into_iter().next().expect("arg")), idx, env)
            }
            CompiledScalar::ValueOf(input) => {
                let v = input.eval(tuples, env)?;
                deref_cow(v, env)
            }
            CompiledScalar::DynValue(args) => {
                let vals = args
                    .iter()
                    .map(|a| a.eval(tuples, env).map(Cow::into_owned))
                    .collect::<EngineResult<Vec<Value>>>()?;
                deref_cow(Cow::Owned(vals.into_iter().next().expect("arg")), env)
            }
            CompiledScalar::Call {
                name,
                func,
                arity,
                args,
            } => {
                let vals = args
                    .iter()
                    .map(|a| a.eval(tuples, env).map(Cow::into_owned))
                    .collect::<EngineResult<Vec<Value>>>()?;
                arity.check(name, vals.len()).map_err(EngineError::Adt)?;
                func(&vals, &env.adt_ctx())
                    .map(Cow::Owned)
                    .map_err(EngineError::Adt)
            }
            CompiledScalar::UnknownCall { name, args } => {
                // Evaluate arguments first (interpreter order), then fail
                // with the registry's own error.
                for a in args {
                    a.eval(tuples, env)?;
                }
                Err(EngineError::Adt(AdtError::UnknownFunction(name.clone())))
            }
            CompiledScalar::Cmp { op, left, right } => {
                let l = left.eval(tuples, env)?;
                let r = right.eval(tuples, env)?;
                Ok(Cow::Owned(eval_cmp_broadcast(op, &l, &r)))
            }
            CompiledScalar::Conj(operands) => {
                // Left-to-right with FALSE short-circuit; any non-TRUE
                // survivor (NULL or a non-boolean) makes the result NULL,
                // exactly like folding the interpreter's binary AND.
                let mut all_true = true;
                for o in operands {
                    let v = o.eval(tuples, env)?;
                    match v.as_ref() {
                        Value::Bool(false) => return Ok(Cow::Owned(Value::Bool(false))),
                        Value::Bool(true) => {}
                        _ => all_true = false,
                    }
                }
                Ok(Cow::Owned(if all_true {
                    Value::Bool(true)
                } else {
                    Value::Null
                }))
            }
            CompiledScalar::Disj(operands) => {
                let mut all_false = true;
                for o in operands {
                    let v = o.eval(tuples, env)?;
                    match v.as_ref() {
                        Value::Bool(true) => return Ok(Cow::Owned(Value::Bool(true))),
                        Value::Bool(false) => {}
                        _ => all_false = false,
                    }
                }
                Ok(Cow::Owned(if all_false {
                    Value::Bool(false)
                } else {
                    Value::Null
                }))
            }
            CompiledScalar::Not(a) => Ok(Cow::Owned(match a.eval(tuples, env)?.as_ref() {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                other => {
                    return Err(EngineError::NonBooleanPredicate(other.to_string()));
                }
            })),
            CompiledScalar::UnboundField { name } => {
                Err(EngineError::Lera(LeraError::UnknownAttribute {
                    name: name.clone(),
                    receiver: "unbound field access at runtime".into(),
                }))
            }
        }
    }

    /// Evaluate and convert to an owned value (projection targets).
    pub fn eval_owned(&self, tuples: &[&[Value]], env: &EvalEnv<'_>) -> EngineResult<Value> {
        self.eval(tuples, env).map(Cow::into_owned)
    }

    /// Evaluate as a qualification: `true` only for `TRUE` (three-valued
    /// logic maps NULL and FALSE to "not selected").
    pub fn eval_bool(&self, tuples: &[&[Value]], env: &EvalEnv<'_>) -> EngineResult<bool> {
        Ok(matches!(
            self.eval(tuples, env)?.as_ref(),
            Value::Bool(true)
        ))
    }
}

/// Three-valued truth classification of a qualification conjunct.
enum Truth {
    True,
    False,
    Other,
}

/// A fast operand reference: an access path the hot loop can resolve to a
/// borrowed [`Value`] with no recursion and no [`Cow`] bookkeeping. `None`
/// from [`FastRef::get`] means "shape not covered" (bad index, dangling
/// OID, collection receiver, …) and the caller re-runs the general
/// program, which reproduces the exact interpreter result or error.
enum FastRef {
    /// `tuples[rel0][attr0]` (0-based).
    Slot { rel0: usize, attr0: usize },
    /// `GETFIELD(VALUE(tuples[rel0][attr0]), idx0 + 1)` where the slot
    /// holds an object reference whose value is a tuple — the shape every
    /// object-attribute access lowers to.
    DerefField {
        rel0: usize,
        attr0: usize,
        idx0: usize,
    },
    /// A literal.
    Konst(Value),
    /// A statement parameter — resolved from the environment's bind
    /// array per evaluation, so the fast path serves every execution of
    /// a prepared statement without re-classification.
    Param(u16),
}

impl FastRef {
    fn of(p: &CompiledScalar) -> Option<FastRef> {
        match p {
            CompiledScalar::Attr { rel, attr } if *rel >= 1 && *attr >= 1 => Some(FastRef::Slot {
                rel0: rel - 1,
                attr0: attr - 1,
            }),
            CompiledScalar::Const(v) => Some(FastRef::Konst(v.clone())),
            CompiledScalar::Param(i) => Some(FastRef::Param(*i)),
            CompiledScalar::GetField { input, idx1 } if *idx1 >= 1 => match input.as_ref() {
                CompiledScalar::ValueOf(inner) => match inner.as_ref() {
                    CompiledScalar::Attr { rel, attr } if *rel >= 1 && *attr >= 1 => {
                        Some(FastRef::DerefField {
                            rel0: rel - 1,
                            attr0: attr - 1,
                            idx0: idx1 - 1,
                        })
                    }
                    _ => None,
                },
                _ => None,
            },
            _ => None,
        }
    }

    #[inline]
    fn get<'v>(&'v self, tuples: &[&'v [Value]], env: &EvalEnv<'v>) -> Option<&'v Value> {
        match self {
            FastRef::Slot { rel0, attr0 } => tuples.get(*rel0)?.get(*attr0),
            FastRef::Konst(v) => Some(v),
            // An unbound parameter returns None: the general program
            // re-runs and reports the UnboundParam error.
            FastRef::Param(i) => env.params.get(*i as usize),
            FastRef::DerefField { rel0, attr0, idx0 } => match tuples.get(*rel0)?.get(*attr0)? {
                Value::Object(oid) => match env.objects.value(*oid) {
                    Ok(Value::Tuple(items)) => items.get(*idx0),
                    _ => None,
                },
                _ => None,
            },
        }
    }
}

/// Pre-classified fast form of one conjunct.
enum FastQual {
    /// Literal `TRUE` — no per-row work at all.
    True,
    /// A comparison between two fast references.
    Cmp {
        op: CmpOp,
        left: FastRef,
        right: FastRef,
    },
}

/// One conjunct of a qualification: the fast form when the shape allows
/// it, plus the general program as semantic authority and fallback.
struct Conjunct {
    fast: Option<FastQual>,
    general: CompiledScalar,
}

impl Conjunct {
    fn new(general: CompiledScalar) -> Conjunct {
        let fast = match &general {
            CompiledScalar::Const(Value::Bool(true)) => Some(FastQual::True),
            CompiledScalar::Cmp { op, left, right } => {
                match (FastRef::of(left), FastRef::of(right)) {
                    (Some(l), Some(r)) => Some(FastQual::Cmp {
                        op: *op,
                        left: l,
                        right: r,
                    }),
                    _ => None,
                }
            }
            _ => None,
        };
        Conjunct { fast, general }
    }

    #[inline]
    fn truth(&self, tuples: &[&[Value]], env: &EvalEnv<'_>) -> EngineResult<Truth> {
        if let Some(fast) = &self.fast {
            match fast {
                FastQual::True => return Ok(Truth::True),
                FastQual::Cmp { op, left, right } => {
                    if let (Some(l), Some(r)) = (left.get(tuples, env), right.get(tuples, env)) {
                        return Ok(match eval_cmp_broadcast(op, l, r) {
                            Value::Bool(true) => Truth::True,
                            Value::Bool(false) => Truth::False,
                            _ => Truth::Other,
                        });
                    }
                    // Access shape not covered: fall through to the
                    // general program (pure re-evaluation; reproduces the
                    // interpreter's result or error exactly).
                }
            }
        }
        Ok(match self.general.eval(tuples, env)?.as_ref() {
            Value::Bool(true) => Truth::True,
            Value::Bool(false) => Truth::False,
            _ => Truth::Other,
        })
    }
}

/// A compiled qualification: the conjunct list of the predicate, each
/// with a pre-classified fast path. Evaluation order, short-circuiting
/// and errors match folding the interpreter's binary `AND` (FALSE
/// short-circuits; NULL and non-boolean survivors poison the result to
/// NULL, which a qualification treats as "not selected").
pub struct CompiledPred {
    conjuncts: Vec<Conjunct>,
}

impl CompiledPred {
    /// Lower a bound predicate.
    pub fn compile(s: &Scalar, env: &EvalEnv<'_>) -> CompiledPred {
        let mut programs = Vec::new();
        flatten_and(s, env, &mut programs);
        CompiledPred {
            conjuncts: programs.into_iter().map(Conjunct::new).collect(),
        }
    }

    /// Evaluate as a qualification: `true` only when every conjunct is
    /// `TRUE`.
    #[inline]
    pub fn eval_bool(&self, tuples: &[&[Value]], env: &EvalEnv<'_>) -> EngineResult<bool> {
        let mut all_true = true;
        for c in &self.conjuncts {
            match c.truth(tuples, env)? {
                Truth::True => {}
                Truth::False => return Ok(false),
                Truth::Other => all_true = false,
            }
        }
        Ok(all_true)
    }
}

/// A compiled projection target: plain attribute references clone the
/// slot value directly; everything else runs the general program.
pub struct CompiledProj {
    slot: Option<(usize, usize)>,
    general: CompiledScalar,
}

impl CompiledProj {
    /// Lower a bound projection expression.
    pub fn compile(s: &Scalar, env: &EvalEnv<'_>) -> CompiledProj {
        let general = CompiledScalar::compile(s, env);
        let slot = match &general {
            CompiledScalar::Attr { rel, attr } if *rel >= 1 && *attr >= 1 => {
                Some((rel - 1, attr - 1))
            }
            _ => None,
        };
        CompiledProj { slot, general }
    }

    /// Evaluate to an owned value.
    #[inline]
    pub fn eval_owned(&self, tuples: &[&[Value]], env: &EvalEnv<'_>) -> EngineResult<Value> {
        if let Some((rel0, attr0)) = self.slot {
            if let Some(v) = tuples.get(rel0).and_then(|t| t.get(attr0)) {
                return Ok(v.clone());
            }
        }
        self.general.eval_owned(tuples, env)
    }
}

/// A qualification lowered onto a columnar mirror: one typed [`Kern`]
/// per conjunct, run over a *selection vector* of candidate row indices.
/// Lowering succeeds only when **every** conjunct maps to a kernel, so
/// evaluation can never error and never disagree with the row path —
/// any conjunct the typed layout does not cover sends the whole
/// predicate back to [`CompiledPred::eval_bool`].
///
/// Selection semantics match the row path exactly: a row is selected
/// iff every conjunct evaluates to `TRUE` (NULL and FALSE both drop the
/// row), so kernels only ever *remove* indices and their order of
/// application cannot change the result.
pub struct ColumnarPred<'c> {
    kernels: Vec<Kern<'c>>,
}

/// One conjunct's typed kernel over column storage. Constants are
/// decoded at lowering time; per-row work is a slice read, a null-bit
/// test and a primitive comparison.
enum Kern<'c> {
    /// Conjunct is TRUE for every row (literal `TRUE`, or a
    /// constant-constant comparison that evaluated to TRUE).
    AllTrue,
    /// Conjunct is never TRUE (NULL/FALSE constant result): selects
    /// nothing.
    NeverTrue,
    /// Kind-mismatch comparison whose truth is TRUE exactly when the
    /// column value is non-null (derived `Ord` between distinct `Value`
    /// kinds is payload-independent).
    NotNull1(&'c NullBitmap),
    /// As [`Kern::NotNull1`] for a column-column comparison: TRUE when
    /// both sides are non-null.
    NotNull2(&'c NullBitmap, &'c NullBitmap),
    /// `Int` column vs integer constant.
    IntConst {
        values: &'c [i64],
        nulls: &'c NullBitmap,
        op: CmpOp,
        k: i64,
    },
    /// `Int` column vs real constant (`sql_cmp` widens the int side).
    IntConstF {
        values: &'c [i64],
        nulls: &'c NullBitmap,
        op: CmpOp,
        k: f64,
    },
    /// `Real` column vs numeric constant (int constants widen, exactly
    /// like `sql_cmp`'s `(*b as f64)`).
    RealConst {
        values: &'c [f64],
        nulls: &'c NullBitmap,
        op: CmpOp,
        k: f64,
    },
    /// `Bool` column vs boolean constant.
    BoolConst {
        values: &'c [bool],
        nulls: &'c NullBitmap,
        op: CmpOp,
        k: bool,
    },
    /// Interned string column vs string constant: the comparison ran
    /// once per *distinct* pool entry at lowering time, so the per-row
    /// kernel is a null test plus a table lookup.
    StrPool {
        ids: &'c [u32],
        nulls: &'c NullBitmap,
        truth: Vec<bool>,
    },
    /// `Int` column vs `Int` column.
    IntInt {
        a: &'c [i64],
        b: &'c [i64],
        an: &'c NullBitmap,
        bn: &'c NullBitmap,
        op: CmpOp,
    },
    /// `Int` column vs `Real` column (int side widens).
    IntReal {
        a: &'c [i64],
        b: &'c [f64],
        an: &'c NullBitmap,
        bn: &'c NullBitmap,
        op: CmpOp,
    },
    /// `Real` column vs `Int` column.
    RealInt {
        a: &'c [f64],
        b: &'c [i64],
        an: &'c NullBitmap,
        bn: &'c NullBitmap,
        op: CmpOp,
    },
    /// `Real` column vs `Real` column (`total_cmp`, like `OrderedF64`).
    RealReal {
        a: &'c [f64],
        b: &'c [f64],
        an: &'c NullBitmap,
        bn: &'c NullBitmap,
        op: CmpOp,
    },
    /// `Bool` column vs `Bool` column.
    BoolBool {
        a: &'c [bool],
        b: &'c [bool],
        an: &'c NullBitmap,
        bn: &'c NullBitmap,
        op: CmpOp,
    },
    /// String column vs string column (possibly different pools).
    StrStr {
        a_ids: &'c [u32],
        a_pool: &'c [Arc<str>],
        b_ids: &'c [u32],
        b_pool: &'c [Arc<str>],
        an: &'c NullBitmap,
        bn: &'c NullBitmap,
        op: CmpOp,
    },
}

/// Does `ord` satisfy `op`? The single dispatch point every typed kernel
/// funnels through, mirroring the tail of
/// [`eval_cmp_broadcast`](crate::eval::eval_cmp_broadcast).
#[inline]
fn holds(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => ord.is_ne(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Ge => ord.is_ge(),
    }
}

/// Mirror a comparison so the column operand moves to the left:
/// `k op col` ≡ `col mirror(op) k`.
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Lanes per unrolled strip of the flag kernels. 16 `u8` flags is one
/// SSE register / half a NEON quad-pair; LLVM turns the fixed-trip
/// inner loops below into packed compares without any intrinsics.
const FLAG_LANES: usize = 16;

/// AND `test(vals[j])` into `flags[j]` for every lane, branchlessly:
/// the comparison result is converted to `0`/`1` and combined with
/// `&=`, so there is no data-dependent branch for the vectorizer to
/// trip on. `chunks_exact` gives the compiler a fixed-trip inner loop;
/// the remainder is handled scalar.
#[inline]
fn and_map<T: Copy>(flags: &mut [u8], vals: &[T], test: impl Fn(T) -> bool) {
    debug_assert_eq!(flags.len(), vals.len());
    let mut fc = flags.chunks_exact_mut(FLAG_LANES);
    let mut vc = vals.chunks_exact(FLAG_LANES);
    for (fs, vs) in (&mut fc).zip(&mut vc) {
        for j in 0..FLAG_LANES {
            fs[j] &= u8::from(test(vs[j]));
        }
    }
    for (f, v) in fc.into_remainder().iter_mut().zip(vc.remainder()) {
        *f &= u8::from(test(*v));
    }
}

/// Two-column variant of [`and_map`].
#[inline]
fn and_map2<A: Copy, B: Copy>(flags: &mut [u8], a: &[A], b: &[B], test: impl Fn(A, B) -> bool) {
    debug_assert_eq!(flags.len(), a.len());
    debug_assert_eq!(flags.len(), b.len());
    let mut fc = flags.chunks_exact_mut(FLAG_LANES);
    let mut ac = a.chunks_exact(FLAG_LANES);
    let mut bc = b.chunks_exact(FLAG_LANES);
    for ((fs, xs), ys) in (&mut fc).zip(&mut ac).zip(&mut bc) {
        for j in 0..FLAG_LANES {
            fs[j] &= u8::from(test(xs[j], ys[j]));
        }
    }
    for ((f, x), y) in fc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *f &= u8::from(test(*x, *y));
    }
}

/// Dispatch the comparison operator **outside** the hot loop: each arm
/// instantiates [`and_map`] with a monomorphic branch-free test, so the
/// loop body contains exactly one compare + one AND per lane.
#[inline]
fn and_cmp<T: Copy>(
    flags: &mut [u8],
    vals: &[T],
    op: CmpOp,
    ord: impl Fn(T) -> std::cmp::Ordering + Copy,
) {
    match op {
        CmpOp::Eq => and_map(flags, vals, move |v| ord(v).is_eq()),
        CmpOp::Ne => and_map(flags, vals, move |v| ord(v).is_ne()),
        CmpOp::Lt => and_map(flags, vals, move |v| ord(v).is_lt()),
        CmpOp::Gt => and_map(flags, vals, move |v| ord(v).is_gt()),
        CmpOp::Le => and_map(flags, vals, move |v| ord(v).is_le()),
        CmpOp::Ge => and_map(flags, vals, move |v| ord(v).is_ge()),
    }
}

/// Two-column variant of [`and_cmp`].
#[inline]
fn and_cmp2<A: Copy, B: Copy>(
    flags: &mut [u8],
    a: &[A],
    b: &[B],
    op: CmpOp,
    ord: impl Fn(A, B) -> std::cmp::Ordering + Copy,
) {
    match op {
        CmpOp::Eq => and_map2(flags, a, b, move |x, y| ord(x, y).is_eq()),
        CmpOp::Ne => and_map2(flags, a, b, move |x, y| ord(x, y).is_ne()),
        CmpOp::Lt => and_map2(flags, a, b, move |x, y| ord(x, y).is_lt()),
        CmpOp::Gt => and_map2(flags, a, b, move |x, y| ord(x, y).is_gt()),
        CmpOp::Le => and_map2(flags, a, b, move |x, y| ord(x, y).is_le()),
        CmpOp::Ge => and_map2(flags, a, b, move |x, y| ord(x, y).is_ge()),
    }
}

/// Clear the flags of NULL rows. Skipped outright for all-valid columns
/// (the common case), so fully dense data pays nothing for nullability.
#[inline]
fn and_not_null(flags: &mut [u8], nulls: &NullBitmap, lo: usize) {
    if !nulls.any() {
        return;
    }
    for (j, f) in flags.iter_mut().enumerate() {
        *f &= u8::from(!nulls.is_null(lo + j));
    }
}

/// Rows per selection strip. The flag buffer for one strip is a 1 KiB
/// stack array that stays in L1 across every kernel pass and the final
/// extraction, so adding a conjunct never adds a full-width pass over
/// a heap flag vector — only over the (typed, contiguous) column data
/// it actually reads.
const SELECT_STRIP: usize = 1024;

impl ColumnarPred<'_> {
    /// Apply one kernel to the strip `[lo, hi)`, AND-ing its verdict
    /// into `flags` (one byte per row of the strip).
    fn apply(kern: &Kern<'_>, flags: &mut [u8], lo: usize, hi: usize) {
        match kern {
            Kern::AllTrue | Kern::NeverTrue => {}
            Kern::NotNull1(nb) => and_not_null(flags, nb, lo),
            Kern::NotNull2(an, bn) => {
                and_not_null(flags, an, lo);
                and_not_null(flags, bn, lo);
            }
            Kern::IntConst {
                values,
                nulls,
                op,
                k,
            } => {
                let k = *k;
                and_cmp(flags, &values[lo..hi], *op, move |v: i64| v.cmp(&k));
                and_not_null(flags, nulls, lo);
            }
            Kern::IntConstF {
                values,
                nulls,
                op,
                k,
            } => {
                let k = *k;
                and_cmp(flags, &values[lo..hi], *op, move |v: i64| {
                    (v as f64).total_cmp(&k)
                });
                and_not_null(flags, nulls, lo);
            }
            Kern::RealConst {
                values,
                nulls,
                op,
                k,
            } => {
                let k = *k;
                and_cmp(flags, &values[lo..hi], *op, move |v: f64| v.total_cmp(&k));
                and_not_null(flags, nulls, lo);
            }
            Kern::BoolConst {
                values,
                nulls,
                op,
                k,
            } => {
                let k = *k;
                and_cmp(flags, &values[lo..hi], *op, move |v: bool| v.cmp(&k));
                and_not_null(flags, nulls, lo);
            }
            Kern::StrPool { ids, nulls, truth } => {
                // Pool-id truth lookup is a gather, not a vector lane:
                // probe only rows still selected (the flag branch is
                // all-true — perfectly predicted — when this kernel
                // runs first).
                for (j, f) in flags.iter_mut().enumerate() {
                    if *f != 0 {
                        *f = u8::from(truth[ids[lo + j] as usize]);
                    }
                }
                and_not_null(flags, nulls, lo);
            }
            Kern::IntInt { a, b, an, bn, op } => {
                and_cmp2(flags, &a[lo..hi], &b[lo..hi], *op, |x: i64, y: i64| {
                    x.cmp(&y)
                });
                and_not_null(flags, an, lo);
                and_not_null(flags, bn, lo);
            }
            Kern::IntReal { a, b, an, bn, op } => {
                and_cmp2(flags, &a[lo..hi], &b[lo..hi], *op, |x: i64, y: f64| {
                    (x as f64).total_cmp(&y)
                });
                and_not_null(flags, an, lo);
                and_not_null(flags, bn, lo);
            }
            Kern::RealInt { a, b, an, bn, op } => {
                and_cmp2(flags, &a[lo..hi], &b[lo..hi], *op, |x: f64, y: i64| {
                    x.total_cmp(&(y as f64))
                });
                and_not_null(flags, an, lo);
                and_not_null(flags, bn, lo);
            }
            Kern::RealReal { a, b, an, bn, op } => {
                and_cmp2(flags, &a[lo..hi], &b[lo..hi], *op, |x: f64, y: f64| {
                    x.total_cmp(&y)
                });
                and_not_null(flags, an, lo);
                and_not_null(flags, bn, lo);
            }
            Kern::BoolBool { a, b, an, bn, op } => {
                and_cmp2(flags, &a[lo..hi], &b[lo..hi], *op, |x: bool, y: bool| {
                    x.cmp(&y)
                });
                and_not_null(flags, an, lo);
                and_not_null(flags, bn, lo);
            }
            Kern::StrStr {
                a_ids,
                a_pool,
                b_ids,
                b_pool,
                an,
                bn,
                op,
            } => {
                // String payload compares are gathers too: compare only
                // rows still selected.
                for (j, f) in flags.iter_mut().enumerate() {
                    if *f != 0 {
                        let i = lo + j;
                        *f = u8::from(holds(
                            *op,
                            a_pool[a_ids[i] as usize]
                                .as_ref()
                                .cmp(b_pool[b_ids[i] as usize].as_ref()),
                        ));
                    }
                }
                and_not_null(flags, an, lo);
                and_not_null(flags, bn, lo);
            }
        }
    }

    /// Apply one kernel to a sparse (absolute-index) survivor list,
    /// dropping rows it rejects. Operator dispatch is hoisted out of
    /// the per-row loop exactly as in [`Self::apply`]; each arm is a
    /// monomorphic `retain` over the (already small) index list.
    fn retain_sparse(kern: &Kern<'_>, sel: &mut Vec<u32>) {
        match kern {
            Kern::AllTrue | Kern::NeverTrue => {}
            Kern::NotNull1(nb) => sel.retain(|&i| !nb.is_null(i as usize)),
            Kern::NotNull2(an, bn) => {
                sel.retain(|&i| !an.is_null(i as usize) && !bn.is_null(i as usize));
            }
            Kern::IntConst {
                values,
                nulls,
                op,
                k,
            } => sel.retain(|&i| {
                let i = i as usize;
                !nulls.is_null(i) && holds(*op, values[i].cmp(k))
            }),
            Kern::IntConstF {
                values,
                nulls,
                op,
                k,
            } => sel.retain(|&i| {
                let i = i as usize;
                !nulls.is_null(i) && holds(*op, (values[i] as f64).total_cmp(k))
            }),
            Kern::RealConst {
                values,
                nulls,
                op,
                k,
            } => sel.retain(|&i| {
                let i = i as usize;
                !nulls.is_null(i) && holds(*op, values[i].total_cmp(k))
            }),
            Kern::BoolConst {
                values,
                nulls,
                op,
                k,
            } => sel.retain(|&i| {
                let i = i as usize;
                !nulls.is_null(i) && holds(*op, values[i].cmp(k))
            }),
            Kern::StrPool { ids, nulls, truth } => sel.retain(|&i| {
                let i = i as usize;
                !nulls.is_null(i) && truth[ids[i] as usize]
            }),
            Kern::IntInt { a, b, an, bn, op } => sel.retain(|&i| {
                let i = i as usize;
                !an.is_null(i) && !bn.is_null(i) && holds(*op, a[i].cmp(&b[i]))
            }),
            Kern::IntReal { a, b, an, bn, op } => sel.retain(|&i| {
                let i = i as usize;
                !an.is_null(i) && !bn.is_null(i) && holds(*op, (a[i] as f64).total_cmp(&b[i]))
            }),
            Kern::RealInt { a, b, an, bn, op } => sel.retain(|&i| {
                let i = i as usize;
                !an.is_null(i) && !bn.is_null(i) && holds(*op, a[i].total_cmp(&(b[i] as f64)))
            }),
            Kern::RealReal { a, b, an, bn, op } => sel.retain(|&i| {
                let i = i as usize;
                !an.is_null(i) && !bn.is_null(i) && holds(*op, a[i].total_cmp(&b[i]))
            }),
            Kern::BoolBool { a, b, an, bn, op } => sel.retain(|&i| {
                let i = i as usize;
                !an.is_null(i) && !bn.is_null(i) && holds(*op, a[i].cmp(&b[i]))
            }),
            Kern::StrStr {
                a_ids,
                a_pool,
                b_ids,
                b_pool,
                an,
                bn,
                op,
            } => sel.retain(|&i| {
                let i = i as usize;
                !an.is_null(i)
                    && !bn.is_null(i)
                    && holds(
                        *op,
                        a_pool[a_ids[i] as usize]
                            .as_ref()
                            .cmp(b_pool[b_ids[i] as usize].as_ref()),
                    )
            }),
        }
    }

    /// Indices in `[lo, hi)` (ascending) whose rows satisfy every
    /// conjunct. Infallible by construction: only conjuncts that cannot
    /// error lower to kernels.
    ///
    /// Evaluation is strip-at-a-time and **adaptive**. Each
    /// [`SELECT_STRIP`]-row strip starts on a byte-per-row selection
    /// *flag* buffer: kernels make contiguous branchless passes AND-ing
    /// their verdict into the flags ([`and_map`]/[`and_map2`]), so
    /// column data streams through typed slices in strict ascending
    /// order — the layout the compiler auto-vectorizes — while the
    /// flag buffer lives on the stack and never leaves L1. After each
    /// dense pass the strip's survivor count (an L1 byte sum) decides
    /// whether to stay dense or pivot: once fewer than a quarter of the
    /// strip survives, the survivors are extracted into a sparse index
    /// list and the remaining kernels run as per-index gathers
    /// ([`Self::retain_sparse`]), so a highly selective leading
    /// conjunct — `B = 3` in front of a tail of near-vacuous range
    /// checks, say — spares the tail its full-width passes.
    pub fn select_range(&self, lo: usize, hi: usize) -> Vec<u32> {
        if hi <= lo || self.kernels.iter().any(|k| matches!(k, Kern::NeverTrue)) {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut flags = [1u8; SELECT_STRIP];
        let mut sparse: Vec<u32> = Vec::new();
        let mut strip_lo = lo;
        while strip_lo < hi {
            let strip_hi = (strip_lo + SELECT_STRIP).min(hi);
            let n = strip_hi - strip_lo;
            let f = &mut flags[..n];
            f.fill(1);
            let mut dense = true;
            let mut dead = false;
            let mut kerns = self.kernels.iter();
            while let Some(kern) = kerns.next() {
                if dense {
                    Self::apply(kern, f, strip_lo, strip_hi);
                    if kerns.len() == 0 {
                        break;
                    }
                    let survivors: usize = f.iter().map(|&x| x as usize).sum();
                    if survivors == 0 {
                        dead = true;
                        break;
                    }
                    if survivors * 4 <= n {
                        sparse.clear();
                        for (j, flag) in f.iter().enumerate() {
                            if *flag != 0 {
                                sparse.push((strip_lo + j) as u32);
                            }
                        }
                        dense = false;
                    }
                } else {
                    Self::retain_sparse(kern, &mut sparse);
                    if sparse.is_empty() {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead {
                if dense {
                    for (j, flag) in f.iter().enumerate() {
                        if *flag != 0 {
                            out.push((strip_lo + j) as u32);
                        }
                    }
                } else {
                    out.extend_from_slice(&sparse);
                }
            }
            strip_lo = strip_hi;
        }
        out
    }
}

impl CompiledPred {
    /// Lower this predicate onto a columnar mirror, or `None` when any
    /// conjunct falls outside the typed kernel set (deref chains,
    /// function calls, disjunctions, spill columns, …) — the caller
    /// then uses the row path for the whole predicate, preserving
    /// evaluation order, errors and results exactly.
    /// `params` is the statement's bind array: a `?` operand is resolved
    /// to its bound value *at lowering time* — per execution — so the
    /// kernel it selects is the same typed constant kernel a literal
    /// would get (including the Int↔Real widening variants), while the
    /// compiled predicate itself stays bind-independent.
    pub fn columnar<'c>(
        &self,
        cols: &'c ColumnarRelation,
        params: &[Value],
    ) -> Option<ColumnarPred<'c>> {
        let mut kernels = Vec::with_capacity(self.conjuncts.len());
        for c in &self.conjuncts {
            kernels.push(lower_conjunct(c, cols, params)?);
        }
        Some(ColumnarPred { kernels })
    }

    /// Whether every conjunct has the *shape* the columnar lowering
    /// accepts — first-input slot references and constants under a
    /// plain comparison (or a constant `TRUE`). Used to decide whether
    /// building a columnar mirror of a **derived** relation could pay
    /// off before spending the build; a `true` here does not guarantee
    /// [`CompiledPred::columnar`] succeeds (spill columns still veto),
    /// only that the predicate shape cannot be the reason it fails.
    pub fn columnar_eligible(&self) -> bool {
        self.conjuncts.iter().all(|c| match c.fast.as_ref() {
            Some(FastQual::True) => true,
            Some(FastQual::Cmp { left, right, .. }) => {
                let slot_or_const = |r: &FastRef| {
                    matches!(
                        r,
                        FastRef::Slot { rel0: 0, .. } | FastRef::Konst(_) | FastRef::Param(_)
                    )
                };
                slot_or_const(left) && slot_or_const(right)
            }
            None => false,
        })
    }
}

/// A comparison operand after bind-time resolution: a first-input
/// column, or a concrete value (a literal, or a `?` looked up in the
/// bind array).
enum Opnd<'v> {
    Col(usize),
    Val(&'v Value),
}

/// Resolve a fast reference against the bind array. `None` for shapes
/// the columnar lowering cannot serve (non-first-input slots, deref
/// chains) and for unbound parameters — the row path then reports the
/// error.
fn operand<'v>(r: &'v FastRef, params: &'v [Value]) -> Option<Opnd<'v>> {
    match r {
        FastRef::Slot { rel0: 0, attr0 } => Some(Opnd::Col(*attr0)),
        FastRef::Konst(k) => Some(Opnd::Val(k)),
        FastRef::Param(i) => params.get(*i as usize).map(Opnd::Val),
        _ => None,
    }
}

fn lower_conjunct<'c>(
    c: &Conjunct,
    cols: &'c ColumnarRelation,
    params: &[Value],
) -> Option<Kern<'c>> {
    match c.fast.as_ref()? {
        FastQual::True => Some(Kern::AllTrue),
        FastQual::Cmp { op, left, right } => {
            match (operand(left, params)?, operand(right, params)?) {
                (Opnd::Col(a), Opnd::Val(k)) => lower_col_const(*op, cols.column(a)?, k),
                (Opnd::Val(k), Opnd::Col(a)) => lower_col_const(mirror(*op), cols.column(a)?, k),
                (Opnd::Col(a), Opnd::Col(b)) => {
                    lower_col_col(*op, cols.column(a)?, cols.column(b)?)
                }
                (Opnd::Val(k1), Opnd::Val(k2)) => Some(match eval_cmp_broadcast(op, k1, k2) {
                    Value::Bool(true) => Kern::AllTrue,
                    // FALSE, NULL, or a broadcast collection: never TRUE.
                    _ => Kern::NeverTrue,
                }),
            }
        }
    }
}

/// Lower `col op k` (constant already mirrored to the right).
fn lower_col_const<'c>(op: CmpOp, col: &'c Column, k: &Value) -> Option<Kern<'c>> {
    if k.is_null() {
        // NULL comparand: the comparison is NULL for every row, which a
        // qualification treats as "not selected".
        return Some(Kern::NeverTrue);
    }
    match (col, k) {
        (Column::Spill(_), _) => None,
        (Column::Int { values, nulls }, Value::Int(i)) => Some(Kern::IntConst {
            values,
            nulls,
            op,
            k: *i,
        }),
        (Column::Int { values, nulls }, Value::Real(r)) => Some(Kern::IntConstF {
            values,
            nulls,
            op,
            k: r.0,
        }),
        (Column::Real { values, nulls }, Value::Real(r)) => Some(Kern::RealConst {
            values,
            nulls,
            op,
            k: r.0,
        }),
        (Column::Real { values, nulls }, Value::Int(i)) => Some(Kern::RealConst {
            values,
            nulls,
            op,
            k: *i as f64,
        }),
        (Column::Bool { values, nulls }, Value::Bool(b)) => Some(Kern::BoolConst {
            values,
            nulls,
            op,
            k: *b,
        }),
        (
            Column::Str {
                ids, pool, nulls, ..
            },
            Value::Str(s),
        ) => {
            let truth: Vec<bool> = pool
                .iter()
                .map(|p| holds(op, p.as_ref().cmp(s.as_str())))
                .collect();
            Some(Kern::StrPool { ids, nulls, truth })
        }
        // Kind mismatch (e.g. Int column vs Str constant): `sql_cmp`
        // between distinct non-numeric kinds compares discriminants
        // only, so the truth is the same for every non-null row —
        // resolve it once with a probe value of the column's kind.
        // (Ordered comparisons against a collection constant broadcast
        // to a collection result, which is never TRUE; the probe path
        // covers that too.)
        (col, k) => {
            let probe = col.probe()?;
            Some(match eval_cmp_broadcast(&op, &probe, k) {
                Value::Bool(true) => Kern::NotNull1(col.nulls()?),
                _ => Kern::NeverTrue,
            })
        }
    }
}

/// Lower `col_a op col_b` (both in the same single-input relation).
fn lower_col_col<'c>(op: CmpOp, ca: &'c Column, cb: &'c Column) -> Option<Kern<'c>> {
    match (ca, cb) {
        (Column::Spill(_), _) | (_, Column::Spill(_)) => None,
        (
            Column::Int {
                values: a,
                nulls: an,
            },
            Column::Int {
                values: b,
                nulls: bn,
            },
        ) => Some(Kern::IntInt { a, b, an, bn, op }),
        (
            Column::Int {
                values: a,
                nulls: an,
            },
            Column::Real {
                values: b,
                nulls: bn,
            },
        ) => Some(Kern::IntReal { a, b, an, bn, op }),
        (
            Column::Real {
                values: a,
                nulls: an,
            },
            Column::Int {
                values: b,
                nulls: bn,
            },
        ) => Some(Kern::RealInt { a, b, an, bn, op }),
        (
            Column::Real {
                values: a,
                nulls: an,
            },
            Column::Real {
                values: b,
                nulls: bn,
            },
        ) => Some(Kern::RealReal { a, b, an, bn, op }),
        (
            Column::Bool {
                values: a,
                nulls: an,
            },
            Column::Bool {
                values: b,
                nulls: bn,
            },
        ) => Some(Kern::BoolBool { a, b, an, bn, op }),
        (
            Column::Str {
                ids: a_ids,
                pool: a_pool,
                nulls: an,
                ..
            },
            Column::Str {
                ids: b_ids,
                pool: b_pool,
                nulls: bn,
                ..
            },
        ) => Some(Kern::StrStr {
            a_ids,
            a_pool,
            b_ids,
            b_pool,
            an,
            bn,
            op,
        }),
        // Kind mismatch between two typed columns: payload-independent,
        // resolve once with probes (see lower_col_const).
        (ca, cb) => {
            let (pa, pb) = (ca.probe()?, cb.probe()?);
            Some(match eval_cmp_broadcast(&op, &pa, &pb) {
                Value::Bool(true) => Kern::NotNull2(ca.nulls()?, cb.nulls()?),
                _ => Kern::NeverTrue,
            })
        }
    }
}

impl CompiledProj {
    /// The 0-based attribute of input 0 this projection copies, when it
    /// is a plain first-input slot reference (the shape the columnar
    /// gather path and the identity-projection short-circuit need).
    pub fn slot0(&self) -> Option<usize> {
        match self.slot {
            Some((0, attr0)) => Some(attr0),
            _ => None,
        }
    }
}

fn flatten_and(s: &Scalar, env: &EvalEnv<'_>, out: &mut Vec<CompiledScalar>) {
    match s {
        Scalar::And(a, b) => {
            flatten_and(a, env, out);
            flatten_and(b, env, out);
        }
        other => out.push(CompiledScalar::compile(other, env)),
    }
}

fn flatten_or(s: &Scalar, env: &EvalEnv<'_>, out: &mut Vec<CompiledScalar>) {
    match s {
        Scalar::Or(a, b) => {
            flatten_or(a, env, out);
            flatten_or(b, env, out);
        }
        other => out.push(CompiledScalar::compile(other, env)),
    }
}

/// Field access with automatic mapping (tuples index directly, object
/// references dereference first, collections map elementwise), borrowing
/// wherever the receiver is borrowed.
fn getfield_cow<'v>(
    v: Cow<'v, Value>,
    idx1: usize,
    env: &EvalEnv<'v>,
) -> EngineResult<Cow<'v, Value>> {
    match v {
        Cow::Borrowed(b) => getfield_ref(b, idx1, env),
        Cow::Owned(o) => getfield_owned(o, idx1, env),
    }
}

fn getfield_ref<'v>(v: &'v Value, idx1: usize, env: &EvalEnv<'v>) -> EngineResult<Cow<'v, Value>> {
    match v {
        Value::Null => Ok(Cow::Owned(Value::Null)),
        Value::Tuple(items) => items.get(idx1 - 1).map(Cow::Borrowed).ok_or({
            EngineError::Adt(AdtError::IndexOutOfBounds {
                index: idx1 as i64,
                len: items.len(),
            })
        }),
        Value::Object(oid) => {
            let inner = env.objects.value(*oid).map_err(EngineError::Adt)?;
            getfield_ref(inner, idx1, env)
        }
        Value::Coll(kind, items) => {
            let mapped = items
                .iter()
                .map(|e| getfield_ref(e, idx1, env).map(Cow::into_owned))
                .collect::<EngineResult<Vec<_>>>()?;
            Ok(Cow::Owned(Value::coll(*kind, mapped)))
        }
        other => Err(EngineError::Adt(AdtError::TypeMismatch {
            function: "GETFIELD".into(),
            expected: "TUPLE, OBJECT or collection".into(),
            found: other.kind_name().into(),
        })),
    }
}

fn getfield_owned<'v>(v: Value, idx1: usize, env: &EvalEnv<'v>) -> EngineResult<Cow<'v, Value>> {
    match v {
        Value::Null => Ok(Cow::Owned(Value::Null)),
        Value::Tuple(mut items) => {
            if idx1 >= 1 && idx1 <= items.len() {
                Ok(Cow::Owned(items.swap_remove(idx1 - 1)))
            } else {
                Err(EngineError::Adt(AdtError::IndexOutOfBounds {
                    index: idx1 as i64,
                    len: items.len(),
                }))
            }
        }
        Value::Object(oid) => {
            let inner = env.objects.value(oid).map_err(EngineError::Adt)?;
            getfield_ref(inner, idx1, env)
        }
        Value::Coll(kind, items) => {
            let mapped = items
                .into_iter()
                .map(|e| getfield_owned(e, idx1, env).map(Cow::into_owned))
                .collect::<EngineResult<Vec<_>>>()?;
            Ok(Cow::Owned(Value::coll(kind, mapped)))
        }
        other => Err(EngineError::Adt(AdtError::TypeMismatch {
            function: "GETFIELD".into(),
            expected: "TUPLE, OBJECT or collection".into(),
            found: other.kind_name().into(),
        })),
    }
}

/// `VALUE` with collection mapping, borrowing from the object store.
fn deref_cow<'v>(v: Cow<'v, Value>, env: &EvalEnv<'v>) -> EngineResult<Cow<'v, Value>> {
    match v {
        Cow::Borrowed(Value::Null) | Cow::Owned(Value::Null) => Ok(Cow::Owned(Value::Null)),
        Cow::Borrowed(Value::Object(oid)) => env
            .objects
            .value(*oid)
            .map(Cow::Borrowed)
            .map_err(EngineError::Adt),
        Cow::Owned(Value::Object(oid)) => env
            .objects
            .value(oid)
            .map(Cow::Borrowed)
            .map_err(EngineError::Adt),
        Cow::Borrowed(Value::Coll(kind, items)) => {
            let mapped = items
                .iter()
                .map(|e| deref_cow(Cow::Borrowed(e), env).map(Cow::into_owned))
                .collect::<EngineResult<Vec<_>>>()?;
            Ok(Cow::Owned(Value::coll(*kind, mapped)))
        }
        Cow::Owned(Value::Coll(kind, items)) => {
            let mapped = items
                .into_iter()
                .map(|e| deref_cow(Cow::Owned(e), env).map(Cow::into_owned))
                .collect::<EngineResult<Vec<_>>>()?;
            Ok(Cow::Owned(Value::coll(kind, mapped)))
        }
        other => Ok(other),
    }
}
