//! In-memory relations.

use eds_adt::Value;
use eds_lera::Schema;

/// A row: one value per attribute.
pub type Row = Vec<Value>;

/// An in-memory relation with bag semantics (ESQL query blocks produce
/// bags by default; set operations deduplicate explicitly).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// The relation's schema.
    pub schema: Schema,
    /// Rows, duplicates allowed.
    pub rows: Vec<Row>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Relation with rows.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        Relation { schema, rows }
    }

    /// Number of rows (with duplicates).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Deduplicated copy (set semantics), rows in canonical order.
    pub fn deduped(&self) -> Relation {
        let mut rows = self.rows.clone();
        rows.sort();
        rows.dedup();
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Canonicalized copy: sorted rows with duplicates retained. Two
    /// relations with equal canonical forms are bag-equal.
    pub fn canonical(&self) -> Relation {
        let mut rows = self.rows.clone();
        rows.sort();
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Set-equality against another relation (ignores duplicates/order).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.deduped().rows == other.deduped().rows
    }

    /// Bag-equality against another relation (ignores order only).
    pub fn bag_eq(&self, other: &Relation) -> bool {
        self.canonical().rows == other.canonical().rows
    }

    /// The rows as a sorted, deduplicated vector (for assertions).
    pub fn sorted_rows(&self) -> Vec<Row> {
        self.deduped().rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eds_adt::{Field, Type};

    fn schema2() -> Schema {
        Schema::new(vec![Field::new("a", Type::Int), Field::new("b", Type::Int)])
    }

    fn r(rows: Vec<(i64, i64)>) -> Relation {
        Relation::new(
            schema2(),
            rows.into_iter()
                .map(|(a, b)| vec![Value::Int(a), Value::Int(b)])
                .collect(),
        )
    }

    #[test]
    fn set_and_bag_equality() {
        let a = r(vec![(1, 2), (3, 4), (1, 2)]);
        let b = r(vec![(3, 4), (1, 2)]);
        assert!(a.set_eq(&b));
        assert!(!a.bag_eq(&b));
        let c = r(vec![(1, 2), (1, 2), (3, 4)]);
        assert!(a.bag_eq(&c));
    }

    #[test]
    fn dedup_is_canonical() {
        let a = r(vec![(3, 4), (1, 2), (3, 4)]);
        assert_eq!(a.deduped().rows.len(), 2);
        assert_eq!(a.deduped().rows[0], vec![Value::Int(1), Value::Int(2)]);
    }
}
