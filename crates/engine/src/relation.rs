//! In-memory relations with shared (reference-counted) rows.
//!
//! Rows are stored behind [`Arc`] so that row-preserving operators
//! (filter, join combination, union, fixpoint accumulation) share tuples
//! instead of deep-cloning every `Value`. The schema is shared the same
//! way: cloning a [`Relation`] is two pointer-vector copies, never a
//! traversal of string or collection values.

use std::collections::HashSet;
use std::sync::Arc;

use eds_adt::Value;
use eds_lera::Schema;

/// A row: one value per attribute.
pub type Row = Vec<Value>;

/// A reference-counted row, shared between relations. Stored as a slice
/// (`Arc<[Value]>`), not `Arc<Vec<Value>>`: one allocation per row
/// instead of two, and one less indirection on every access.
pub type SharedRow = Arc<[Value]>;

/// Drain a scratch buffer into a shared row. `vec::Drain` is a
/// `TrustedLen` iterator, so the `Arc<[Value]>` is allocated exactly
/// once — half the allocator traffic of `Arc::new(vec)` per
/// materialized row, which dominates projection-heavy operators.
#[inline]
pub fn shared_row(scratch: &mut Vec<Value>) -> SharedRow {
    scratch.drain(..).collect()
}

/// An in-memory relation with bag semantics (ESQL query blocks produce
/// bags by default; set operations deduplicate explicitly).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// The relation's schema (shared; cloning is a refcount bump).
    pub schema: Arc<Schema>,
    /// Rows, duplicates allowed. Shared: operators that keep a row pass
    /// the same allocation along.
    pub rows: Vec<SharedRow>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn empty(schema: impl Into<Arc<Schema>>) -> Self {
        Relation {
            schema: schema.into(),
            rows: Vec::new(),
        }
    }

    /// Relation with owned rows (each is wrapped for sharing).
    pub fn new(schema: impl Into<Arc<Schema>>, rows: Vec<Row>) -> Self {
        Relation {
            schema: schema.into(),
            rows: rows.into_iter().map(SharedRow::from).collect(),
        }
    }

    /// Relation from already-shared rows.
    pub fn from_shared(schema: impl Into<Arc<Schema>>, rows: Vec<SharedRow>) -> Self {
        Relation {
            schema: schema.into(),
            rows,
        }
    }

    /// Number of rows (with duplicates).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append an owned row. Goes through [`shared_row`] so the
    /// `Arc<[Value]>` is allocated in a single `TrustedLen` collect
    /// instead of the `From<Vec>` round trip.
    pub fn push(&mut self, mut row: Row) {
        self.rows.push(shared_row(&mut row));
    }

    /// Append a shared row (no deep copy).
    pub fn push_shared(&mut self, row: SharedRow) {
        self.rows.push(row);
    }

    /// Deduplicated copy (set semantics), rows in canonical order.
    /// Duplicates are dropped by hash membership first, so only the
    /// unique rows pay the O(u log u) sort — a large saving for
    /// low-cardinality inputs (e.g. `SELECT DISTINCT` over a category
    /// column).
    pub fn deduped(&self) -> Relation {
        let mut seen: HashSet<&[Value]> = HashSet::with_capacity(self.rows.len());
        let mut rows: Vec<SharedRow> = Vec::new();
        for r in &self.rows {
            if seen.insert(&**r) {
                rows.push(r.clone());
            }
        }
        rows.sort_unstable();
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Canonicalized copy: sorted rows with duplicates retained. Two
    /// relations with equal canonical forms are bag-equal. (Unstable
    /// sort: equal rows are indistinguishable by value.)
    pub fn canonical(&self) -> Relation {
        let mut rows = self.rows.clone();
        rows.sort_unstable();
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Set-equality against another relation (ignores duplicates/order).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.deduped().rows == other.deduped().rows
    }

    /// Bag-equality against another relation (ignores order only).
    pub fn bag_eq(&self, other: &Relation) -> bool {
        self.canonical().rows == other.canonical().rows
    }

    /// The rows as a sorted, deduplicated vector of owned rows (for
    /// assertions).
    pub fn sorted_rows(&self) -> Vec<Row> {
        self.deduped()
            .rows
            .into_iter()
            .map(|r| r.to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eds_adt::{Field, Type};

    fn schema2() -> Schema {
        Schema::new(vec![Field::new("a", Type::Int), Field::new("b", Type::Int)])
    }

    fn r(rows: Vec<(i64, i64)>) -> Relation {
        Relation::new(
            schema2(),
            rows.into_iter()
                .map(|(a, b)| vec![Value::Int(a), Value::Int(b)])
                .collect(),
        )
    }

    #[test]
    fn set_and_bag_equality() {
        let a = r(vec![(1, 2), (3, 4), (1, 2)]);
        let b = r(vec![(3, 4), (1, 2)]);
        assert!(a.set_eq(&b));
        assert!(!a.bag_eq(&b));
        let c = r(vec![(1, 2), (1, 2), (3, 4)]);
        assert!(a.bag_eq(&c));
    }

    #[test]
    fn dedup_is_canonical() {
        let a = r(vec![(3, 4), (1, 2), (3, 4)]);
        assert_eq!(a.deduped().rows.len(), 2);
        assert_eq!(*a.deduped().rows[0], vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn shared_rows_are_not_deep_copied() {
        let a = r(vec![(1, 2)]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.rows[0], &b.rows[0]));
        assert!(Arc::ptr_eq(&a.schema, &b.schema));
    }
}
