//! Columnar mirrors of stored relations.
//!
//! A [`ColumnarRelation`] stores one typed vector per attribute — `i64`,
//! `f64`, `bool`, or interned strings, each with a null bitmap — plus a
//! [`Value`] *spill* column for attributes whose values are ADTs, enums,
//! collections, objects, or a mix of runtime kinds. The mirror is a pure
//! acceleration structure: the row-major [`Relation`] stays the single
//! source of truth (operators keep passing [`SharedRow`]s along by
//! refcount), and compiled predicates run their typed kernels over the
//! contiguous columns to produce a *selection vector* of row indices,
//! which the operator then gathers from the row store. Results are
//! therefore byte-identical to the row path by construction.
//!
//! Mirrors are built lazily per stored base table (see
//! [`Database::columnar`](crate::database::Database::columnar)) and
//! invalidated by every mutation path. A relation whose columns all
//! spill (or which is empty) stays row-major: [`ColumnarRelation::build`]
//! returns `None` and the engine never asks again until the table
//! changes.
//!
//! [`SharedRow`]: crate::relation::SharedRow

use std::collections::HashMap;
use std::sync::Arc;

use eds_adt::Value;

use crate::relation::{Relation, Row};

/// A null bitmap: bit set = NULL at that row. The `any` flag lets the
/// hot `is_null` check skip the word load entirely for columns without
/// nulls (the common case).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct NullBitmap {
    words: Vec<u64>,
    any: bool,
}

impl NullBitmap {
    fn with_len(n: usize) -> NullBitmap {
        NullBitmap {
            words: vec![0; n.div_ceil(64)],
            any: false,
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
        self.any = true;
    }

    /// Is row `i` NULL?
    #[inline]
    pub(crate) fn is_null(&self, i: usize) -> bool {
        self.any && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Whether any row is NULL at all — kernels skip their null pass
    /// entirely on all-valid columns (the common case).
    #[inline]
    pub(crate) fn any(&self) -> bool {
        self.any
    }

    /// Record row `i` as appended, growing the word vector as needed so
    /// `is_null` never indexes out of bounds once `any` flips on.
    fn push(&mut self, i: usize, null: bool) {
        let w = i / 64;
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        if null {
            self.words[w] |= 1 << (i % 64);
            self.any = true;
        }
    }
}

/// One attribute of a columnar mirror. Typed variants hold the decoded
/// payloads contiguously (null rows hold a default payload and set their
/// bitmap bit); `Spill` keeps the original [`Value`]s for shapes the
/// typed layout does not cover.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Column {
    /// `Value::Int` column (NUMERIC/INT attributes with integer values).
    Int {
        /// Decoded payloads.
        values: Vec<i64>,
        /// Null positions.
        nulls: NullBitmap,
    },
    /// `Value::Real` column.
    Real {
        /// Decoded payloads.
        values: Vec<f64>,
        /// Null positions.
        nulls: NullBitmap,
    },
    /// `Value::Bool` column.
    Bool {
        /// Decoded payloads.
        values: Vec<bool>,
        /// Null positions.
        nulls: NullBitmap,
    },
    /// `Value::Str` column, interned: `ids[i]` indexes `pool`, which
    /// holds each distinct string once. Comparisons against a constant
    /// evaluate once per *distinct* string, not once per row.
    Str {
        /// Per-row interned ids.
        ids: Vec<u32>,
        /// Distinct strings in first-appearance order.
        pool: Vec<Arc<str>>,
        /// Reverse index for constant lookups.
        lookup: HashMap<Arc<str>, u32>,
        /// Null positions.
        nulls: NullBitmap,
    },
    /// Everything else: enums, tuples, collections, object references,
    /// and columns whose rows mix runtime kinds (mid-column type spill).
    Spill(Vec<Value>),
}

impl Column {
    /// Null bitmap of a typed column (`None` for spill columns).
    pub(crate) fn nulls(&self) -> Option<&NullBitmap> {
        match self {
            Column::Int { nulls, .. }
            | Column::Real { nulls, .. }
            | Column::Bool { nulls, .. }
            | Column::Str { nulls, .. } => Some(nulls),
            Column::Spill(_) => None,
        }
    }

    /// A representative non-null value of the column's kind, used to
    /// resolve kind-mismatch comparisons once at lowering time (derived
    /// `Ord` between different `Value` variants compares discriminants
    /// only, so the result is payload-independent).
    pub(crate) fn probe(&self) -> Option<Value> {
        Some(match self {
            Column::Int { .. } => Value::Int(0),
            Column::Real { .. } => Value::real(0.0),
            Column::Bool { .. } => Value::Bool(false),
            Column::Str { .. } => Value::Str(String::new()),
            Column::Spill(_) => return None,
        })
    }

    /// Rebuild the row-major value at row `i` (byte-identical to the
    /// value the mirror was built from).
    pub(crate) fn value(&self, i: usize) -> Value {
        match self {
            Column::Int { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Int(values[i])
                }
            }
            Column::Real { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::real(values[i])
                }
            }
            Column::Bool { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Bool(values[i])
                }
            }
            Column::Str {
                ids, pool, nulls, ..
            } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Str(pool[ids[i] as usize].to_string())
                }
            }
            Column::Spill(values) => values[i].clone(),
        }
    }

    /// Would `v` fit this column's layout without changing it? NULL fits
    /// every typed column; spill columns accept anything. Appending a
    /// typed value to a spill column keeps it spilled (a fresh rebuild
    /// might have chosen a typed layout for an all-NULL column, but the
    /// mirror stays byte-identical to the row store either way — spill
    /// is only a missed acceleration, never a correctness difference).
    fn accepts(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (Column::Spill(_), _)
                | (Column::Int { .. }, Value::Int(_) | Value::Null)
                | (Column::Real { .. }, Value::Real(_) | Value::Null)
                | (Column::Bool { .. }, Value::Bool(_) | Value::Null)
                | (Column::Str { .. }, Value::Str(_) | Value::Null)
        )
    }

    /// Append `v` as row `i`. Callers must have checked [`Column::accepts`]
    /// first — this is the decode pass of the same two-pass discipline
    /// [`build_column`] uses, so a mismatch mid-row never leaves a column
    /// half-appended.
    fn push(&mut self, v: &Value, i: usize) {
        match (self, v) {
            (Column::Int { values, nulls }, Value::Int(x)) => {
                values.push(*x);
                nulls.push(i, false);
            }
            (Column::Int { values, nulls }, Value::Null) => {
                values.push(0);
                nulls.push(i, true);
            }
            (Column::Real { values, nulls }, Value::Real(x)) => {
                values.push(x.0);
                nulls.push(i, false);
            }
            (Column::Real { values, nulls }, Value::Null) => {
                values.push(0.0);
                nulls.push(i, true);
            }
            (Column::Bool { values, nulls }, Value::Bool(x)) => {
                values.push(*x);
                nulls.push(i, false);
            }
            (Column::Bool { values, nulls }, Value::Null) => {
                values.push(false);
                nulls.push(i, true);
            }
            (
                Column::Str {
                    ids,
                    pool,
                    lookup,
                    nulls,
                },
                Value::Str(s),
            ) => {
                let id = match lookup.get(s.as_str()) {
                    Some(&id) => id,
                    None => {
                        let id = pool.len() as u32;
                        let interned: Arc<str> = Arc::from(s.as_str());
                        pool.push(interned.clone());
                        lookup.insert(interned, id);
                        id
                    }
                };
                ids.push(id);
                nulls.push(i, false);
            }
            (Column::Str { ids, nulls, .. }, Value::Null) => {
                ids.push(0);
                nulls.push(i, true);
            }
            (Column::Spill(values), v) => values.push(v.clone()),
            _ => unreachable!("accepts() admitted only matching kinds"),
        }
    }
}

/// A columnar mirror of a relation: one [`Column`] per attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarRelation {
    len: usize,
    columns: Vec<Column>,
}

/// Which typed layout a column's values fit, decided by scanning the
/// rows (NULLs are layout-neutral; any kind conflict spills).
#[derive(Clone, Copy, PartialEq)]
enum ColKind {
    Unknown,
    Int,
    Real,
    Bool,
    Str,
    Spill,
}

impl ColumnarRelation {
    /// Build a mirror of `rel`. Returns `None` when the relation is not
    /// column-friendly: empty, zero-arity, rows of inconsistent arity,
    /// or no attribute that decodes to a typed column (all spill).
    pub fn build(rel: &Relation) -> Option<ColumnarRelation> {
        let n = rel.rows.len();
        let arity = rel.schema.arity();
        if n == 0 || arity == 0 || rel.rows.iter().any(|r| r.len() != arity) {
            return None;
        }
        let mut columns = Vec::with_capacity(arity);
        let mut typed = 0usize;
        for j in 0..arity {
            let col = build_column(&rel.rows, j, n);
            if !matches!(col, Column::Spill(_)) {
                typed += 1;
            }
            columns.push(col);
        }
        if typed == 0 {
            return None;
        }
        Some(ColumnarRelation { len: n, columns })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mirror has no rows (never happens for built
    /// mirrors; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column by 0-based index (crate-internal; kernels borrow from it).
    pub(crate) fn column(&self, j: usize) -> Option<&Column> {
        self.columns.get(j)
    }

    /// Whether attribute `j` (0-based) decoded to a typed column rather
    /// than the `Value` spill representation.
    pub fn column_is_typed(&self, j: usize) -> bool {
        !matches!(self.columns.get(j), Some(Column::Spill(_)) | None)
    }

    /// Row-view: rebuild the value at (`row`, `col`), both 0-based.
    /// Byte-identical to the row store the mirror was built from.
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Row-view: rebuild the full row at `i` (0-based).
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Incrementally append one row to the mirror. Returns `false` —
    /// leaving the mirror untouched — when the row's arity differs or
    /// any value does not fit its column's typed layout, in which case
    /// the caller must drop the mirror and let the next scan rebuild.
    /// Two passes, like [`ColumnarRelation::build`]: every column is
    /// checked before any column is touched.
    pub(crate) fn push_row(&mut self, row: &[Value]) -> bool {
        if row.len() != self.columns.len() {
            return false;
        }
        if !self.columns.iter().zip(row).all(|(c, v)| c.accepts(v)) {
            return false;
        }
        let i = self.len;
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push(v, i);
        }
        self.len += 1;
        true
    }
}

/// Decide the layout of column `j` and decode it. Two passes: the kind
/// scan is cheap (discriminant reads), and keeping the passes separate
/// means a mid-column spill never decodes half a typed vector.
fn build_column(rows: &[crate::relation::SharedRow], j: usize, n: usize) -> Column {
    let mut kind = ColKind::Unknown;
    for row in rows {
        let k = match &row[j] {
            Value::Null => continue,
            Value::Int(_) => ColKind::Int,
            Value::Real(_) => ColKind::Real,
            Value::Bool(_) => ColKind::Bool,
            Value::Str(_) => ColKind::Str,
            _ => ColKind::Spill,
        };
        if kind == ColKind::Unknown {
            kind = k;
        }
        if kind != k {
            kind = ColKind::Spill;
        }
        if kind == ColKind::Spill {
            break;
        }
    }
    match kind {
        // All-NULL columns stay row-major: no typed kernel can touch
        // them, and spill keeps the exact values trivially.
        ColKind::Unknown | ColKind::Spill => {
            Column::Spill(rows.iter().map(|r| r[j].clone()).collect())
        }
        ColKind::Int => {
            let mut values = Vec::with_capacity(n);
            let mut nulls = NullBitmap::with_len(n);
            for (i, row) in rows.iter().enumerate() {
                match &row[j] {
                    Value::Int(v) => values.push(*v),
                    Value::Null => {
                        values.push(0);
                        nulls.set(i);
                    }
                    _ => unreachable!("kind scan saw only Int/Null"),
                }
            }
            Column::Int { values, nulls }
        }
        ColKind::Real => {
            let mut values = Vec::with_capacity(n);
            let mut nulls = NullBitmap::with_len(n);
            for (i, row) in rows.iter().enumerate() {
                match &row[j] {
                    Value::Real(v) => values.push(v.0),
                    Value::Null => {
                        values.push(0.0);
                        nulls.set(i);
                    }
                    _ => unreachable!("kind scan saw only Real/Null"),
                }
            }
            Column::Real { values, nulls }
        }
        ColKind::Bool => {
            let mut values = Vec::with_capacity(n);
            let mut nulls = NullBitmap::with_len(n);
            for (i, row) in rows.iter().enumerate() {
                match &row[j] {
                    Value::Bool(v) => values.push(*v),
                    Value::Null => {
                        values.push(false);
                        nulls.set(i);
                    }
                    _ => unreachable!("kind scan saw only Bool/Null"),
                }
            }
            Column::Bool { values, nulls }
        }
        ColKind::Str => {
            let mut ids = Vec::with_capacity(n);
            let mut pool: Vec<Arc<str>> = Vec::new();
            let mut lookup: HashMap<Arc<str>, u32> = HashMap::new();
            let mut nulls = NullBitmap::with_len(n);
            for (i, row) in rows.iter().enumerate() {
                match &row[j] {
                    Value::Str(s) => {
                        let id = match lookup.get(s.as_str()) {
                            Some(&id) => id,
                            None => {
                                let id = pool.len() as u32;
                                let interned: Arc<str> = Arc::from(s.as_str());
                                pool.push(interned.clone());
                                lookup.insert(interned, id);
                                id
                            }
                        };
                        ids.push(id);
                    }
                    Value::Null => {
                        ids.push(0);
                        nulls.set(i);
                    }
                    _ => unreachable!("kind scan saw only Str/Null"),
                }
            }
            Column::Str {
                ids,
                pool,
                lookup,
                nulls,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eds_adt::{Field, Type};
    use eds_lera::Schema;

    fn schema(names: &[&str]) -> Schema {
        Schema::new(names.iter().map(|n| Field::new(*n, Type::Any)).collect())
    }

    #[test]
    fn typed_columns_roundtrip_exactly() {
        let rel = Relation::new(
            schema(&["i", "r", "s", "b"]),
            vec![
                vec![
                    Value::Int(1),
                    Value::real(1.5),
                    Value::str("a"),
                    Value::Bool(true),
                ],
                vec![Value::Null, Value::Null, Value::Null, Value::Null],
                vec![
                    Value::Int(-3),
                    Value::real(f64::NAN),
                    Value::str("a"),
                    Value::Bool(false),
                ],
            ],
        );
        let cols = ColumnarRelation::build(&rel).expect("column-friendly");
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.arity(), 4);
        for j in 0..4 {
            assert!(cols.column_is_typed(j), "column {j} must be typed");
        }
        for (i, row) in rel.rows.iter().enumerate() {
            assert_eq!(cols.row(i), row.to_vec(), "row {i} diverges");
        }
        // Interning: "a" appears twice but is pooled once.
        match cols.column(2).unwrap() {
            Column::Str { pool, ids, .. } => {
                assert_eq!(pool.len(), 1);
                assert_eq!(ids[0], ids[2]);
            }
            other => panic!("expected Str column, got {other:?}"),
        }
    }

    #[test]
    fn mid_column_kind_conflict_spills() {
        let rel = Relation::new(
            schema(&["k"]),
            vec![
                vec![Value::Int(1)],
                vec![Value::str("two")],
                vec![Value::Int(3)],
            ],
        );
        // Single column spills -> no typed column -> no mirror at all.
        assert!(ColumnarRelation::build(&rel).is_none());

        let rel2 = Relation::new(
            schema(&["k", "x"]),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::str("two"), Value::Int(20)],
            ],
        );
        let cols = ColumnarRelation::build(&rel2).expect("second column is typed");
        assert!(!cols.column_is_typed(0));
        assert!(cols.column_is_typed(1));
        assert_eq!(cols.value_at(1, 0), Value::str("two"));
    }

    #[test]
    fn int_real_mix_spills_rather_than_promoting() {
        // Promoting i64 to f64 would lose precision above 2^53 and change
        // comparison results; the layout must refuse instead.
        let rel = Relation::new(
            schema(&["n"]),
            vec![vec![Value::Int(1)], vec![Value::real(2.0)]],
        );
        assert!(ColumnarRelation::build(&rel).is_none());
    }

    #[test]
    fn adt_shapes_spill() {
        let rel = Relation::new(
            schema(&["e", "c", "i"]),
            vec![vec![
                Value::Enum("Grade".into(), "A".into()),
                Value::set(vec![Value::Int(1)]),
                Value::Int(7),
            ]],
        );
        let cols = ColumnarRelation::build(&rel).unwrap();
        assert!(!cols.column_is_typed(0));
        assert!(!cols.column_is_typed(1));
        assert!(cols.column_is_typed(2));
        assert_eq!(cols.row(0), rel.rows[0].to_vec());
    }

    #[test]
    fn empty_and_all_null_stay_row_major() {
        let empty = Relation::empty(schema(&["x"]));
        assert!(ColumnarRelation::build(&empty).is_none());
        let nulls = Relation::new(schema(&["x"]), vec![vec![Value::Null], vec![Value::Null]]);
        assert!(ColumnarRelation::build(&nulls).is_none());
    }
}
